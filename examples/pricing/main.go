// Pricing: an offline optimization on a constant-elasticity revenue model —
// find the highest subscription price that still keeps expected weekly unit
// demand above a contractual floor. Demonstrates *affine* fingerprint
// mappings: unit demand at two prices is an exact scalar multiple for a
// fixed world, so explored prices transfer to new prices without fresh
// simulation.
//
// Run with: go run ./examples/pricing
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	fp "fuzzyprophet"
)

const scenarioSQL = `
DECLARE PARAMETER @week AS RANGE 0 TO 25 STEP BY 1;
DECLARE PARAMETER @price AS SET (6, 7, 8, 9, 10, 11, 12, 13, 14);

SELECT UnitsModel(@week, @price)   AS units,
       RevenueModel(@week, @price) AS revenue
INTO results;

OPTIMIZE SELECT @price
FROM results
WHERE MIN(EXPECT units) > 80000
GROUP BY price
FOR MAX @price
`

func main() {
	ctx := context.Background()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		log.Fatal(err)
	}
	scn, err := sys.Compile(scenarioSQL)
	if err != nil {
		log.Fatal(err)
	}

	sys.ResetVGInvocations()
	res, err := scn.Optimize(ctx, nil, fp.WithWorlds(500))
	if err != nil {
		log.Fatal(err)
	}

	rows := append([]fp.OptimizeRow(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].Group["price"].(int64) < rows[j].Group["price"].(int64)
	})
	fmt.Println("price   min weekly E[units]   feasible (>80k)")
	for _, r := range rows {
		fmt.Printf("%5v   %20.0f   %v\n", r.Group["price"], r.Metrics["MIN(EXPECT(units))"], r.Feasible)
	}
	fmt.Printf("\nexplored %d points in %v; VG invocations %d; reuse %v\n",
		res.PointsEvaluated, res.Elapsed.Round(1e6), sys.VGInvocations(), res.ReuseCounts)
	for _, best := range res.Best {
		fmt.Printf("highest sustainable price: %v (min weekly E[units] %.0f)\n",
			best.Group["price"], best.Metrics["MIN(EXPECT(units))"])
	}
	fmt.Println("\nThe affine counters above show the fingerprint engine transferring")
	fmt.Println("unit-demand distributions between prices instead of re-simulating:")
	fmt.Println("for a fixed world the demands at two prices differ by an exact")
	fmt.Println("constant factor, which the affine fit recovers from k fixed seeds.")
}
