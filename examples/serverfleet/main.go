// Server fleet: a scenario whose query joins the Monte Carlo worlds against
// a static dimension table — four datacenter regions with different shares
// of global demand and different local fleets. The per-week metric is the
// expected fraction of regions running past their local capacity, a finer
// risk signal than the global aggregate.
//
// Run with: go run ./examples/serverfleet
package main

import (
	"context"
	"fmt"
	"log"

	fp "fuzzyprophet"
)

const scenarioSQL = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @feature AS SET (12, 36);

SELECT region,
       DemandModel(@current, @feature) * share AS regional_demand,
       local_capacity,
       CASE WHEN regional_demand > local_capacity THEN 1 ELSE 0 END AS strained
FROM regions;

GRAPH OVER @current
      EXPECT strained WITH bold red,
      EXPECT regional_demand WITH blue y2;
`

func main() {
	ctx := context.Background()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		log.Fatal(err)
	}
	scn, err := sys.Compile(scenarioSQL)
	if err != nil {
		log.Fatal(err)
	}
	// The static dimension table: each region serves a share of global
	// demand from its own local fleet. us-east is deliberately tight.
	err = scn.AddTable("regions",
		[]string{"region", "share", "local_capacity"},
		[][]any{
			{"us-east", 0.40, 21000.0},
			{"us-west", 0.25, 16500.0},
			{"europe", 0.20, 14000.0},
			{"asia", 0.15, 11500.0},
		})
	if err != nil {
		log.Fatal(err)
	}

	session, err := scn.OpenSession(fp.WithWorlds(400))
	if err != nil {
		log.Fatal(err)
	}
	if err := session.SetParam("feature", 36); err != nil {
		log.Fatal(err)
	}
	g, err := session.Render(ctx)
	if err != nil {
		log.Fatal(err)
	}
	chart, err := session.Ascii(g, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)

	strained := g.Series[0]
	fmt.Println("expected fraction of regions past local capacity:")
	for _, wk := range []int{0, 13, 26, 39, 52} {
		fmt.Printf("  week %2d: %.3f\n", wk, strained.Y[wk])
	}
	fmt.Println("\nWith 4 regions, 0.25 means one region strained in expectation;")
	fmt.Println("us-east (40% of demand on a 21k-core fleet) strains first as")
	fmt.Println("demand grows — a risk the global capacity/demand view hides.")
}
