// Quickstart: declare a parameterized scenario over a custom VG-Function,
// evaluate one what-if point and print the output distribution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	fp "fuzzyprophet"
)

// The scenario: weekly order volume is noisy and grows with marketing
// spend; shipping capacity is fixed. What is the risk that orders exceed
// capacity in a given week, for a given marketing budget?
const scenarioSQL = `
DECLARE PARAMETER @week AS RANGE 0 TO 12 STEP BY 1;
DECLARE PARAMETER @budget AS SET (0, 50, 100, 200);

SELECT OrderVolume(@week, @budget) AS orders,
       2400                        AS capacity,
       CASE WHEN orders > capacity THEN 1 ELSE 0 END AS overflow;
`

func main() {
	ctx := context.Background()
	sys, err := fp.New()
	if err != nil {
		log.Fatal(err)
	}

	// A VG-Function is any black-box stochastic function that is
	// deterministic in (seed, args). Use the seed for all randomness.
	err = sys.RegisterVG("OrderVolume", 2, func(seed uint64, args []float64) (float64, error) {
		week, budget := args[0], args[1]
		base := 1800 + 30*week + 2.5*budget
		// Cheap deterministic noise from the seed (use rng helpers for
		// real models; this keeps the example self-contained).
		u := float64(seed%10007)/10007 - 0.5
		return base * (1 + 0.2*u), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	scn, err := sys.Compile(scenarioSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameter space: %d points, outputs: %v\n\n", scn.SpaceSize(), scn.OutputColumns())

	for _, budget := range []int{0, 100, 200} {
		sum, err := scn.Evaluate(ctx, map[string]any{"week": 10, "budget": budget}, fp.WithWorlds(2000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("week 10, budget %3d:  E[orders] = %7.0f ± %5.0f   P(overflow) = %.3f\n",
			budget, sum["orders"].Mean, sum["orders"].StdDev, sum["overflow"].Mean)
	}
}
