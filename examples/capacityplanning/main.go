// Capacity planning: the paper's demonstration scenario (§3, "Risk vs Cost
// of Ownership") end to end — the online mode with slider adjustments and
// partial re-rendering, then the offline mode finding the latest safe
// hardware purchase dates.
//
// Run with: go run ./examples/capacityplanning
package main

import (
	"context"
	"fmt"
	"log"

	fp "fuzzyprophet"
)

// Figure 2 of the paper, on a step-8 purchase grid to keep the offline
// sweep interactive; the threshold is the prose's 5%.
const scenarioSQL = `
-- DEFINITION --
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature)
       AS demand,
       CapacityModel(@current, @purchase1, @purchase2)
       AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END
       AS overload
INTO results;

-- ONLINE MODE --
GRAPH OVER @current
      EXPECT overload WITH bold red,
      EXPECT capacity WITH blue y2,
      EXPECT_STDDEV demand WITH orange y2;

-- OFFLINE MODE --
-- The extra @purchase1 <= @purchase2 term keeps the two purchases ordered;
-- without it the lexicographic MAX @purchase1 goal would push the *first*
-- purchase late and cover early demand with the second.
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.05 AND @purchase1 <= @purchase2
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
`

func main() {
	ctx := context.Background()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		log.Fatal(err)
	}
	scn, err := sys.Compile(scenarioSQL)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Online mode (paper §3.2) --------------------------------------
	session, err := scn.OpenSession(fp.WithWorlds(400))
	if err != nil {
		log.Fatal(err)
	}
	must(session.SetParam("purchase1", 16))
	must(session.SetParam("purchase2", 32))
	must(session.SetParam("feature", 36))

	fmt.Println("=== online mode: first render (everything computed) ===")
	g, err := session.Render(ctx)
	if err != nil {
		log.Fatal(err)
	}
	chart, err := session.Ascii(g, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)

	fmt.Println("=== adjust @purchase1 16 -> 24: only portions re-render ===")
	must(session.SetParam("purchase1", 24))
	g, err = session.Render(ctx)
	if err != nil {
		log.Fatal(err)
	}
	chart, err = session.Ascii(g, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
	fmt.Printf("recomputed %d/%d weeks (%.0f%%), remapped %d, unchanged %d\n\n",
		g.Stats.Recomputed, g.Stats.Points, 100*g.Stats.RecomputedFraction(),
		g.Stats.Remapped, g.Stats.Unchanged)

	// ---- Offline mode (paper §3.3) --------------------------------------
	fmt.Println("=== offline mode: latest purchase dates with overload risk < 5% ===")
	sys.ResetVGInvocations()
	res, err := scn.Optimize(ctx, nil, fp.WithWorlds(200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d points in %v  (VG invocations: %d, reuse: %v)\n",
		res.PointsEvaluated, res.Elapsed.Round(1e6), sys.VGInvocations(), res.ReuseCounts)
	fmt.Printf("feasible groups: %d / %d\n", countFeasible(res), len(res.Rows))
	for _, best := range res.Best {
		fmt.Printf("latest safe schedule: purchase1=%v purchase2=%v (feature=%v)  max weekly overload = %.4f\n",
			best.Group["purchase1"], best.Group["purchase2"], best.Group["feature"],
			best.Metrics["MAX(EXPECT(overload))"])
	}
}

func countFeasible(res *fp.OptimizeResult) int {
	n := 0
	for _, r := range res.Rows {
		if r.Feasible {
			n++
		}
	}
	return n
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
