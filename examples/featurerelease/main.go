// Feature release: a what-if exploration of the software feature release
// date from the paper's demo. "Users are also encouraged to note the
// effects of changing the feature release date. Fuzzy Prophet's
// distribution mapping capabilities are able to reduce the set of weeks for
// which the query must be recomputed, despite the slope of the usage graph
// changing." (§3.2)
//
// Run with: go run ./examples/featurerelease
package main

import (
	"context"
	"fmt"
	"log"

	fp "fuzzyprophet"
)

const scenarioSQL = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @feature AS SET (8, 20, 32, 44);

SELECT DemandModel(@current, @feature) AS demand,
       62000                           AS capacity,
       CASE WHEN demand > capacity THEN 1 ELSE 0 END AS saturated
INTO results;

GRAPH OVER @current
      EXPECT demand WITH blue,
      EXPECT_STDDEV demand WITH orange y2;
`

func main() {
	ctx := context.Background()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		log.Fatal(err)
	}
	scn, err := sys.Compile(scenarioSQL)
	if err != nil {
		log.Fatal(err)
	}
	session, err := scn.OpenSession(fp.WithWorlds(500))
	if err != nil {
		log.Fatal(err)
	}

	for _, feature := range []int{8, 20, 32, 44} {
		if err := session.SetParam("feature", feature); err != nil {
			log.Fatal(err)
		}
		g, err := session.Render(ctx)
		if err != nil {
			log.Fatal(err)
		}
		demand := g.Series[0]
		fmt.Printf("feature released week %2d: demand wk0 %6.0f  wk26 %6.0f  wk52 %6.0f   "+
			"[recomputed %2d/%d weeks, remapped %2d, unchanged %2d]\n",
			feature, demand.Y[0], demand.Y[26], demand.Y[52],
			g.Stats.Recomputed, g.Stats.Points, g.Stats.Remapped, g.Stats.Unchanged)
	}

	fmt.Println("\nreuse outcomes across the exploration:", session.ReuseCounts())
	fmt.Println("\nNote how after the first render, moving the release date only")
	fmt.Println("recomputes the weeks between the old and new ramp windows — weeks")
	fmt.Println("before the earlier date and after both ramps complete are")
	fmt.Println("identity-mapped from the stored basis distributions.")
}
