package fuzzyprophet

import (
	"fmt"

	"fuzzyprophet/internal/mc"
)

// CompileError reports a scenario script that failed to compile. When the
// failure comes from the lexer or parser, Line and Col carry the 1-based
// source position; validation failures with no position leave them zero.
//
// Use errors.As to recover the position:
//
//	var ce *fuzzyprophet.CompileError
//	if errors.As(err, &ce) && ce.Line > 0 { /* point at ce.Line, ce.Col */ }
type CompileError struct {
	// Line and Col locate the error in the scenario source (1-based);
	// both are zero when the failure has no single source position.
	Line int
	Col  int
	// Msg describes the failure.
	Msg string

	err error
}

func (e *CompileError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("fuzzyprophet: compile: line %d col %d: %s", e.Line, e.Col, e.Msg)
	}
	return "fuzzyprophet: compile: " + e.Msg
}

// Unwrap returns the underlying engine error.
func (e *CompileError) Unwrap() error { return e.err }

// UnknownParamError reports a reference to a parameter the scenario does
// not declare — a point map with a stray key, or SetParam on a name that is
// not a slider.
type UnknownParamError struct {
	// Name is the undeclared parameter name (without the '@').
	Name string
}

func (e *UnknownParamError) Error() string {
	return fmt.Sprintf("fuzzyprophet: unknown parameter @%s", e.Name)
}

// DeterminismError reports a VG-Function that violated the seed-determinism
// contract fingerprint reuse depends on: invoked twice with the same seed
// and arguments, it produced different outputs.
type DeterminismError struct {
	// Func is the VG-Function name.
	Func string

	err error
}

func (e *DeterminismError) Error() string {
	return fmt.Sprintf("fuzzyprophet: VG-Function %s is not seed-deterministic: %v", e.Func, e.err)
}

// Unwrap returns the underlying probe error.
func (e *DeterminismError) Unwrap() error { return e.err }

// PanicError reports a panic recovered inside the Monte Carlo executor's
// simulation or shard goroutines — a panicking VG-Function or a kernel bug
// fails its own evaluation with this error instead of crashing the
// process. Servers map it to an internal error for the one affected
// request while in-flight renders on other goroutines continue untouched:
//
//	var pe *fuzzyprophet.PanicError
//	if errors.As(err, &pe) { log.Printf("%v\n%s", pe.Value, pe.Stack) }
type PanicError = mc.PanicError
