package fuzzyprophet

import (
	"context"
	"math"
	"strings"
	"testing"
)

// Cross-mode integration tests: the online graph, the offline optimizer,
// direct evaluation and the Query Generator must tell one consistent story
// about the same scenario.

func TestIntegrationOnlineOfflineConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	sys := demoSystem(t)
	scn, err := sys.Compile(`
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @feature AS SET (36);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current EXPECT overload, EXPECT capacity WITH y2;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.05 AND @purchase1 <= @purchase2
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;`)
	if err != nil {
		t.Fatal(err)
	}
	const worlds = 150

	// Offline: find the optimum.
	res, err := scn.Optimize(context.Background(), nil, WithWorlds(worlds))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) == 0 {
		t.Fatal("no feasible optimum")
	}
	best := res.Best[0]

	// Online: render at the optimum's pins; the max of the overload series
	// must equal the optimizer's constraint metric for that group.
	session, err := scn.OpenSession(WithWorlds(worlds))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"purchase1", "purchase2", "feature"} {
		if err := session.SetParam(p, best.Group[p]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := session.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var maxOverload float64
	for _, y := range g.Series[0].Y {
		if y > maxOverload {
			maxOverload = y
		}
	}
	want := best.Metrics["MAX(EXPECT(overload))"]
	if math.Abs(maxOverload-want) > 1e-9 {
		t.Errorf("online max overload %g != offline metric %g", maxOverload, want)
	}
	if maxOverload >= 0.05 {
		t.Errorf("optimum violates its own constraint: %g", maxOverload)
	}

	// Direct evaluation at one week must match the graph's value there.
	week := 20
	sum, err := scn.Evaluate(context.Background(), map[string]any{
		"current": week, "purchase1": best.Group["purchase1"],
		"purchase2": best.Group["purchase2"], "feature": best.Group["feature"],
	}, WithWorlds(worlds))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum["overload"].Mean-g.Series[0].Y[week]) > 1e-9 {
		t.Errorf("direct E[overload] %g != graph %g", sum["overload"].Mean, g.Series[0].Y[week])
	}
	if math.Abs(sum["capacity"].Mean-g.Series[1].Y[week]) > 1e-9 {
		t.Errorf("direct E[capacity] %g != graph %g", sum["capacity"].Mean, g.Series[1].Y[week])
	}
}

// The Query Generator's pure TSQL is genuinely standalone: stripped of
// every Fuzzy Prophet extension, referencing only the worlds table.
func TestIntegrationGeneratedSQLIsPure(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := scn.GeneratedSQL(map[string]any{
		"current": 10, "purchase1": 8, "purchase2": 24, "feature": 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"@", "DECLARE", "GRAPH", "OPTIMIZE", "DemandModel", "CapacityModel"} {
		if strings.Contains(sql, forbidden) {
			t.Errorf("generated SQL is not pure (contains %q):\n%s", forbidden, sql)
		}
	}
	if !strings.Contains(sql, "__worlds") {
		t.Errorf("generated SQL must read the worlds table:\n%s", sql)
	}
}

// Reuse must never change what the user sees: a full online exploration
// with reuse enabled produces (numerically almost) the same graphs as one
// without.
func TestIntegrationReuseInvisibleToUser(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	moves := []struct {
		param string
		val   int
	}{
		{"purchase1", 16}, {"purchase2", 32}, {"feature", 36},
		{"purchase1", 20}, {"feature", 12}, {"purchase2", 36},
	}
	run := func(disable bool) []*Graph {
		opts := []EvalOption{WithWorlds(100)}
		if disable {
			opts = append(opts, WithoutReuse())
		}
		session, err := scn.OpenSession(opts...)
		if err != nil {
			t.Fatal(err)
		}
		var graphs []*Graph
		for _, m := range moves {
			if err := session.SetParam(m.param, m.val); err != nil {
				t.Fatal(err)
			}
			g, err := session.Render(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			graphs = append(graphs, g)
		}
		return graphs
	}
	withReuse := run(false)
	withoutReuse := run(true)
	var maxDiff float64
	for gi := range withReuse {
		for si := range withReuse[gi].Series {
			for pi := range withReuse[gi].Series[si].Y {
				a := withReuse[gi].Series[si].Y[pi]
				b := withoutReuse[gi].Series[si].Y[pi]
				d := math.Abs(a-b) / (1 + math.Abs(b))
				if d > maxDiff {
					maxDiff = d
				}
			}
		}
	}
	// Identity reuse is exact; affine remaps and minority-mode windows
	// admit bounded drift. The user-visible error budget is well under the
	// Monte Carlo noise of 100 worlds (~0.1 relative on probabilities).
	if maxDiff > 0.05 {
		t.Errorf("reuse visibly changed the graphs: max relative diff %g", maxDiff)
	}
}

func TestIntegrationBudgetedOptimizeFacade(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scn.Optimize(context.Background(), nil, WithWorlds(30), WithGroupBudget(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive() {
		t.Error("budgeted run should not be exhaustive")
	}
	if res.GroupsExplored != 5 || res.GroupsTotal != 14*14*3 {
		t.Errorf("explored %d/%d", res.GroupsExplored, res.GroupsTotal)
	}
}
