package fuzzyprophet

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestOptimizeCancellation: a cancelled context aborts an offline sweep that
// would otherwise run for a long time, returning context's error within a
// small multiple of one world-batch.
func TestOptimizeCancellation(t *testing.T) {
	sys := demoSystem(t)
	// The full figure2 grid at 400 worlds is far beyond interactive time
	// uncancelled (14×14×3 groups × 53 free points); the deadline is 50ms.
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = scn.Optimize(ctx, nil, WithWorlds(400))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled sweep took %v; cancellation is not prompt", elapsed)
	}
}

// TestRenderCancellationLeavesReuseConsistent: cancelling a render mid-sweep
// returns the context error; the same session then renders to completion and
// its graph matches a never-cancelled session's exactly (partial reuse state
// must not change results).
func TestRenderCancellationLeavesReuseConsistent(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := scn.OpenSession(WithWorlds(80))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the render must abort immediately
	if _, err := session.Render(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	g, err := session.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	clean, err := scn.OpenSession(WithWorlds(80))
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for si := range g.Series {
		for pi := range g.Series[si].Y {
			if math.Abs(g.Series[si].Y[pi]-want.Series[si].Y[pi]) > 1e-9 {
				t.Fatalf("series %d point %d: %g != %g after cancelled render",
					si, pi, g.Series[si].Y[pi], want.Series[si].Y[pi])
			}
		}
	}
}

// TestSessionConcurrentSetParamRender hammers SetParam and Render from
// concurrent goroutines; run under -race this verifies the mutex-guarded
// slider state and snapshot-based rendering.
func TestSessionConcurrentSetParamRender(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := scn.OpenSession(WithWorlds(20))
	if err != nil {
		t.Fatal(err)
	}
	positions := []int{0, 4, 8, 12, 16}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				param := "purchase1"
				if w == 1 {
					param = "purchase2"
				}
				if err := session.SetParam(param, positions[i%len(positions)]); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := session.Render(context.Background()); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// The session is still coherent afterwards.
	if _, err := session.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluateBatchAmortizesReuse: a 20-point correlated grid (fixed week,
// varying purchase dates) evaluated through one shared reuse engine serves
// more than half the points by reuse, and spends far fewer VG invocations
// than the same points through independent single Evaluate calls.
func TestEvaluateBatchAmortizesReuse(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	var points []map[string]any
	for p1 := 0; p1 <= 48 && len(points) < 20; p1 += 8 {
		for _, p2 := range []int{32, 40, 48} {
			if len(points) == 20 {
				break
			}
			points = append(points, map[string]any{
				"current": 26, "purchase1": p1, "purchase2": p2, "feature": 36,
			})
		}
	}
	if len(points) != 20 {
		t.Fatalf("grid has %d points, want 20", len(points))
	}

	sys.ResetVGInvocations()
	res, err := scn.EvaluateBatch(context.Background(), points, WithWorlds(100))
	if err != nil {
		t.Fatal(err)
	}
	batchInv := sys.VGInvocations()

	if len(res.Points) != len(points) {
		t.Fatalf("batch returned %d points, want %d", len(res.Points), len(points))
	}
	reusedPoints := 0
	for _, bp := range res.Points {
		fresh := false
		for _, outcome := range bp.SiteOutcome {
			if outcome == "computed" {
				fresh = true
			}
		}
		if !fresh {
			reusedPoints++
		}
		if bp.Summaries["capacity"].N != 100 {
			t.Fatalf("point %v: capacity N = %d", bp.Point, bp.Summaries["capacity"].N)
		}
	}
	if reusedPoints*2 <= len(points) {
		t.Errorf("only %d/%d points served by reuse; want more than half (counts %v)",
			reusedPoints, len(points), res.ReuseCounts)
	}
	reusedSites := res.ReuseCounts["cached"] + res.ReuseCounts["identity"] + res.ReuseCounts["affine"]
	if reusedSites <= res.ReuseCounts["computed"] {
		t.Errorf("reuse counts %v: reused sites should dominate computed", res.ReuseCounts)
	}

	// The naive loop: each Evaluate gets a fresh reuse engine, so nothing
	// amortizes.
	sys.ResetVGInvocations()
	for _, p := range points {
		if _, err := scn.Evaluate(context.Background(), p, WithWorlds(100)); err != nil {
			t.Fatal(err)
		}
	}
	loopInv := sys.VGInvocations()
	if batchInv*2 > loopInv {
		t.Errorf("batch spent %d VG invocations vs loop %d; batching should at least halve the cost",
			batchInv, loopInv)
	}
}

// TestEvaluateBatchCancellation: a cancelled batch stops promptly.
func TestEvaluateBatchCancellation(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	var points []map[string]any
	for p1 := 0; p1 <= 48; p1 += 4 {
		points = append(points, map[string]any{
			"current": 26, "purchase1": p1, "purchase2": 48, "feature": 36,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := scn.EvaluateBatch(ctx, points, WithWorlds(2000)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompileErrorCarriesPosition(t *testing.T) {
	sys := demoSystem(t)
	_, err := sys.Compile("DECLARE PARAMETER @p AS RANGE 0 TO 5 STEP BY 1;\nSELECT Gaussian(@p, ;")
	if err == nil {
		t.Fatal("malformed script should not compile")
	}
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not a *CompileError", err)
	}
	if ce.Line != 2 {
		t.Errorf("Line = %d, want 2 (err: %v)", ce.Line, err)
	}
	if ce.Col == 0 {
		t.Errorf("Col = 0, want a position (err: %v)", err)
	}

	// Validation failures (no single source position) still yield a
	// *CompileError, with zero position.
	_, err = sys.Compile("SELECT Gaussian(@undeclared, 1) AS g;")
	if err == nil {
		t.Fatal("undeclared parameter should not compile")
	}
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not a *CompileError", err)
	}
	if ce.Line != 0 {
		t.Errorf("validation error Line = %d, want 0", ce.Line)
	}
}

func TestUnknownParamError(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	var upe *UnknownParamError
	_, err = scn.Evaluate(context.Background(), map[string]any{"nope": 1}, WithWorlds(10))
	if !errors.As(err, &upe) || upe.Name != "nope" {
		t.Errorf("Evaluate err = %v, want *UnknownParamError{nope}", err)
	}
	session, err := scn.OpenSession(WithWorlds(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := session.SetParam("bogus", 1); !errors.As(err, &upe) || upe.Name != "bogus" {
		t.Errorf("SetParam err = %v, want *UnknownParamError{bogus}", err)
	}
	if _, err := scn.GeneratedSQL(map[string]any{"ghost": 3}); !errors.As(err, &upe) || upe.Name != "ghost" {
		t.Errorf("GeneratedSQL err = %v, want *UnknownParamError{ghost}", err)
	}
}

func TestDeterminismError(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = sys.RegisterVG("Flaky", 0, func(seed uint64, args []float64) (float64, error) {
		calls++
		return float64(calls), nil // ignores the seed: nondeterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	var de *DeterminismError
	if err := sys.CheckDeterminism("Flaky", 1, nil); !errors.As(err, &de) || de.Func != "Flaky" {
		t.Errorf("err = %v, want *DeterminismError{Flaky}", err)
	}
}

// TestConfigShim: the deprecated Config struct still works through
// WithConfig while call sites migrate.
func TestConfigShim(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := scn.Evaluate(context.Background(),
		map[string]any{"current": 5, "purchase1": 16, "purchase2": 32, "feature": 36},
		WithConfig(Config{Worlds: 40, DisableReuse: true}))
	if err != nil {
		t.Fatal(err)
	}
	if sum["demand"].N != 40 {
		t.Errorf("N = %d, want the shimmed world count 40", sum["demand"].N)
	}

	// The shim composes: its zero fields must not clobber options applied
	// before it.
	sum, err = scn.Evaluate(context.Background(),
		map[string]any{"current": 5, "purchase1": 16, "purchase2": 32, "feature": 36},
		WithWorlds(25), WithConfig(Config{DisableReuse: true}))
	if err != nil {
		t.Fatal(err)
	}
	if sum["demand"].N != 25 {
		t.Errorf("N = %d; WithConfig's zero Worlds clobbered WithWorlds(25)", sum["demand"].N)
	}
}

// TestAsciiCarriesCIAndSecondAxis: the chart round-trip keeps the CI band
// and the y2 placement (it used to drop both).
func TestAsciiCarriesCIAndSecondAxis(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := scn.OpenSession(WithWorlds(60))
	if err != nil {
		t.Fatal(err)
	}
	g, err := session.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	anyCI := false
	for _, srs := range g.Series {
		for _, ci := range srs.CI95 {
			if ci > 0 {
				anyCI = true
			}
		}
	}
	if !anyCI {
		t.Fatal("render produced no CI95 values; the chart test is vacuous")
	}
	chart, err := session.Ascii(g, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, ":") {
		t.Errorf("chart has no CI band shading:\n%s", chart)
	}
	if !strings.Contains(chart, "(y2)") {
		t.Errorf("chart lost the second-axis placement:\n%s", chart)
	}
}
