package fuzzyprophet

import (
	"context"
	"fmt"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/storage"
)

// EvalOption tunes evaluation: world count, seeding, parallelism and the
// fingerprint-reuse machinery. Options apply to Evaluate, EvaluateBatch,
// OpenSession, OpenSessionFrom and Optimize; an option irrelevant to a call
// (e.g. WithGroupBudget outside Optimize) is ignored.
type EvalOption func(*evalConfig)

// evalConfig is the resolved option set. Zero fields mean "engine default".
type evalConfig struct {
	worlds        int
	seedBase      uint64
	workers       int
	disableReuse  bool
	fpLength      int
	affineTol     float64
	storeBudget   int64
	spillDir      string
	spillBudget   int64
	groupBudget   int
	shards        int
	shardEval     ShardEvaluator
	sketchOnly    bool
	shardWeights  func() []float64
	allowDegraded bool
	// shared, when set by WithReuseCache, is used instead of a private
	// reuse engine.
	shared *mc.Reuse
	// shardInputs, when set by WithShardInputCache, caches self-simulated
	// shard input vectors (worker mode).
	shardInputs *ShardInputCache
}

func newEvalConfig(opts []EvalOption) evalConfig {
	var c evalConfig
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithWorlds sets the Monte Carlo world count per point (default 1000).
func WithWorlds(n int) EvalOption {
	return func(c *evalConfig) { c.worlds = n }
}

// WithSeedBase fixes the world seed sequence (default 20110612, the paper's
// demo week). Changing it changes every sample; reuse state saved under a
// different seed base is rejected on load.
func WithSeedBase(seed uint64) EvalOption {
	return func(c *evalConfig) { c.seedBase = seed }
}

// WithWorkers bounds VG-invocation parallelism (default GOMAXPROCS).
func WithWorkers(n int) EvalOption {
	return func(c *evalConfig) { c.workers = n }
}

// WithoutReuse turns fingerprint reuse off — naive re-simulation, the
// baseline mode for benchmarks.
func WithoutReuse() EvalOption {
	return func(c *evalConfig) { c.disableReuse = true }
}

// WithFingerprintLength sets the fingerprint seed count k (default 16).
func WithFingerprintLength(k int) EvalOption {
	return func(c *evalConfig) { c.fpLength = k }
}

// WithAffineTol sets the relative residual budget for affine mappings
// (default 0.02).
func WithAffineTol(tol float64) EvalOption {
	return func(c *evalConfig) { c.affineTol = tol }
}

// WithStoreBudget bounds the basis-distribution store in bytes (default
// unbounded).
func WithStoreBudget(bytes int64) EvalOption {
	return func(c *evalConfig) { c.storeBudget = bytes }
}

// WithSpillDir enables the out-of-core spill tier for the basis store,
// rooted at dir: bases evicted from the RAM budget are demoted to
// memory-mapped column files there and faulted back on demand as zero-copy
// views, so the basis working set may exceed WithStoreBudget without
// falling back to re-simulation. The directory is created if absent and
// reopened crash-safely (every file is CRC-checked; torn or corrupt files
// are quarantined and their bases re-simulated). Combine with
// WithStoreBudget to size the hot RAM tier; without it nothing ever
// spills, since the RAM tier never evicts.
func WithSpillDir(dir string) EvalOption {
	return func(c *evalConfig) { c.spillDir = dir }
}

// WithSpillBudget bounds the spill tier's disk usage in bytes (default
// unbounded). Over-budget column files are dropped least-recently-used; a
// dropped basis is re-simulated on demand. Ignored without WithSpillDir.
func WithSpillBudget(bytes int64) EvalOption {
	return func(c *evalConfig) { c.spillBudget = bytes }
}

// WithGroupBudget makes Optimize explore only that many randomly sampled
// groups instead of the whole grouped space (the result is then
// approximate; see OptimizeResult.Exhaustive).
func WithGroupBudget(groups int) EvalOption {
	return func(c *evalConfig) { c.groupBudget = groups }
}

// WithShards splits each point's Monte Carlo world range into n contiguous
// shards evaluated concurrently and stitched back in world order (default
// 1: single-range evaluation). World seeds derive per (site, world), so the
// stitched result is bit-identical to the single-range one regardless of
// shard count. Scenarios whose queries fall outside the shardable subset
// (grouped or fallback plans) silently evaluate single-range.
func WithShards(n int) EvalOption {
	return func(c *evalConfig) { c.shards = n }
}

// WithShardEvaluator routes shard evaluations through se — typically
// fpserver's HTTP fan-out to a fleet of shard workers. A shard whose
// evaluator call fails is transparently re-evaluated locally, so worker
// loss degrades throughput, not correctness. With a shard evaluator set,
// fingerprint reuse is bypassed (workers re-derive every sample from
// per-(site, world) seeds). Combine with WithShards to control how many
// shards each render fans out.
func WithShardEvaluator(se ShardEvaluator) EvalOption {
	return func(c *evalConfig) { c.shardEval = se }
}

// WithSketchOnly makes sharded evaluations return ONLY merged per-column
// sketches (Welford moments + t-digest centroids) instead of per-world
// sample vectors, so each remote shard response is O(compression) bytes
// instead of O(worlds) — wire protocol v2's compressed response mode.
// Summaries read off the sketches: moments (mean, stddev, CI95) are exact,
// quantiles (median, P95) carry the t-digest error bound. Requires a
// shardable scenario plan; other plans silently evaluate single-range with
// full vectors.
func WithSketchOnly() EvalOption {
	return func(c *evalConfig) { c.sketchOnly = true }
}

// WithAllowDegraded opts a caller into degraded results: an evaluation cut
// short by its context deadline returns the sketches merged from the world
// shards completed so far — flagged Degraded with WorldsCompleted — instead
// of a deadline error. Moments over the completed worlds are exact and
// quantiles carry the t-digest error bound, but both describe a smaller
// sample than requested, so confidence intervals are wider. Degradation
// granularity is one shard: if nothing completed, the deadline error is
// returned as usual. Callers that would rather fail than show a partial
// answer simply omit this option (the default).
func WithAllowDegraded() EvalOption {
	return func(c *evalConfig) { c.allowDegraded = true }
}

// WithShardWeights supplies per-shard weights, queried just before each
// point's world-range split: shard i's range is sized proportionally to
// weights()[i] (worker-aware sizing — fpserver's coordinator feeds
// per-worker latency EWMAs and advertised capacities so slow workers get
// small ranges). Only consulted with a shard evaluator set; nil, empty or
// invalid weights fall back to the equal split.
func WithShardWeights(weights func() []float64) EvalOption {
	return func(c *evalConfig) { c.shardWeights = weights }
}

// Config tunes evaluation through a single struct whose zero values mean
// "default".
//
// Deprecated: Config survives only as a migration shim — pass it through
// WithConfig while porting call sites to the equivalent functional options
// (WithWorlds, WithSeedBase, WithWorkers, WithoutReuse,
// WithFingerprintLength, WithAffineTol, WithStoreBudget, WithGroupBudget).
type Config struct {
	// Worlds is the Monte Carlo world count per point (default 1000).
	Worlds int
	// SeedBase fixes the world seed sequence (default 20110612).
	SeedBase uint64
	// Workers bounds VG-invocation parallelism (default GOMAXPROCS).
	Workers int
	// DisableReuse turns fingerprint reuse off (naive re-simulation;
	// baseline mode for benchmarks).
	DisableReuse bool
	// FingerprintLength is the fingerprint seed count k (default 16).
	FingerprintLength int
	// AffineTol is the relative residual budget for affine mappings
	// (default 0.02).
	AffineTol float64
	// StoreBudget bounds the basis-distribution store in bytes (0 =
	// unbounded).
	StoreBudget int64
	// GroupBudget, when positive, makes Optimize explore only that many
	// randomly sampled groups instead of the whole grouped space (the
	// result is then approximate; see OptimizeResult.Exhaustive).
	GroupBudget int
}

// WithConfig applies a legacy Config as one option, so existing call sites
// migrate by wrapping their struct: scn.Evaluate(ctx, pt, WithConfig(cfg)).
// Keeping Config's "zero means default" semantics, zero fields leave the
// option set untouched, so WithConfig composes with other options.
//
// Deprecated: use the individual functional options.
func WithConfig(cfg Config) EvalOption {
	return func(c *evalConfig) {
		if cfg.Worlds != 0 {
			c.worlds = cfg.Worlds
		}
		if cfg.SeedBase != 0 {
			c.seedBase = cfg.SeedBase
		}
		if cfg.Workers != 0 {
			c.workers = cfg.Workers
		}
		if cfg.DisableReuse {
			c.disableReuse = true
		}
		if cfg.FingerprintLength != 0 {
			c.fpLength = cfg.FingerprintLength
		}
		if cfg.AffineTol != 0 {
			c.affineTol = cfg.AffineTol
		}
		if cfg.StoreBudget != 0 {
			c.storeBudget = cfg.StoreBudget
		}
		if cfg.GroupBudget != 0 {
			c.groupBudget = cfg.GroupBudget
		}
	}
}

func (c evalConfig) fingerprint() core.Config {
	fp := core.DefaultConfig()
	if c.fpLength > 0 {
		fp.Length = c.fpLength
	}
	if c.affineTol > 0 {
		fp.AffineTol = c.affineTol
	}
	return fp
}

// storeOptions resolves the basis-store configuration (RAM budget plus the
// optional spill tier).
func (c evalConfig) storeOptions() storage.Options {
	return storage.Options{
		BudgetBytes:      c.storeBudget,
		SpillDir:         c.spillDir,
		SpillBudgetBytes: c.spillBudget,
	}
}

func (c evalConfig) mcOptions() (mc.Options, error) {
	opts := mc.Options{
		Worlds:        c.worlds,
		SeedBase:      c.seedBase,
		Workers:       c.workers,
		Shards:        c.shards,
		SketchOnly:    c.sketchOnly,
		AllowDegraded: c.allowDegraded,
	}
	if c.shardEval != nil {
		opts.Runner = shardRunnerFor(c.shardEval)
		opts.ShardWeights = c.shardWeights
	}
	if c.shardInputs != nil {
		opts.ShardInputs = c.shardInputs.store
	}
	if c.shared != nil {
		opts.Reuse = c.shared
		return opts, nil
	}
	if !c.disableReuse {
		reuse, err := mc.NewReuse(c.fingerprint(), c.storeOptions())
		if err != nil {
			return opts, err
		}
		opts.Reuse = reuse
	}
	return opts, nil
}

// shardRunnerFor adapts the public ShardEvaluator to the executor's
// internal runner signature.
func shardRunnerFor(se ShardEvaluator) mc.ShardRunner {
	return func(ctx context.Context, task mc.ShardTask) (*mc.ShardOutput, error) {
		res, err := se.EvaluateShard(ctx, ShardRequest{
			Point:      fromPoint(task.Point),
			Worlds:     task.Worlds,
			Seed:       task.SeedBase,
			Shard:      WorldShard{Lo: task.Range.Lo, Hi: task.Range.Hi, Index: task.Index},
			SketchOnly: task.SketchOnly,
		})
		if err != nil {
			return nil, err
		}
		if res == nil {
			return nil, fmt.Errorf("fuzzyprophet: shard evaluator returned no result")
		}
		return &mc.ShardOutput{Columns: res.Columns, Sketches: res.Sketches}, nil
	}
}
