package fuzzyprophet

// Render tracing: the public face of internal/obs. A RenderTrace is
// attached to the context passed into Render/Evaluate calls; the Monte
// Carlo executor, the compiled-plan engine and the shard coordinator hang
// stage spans off it. With no trace on the context the instrumented paths
// are nil no-ops (0 allocs — asserted by BenchmarkTraceDisabledOverhead).
//
//	rt := fp.NewRenderTrace()
//	g, err := session.Render(fp.WithTrace(ctx, rt))
//	rt.End()
//	fmt.Print(rt.Format())   // aligned stage/operator breakdown
//	tree := rt.Tree()        // structured span tree (JSON-marshalable)

import (
	"context"
	"time"

	"fuzzyprophet/internal/obs"
)

// TraceNode is one node of a snapshotted span tree: name, start offset and
// duration in microseconds, typed attributes, children. It marshals to the
// same JSON fpserver embeds under ?trace=1.
type TraceNode = obs.Node

// RenderTrace captures one render's span tree across every pipeline stage
// — and, for sharded renders, across worker processes (worker subtrees are
// stitched under the coordinator's shard spans). Safe for the concurrent
// goroutines of a single render; use one RenderTrace per render.
type RenderTrace struct {
	tr *obs.Trace
}

// NewRenderTrace returns an empty trace with a fresh render ID. The root
// span opens immediately; End closes it.
func NewRenderTrace() *RenderTrace {
	return &RenderTrace{tr: obs.New("render", obs.NewID())}
}

// ID returns the trace's render ID — the value fpserver logs and
// propagates to shard workers via the X-FP-Render-ID header.
func (rt *RenderTrace) ID() string {
	if rt == nil {
		return ""
	}
	return rt.tr.ID()
}

// End closes the root span. Tree and Format may be called before End (open
// spans report elapsed time) but totals are only final afterwards.
func (rt *RenderTrace) End() {
	if rt == nil {
		return
	}
	rt.tr.End()
}

// Duration reports the root span's duration (elapsed so far before End).
func (rt *RenderTrace) Duration() time.Duration {
	if rt == nil {
		return 0
	}
	return rt.tr.Duration()
}

// Tree snapshots the span tree. The returned tree is a copy: safe to
// marshal, inspect or retain after further render work.
func (rt *RenderTrace) Tree() *TraceNode {
	if rt == nil {
		return nil
	}
	return rt.tr.Tree()
}

// Format renders the trace as an aligned text tree: identically-named
// sibling spans merged with occurrence counts, durations, percentages of
// the render total, and summed numeric attributes. This is the breakdown
// `fuzzyprophet -explain` prints.
func (rt *RenderTrace) Format() string {
	if rt == nil {
		return ""
	}
	return obs.FormatTree(rt.tr.Tree())
}

// WithTrace returns a context that carries rt's root span; every render or
// evaluation under that context records its stages into rt. A nil rt
// returns ctx unchanged.
func WithTrace(ctx context.Context, rt *RenderTrace) context.Context {
	if rt == nil {
		return ctx
	}
	return obs.With(ctx, rt.tr.Root())
}
