package fuzzyprophet

import (
	"io"
	"time"

	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/storage"
)

// ReuseCache is a standalone fingerprint-reuse engine that can be shared
// across sessions and batch evaluations of the same scenario — the paper's
// Storage Manager lifted to a multi-tenant setting. Every consumer passing
// the cache via WithReuseCache draws from (and contributes to) one basis-
// distribution store and one fingerprint index, so a slider position one
// user explored renders instantly for every other user.
//
// A ReuseCache is safe for concurrent use. All consumers must agree on the
// seed base: the first evaluation binds it, and a consumer configured with
// a different WithSeedBase is rejected on first use.
type ReuseCache struct {
	reuse *mc.Reuse
}

// NewReuseCache creates an empty shared reuse engine. The relevant options
// are WithFingerprintLength, WithAffineTol and WithStoreBudget; others are
// ignored.
func NewReuseCache(opts ...EvalOption) (*ReuseCache, error) {
	cfg := newEvalConfig(opts)
	reuse, err := mc.NewReuse(cfg.fingerprint(), cfg.storeBudget)
	if err != nil {
		return nil, err
	}
	return &ReuseCache{reuse: reuse}, nil
}

// LoadReuseCache reads a snapshot previously written by Save, so a new
// process warm-starts with the basis distributions and fingerprints of an
// old one. WithStoreBudget bounds the restored store; the snapshot's
// fingerprint configuration is restored verbatim. The scenario, models and
// seed base must match the saving process's; a seed-base mismatch is
// detected and reported on first use.
func LoadReuseCache(rd io.Reader, opts ...EvalOption) (*ReuseCache, error) {
	cfg := newEvalConfig(opts)
	reuse, err := mc.LoadReuse(rd, cfg.storeBudget)
	if err != nil {
		return nil, err
	}
	return &ReuseCache{reuse: reuse}, nil
}

// Save serializes the cache (basis distributions plus fingerprint index)
// for a later LoadReuseCache, possibly in another process. Concurrent
// renders are locked out for the duration, so the snapshot is consistent.
func (c *ReuseCache) Save(w io.Writer) error {
	return c.reuse.Save(w)
}

// SaveFile atomically writes the snapshot to path (temp file + rename).
func (c *ReuseCache) SaveFile(path string) error {
	return c.reuse.SaveSnapshot(path)
}

// LoadReuseCacheFile is LoadReuseCache reading from a snapshot file.
func LoadReuseCacheFile(path string, opts ...EvalOption) (*ReuseCache, error) {
	cfg := newEvalConfig(opts)
	reuse, err := mc.LoadSnapshot(path, cfg.storeBudget)
	if err != nil {
		return nil, err
	}
	return &ReuseCache{reuse: reuse}, nil
}

// Counts returns per-outcome site counts ("computed", "cached", "identity",
// "affine") accumulated across every consumer of the cache.
func (c *ReuseCache) Counts() map[string]int {
	out := map[string]int{}
	for k, v := range c.reuse.Counts() {
		out[k.String()] = v
	}
	return out
}

// StoreStats is a snapshot of a basis-distribution store's counters — the
// occupancy and hit/miss/eviction telemetry a metrics endpoint reports.
type StoreStats struct {
	// Entries and UsedBytes describe current occupancy; Budget is the
	// configured bound (0 = unbounded).
	Entries   int   `json:"entries"`
	UsedBytes int64 `json:"used_bytes"`
	Budget    int64 `json:"budget_bytes,omitempty"`
	// Hits/Misses count exact (site, args) lookups; Evicted and Inserted
	// count entry lifecycle events.
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Evicted  int64 `json:"evicted"`
	Inserted int64 `json:"inserted"`
}

// HitRate is Hits / (Hits + Misses), or 0 before any lookup.
func (s StoreStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

func convertStoreStats(st storage.Stats) StoreStats {
	return StoreStats{
		Entries:   st.Entries,
		UsedBytes: st.UsedBytes,
		Budget:    st.Budget,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evicted:   st.Evicted,
		Inserted:  st.Inserted,
	}
}

// StoreStats returns the cache's basis-store counters.
func (c *ReuseCache) StoreStats() StoreStats {
	return convertStoreStats(c.reuse.StoreStats())
}

// StoreStats returns the basis-store counters of the session's reuse
// engine (shared or private). A session with reuse disabled reports zeros.
func (s *Session) StoreStats() StoreStats {
	if s.reuse == nil {
		return StoreStats{}
	}
	return convertStoreStats(s.reuse.StoreStats())
}

// SessionStats are cumulative per-session counters: renders served, their
// summed wall-clock cost, X positions evaluated, and prefetched points.
type SessionStats struct {
	Renders          int64         `json:"renders"`
	RenderElapsed    time.Duration `json:"render_elapsed_ns"`
	PointsRendered   int64         `json:"points_rendered"`
	PrefetchedPoints int64         `json:"prefetched_points"`
}

// SessionStats returns the session's cumulative render/prefetch counters.
func (s *Session) SessionStats() SessionStats {
	st := s.inner.Stats()
	return SessionStats{
		Renders:          st.Renders,
		RenderElapsed:    st.RenderElapsed,
		PointsRendered:   st.PointsRendered,
		PrefetchedPoints: st.PrefetchedPoints,
	}
}

// WithReuseCache makes the evaluation draw from (and contribute to) the
// given shared reuse engine instead of a private one. It overrides
// WithoutReuse, WithFingerprintLength, WithAffineTol and WithStoreBudget —
// those were fixed when the cache was created.
func WithReuseCache(c *ReuseCache) EvalOption {
	return func(cfg *evalConfig) {
		if c != nil {
			cfg.shared = c.reuse
		}
	}
}
