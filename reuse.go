package fuzzyprophet

import (
	"io"
	"time"

	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/storage"
)

// ReuseCache is a standalone fingerprint-reuse engine that can be shared
// across sessions and batch evaluations of the same scenario — the paper's
// Storage Manager lifted to a multi-tenant setting. Every consumer passing
// the cache via WithReuseCache draws from (and contributes to) one basis-
// distribution store and one fingerprint index, so a slider position one
// user explored renders instantly for every other user.
//
// A ReuseCache is safe for concurrent use. All consumers must agree on the
// seed base: the first evaluation binds it, and a consumer configured with
// a different WithSeedBase is rejected on first use.
type ReuseCache struct {
	reuse *mc.Reuse
}

// NewReuseCache creates an empty shared reuse engine. The relevant options
// are WithFingerprintLength, WithAffineTol, WithStoreBudget, WithSpillDir
// and WithSpillBudget; others are ignored. With a spill dir, bases evicted
// from the RAM budget are demoted to memory-mapped column files and
// faulted back on demand — close the cache with Close when done so the
// spill manifest is flushed.
func NewReuseCache(opts ...EvalOption) (*ReuseCache, error) {
	cfg := newEvalConfig(opts)
	reuse, err := mc.NewReuse(cfg.fingerprint(), cfg.storeOptions())
	if err != nil {
		return nil, err
	}
	return &ReuseCache{reuse: reuse}, nil
}

// Close releases the cache's spill tier, if any: live file mappings are
// unmapped and the manifest is flushed. Call it only after in-flight
// renders finish. A no-op for RAM-only caches.
func (c *ReuseCache) Close() error {
	return c.reuse.Close()
}

// LoadReuseCache reads a snapshot previously written by Save, so a new
// process warm-starts with the basis distributions and fingerprints of an
// old one. WithStoreBudget bounds the restored store; the snapshot's
// fingerprint configuration is restored verbatim. The scenario, models and
// seed base must match the saving process's; a seed-base mismatch is
// detected and reported on first use.
func LoadReuseCache(rd io.Reader, opts ...EvalOption) (*ReuseCache, error) {
	cfg := newEvalConfig(opts)
	reuse, err := mc.LoadReuse(rd, cfg.storeOptions())
	if err != nil {
		return nil, err
	}
	return &ReuseCache{reuse: reuse}, nil
}

// Save serializes the cache (basis distributions plus fingerprint index)
// for a later LoadReuseCache, possibly in another process. Concurrent
// renders are locked out for the duration, so the snapshot is consistent.
func (c *ReuseCache) Save(w io.Writer) error {
	return c.reuse.Save(w)
}

// SaveFile atomically writes the snapshot to path (temp file + rename).
func (c *ReuseCache) SaveFile(path string) error {
	return c.reuse.SaveSnapshot(path)
}

// LoadReuseCacheFile is LoadReuseCache reading from a snapshot file. A
// snapshot saved by a spill-enabled cache is a manifest (keys only): load
// it with WithSpillDir pointing at the same directory, or its bases
// degrade to on-demand re-simulation.
func LoadReuseCacheFile(path string, opts ...EvalOption) (*ReuseCache, error) {
	cfg := newEvalConfig(opts)
	reuse, err := mc.LoadSnapshot(path, cfg.storeOptions())
	if err != nil {
		return nil, err
	}
	return &ReuseCache{reuse: reuse}, nil
}

// Counts returns per-outcome site counts ("computed", "cached", "identity",
// "affine") accumulated across every consumer of the cache.
func (c *ReuseCache) Counts() map[string]int {
	out := map[string]int{}
	for k, v := range c.reuse.Counts() {
		out[k.String()] = v
	}
	return out
}

// StoreStats is a snapshot of a basis-distribution store's counters — the
// occupancy and hit/miss/eviction telemetry a metrics endpoint reports.
type StoreStats struct {
	// Entries and UsedBytes describe current occupancy; Budget is the
	// configured bound (0 = unbounded).
	Entries   int   `json:"entries"`
	UsedBytes int64 `json:"used_bytes"`
	Budget    int64 `json:"budget_bytes,omitempty"`
	// Hits/Misses count exact (site, args) lookups; Evicted and Inserted
	// count entry lifecycle events.
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Evicted  int64 `json:"evicted"`
	Inserted int64 `json:"inserted"`
	// Spill-tier telemetry (all zero without WithSpillDir): Demoted counts
	// evictions written out-of-core, Promoted counts bases faulted back as
	// mapped views, SpillErrors counts failed demotions (degraded to plain
	// evictions). SpillEntries/SpillBytes describe disk occupancy under
	// SpillBudget, and Quarantined counts files set aside after failing
	// CRC or size verification.
	Demoted      int64 `json:"demoted,omitempty"`
	Promoted     int64 `json:"promoted,omitempty"`
	SpillErrors  int64 `json:"spill_errors,omitempty"`
	SpillEntries int   `json:"spill_entries,omitempty"`
	SpillBytes   int64 `json:"spill_bytes,omitempty"`
	SpillBudget  int64 `json:"spill_budget_bytes,omitempty"`
	Quarantined  int64 `json:"quarantined,omitempty"`
}

// HitRate is Hits / (Hits + Misses), or 0 before any lookup.
func (s StoreStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

func convertStoreStats(st storage.Stats) StoreStats {
	return StoreStats{
		Entries:      st.Entries,
		UsedBytes:    st.UsedBytes,
		Budget:       st.Budget,
		Hits:         st.Hits,
		Misses:       st.Misses,
		Evicted:      st.Evicted,
		Inserted:     st.Inserted,
		Demoted:      st.Demoted,
		Promoted:     st.Promoted,
		SpillErrors:  st.SpillErrors,
		SpillEntries: st.SpillEntries,
		SpillBytes:   st.SpillBytes,
		SpillBudget:  st.SpillBudget,
		Quarantined:  st.Quarantined,
	}
}

// StoreStats returns the cache's basis-store counters.
func (c *ReuseCache) StoreStats() StoreStats {
	return convertStoreStats(c.reuse.StoreStats())
}

// StoreStats returns the basis-store counters of the session's reuse
// engine (shared or private). A session with reuse disabled reports zeros.
func (s *Session) StoreStats() StoreStats {
	if s.reuse == nil {
		return StoreStats{}
	}
	return convertStoreStats(s.reuse.StoreStats())
}

// SessionStats are cumulative per-session counters: renders served, their
// summed wall-clock cost, X positions evaluated, and prefetched points.
type SessionStats struct {
	Renders          int64         `json:"renders"`
	RenderElapsed    time.Duration `json:"render_elapsed_ns"`
	PointsRendered   int64         `json:"points_rendered"`
	PrefetchedPoints int64         `json:"prefetched_points"`
}

// SessionStats returns the session's cumulative render/prefetch counters.
func (s *Session) SessionStats() SessionStats {
	st := s.inner.Stats()
	return SessionStats{
		Renders:          st.Renders,
		RenderElapsed:    st.RenderElapsed,
		PointsRendered:   st.PointsRendered,
		PrefetchedPoints: st.PrefetchedPoints,
	}
}

// WithReuseCache makes the evaluation draw from (and contribute to) the
// given shared reuse engine instead of a private one. It overrides
// WithoutReuse, WithFingerprintLength, WithAffineTol and WithStoreBudget —
// those were fixed when the cache was created.
func WithReuseCache(c *ReuseCache) EvalOption {
	return func(cfg *evalConfig) {
		if c != nil {
			cfg.shared = c.reuse
		}
	}
}

// ShardInputCache caches self-simulated shard input vectors — worker
// mode's analog of the basis store. A shard worker repeatedly rendering
// the same scenario points serves each (site, args, seed base, world
// range) vector from the cache instead of re-invoking VG-Functions; with a
// spill dir configured, cold vectors spill out-of-core and fault back as
// mapped views. Determinism of per-(site, world) seeds makes a cache hit
// bit-identical to fresh simulation. Safe for concurrent use.
type ShardInputCache struct {
	store *storage.Store
}

// NewShardInputCache creates a shard-input cache. budgetBytes bounds the
// RAM tier (<= 0 unbounded); spillDir, when non-empty, enables the
// out-of-core tier (spillBudgetBytes bounds its disk usage, <= 0
// unbounded).
func NewShardInputCache(budgetBytes int64, spillDir string, spillBudgetBytes int64) (*ShardInputCache, error) {
	store, err := storage.Open(storage.Options{
		BudgetBytes:      budgetBytes,
		SpillDir:         spillDir,
		SpillBudgetBytes: spillBudgetBytes,
	})
	if err != nil {
		return nil, err
	}
	return &ShardInputCache{store: store}, nil
}

// Stats returns the cache's store counters.
func (c *ShardInputCache) Stats() StoreStats {
	return convertStoreStats(c.store.Stats())
}

// Close releases the cache's spill tier, if any.
func (c *ShardInputCache) Close() error { return c.store.Close() }

// WithShardInputCache makes shard evaluations (EvaluateShard, and local
// shard fallbacks without reuse) serve self-simulated input vectors from
// the given cache.
func WithShardInputCache(c *ShardInputCache) EvalOption {
	return func(cfg *evalConfig) {
		if c != nil {
			cfg.shardInputs = c
		}
	}
}
