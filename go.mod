module fuzzyprophet

go 1.24
