// Benchmarks regenerating the paper's figures and performance claims, one
// per experiment in DESIGN.md's index. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: vg/op is the number of VG-Function invocations per
// benchmark iteration — the work the fingerprint technique avoids.
package fuzzyprophet_test

import (
	"context"
	"fmt"
	"testing"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/sqlparser"
)

const benchScenario = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @feature AS SET (12,36,44);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current EXPECT overload WITH bold red, EXPECT capacity WITH blue y2, EXPECT_STDDEV demand WITH orange y2;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.05 AND @purchase1 <= @purchase2
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`

// tinySweep is a reduced grid so one offline sweep fits in a benchmark
// iteration.
const tinySweep = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 24;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 24;
DECLARE PARAMETER @feature AS SET (36);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.05 GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`

func benchSystem(b *testing.B) *fp.System {
	b.Helper()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkFig2_ParseScenario: parsing + compiling the Figure 2 scenario.
func BenchmarkFig2_ParseScenario(b *testing.B) {
	sys := benchSystem(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Compile(benchScenario); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_ParseOnly: the raw parser on Figure 2's text.
func BenchmarkFig2_ParseOnly(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(benchScenario); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_OnlineFirstRender: a cold 53-week render of the Figure 3
// graph (every point simulated).
func BenchmarkFig3_OnlineFirstRender(b *testing.B) {
	sys := benchSystem(b)
	scn, err := sys.Compile(benchScenario)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var inv int64
	for i := 0; i < b.N; i++ {
		session, err := scn.OpenSession(fp.WithWorlds(100))
		if err != nil {
			b.Fatal(err)
		}
		sys.ResetVGInvocations()
		if _, err := session.Render(context.Background()); err != nil {
			b.Fatal(err)
		}
		inv += sys.VGInvocations()
	}
	b.ReportMetric(float64(inv)/float64(b.N), "vg/op")
}

// BenchmarkFig3_AdjustmentRender: re-render after moving @purchase1 one
// grid step in a warm session (the paper's partial re-render claim).
func BenchmarkFig3_AdjustmentRender(b *testing.B) {
	sys := benchSystem(b)
	scn, err := sys.Compile(benchScenario)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var inv int64
	for i := 0; i < b.N; i++ {
		// Fresh session per iteration: warm one slider position outside
		// the timed region, then time the adjusted re-render (the mix of
		// remapped and recomputed weeks the paper demonstrates).
		b.StopTimer()
		session, err := scn.OpenSession(fp.WithWorlds(100))
		if err != nil {
			b.Fatal(err)
		}
		if err := session.SetParam("purchase1", 16); err != nil {
			b.Fatal(err)
		}
		if _, err := session.Render(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := session.SetParam("purchase1", 24); err != nil {
			b.Fatal(err)
		}
		sys.ResetVGInvocations()
		b.StartTimer()
		if _, err := session.Render(context.Background()); err != nil {
			b.Fatal(err)
		}
		inv += sys.VGInvocations()
	}
	b.ReportMetric(float64(inv)/float64(b.N), "vg/op")
}

// BenchmarkFig4_MappingSlice: classifying the 7×7 (purchase1 × purchase2)
// slice of the Capacity model's fingerprint mappings.
func BenchmarkFig4_MappingSlice(b *testing.B) {
	sys := benchSystem(b)
	scn, err := sys.Compile(benchScenario)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration explores the slice fresh (cold reuse engine).
		for p1 := 0; p1 <= 48; p1 += 8 {
			for p2 := 0; p2 <= 48; p2 += 8 {
				if _, err := scn.Evaluate(context.Background(), map[string]any{
					"current": 26, "purchase1": p1, "purchase2": p2, "feature": 36,
				}, fp.WithWorlds(100)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkE1_TimeToFirstGuess_Cold: convergence from scratch.
func BenchmarkE1_TimeToFirstGuess_Cold(b *testing.B) {
	sys := benchSystem(b)
	scn, err := sys.Compile(benchScenario)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		session, err := scn.OpenSession(fp.WithWorlds(200))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := session.TimeToFirstAccurateGuess(context.Background(), 0.1, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_TimeToFirstGuess_Warm: convergence with a warmed basis store.
func BenchmarkE1_TimeToFirstGuess_Warm(b *testing.B) {
	sys := benchSystem(b)
	scn, err := sys.Compile(benchScenario)
	if err != nil {
		b.Fatal(err)
	}
	session, err := scn.OpenSession(fp.WithWorlds(200))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := session.Render(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := session.TimeToFirstAccurateGuess(context.Background(), 0.1, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_AdjustPurchase / BenchmarkE2_AdjustFeature: one adjusted
// re-render, the §3.2 partial-recompute claim under both slider types.
func BenchmarkE2_AdjustPurchase(b *testing.B) {
	benchAdjust(b, "purchase1", []int{16, 24})
}

func BenchmarkE2_AdjustFeature(b *testing.B) {
	benchAdjust(b, "feature", []int{12, 36})
}

func benchAdjust(b *testing.B, param string, positions []int) {
	b.Helper()
	sys := benchSystem(b)
	scn, err := sys.Compile(benchScenario)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var inv int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		session, err := scn.OpenSession(fp.WithWorlds(100))
		if err != nil {
			b.Fatal(err)
		}
		if err := session.SetParam(param, positions[0]); err != nil {
			b.Fatal(err)
		}
		if _, err := session.Render(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := session.SetParam(param, positions[1]); err != nil {
			b.Fatal(err)
		}
		sys.ResetVGInvocations()
		b.StartTimer()
		if _, err := session.Render(context.Background()); err != nil {
			b.Fatal(err)
		}
		inv += sys.VGInvocations()
	}
	b.ReportMetric(float64(inv)/float64(b.N), "vg/op")
}

// BenchmarkE3_OfflineSweep_Naive / _Fingerprint: the §3.3 full-space sweep
// on a reduced grid, with and without reuse.
func BenchmarkE3_OfflineSweep_Naive(b *testing.B) {
	benchSweep(b, true)
}

func BenchmarkE3_OfflineSweep_Fingerprint(b *testing.B) {
	benchSweep(b, false)
}

func benchSweep(b *testing.B, disableReuse bool) {
	b.Helper()
	sys := benchSystem(b)
	scn, err := sys.Compile(tinySweep)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var inv int64
	var hits, misses int64
	for i := 0; i < b.N; i++ {
		sys.ResetVGInvocations()
		opts := []fp.EvalOption{fp.WithWorlds(100)}
		var cache *fp.ReuseCache
		if disableReuse {
			opts = append(opts, fp.WithoutReuse())
		} else {
			// A fresh shared cache per iteration, so the basis-store
			// hit/miss counters measure exactly one sweep.
			if cache, err = fp.NewReuseCache(); err != nil {
				b.Fatal(err)
			}
			opts = append(opts, fp.WithReuseCache(cache))
		}
		if _, err := scn.Optimize(context.Background(), nil, opts...); err != nil {
			b.Fatal(err)
		}
		inv += sys.VGInvocations()
		if cache != nil {
			st := cache.StoreStats()
			hits += st.Hits
			misses += st.Misses
		}
	}
	b.ReportMetric(float64(inv)/float64(b.N), "vg/op")
	if !disableReuse && hits+misses > 0 {
		// The reuse-hit-rate report: what fraction of basis-store lookups
		// were exact hits across the sweep.
		b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit%")
	}
}

// BenchmarkE4_FingerprintLength: the reuse pipeline under different probe
// counts k (the E4 ablation's cost axis).
func BenchmarkE4_FingerprintLength(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sys := benchSystem(b)
			scn, err := sys.Compile(tinySweep)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := scn.Optimize(context.Background(), nil, fp.WithWorlds(200), fp.WithFingerprintLength(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_MarkovAnalyze: fingerprinting all 53 steps of the capacity
// chain and synthesizing the non-Markovian estimators.
func BenchmarkE5_MarkovAnalyze(b *testing.B) {
	cm := models.NewCapacityModel(models.DefaultCapacityConfig())
	cfg := core.DefaultConfig()
	seeds := cfg.Seeds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain := make([][]float64, models.Weeks)
		series := make([][]float64, len(seeds))
		for j, s := range seeds {
			series[j] = cm.Series(s, 16, 32)
		}
		for w := 0; w < models.Weeks; w++ {
			row := make([]float64, len(seeds))
			for j := range seeds {
				row[j] = series[j][w]
			}
			chain[w] = row
		}
		est, err := core.AnalyzeChain(cfg, chain)
		if err != nil {
			b.Fatal(err)
		}
		if est.SkipFraction() == 0 {
			b.Fatal("no skippable regions found")
		}
	}
}

// BenchmarkCore_EvaluatePoint: one scenario point end to end (VG sampling,
// worlds table, Query Generator, SQL execution, collection).
func BenchmarkCore_EvaluatePoint(b *testing.B) {
	sys := benchSystem(b)
	scn, err := sys.Compile(benchScenario)
	if err != nil {
		b.Fatal(err)
	}
	pt := map[string]any{"current": 26, "purchase1": 16, "purchase2": 32, "feature": 36}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scn.Evaluate(context.Background(), pt, fp.WithWorlds(200), fp.WithoutReuse()); err != nil {
			b.Fatal(err)
		}
	}
}
