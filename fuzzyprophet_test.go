package fuzzyprophet

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

// figure2 is the paper's demo scenario.
const figure2 = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current EXPECT overload WITH bold red, EXPECT capacity WITH blue y2, EXPECT_STDDEV demand WITH orange y2;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.01 GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`

func demoSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(WithDemoModels())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCompileAndInspect(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	params := scn.Params()
	if len(params) != 4 || params[0].Name != "current" || len(params[0].Values) != 53 {
		t.Errorf("params = %+v", params)
	}
	if scn.SpaceSize() != 53*14*14*3 {
		t.Errorf("space = %d", scn.SpaceSize())
	}
	cols := scn.OutputColumns()
	if len(cols) != 3 || cols[2] != "overload" {
		t.Errorf("columns = %v", cols)
	}
	sql, err := scn.GeneratedSQL(map[string]any{
		"current": 5, "purchase1": 8, "purchase2": 16, "feature": 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "__worlds") {
		t.Errorf("generated SQL = %s", sql)
	}
}

func TestEvaluateSummaries(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := scn.Evaluate(context.Background(), map[string]any{
		"current": 5, "purchase1": 16, "purchase2": 32, "feature": 36,
	}, WithWorlds(300))
	if err != nil {
		t.Fatal(err)
	}
	demand := sum["demand"]
	if demand.N != 300 {
		t.Errorf("N = %d", demand.N)
	}
	if math.Abs(demand.Mean-41500) > 1000 {
		t.Errorf("demand mean = %g", demand.Mean)
	}
	if demand.StdDev < 800 || demand.StdDev > 2500 {
		t.Errorf("demand stddev = %g", demand.StdDev)
	}
	over := sum["overload"]
	if over.Mean > 0.05 {
		t.Errorf("week-5 overload = %g", over.Mean)
	}
	if demand.Min >= demand.Max || demand.Median <= 0 || demand.P95 <= demand.Median {
		t.Errorf("summary order violated: %+v", demand)
	}
}

func TestRegisterCustomVG(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	err = sys.RegisterVG("Doubler", 1, func(seed uint64, args []float64) (float64, error) {
		return 2 * args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckDeterminism("Doubler", 7, []any{21}); err != nil {
		t.Fatal(err)
	}
	scn, err := sys.Compile(`
DECLARE PARAMETER @x AS RANGE 0 TO 10 STEP BY 1;
SELECT Doubler(@x) AS d;`)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := scn.Evaluate(context.Background(), map[string]any{"x": 4}, WithWorlds(10))
	if err != nil {
		t.Fatal(err)
	}
	if sum["d"].Mean != 8 {
		t.Errorf("Doubler mean = %g", sum["d"].Mean)
	}
}

func TestVGInvocationCounting(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetVGInvocations()
	if _, err := scn.Evaluate(context.Background(), map[string]any{
		"current": 5, "purchase1": 16, "purchase2": 32, "feature": 36,
	}, WithWorlds(50), WithoutReuse()); err != nil {
		t.Fatal(err)
	}
	if got := sys.VGInvocations(); got != 100 { // 2 sites × 50 worlds
		t.Errorf("invocations = %d, want 100", got)
	}
}

func TestSessionFlow(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := scn.OpenSession(WithWorlds(60))
	if err != nil {
		t.Fatal(err)
	}
	if session.Axis() != "current" {
		t.Errorf("axis = %s", session.Axis())
	}
	if err := session.SetParam("purchase1", 12); err != nil {
		t.Fatal(err)
	}
	if err := session.SetParam("purchase1", 13); err == nil {
		t.Error("off-grid value should error")
	}
	g1, err := session.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g1.Stats.Recomputed != 53 {
		t.Errorf("first render stats = %+v", g1.Stats)
	}
	if len(g1.Series) != 3 || !g1.Series[1].SecondAxis {
		t.Errorf("series = %+v", g1.Series)
	}
	// Adjustment re-renders only portions.
	if err := session.SetParam("purchase1", 16); err != nil {
		t.Fatal(err)
	}
	g2, err := session.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g2.Stats.RecomputedFraction() >= 0.75 {
		t.Errorf("recomputed fraction = %g", g2.Stats.RecomputedFraction())
	}
	counts := session.ReuseCounts()
	if counts["identity"] == 0 && counts["cached"] == 0 {
		t.Errorf("reuse counts = %v", counts)
	}
	chart, err := session.Ascii(g2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "EXPECT overload") {
		t.Errorf("chart:\n%s", chart)
	}
	if n, err := session.Prefetch(context.Background(), []string{"purchase2"}, 1); err != nil || n == 0 {
		t.Errorf("prefetch = %d, %v", n, err)
	}
}

func TestSessionWithoutReuseStillWorks(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := scn.OpenSession(WithWorlds(30), WithoutReuse())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	g, err := session.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Without reuse, everything recomputes every time.
	if g.Stats.Recomputed != 53 {
		t.Errorf("no-reuse re-render stats = %+v", g.Stats)
	}
	if len(session.ReuseCounts()) != 0 {
		t.Error("no-reuse session should have empty counts")
	}
}

func TestOptimizeFacade(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(`
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 24;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 24;
DECLARE PARAMETER @feature AS SET (36);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.05 GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;`)
	if err != nil {
		t.Fatal(err)
	}
	var lastDone int
	res, err := scn.Optimize(context.Background(), func(done, total int, pt map[string]any, outcome map[string]string) {
		lastDone = done
		if total != 9*53 {
			t.Errorf("total = %d", total)
		}
	}, WithWorlds(120))
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != res.PointsEvaluated {
		t.Errorf("progress lastDone = %d, points = %d", lastDone, res.PointsEvaluated)
	}
	if len(res.Rows) != 9 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if len(res.Best) == 0 {
		t.Fatal("no best rows")
	}
	if !res.Best[0].Feasible {
		t.Error("best must be feasible")
	}
	if res.ReuseCounts["identity"] == 0 {
		t.Errorf("expected identity reuse in sweep: %v", res.ReuseCounts)
	}
	if _, ok := res.Best[0].Metrics["MAX(EXPECT(overload))"]; !ok {
		t.Errorf("metrics = %v", res.Best[0].Metrics)
	}
	if _, ok := res.Best[0].Group["purchase1"].(int64); !ok {
		t.Errorf("group values should be native int64: %T", res.Best[0].Group["purchase1"])
	}
}

func TestRenderProgressiveFacade(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := scn.OpenSession(WithWorlds(128))
	if err != nil {
		t.Fatal(err)
	}
	var frames []int
	g, err := session.RenderProgressive(context.Background(), 32, func(g *Graph, worlds int) bool {
		frames = append(frames, worlds)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 || frames[0] != 32 || frames[2] != 128 {
		t.Errorf("frames = %v", frames)
	}
	if len(g.Series) != 3 {
		t.Errorf("final frame series = %d", len(g.Series))
	}
}

func TestExplorationMapFacade(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := scn.OpenSession(WithWorlds(20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	out, err := session.ExplorationMap("purchase1", "purchase2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("map missing rendered cell:\n%s", out)
	}
	if _, err := session.ExplorationMap("current", "purchase1"); err == nil {
		t.Error("axis dimension should error")
	}
}

func TestValueConversionErrors(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	type odd struct{}
	if _, err := scn.Evaluate(context.Background(), map[string]any{"current": odd{}}, WithWorlds(10)); err == nil {
		t.Error("unsupported type should error")
	}
	session, err := scn.OpenSession(WithWorlds(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := session.SetParam("purchase1", odd{}); err == nil {
		t.Error("unsupported type should error in SetParam")
	}
}

func TestSessionPersistence(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := scn.OpenSession(WithWorlds(60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.SaveReuse(&buf); err != nil {
		t.Fatal(err)
	}

	// A "new process": the same render is served fully from the loaded
	// state.
	second, err := scn.OpenSessionFrom(&buf, WithWorlds(60))
	if err != nil {
		t.Fatal(err)
	}
	g, err := second.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.Recomputed != 0 || g.Stats.Unchanged != 53 {
		t.Errorf("restored session stats = %+v, want all unchanged", g.Stats)
	}

	// Error paths.
	noReuse, err := scn.OpenSession(WithWorlds(10), WithoutReuse())
	if err != nil {
		t.Fatal(err)
	}
	if err := noReuse.SaveReuse(&bytes.Buffer{}); err == nil {
		t.Error("saving without reuse should error")
	}
	if _, err := scn.OpenSessionFrom(strings.NewReader("junk"), WithWorlds(10)); err == nil {
		t.Error("loading junk should error")
	}
	if _, err := scn.OpenSessionFrom(&bytes.Buffer{}, WithWorlds(10), WithoutReuse()); err == nil {
		t.Error("OpenSessionFrom with reuse disabled should error")
	}
}

func TestCalibratedDemoModels(t *testing.T) {
	// A system with triple the demand growth overloads much earlier.
	fast, err := New(WithCalibratedDemoModels(Calibration{DemandGrowth: 900}))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(WithDemoModels())
	if err != nil {
		t.Fatal(err)
	}
	pt := map[string]any{"current": 26, "purchase1": 48, "purchase2": 48, "feature": 44}
	scnFast, err := fast.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	scnSlow, err := slow.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	sumFast, err := scnFast.Evaluate(context.Background(), pt, WithWorlds(200))
	if err != nil {
		t.Fatal(err)
	}
	sumSlow, err := scnSlow.Evaluate(context.Background(), pt, WithWorlds(200))
	if err != nil {
		t.Fatal(err)
	}
	if sumFast["demand"].Mean <= sumSlow["demand"].Mean+10000 {
		t.Errorf("growth override ineffective: %g vs %g", sumFast["demand"].Mean, sumSlow["demand"].Mean)
	}
	if sumFast["overload"].Mean <= sumSlow["overload"].Mean {
		t.Errorf("faster growth should overload more: %g vs %g",
			sumFast["overload"].Mean, sumSlow["overload"].Mean)
	}
	// Bigger initial capacity removes overload.
	big, err := New(WithCalibratedDemoModels(Calibration{InitialCapacity: 200000}))
	if err != nil {
		t.Fatal(err)
	}
	scnBig, err := big.Compile(figure2)
	if err != nil {
		t.Fatal(err)
	}
	sumBig, err := scnBig.Evaluate(context.Background(), pt, WithWorlds(100))
	if err != nil {
		t.Fatal(err)
	}
	if sumBig["overload"].Mean != 0 {
		t.Errorf("200k-core fleet should never overload at week 26: %g", sumBig["overload"].Mean)
	}
}

func TestOptimizeRequiresStatement(t *testing.T) {
	sys := demoSystem(t)
	scn, err := sys.Compile(`
DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
SELECT Gaussian(@p, 1) AS g;`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scn.Optimize(context.Background(), nil, WithWorlds(10)); err == nil {
		t.Error("missing OPTIMIZE should error")
	}
	if _, err := scn.OpenSession(WithWorlds(10)); err == nil {
		t.Error("missing GRAPH should error")
	}
}
