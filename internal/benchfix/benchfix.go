// Package benchfix holds the shared fixtures for compiling the five
// bundled example scenarios outside their example programs: the VG
// registry (demo models plus the quickstart's OrderVolume) and the
// serverfleet dimension table. Both the engine differential/benchmark
// tests (internal/sqlengine) and the fpbench engine experiment build their
// workloads from here, so the two always measure the same scenarios.
package benchfix

import (
	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

// Registry returns a VG registry able to compile every bundled example
// scenario: the standard distributions, the demo models, and a stand-in
// OrderVolume (the quickstart example registers its own at runtime).
func Registry() (*vg.Registry, error) {
	reg := vg.NewRegistry()
	if err := vg.RegisterBuiltins(reg); err != nil {
		return nil, err
	}
	if err := models.RegisterDefaults(reg); err != nil {
		return nil, err
	}
	err := reg.Register(vg.NewFunc("OrderVolume", 2, func(seed uint64, args []value.Value) (value.Value, error) {
		week, _ := args[0].AsFloat()
		budget, _ := args[1].AsFloat()
		src := rng.New(seed)
		return value.Float(float64(src.Poisson(1800+40*week+2*budget)) * (1 + 0.05*src.Norm())), nil
	}))
	if err != nil {
		return nil, err
	}
	return reg, nil
}

// RegionsTable returns the serverfleet example's static dimension table.
func RegionsTable() (*sqlengine.Table, error) {
	return sqlengine.NewTable("regions",
		[]string{"region", "share", "local_capacity"},
		[][]value.Value{
			{value.Str("us-east"), value.Float(0.40), value.Float(21000)},
			{value.Str("us-west"), value.Float(0.25), value.Float(16500)},
			{value.Str("europe"), value.Float(0.20), value.Float(14000)},
			{value.Str("asia"), value.Float(0.15), value.Float(11500)},
		})
}
