package aggregate

import (
	"math"
	"sync"
	"testing"

	"fuzzyprophet/internal/rng"
)

func TestColumnStatsBasics(t *testing.T) {
	c := NewColumnStats()
	for _, x := range []float64{1, 2, 3, 4, 5} {
		c.Add(x)
	}
	if c.Count() != 5 {
		t.Errorf("count = %d", c.Count())
	}
	if c.Expect() != 3 {
		t.Errorf("expect = %g", c.Expect())
	}
	if math.Abs(c.StdDev()-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %g", c.StdDev())
	}
	if c.Median() != 3 {
		t.Errorf("median = %g", c.Median())
	}
}

func TestColumnStatsProbIndicator(t *testing.T) {
	c := NewColumnStats()
	for i := 0; i < 100; i++ {
		if i < 25 {
			c.Add(1)
		} else {
			c.Add(0)
		}
	}
	if math.Abs(c.Prob()-0.25) > 1e-12 {
		t.Errorf("prob = %g", c.Prob())
	}
}

func TestColumnStatsQuantiles(t *testing.T) {
	c := NewColumnStats()
	s := rng.New(3)
	for i := 0; i < 50000; i++ {
		c.Add(s.Normal(0, 1))
	}
	if math.Abs(c.Median()) > 0.03 {
		t.Errorf("median = %g, want ~0", c.Median())
	}
	if math.Abs(c.P95()-1.6449) > 0.06 {
		t.Errorf("p95 = %g, want ~1.645", c.P95())
	}
}

func TestMetric(t *testing.T) {
	c := NewColumnStats()
	c.AddAll([]float64{0, 1, 1, 0})
	for _, agg := range []string{"EXPECT", "EXPECT_STDDEV", "PROB", "MEDIAN", "P95"} {
		if _, err := c.Metric(agg); err != nil {
			t.Errorf("Metric(%s): %v", agg, err)
		}
	}
	v, _ := c.Metric("EXPECT")
	if v != 0.5 {
		t.Errorf("EXPECT = %g", v)
	}
	if _, err := c.Metric("BOGUS"); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestPointStats(t *testing.T) {
	p := NewPointStats([]string{"demand", "capacity", "overload"})
	if err := p.Add("demand", 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSamples("overload", []float64{1, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("nope", 1); err == nil {
		t.Error("unknown column should error")
	}
	if err := p.AddSamples("nope", nil); err == nil {
		t.Error("unknown column should error")
	}
	c, ok := p.Column("overload")
	if !ok || c.Count() != 4 {
		t.Errorf("column = %v, %v", c, ok)
	}
	if _, ok := p.Column("zzz"); ok {
		t.Error("missing column lookup should fail")
	}
	cols := p.Columns()
	if len(cols) != 3 || cols[0] != "capacity" {
		t.Errorf("columns = %v", cols)
	}
}

func TestConvergence(t *testing.T) {
	p := NewPointStats([]string{"x"})
	if p.Converged(0.1, 10) {
		t.Error("empty aggregator cannot be converged")
	}
	s := rng.New(5)
	for i := 0; i < 5; i++ {
		p.Add("x", s.Normal(100, 1))
	}
	if p.Converged(0.1, 10) {
		t.Error("below minSamples cannot be converged")
	}
	for i := 0; i < 5000; i++ {
		p.Add("x", s.Normal(100, 1))
	}
	if !p.Converged(0.01, 10) {
		t.Error("tight distribution with many samples should converge")
	}
	// A huge-variance column blocks convergence at small eps.
	q := NewPointStats([]string{"y"})
	for i := 0; i < 100; i++ {
		q.Add("y", s.Normal(0, 1000))
	}
	if q.Converged(0.0001, 10) {
		t.Error("noisy column should not converge at tight eps")
	}
}

func TestConcurrentAdds(t *testing.T) {
	p := NewPointStats([]string{"x"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := p.Add("x", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, _ := p.Column("x")
	if c.Count() != 8000 {
		t.Errorf("count = %d", c.Count())
	}
}

// TestColumnStatsMerge: shard-wise folding plus Merge matches a whole-vector
// fold — moments to float tolerance, quantiles within sketch tolerance.
func TestColumnStatsMerge(t *testing.T) {
	s := rng.New(17)
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = s.Normal(5, 2)
	}
	whole := NewColumnStats()
	whole.AddAll(xs)
	for _, shards := range []int{2, 7, 16} {
		var merged *ColumnStats
		chunk := (len(xs) + shards - 1) / shards
		for lo := 0; lo < len(xs); lo += chunk {
			hi := lo + chunk
			if hi > len(xs) {
				hi = len(xs)
			}
			part := NewColumnStats()
			part.AddAll(xs[lo:hi])
			if merged == nil {
				merged = part
			} else {
				merged.Merge(part)
			}
		}
		if merged.Count() != whole.Count() {
			t.Fatalf("%d shards: count = %d, want %d", shards, merged.Count(), whole.Count())
		}
		if math.Abs(merged.Expect()-whole.Expect()) > 1e-9 {
			t.Errorf("%d shards: expect = %g, want %g", shards, merged.Expect(), whole.Expect())
		}
		if math.Abs(merged.StdDev()-whole.StdDev()) > 1e-9 {
			t.Errorf("%d shards: stddev = %g, want %g", shards, merged.StdDev(), whole.StdDev())
		}
		if merged.Moments.Min() != whole.Moments.Min() || merged.Moments.Max() != whole.Moments.Max() {
			t.Errorf("%d shards: min/max mismatch", shards)
		}
		if math.Abs(merged.Median()-whole.Median()) > 0.05 {
			t.Errorf("%d shards: median = %g, want ~%g", shards, merged.Median(), whole.Median())
		}
		if math.Abs(merged.P95()-whole.P95()) > 0.1 {
			t.Errorf("%d shards: p95 = %g, want ~%g", shards, merged.P95(), whole.P95())
		}
	}
}

// TestColumnSketchRoundTrip: serializing a partial aggregate and merging the
// restored form behaves identically to merging the original.
func TestColumnSketchRoundTrip(t *testing.T) {
	s := rng.New(29)
	a, b := NewColumnStats(), NewColumnStats()
	for i := 0; i < 5000; i++ {
		a.Add(s.Normal(0, 1))
		b.Add(s.Normal(3, 1))
	}
	restoredA := a.Sketch().Stats()
	if restoredA.Count() != a.Count() || restoredA.Expect() != a.Expect() || restoredA.StdDev() != a.StdDev() {
		t.Fatal("sketch round-trip changed moments")
	}
	if restoredA.Median() != a.Median() {
		t.Errorf("round-trip median %g != %g", restoredA.Median(), a.Median())
	}

	direct := NewColumnStats()
	direct.Merge(a)
	direct.Merge(b)
	viaSketch := MergeSketches([]ColumnSketch{a.Sketch(), b.Sketch()})
	if viaSketch.Count() != direct.Count() || viaSketch.Expect() != direct.Expect() {
		t.Errorf("sketch merge: count/mean %d/%g, want %d/%g",
			viaSketch.Count(), viaSketch.Expect(), direct.Count(), direct.Expect())
	}
	if math.Abs(viaSketch.Median()-direct.Median()) > 0.05 {
		t.Errorf("sketch merge median %g, want ~%g", viaSketch.Median(), direct.Median())
	}
	if MergeSketches(nil) != nil {
		t.Error("MergeSketches(nil) should be nil")
	}
}
