package aggregate

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzColumnSketchCodec round-trips arbitrary bytes through the ColumnSketch
// wire codec (JSON, as shipped by POST /shard/render responses), restores an
// aggregator, merges it with a clean one built from real samples, and reads
// every derived statistic. The invariant under fuzzing: no input — hostile
// centroid lists, NaN/±Inf moments, empty or duplicated centroids — may
// panic, and for any sketch that restores with finite bounds the quantiles
// it reports must stay inside [Min, Max].
func FuzzColumnSketchCodec(f *testing.F) {
	seed := func(vals ...float64) []byte {
		cs := NewColumnStats()
		cs.AddAll(vals)
		raw, err := json.Marshal(cs.Sketch())
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	f.Add(seed(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	f.Add(seed(0))
	f.Add(seed(-1e150, 1e150, -1e150, 1e150))
	// Hand-built hostile sketches: empty centroids, inverted bounds,
	// negative weights, duplicate zero-distance centroids, and extremes
	// that overflow to ±Inf when merged (JSON itself cannot carry Inf, so
	// overflow during restore/merge is the only way Inf enters a sketch).
	f.Add([]byte(`{"count":5,"mean":1,"m2":4,"min":0,"max":2}`))
	f.Add([]byte(`{"count":3,"mean":1,"m2":-1,"min":9,"max":-9,"compression":200,"centroids":[{"mean":1,"weight":-2}]}`))
	f.Add([]byte(`{"count":1,"mean":0,"m2":0,"min":0,"max":0,"compression":0.001,"centroids":[{"mean":0,"weight":1},{"mean":0,"weight":1}]}`))
	f.Add([]byte(`{"count":4,"mean":1e308,"m2":1e308,"min":-1.7e308,"max":1.7e308,"compression":10,"centroids":[{"mean":-1.7e308,"weight":2},{"mean":1.7e308,"weight":2}]}`))
	f.Add([]byte(`{"count":2,"mean":5,"m2":0,"min":0,"max":2,"compression":200,"centroids":[{"mean":100,"weight":1}]}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var sk ColumnSketch
		if err := json.Unmarshal(raw, &sk); err != nil {
			t.Skip()
		}
		cs := sk.Stats()

		// Re-serialize and restore again: the second generation must not
		// panic either (serialize → merge → deserialize is the shard
		// coordinator's steady-state loop). Re-marshal MAY fail — a sketch
		// whose restored state overflowed to ±Inf has no JSON form — but
		// never panic.
		merged := MergeSketches([]ColumnSketch{sk, cs.Sketch()})
		if raw2, err := json.Marshal(cs.Sketch()); err == nil {
			var sk2 ColumnSketch
			if err := json.Unmarshal(raw2, &sk2); err != nil {
				t.Fatalf("re-unmarshal of our own serialization: %v", err)
			}
			merged = MergeSketches([]ColumnSketch{sk, sk2})
		}

		clean := NewColumnStats()
		clean.AddAll([]float64{-3, -1, 0, 1, 3})
		clean.Merge(cs)

		for _, c := range []*ColumnStats{cs, merged, clean} {
			if c == nil {
				continue
			}
			c.Expect()
			c.StdDev()
			c.CI95()
			// The digest's own repaired envelope: Quantile(0)/Quantile(1)
			// read the (re-clamped) min and max. When that envelope is
			// finite, no interior quantile may escape it — a corrupt sketch
			// must not invent values outside the centroid envelope.
			lo, errLo := c.Quantile(0)
			hi, errHi := c.Quantile(1)
			bounded := errLo == nil && errHi == nil &&
				!math.IsNaN(lo) && !math.IsNaN(hi) &&
				!math.IsInf(lo, 0) && !math.IsInf(hi, 0) && lo <= hi
			for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
				v, err := c.Quantile(q)
				if err != nil {
					continue
				}
				if bounded && (math.IsNaN(v) || v < lo || v > hi) {
					t.Fatalf("quantile %g = %v escapes [%v, %v] (sketch %s)", q, v, lo, hi, raw)
				}
			}
		}
	})
}
