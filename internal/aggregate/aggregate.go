// Package aggregate implements Fuzzy Prophet's Result Aggregator (paper §2,
// architecture cycle step 4): it reduces per-world query outputs to the
// metrics scenarios ask for — expectations, standard deviations, overload
// probabilities, quantiles — and decides when an estimate has converged
// enough to show the user (the online mode's "accurate guess").
package aggregate

import (
	"fmt"
	"sort"
	"sync"

	"fuzzyprophet/internal/stats"
)

// ColumnStats aggregates the samples of one output column at one parameter
// point.
type ColumnStats struct {
	Moments stats.Moments
	median  *stats.P2Quantile
	p95     *stats.P2Quantile
}

// NewColumnStats returns an empty aggregator.
func NewColumnStats() *ColumnStats {
	med, err := stats.NewP2Quantile(0.5)
	if err != nil {
		panic(err) // 0.5 is always valid
	}
	p95, err := stats.NewP2Quantile(0.95)
	if err != nil {
		panic(err)
	}
	return &ColumnStats{median: med, p95: p95}
}

// Add folds in one world's value.
func (c *ColumnStats) Add(x float64) {
	c.Moments.Add(x)
	c.median.Add(x)
	c.p95.Add(x)
}

// AddAll folds in a whole sample vector.
func (c *ColumnStats) AddAll(xs []float64) {
	for _, x := range xs {
		c.Add(x)
	}
}

// Expect returns the estimated expectation (EXPECT in scenario SQL).
func (c *ColumnStats) Expect() float64 { return c.Moments.Mean() }

// StdDev returns the estimated standard deviation (EXPECT_STDDEV).
func (c *ColumnStats) StdDev() float64 { return c.Moments.StdDev() }

// Prob returns the estimated probability, assuming the column is a 0/1
// indicator (PROB); it equals the mean.
func (c *ColumnStats) Prob() float64 { return c.Moments.Mean() }

// Median returns the running median estimate.
func (c *ColumnStats) Median() float64 { return c.median.Value() }

// P95 returns the running 95th-percentile estimate.
func (c *ColumnStats) P95() float64 { return c.p95.Value() }

// Count returns the number of worlds aggregated.
func (c *ColumnStats) Count() int64 { return c.Moments.Count() }

// CI95 returns the 95% confidence half-width of the mean.
func (c *ColumnStats) CI95() float64 { return c.Moments.CI95() }

// Metric extracts the named aggregate: EXPECT, EXPECT_STDDEV or PROB
// (scenario GRAPH items), plus MEDIAN and P95 for diagnostics.
func (c *ColumnStats) Metric(agg string) (float64, error) {
	switch agg {
	case "EXPECT":
		return c.Expect(), nil
	case "EXPECT_STDDEV":
		return c.StdDev(), nil
	case "PROB":
		return c.Prob(), nil
	case "MEDIAN":
		return c.Median(), nil
	case "P95":
		return c.P95(), nil
	default:
		return 0, fmt.Errorf("aggregate: unknown metric %q", agg)
	}
}

// PointStats aggregates all output columns at one parameter point. It is
// safe for concurrent Add from Monte Carlo workers.
type PointStats struct {
	mu   sync.Mutex
	cols map[string]*ColumnStats
}

// NewPointStats returns an aggregator with the given output columns.
func NewPointStats(columns []string) *PointStats {
	p := &PointStats{cols: make(map[string]*ColumnStats, len(columns))}
	for _, c := range columns {
		p.cols[c] = NewColumnStats()
	}
	return p
}

// Add folds one world's value into the named column.
func (p *PointStats) Add(column string, x float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.cols[column]
	if !ok {
		return fmt.Errorf("aggregate: unknown column %q", column)
	}
	c.Add(x)
	return nil
}

// AddSamples folds a whole sample vector into the named column.
func (p *PointStats) AddSamples(column string, xs []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.cols[column]
	if !ok {
		return fmt.Errorf("aggregate: unknown column %q", column)
	}
	c.AddAll(xs)
	return nil
}

// Column returns the named column's aggregator.
func (p *PointStats) Column(name string) (*ColumnStats, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.cols[name]
	return c, ok
}

// Columns returns the column names, sorted.
func (p *PointStats) Columns() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.cols))
	for n := range p.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Converged reports whether every column's 95% CI half-width is within eps
// (relative to max(1, |mean|)), with at least minSamples worlds. This is
// the online mode's "first accurate guess" criterion.
func (p *PointStats) Converged(eps float64, minSamples int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.cols {
		if c.Moments.Count() < minSamples {
			return false
		}
		scale := c.Moments.Mean()
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		if c.Moments.CI95() > eps*scale {
			return false
		}
	}
	return true
}
