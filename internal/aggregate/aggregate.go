// Package aggregate implements Fuzzy Prophet's Result Aggregator (paper §2,
// architecture cycle step 4): it reduces per-world query outputs to the
// metrics scenarios ask for — expectations, standard deviations, overload
// probabilities, quantiles — and decides when an estimate has converged
// enough to show the user (the online mode's "accurate guess").
package aggregate

import (
	"fmt"
	"sort"
	"sync"

	"fuzzyprophet/internal/stats"
)

// ColumnStats aggregates the samples of one output column at one parameter
// point. It is MERGEABLE: two ColumnStats built over disjoint world ranges
// combine with Merge into the statistics of the union — moments via the
// parallel Welford merge, quantiles via the t-digest sketch (which replaced
// the earlier P² estimator precisely because P² markers cannot merge).
// World sharding leans on this: each shard folds its own range, the
// coordinator merges.
type ColumnStats struct {
	Moments stats.Moments
	digest  *stats.TDigest
}

// NewColumnStats returns an empty aggregator.
func NewColumnStats() *ColumnStats {
	return &ColumnStats{digest: stats.NewTDigest(stats.DefaultCompression)}
}

// Add folds in one world's value.
func (c *ColumnStats) Add(x float64) {
	c.Moments.Add(x)
	c.digest.Add(x)
}

// AddAll folds in a whole sample vector.
func (c *ColumnStats) AddAll(xs []float64) {
	for _, x := range xs {
		c.Add(x)
	}
}

// Merge folds another column aggregator into c. Moments merge exactly (up
// to float rounding); quantile estimates merge within the sketch tolerance.
func (c *ColumnStats) Merge(o *ColumnStats) {
	c.Moments.Merge(&o.Moments)
	c.digest.Merge(o.digest)
}

// Expect returns the estimated expectation (EXPECT in scenario SQL).
func (c *ColumnStats) Expect() float64 { return c.Moments.Mean() }

// StdDev returns the estimated standard deviation (EXPECT_STDDEV).
func (c *ColumnStats) StdDev() float64 { return c.Moments.StdDev() }

// Prob returns the estimated probability, assuming the column is a 0/1
// indicator (PROB); it equals the mean.
func (c *ColumnStats) Prob() float64 { return c.Moments.Mean() }

// Median returns the running median estimate.
func (c *ColumnStats) Median() float64 { return c.quantile(0.5) }

// P95 returns the running 95th-percentile estimate.
func (c *ColumnStats) P95() float64 { return c.quantile(0.95) }

// Quantile returns the sketch's q-quantile estimate.
func (c *ColumnStats) Quantile(q float64) (float64, error) {
	return c.digest.Quantile(q)
}

func (c *ColumnStats) quantile(q float64) float64 {
	v, err := c.digest.Quantile(q)
	if err != nil {
		return 0
	}
	return v
}

// Count returns the number of worlds aggregated.
func (c *ColumnStats) Count() int64 { return c.Moments.Count() }

// CI95 returns the 95% confidence half-width of the mean.
func (c *ColumnStats) CI95() float64 { return c.Moments.CI95() }

// Metric extracts the named aggregate: EXPECT, EXPECT_STDDEV or PROB
// (scenario GRAPH items), plus MEDIAN and P95 for diagnostics.
func (c *ColumnStats) Metric(agg string) (float64, error) {
	switch agg {
	case "EXPECT":
		return c.Expect(), nil
	case "EXPECT_STDDEV":
		return c.StdDev(), nil
	case "PROB":
		return c.Prob(), nil
	case "MEDIAN":
		return c.Median(), nil
	case "P95":
		return c.P95(), nil
	default:
		return 0, fmt.Errorf("aggregate: unknown metric %q", agg)
	}
}

// ColumnSketch is the serializable form of a ColumnStats: raw Welford
// moments plus the t-digest centroid list. It is what the HTTP shard
// protocol ships — a worker folds its world range into a ColumnStats,
// serializes it with Sketch, and the coordinator restores and merges the
// partial sketches without ever seeing the worker's raw sample vector.
type ColumnSketch struct {
	Count       int64            `json:"count"`
	Mean        float64          `json:"mean"`
	M2          float64          `json:"m2"`
	Min         float64          `json:"min"`
	Max         float64          `json:"max"`
	Compression float64          `json:"compression,omitempty"`
	Centroids   []stats.Centroid `json:"centroids,omitempty"`
}

// Sketch serializes the aggregator's state.
func (c *ColumnStats) Sketch() ColumnSketch {
	n, mean, m2, min, max := c.Moments.State()
	return ColumnSketch{
		Count:       n,
		Mean:        mean,
		M2:          m2,
		Min:         min,
		Max:         max,
		Compression: c.digest.Compression(),
		Centroids:   c.digest.Centroids(),
	}
}

// Stats restores an aggregator from its serialized form. Moments round-trip
// exactly; the digest round-trips its centroid state.
func (sk ColumnSketch) Stats() *ColumnStats {
	compression := sk.Compression
	if compression <= 0 {
		compression = stats.DefaultCompression
	}
	return &ColumnStats{
		Moments: stats.MomentsFromState(sk.Count, sk.Mean, sk.M2, sk.Min, sk.Max),
		digest:  stats.TDigestFromCentroids(compression, sk.Centroids, sk.Min, sk.Max),
	}
}

// MergeSketches merges serialized partial sketches in order (shard 0 first)
// into one aggregator; nil when the list is empty.
func MergeSketches(sketches []ColumnSketch) *ColumnStats {
	var out *ColumnStats
	for _, sk := range sketches {
		cs := sk.Stats()
		if out == nil {
			out = cs
			continue
		}
		out.Merge(cs)
	}
	return out
}

// PointStats aggregates all output columns at one parameter point. It is
// safe for concurrent Add from Monte Carlo workers.
type PointStats struct {
	mu   sync.Mutex
	cols map[string]*ColumnStats
}

// NewPointStats returns an aggregator with the given output columns.
func NewPointStats(columns []string) *PointStats {
	p := &PointStats{cols: make(map[string]*ColumnStats, len(columns))}
	for _, c := range columns {
		p.cols[c] = NewColumnStats()
	}
	return p
}

// Add folds one world's value into the named column.
func (p *PointStats) Add(column string, x float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.cols[column]
	if !ok {
		return fmt.Errorf("aggregate: unknown column %q", column)
	}
	c.Add(x)
	return nil
}

// AddSamples folds a whole sample vector into the named column.
func (p *PointStats) AddSamples(column string, xs []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.cols[column]
	if !ok {
		return fmt.Errorf("aggregate: unknown column %q", column)
	}
	c.AddAll(xs)
	return nil
}

// Column returns the named column's aggregator.
func (p *PointStats) Column(name string) (*ColumnStats, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.cols[name]
	return c, ok
}

// Columns returns the column names, sorted.
func (p *PointStats) Columns() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.cols))
	for n := range p.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Converged reports whether every column's 95% CI half-width is within eps
// (relative to max(1, |mean|)), with at least minSamples worlds. This is
// the online mode's "first accurate guess" criterion.
func (p *PointStats) Converged(eps float64, minSamples int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.cols {
		if c.Moments.Count() < minSamples {
			return false
		}
		scale := c.Moments.Mean()
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		if c.Moments.CI95() > eps*scale {
			return false
		}
	}
	return true
}
