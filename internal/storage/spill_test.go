package storage

import (
	"fmt"
	"testing"
)

// openSpillStore returns a store whose RAM tier fits about `fit` entries of
// 100 samples each, spilling to a temp dir.
func openSpillStore(t *testing.T, fit int) *Store {
	t.Helper()
	perEntry := (&Entry{Site: "s", Key: "k00", Samples: make([]float64, 100)}).bytes()
	s, err := Open(Options{
		BudgetBytes: int64(fit)*perEntry + 10,
		SpillDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func spillVec(seed float64) []float64 {
	out := make([]float64, 100)
	for i := range out {
		out[i] = seed*1000 + float64(i)
	}
	return out
}

func TestSpillDemoteOnEvict(t *testing.T) {
	s := openSpillStore(t, 2)
	for i := 0; i < 5; i++ {
		s.Put("s", fmt.Sprintf("k%02d", i), spillVec(float64(i)))
	}
	st := s.Stats()
	if st.Evicted != 3 || st.Demoted != 3 {
		t.Fatalf("evicted=%d demoted=%d, want 3/3", st.Evicted, st.Demoted)
	}
	if st.SpillEntries != 3 || st.SpillBytes == 0 {
		t.Fatalf("spill occupancy = %d entries / %d bytes", st.SpillEntries, st.SpillBytes)
	}
	// Every key is still addressable, wherever it lives.
	for i := 0; i < 5; i++ {
		if !s.Contains("s", fmt.Sprintf("k%02d", i)) {
			t.Fatalf("key k%02d lost after demotion", i)
		}
	}
}

func TestSpillPromoteOnGet(t *testing.T) {
	s := openSpillStore(t, 2)
	for i := 0; i < 4; i++ {
		s.Put("s", fmt.Sprintf("k%02d", i), spillVec(float64(i)))
	}
	// k00 and k01 were demoted; fault k00 back.
	got, ok := s.Get("s", "k00")
	if !ok {
		t.Fatal("spilled key not faulted back")
	}
	want := spillVec(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
	st := s.Stats()
	if st.Promoted != 1 || st.Hits != 1 {
		t.Fatalf("promoted=%d hits=%d, want 1/1", st.Promoted, st.Hits)
	}
	// The promotion displaced the RAM LRU victim, which was demoted in turn.
	if st.Demoted < 3 {
		t.Fatalf("demoted = %d, want >= 3", st.Demoted)
	}
	// A promoted (on-disk) entry evicts for free: cycle enough keys to push
	// k00 back out and confirm demotions did not double-count it.
	// RAM now holds [k00 (on-disk), k03]. Two more puts evict both: k03
	// costs one demotion, k00 evicts for free (its payload is already on
	// disk), so exactly one demotion total.
	demotedBefore := st.Demoted
	s.Put("s", "k90", spillVec(90))
	s.Put("s", "k91", spillVec(91))
	if after := s.Stats(); after.Demoted != demotedBefore+1 {
		t.Fatalf("on-disk entry re-demoted: demoted went %d -> %d, want +1",
			demotedBefore, after.Demoted)
	}
	if !s.Contains("s", "k00") {
		t.Fatal("k00 lost after free eviction")
	}
}

// TestSpillPutInvalidatesStaleCopy: re-Putting a key that has a spill copy
// must invalidate it — the new vector may be longer (grown world count
// under the same arguments), and serving the short stale copy later would
// silently truncate the basis.
func TestSpillPutInvalidatesStaleCopy(t *testing.T) {
	s := openSpillStore(t, 1)
	s.Put("s", "k00", spillVec(1))
	s.Put("s", "k01", spillVec(2)) // demotes k00
	if st := s.Stats(); st.Demoted != 1 {
		t.Fatalf("setup: demoted = %d", st.Demoted)
	}
	longer := make([]float64, 250)
	for i := range longer {
		longer[i] = float64(i) + 0.5
	}
	s.Put("s", "k00", longer) // must drop the 100-sample spill copy
	s.Put("s", "k02", spillVec(3))
	s.Put("s", "k03", spillVec(4)) // cycles k00 out again
	got, ok := s.Get("s", "k00")
	if !ok {
		t.Fatal("k00 lost")
	}
	if len(got) != 250 || got[249] != 249.5 {
		t.Fatalf("stale spill copy served: len=%d", len(got))
	}
}

// TestSpillSyncAndReopen: Sync + Close + Open over the same dir restores
// every basis from the manifest — the snapshot path for spilled stores.
func TestSpillSyncAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{BudgetBytes: 0, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		s.Put("s", fmt.Sprintf("k%02d", i), spillVec(float64(i)))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if keys := s.SpillKeys(); len(keys) != 6 {
		t.Fatalf("SpillKeys after Sync = %d, want 6", len(keys))
	}
	// Sync leaves the RAM tier intact.
	if s.Len() != 6 {
		t.Fatalf("Sync disturbed RAM tier: len = %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{BudgetBytes: 0, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%02d", i)
		got, ok := re.Get("s", key)
		if !ok {
			t.Fatalf("key %s lost across reopen", key)
		}
		want := spillVec(float64(i))
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("key %s sample %d = %v, want %v", key, j, got[j], want[j])
			}
		}
	}
	if st := re.Stats(); st.Quarantined != 0 {
		t.Fatalf("clean reopen quarantined %d files", st.Quarantined)
	}
}

// TestSnapshotIncludesSpilled: Snapshot materializes spilled-only bases so
// full exports see the complete set.
func TestSnapshotIncludesSpilled(t *testing.T) {
	s := openSpillStore(t, 2)
	for i := 0; i < 5; i++ {
		s.Put("s", fmt.Sprintf("k%02d", i), spillVec(float64(i)))
	}
	snap := s.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d entries, want 5", len(snap))
	}
	seen := map[string]bool{}
	for _, e := range snap {
		seen[e.Key] = true
		if len(e.Samples) != 100 {
			t.Fatalf("entry %s has %d samples", e.Key, len(e.Samples))
		}
	}
	for i := 0; i < 5; i++ {
		if !seen[fmt.Sprintf("k%02d", i)] {
			t.Fatalf("snapshot missing k%02d", i)
		}
	}
}

func TestSpillDropAndClear(t *testing.T) {
	s := openSpillStore(t, 1)
	s.Put("s", "k00", spillVec(1))
	s.Put("s", "k01", spillVec(2)) // k00 demoted
	s.Drop("s", "k00")
	if s.Contains("s", "k00") {
		t.Fatal("Drop missed the spill copy")
	}
	s.Clear()
	st := s.Stats()
	if st.Entries != 0 || st.SpillEntries != 0 || st.SpillBytes != 0 {
		t.Fatalf("Clear left %+v", st)
	}
	if st.Demoted != 0 || st.Hits != 0 {
		t.Fatalf("Clear left counters %+v", st)
	}
}

func TestRAMOnlyStoreHasNoSpill(t *testing.T) {
	s := NewStore(0)
	if s.HasSpill() {
		t.Fatal("NewStore configured a spill tier")
	}
	if keys := s.SpillKeys(); keys != nil {
		t.Fatalf("SpillKeys = %v on RAM-only store", keys)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
