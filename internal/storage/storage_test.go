package storage

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestPutGet(t *testing.T) {
	s := NewStore(0)
	s.Put("site", "k1", []float64{1, 2, 3})
	got, ok := s.Get("site", "k1")
	if !ok || len(got) != 3 || got[0] != 1 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := s.Get("site", "k2"); ok {
		t.Error("missing key should miss")
	}
	if _, ok := s.Get("other", "k1"); ok {
		t.Error("site namespaces must be separate")
	}
}

func TestPutCopies(t *testing.T) {
	s := NewStore(0)
	src := []float64{1, 2}
	s.Put("s", "k", src)
	src[0] = 99
	got, _ := s.Get("s", "k")
	if got[0] != 1 {
		t.Error("Put must copy the samples")
	}
}

func TestReplace(t *testing.T) {
	s := NewStore(0)
	s.Put("s", "k", []float64{1})
	s.Put("s", "k", []float64{2, 3})
	got, _ := s.Get("s", "k")
	if len(got) != 2 || got[0] != 2 {
		t.Errorf("replace failed: %v", got)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestCompositeKeyNoCollision(t *testing.T) {
	s := NewStore(0)
	// "ab"+"c" vs "a"+"bc" must be distinct entries.
	s.Put("ab", "c", []float64{1})
	s.Put("a", "bc", []float64{2})
	if s.Len() != 2 {
		t.Fatalf("len = %d, key collision", s.Len())
	}
	g1, _ := s.Get("ab", "c")
	g2, _ := s.Get("a", "bc")
	if g1[0] != 1 || g2[0] != 2 {
		t.Error("entries crossed")
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget for exactly two entries of 100 samples each.
	perEntry := (&Entry{Site: "s", Key: "a", Samples: make([]float64, 100)}).bytes()
	s := NewStore(2*perEntry + 10)
	samples := make([]float64, 100)
	s.Put("s", "a", samples)
	s.Put("s", "b", samples)
	// Touch "a" so "b" is the LRU victim.
	if _, ok := s.Get("s", "a"); !ok {
		t.Fatal("a should be present")
	}
	s.Put("s", "c", samples)
	if s.Contains("s", "b") {
		t.Error("b should have been evicted")
	}
	if !s.Contains("s", "a") || !s.Contains("s", "c") {
		t.Error("a and c should remain")
	}
	st := s.Stats()
	if st.Evicted != 1 {
		t.Errorf("evicted = %d", st.Evicted)
	}
	if st.UsedBytes > st.Budget {
		t.Errorf("used %d over budget %d", st.UsedBytes, st.Budget)
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 1000; i++ {
		s.Put("s", fmt.Sprintf("k%d", i), make([]float64, 100))
	}
	if s.Len() != 1000 {
		t.Errorf("len = %d", s.Len())
	}
	if s.Stats().Evicted != 0 {
		t.Error("unbounded store must not evict")
	}
}

func TestDropAndClear(t *testing.T) {
	s := NewStore(0)
	s.Put("s", "k", []float64{1})
	s.Drop("s", "k")
	if s.Contains("s", "k") {
		t.Error("Drop failed")
	}
	s.Drop("s", "k") // no-op
	s.Put("s", "a", []float64{1})
	s.Put("s", "b", []float64{1})
	s.Clear()
	if s.Len() != 0 || s.Stats().UsedBytes != 0 {
		t.Error("Clear failed")
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStore(0)
	s.Put("s", "k", []float64{1})
	s.Get("s", "k")
	s.Get("s", "nope")
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserted != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%20)
				s.Put("s", key, []float64{float64(i)})
				s.Get("s", key)
				s.Contains("s", key)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("store empty after concurrent writes")
	}
}

// TestLookupAllocationFree: Get and Contains are the hottest reuse-lookup
// path; the composite key is built in a stack buffer and passed to the map
// as an elided string conversion, so neither call may allocate.
func TestLookupAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	s := NewStore(0)
	s.Put("CapacityModel#1", "(12,36,44)", []float64{1, 2, 3})
	if a := testing.AllocsPerRun(100, func() {
		if _, ok := s.Get("CapacityModel#1", "(12,36,44)"); !ok {
			t.Fatal("entry vanished")
		}
	}); a != 0 {
		t.Errorf("Get allocates %v per call, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		s.Contains("CapacityModel#1", "(12,36,44)")
		s.Contains("CapacityModel#1", "missing")
	}); a != 0 {
		t.Errorf("Contains allocates %v per call, want 0", a)
	}
}

// TestCompositeKeyLongSiteNames: keys longer than the stack buffer still
// encode correctly (the append spills to the heap transparently).
func TestCompositeKeyLongSiteNames(t *testing.T) {
	s := NewStore(0)
	site := strings.Repeat("VeryLongModelName", 8) + "#1"
	key := "(" + strings.Repeat("123456789,", 20) + "0)"
	s.Put(site, key, []float64{42})
	got, ok := s.Get(site, key)
	if !ok || got[0] != 42 {
		t.Fatalf("long-key round trip failed: %v %v", got, ok)
	}
	if !s.Contains(site, key) {
		t.Error("Contains missed long key")
	}
	s.Drop(site, key)
	if s.Contains(site, key) {
		t.Error("Drop missed long key")
	}
}

// TestEntryBytesAccounting pins the byte-accounting formula. The budget
// charge must cover more than the raw payload: the Entry struct, its
// list.Element, both strings (stored once in the Entry and again inside
// the composite index key), the key framing, and the index map's per-entry
// share. The old formula (payload + site + key + 64) undercounted all of
// that, so small-sample workloads blew far past their configured budget.
func TestEntryBytesAccounting(t *testing.T) {
	e := &Entry{Site: "CapacityModel#1", Key: "(12,36,44)", Samples: make([]float64, 100)}
	want := int64(100*8) +
		2*int64(len(e.Site)+len(e.Key)) +
		keyFrameOverhead + mapEntryOverhead +
		int64(unsafe.Sizeof(Entry{})) + int64(unsafe.Sizeof(list.Element{}))
	if got := e.bytes(); got != want {
		t.Fatalf("bytes() = %d, want %d", got, want)
	}
	// Regression guard for the undercount: the charge must exceed the old
	// formula's value for any entry.
	old := int64(len(e.Samples))*8 + int64(len(e.Site)+len(e.Key)) + 64
	if e.bytes() <= old {
		t.Fatalf("bytes() = %d does not exceed the old undercounting formula %d", e.bytes(), old)
	}
	// An empty entry still carries its fixed overhead.
	empty := &Entry{}
	if got := empty.bytes(); got != keyFrameOverhead+mapEntryOverhead+structOverhead {
		t.Fatalf("empty entry bytes() = %d", got)
	}
}

// TestClearResetsStats: Clear must reset the counters along with the
// entries — a cleared store reports like a fresh one. (Previously the
// counters survived Clear, so post-Clear hit rates were computed against
// traffic from before the wipe.)
func TestClearResetsStats(t *testing.T) {
	s := NewStore(0)
	s.Put("s", "k", []float64{1})
	s.Get("s", "k")
	s.Get("s", "nope")
	s.Clear()
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("stats after Clear = %+v, want all zero", st)
	}
}

// TestResetStats zeroes counters without touching entries.
func TestResetStats(t *testing.T) {
	s := NewStore(0)
	s.Put("s", "k", []float64{1, 2})
	s.Get("s", "k")
	s.Get("s", "nope")
	s.ResetStats()
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Inserted != 0 || st.Evicted != 0 {
		t.Fatalf("counters not reset: %+v", st)
	}
	if st.Entries != 1 || st.UsedBytes == 0 {
		t.Fatalf("ResetStats disturbed entries: %+v", st)
	}
	if got, ok := s.Get("s", "k"); !ok || got[0] != 1 {
		t.Fatal("entry lost across ResetStats")
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore(0)
	s.Put("CapacityModel#1", "(12,36,44)", make([]float64, 1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get("CapacityModel#1", "(12,36,44)")
	}
}

func BenchmarkStoreContains(b *testing.B) {
	s := NewStore(0)
	s.Put("CapacityModel#1", "(12,36,44)", make([]float64, 1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains("CapacityModel#1", "(12,36,44)")
	}
}
