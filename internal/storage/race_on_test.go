//go:build race

package storage

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count assertions are skipped
// under -race.
const raceEnabled = true
