// Package storage implements Fuzzy Prophet's Storage Manager: the component
// that "manages the set of basis distributions" (paper §2, architecture
// cycle step 3).
//
// A basis distribution is the Monte Carlo sample vector produced for one
// (call site, argument tuple) during scenario evaluation. The online mode
// correlates new parameter points against these stored bases via
// fingerprints; a hit re-maps the stored samples instead of re-invoking the
// VG-Function.
//
// The store is a two-tier cache. The RAM tier is bounded by a byte budget
// with LRU ordering. Without a spill tier, eviction drops the basis
// (classic bounded cache). With a spill tier configured (Options.SpillDir),
// the RAM tier becomes the hot cache above an out-of-core columnar tier
// (internal/colstore): eviction DEMOTES the basis to a memory-mapped column
// file instead of discarding it, and a Get that misses RAM faults the basis
// back as a zero-copy mapped view — read-only consumers (the reuse
// remapper, the SQL engine's plan kernels) run directly over the mapped
// slice, so a working set far beyond the RAM budget stays one page fault
// away instead of one re-simulation away.
package storage

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"fuzzyprophet/internal/colstore"
)

// KeyRef names one basis by its composite (site, key) address.
type KeyRef = colstore.KeyRef

// Options configures a Store.
type Options struct {
	// BudgetBytes bounds the RAM tier (<= 0 means unbounded).
	BudgetBytes int64
	// SpillDir, when non-empty, enables the out-of-core tier rooted at
	// that directory: evictions demote to memory-mapped column files and
	// misses fault them back. The directory is created if absent and
	// reopened crash-safely (CRC-verified, torn files quarantined).
	SpillDir string
	// SpillBudgetBytes bounds the spill tier's disk usage (<= 0 means
	// unbounded). Over-budget spill files are dropped least-recently-used;
	// a dropped basis is re-simulated on demand.
	SpillBudgetBytes int64
}

// Entry is one stored basis distribution.
type Entry struct {
	// Site identifies the VG call site (e.g. "CapacityModel#1").
	Site string
	// Key canonically encodes the argument tuple the samples were drawn
	// under.
	Key string
	// Samples is the Monte Carlo sample vector (one value per world).
	Samples []float64

	// onDisk marks an entry whose payload already lives in the spill tier
	// (promoted from it, or demoted while remaining resident): evicting it
	// needs no disk write, and its Samples may be a read-only mapped view.
	onDisk bool
}

// Per-entry bookkeeping the byte budget charges beyond the sample payload.
// An entry costs, in addition to its samples:
//
//   - the Entry struct and the list.Element holding it;
//   - the Site and Key strings themselves (their bytes live once, but are
//     referenced from both the Entry and the composite index key, which
//     stores its own copy of both — hence 2×);
//   - the composite index key's framing (string header + length digits and
//     separators) and the index map's per-entry bucket share.
//
// The constants are deliberately simple round numbers — this is cache
// accounting, not a heap profiler — but they are pinned by
// TestEntryBytesAccounting so drift is a conscious choice.
const (
	// mapEntryOverhead approximates the index map's per-entry cost: bucket
	// share, key string header, element pointer.
	mapEntryOverhead = 48
	// keyFrameOverhead covers the composite key's length prefix, separators
	// and allocator slack.
	keyFrameOverhead = 16
	// structOverhead is the Entry struct plus its list.Element.
	structOverhead = int64(unsafe.Sizeof(Entry{})) + int64(unsafe.Sizeof(list.Element{}))
)

func (e *Entry) bytes() int64 {
	return int64(len(e.Samples))*8 +
		2*int64(len(e.Site)+len(e.Key)) +
		keyFrameOverhead + mapEntryOverhead + structOverhead
}

// Store is a bounded, thread-safe basis-distribution store with LRU
// eviction and an optional out-of-core spill tier. The
// hit/miss/eviction/insertion counters are atomic so monitoring can read
// them without contending on the structural lock.
type Store struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List               // front = most recent
	index  map[string]*list.Element // composite key → element
	spill  *colstore.Tier           // nil without a spill tier

	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64
	inserted atomic.Int64
	demoted  atomic.Int64
	promoted atomic.Int64
	// spillErrors counts demotions that failed to write; the entry is then
	// dropped like a plain eviction (a lost cache entry, never bad data).
	spillErrors atomic.Int64
	// demoteNanos/promoteNanos accumulate wall time spent writing spill
	// files on eviction and faulting them back on Get. Render tracing
	// snapshots Stats around a stage and attributes the delta to synthetic
	// spill spans — no per-operation callback, no extra locking.
	demoteNanos  atomic.Int64
	promoteNanos atomic.Int64
}

// NewStore returns a RAM-only store with the given memory budget in bytes.
// A budget of <= 0 means unbounded.
func NewStore(budgetBytes int64) *Store {
	s, err := Open(Options{BudgetBytes: budgetBytes})
	if err != nil {
		// Unreachable: only the spill tier can fail to open.
		panic(err)
	}
	return s
}

// Open returns a store configured by opts, opening (or crash-safely
// reopening) the spill tier when opts.SpillDir is set. Bases already
// spilled under that directory are immediately addressable again.
func Open(opts Options) (*Store, error) {
	s := &Store{
		budget: opts.BudgetBytes,
		order:  list.New(),
		index:  make(map[string]*list.Element),
	}
	if opts.SpillDir != "" {
		tier, err := colstore.OpenTier(opts.SpillDir, opts.SpillBudgetBytes)
		if err != nil {
			return nil, err
		}
		s.spill = tier
	}
	return s, nil
}

// appendCompositeKey appends the unambiguous index encoding of (site, key)
// to dst: the site length in decimal, then the two strings. It replaces
// the earlier fmt.Sprintf on the hottest reuse-lookup path — built into a
// stack buffer and passed to map operations as string(b), Get and Contains
// perform no allocation at all (the compiler elides the conversion for
// map lookups); only Put allocates the key it inserts.
func appendCompositeKey(dst []byte, site, key string) []byte {
	dst = strconv.AppendInt(dst, int64(len(site)), 10)
	dst = append(dst, ':')
	dst = append(dst, site...)
	dst = append(dst, '|')
	dst = append(dst, key...)
	return dst
}

// Put stores (or replaces) the samples for (site, key). The stored slice is
// copied so later caller mutations cannot corrupt the basis. A stale spill
// copy of the same key is invalidated (the new samples may be longer — a
// larger world count under the same arguments).
func (s *Store) Put(site, key string, samples []float64) {
	cp := append([]float64(nil), samples...)
	e := &Entry{Site: site, Key: key, Samples: cp}
	var buf [64]byte
	ck := string(appendCompositeKey(buf[:0], site, key))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spill != nil && s.spill.Contains(site, key) {
		s.spill.Drop(site, key)
	}
	if el, ok := s.index[ck]; ok {
		old := el.Value.(*Entry)
		s.used -= old.bytes()
		el.Value = e
		s.used += e.bytes()
		s.order.MoveToFront(el)
	} else {
		el := s.order.PushFront(e)
		s.index[ck] = el
		s.used += e.bytes()
		s.inserted.Add(1)
	}
	s.evictLocked()
}

// Get returns the samples for (site, key), marking the entry recently used.
// A RAM miss consults the spill tier: a spilled basis is returned as a
// zero-copy mapped view and promoted back into the RAM tier (flagged as
// on-disk, so its later eviction costs nothing). The returned slice is
// shared — and possibly a read-only mapping — so callers must not mutate
// it; mc's consumers never do.
func (s *Store) Get(site, key string) ([]float64, bool) {
	var buf [64]byte
	ck := appendCompositeKey(buf[:0], site, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[string(ck)]; ok {
		s.hits.Add(1)
		s.order.MoveToFront(el)
		return el.Value.(*Entry).Samples, true
	}
	if s.spill != nil {
		t0 := time.Now()
		samples, ok := s.spill.Get(site, key)
		s.promoteNanos.Add(time.Since(t0).Nanoseconds())
		if ok {
			e := &Entry{Site: site, Key: key, Samples: samples, onDisk: true}
			el := s.order.PushFront(e)
			s.index[string(appendCompositeKey(buf[:0], site, key))] = el
			s.used += e.bytes()
			s.promoted.Add(1)
			s.hits.Add(1)
			s.evictLocked()
			return samples, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// Contains reports whether (site, key) is stored in either tier, without
// touching LRU order or mapping any file.
func (s *Store) Contains(site, key string) bool {
	var buf [64]byte
	ck := appendCompositeKey(buf[:0], site, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[string(ck)]; ok {
		return true
	}
	return s.spill != nil && s.spill.Contains(site, key)
}

// Drop removes (site, key) from both tiers if present.
func (s *Store) Drop(site, key string) {
	var buf [64]byte
	ck := appendCompositeKey(buf[:0], site, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[string(ck)]; ok {
		s.removeLocked(el)
	}
	if s.spill != nil {
		s.spill.Drop(site, key)
	}
}

// Clear removes everything from both tiers and resets the counters — after
// Clear, Stats describes an empty store, exactly like a fresh one (see
// Stats). Quarantined spill files are kept on disk for inspection.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.order.Init()
	s.index = make(map[string]*list.Element)
	s.used = 0
	if s.spill != nil {
		s.spill.Clear()
	}
	s.resetStatsLocked()
}

// ResetStats zeroes the hit/miss/eviction/insertion and spill counters
// without touching the stored entries — for monitoring windows that want
// per-interval rates.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetStatsLocked()
}

func (s *Store) resetStatsLocked() {
	s.hits.Store(0)
	s.misses.Store(0)
	s.evicted.Store(0)
	s.inserted.Store(0)
	s.demoted.Store(0)
	s.promoted.Store(0)
	s.spillErrors.Store(0)
	s.demoteNanos.Store(0)
	s.promoteNanos.Store(0)
}

func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*Entry)
	s.order.Remove(el)
	var buf [64]byte
	delete(s.index, string(appendCompositeKey(buf[:0], e.Site, e.Key)))
	s.used -= e.bytes()
}

// evictLocked enforces the RAM budget. With a spill tier, a victim whose
// payload is not yet on disk is demoted (written as a column file) before
// leaving RAM; failures to write count as spillErrors and degrade to a
// plain eviction. Entries already on disk just vanish from RAM.
func (s *Store) evictLocked() {
	if s.budget <= 0 {
		return
	}
	for s.used > s.budget && s.order.Len() > 0 {
		el := s.order.Back()
		e := el.Value.(*Entry)
		if s.spill != nil && !e.onDisk {
			t0 := time.Now()
			err := s.spill.Put(e.Site, e.Key, e.Samples)
			s.demoteNanos.Add(time.Since(t0).Nanoseconds())
			if err != nil {
				s.spillErrors.Add(1)
			} else {
				s.demoted.Add(1)
			}
		}
		s.removeLocked(el)
		s.evicted.Add(1)
	}
}

// Sync demotes every RAM-resident basis whose payload is not yet on disk
// to the spill tier, leaving the RAM tier intact (entries stay resident,
// flagged on-disk). After Sync, the spill tier's manifest addresses the
// complete basis set, which is what snapshot persistence serializes
// instead of the payloads. A no-op without a spill tier.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spill == nil {
		return nil
	}
	var first error
	for el := s.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*Entry)
		if e.onDisk {
			continue
		}
		t0 := time.Now()
		err := s.spill.Put(e.Site, e.Key, e.Samples)
		s.demoteNanos.Add(time.Since(t0).Nanoseconds())
		if err != nil {
			s.spillErrors.Add(1)
			if first == nil {
				first = err
			}
			continue
		}
		s.demoted.Add(1)
		e.onDisk = true
	}
	return first
}

// HasSpill reports whether a spill tier is configured.
func (s *Store) HasSpill() bool { return s.spill != nil }

// SpillKeys returns the keys resident in the spill tier, most recently
// used first (nil without a tier). Combined with Sync, this is the
// manifest form of a snapshot: the payloads stay in their column files.
func (s *Store) SpillKeys() []KeyRef {
	if s.spill == nil {
		return nil
	}
	return s.spill.Keys()
}

// Close releases the spill tier's mappings and flushes its manifest. Views
// previously returned by Get become invalid; the RAM tier is untouched.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spill == nil {
		return nil
	}
	return s.spill.Close()
}

// Stats is a snapshot of store counters. Clear resets every counter along
// with the entries (a cleared store reports like a fresh one); ResetStats
// resets the counters alone.
type Stats struct {
	Entries   int
	UsedBytes int64
	Budget    int64
	Hits      int64
	Misses    int64
	Evicted   int64
	Inserted  int64

	// Spill-tier telemetry (zero without a spill tier). Demoted counts
	// evictions written out as column files; Promoted counts RAM misses
	// served by mapping a spilled basis back in; SpillErrors counts failed
	// demotions (degraded to plain evictions). SpillEntries/SpillBytes/
	// SpillBudget describe current disk occupancy, and Quarantined counts
	// files renamed aside after failing CRC or size verification.
	Demoted      int64
	Promoted     int64
	SpillErrors  int64
	SpillEntries int
	SpillBytes   int64
	SpillBudget  int64
	Quarantined  int64

	// Wall time spent demoting (writing spill files) and promoting
	// (mapping them back). Tracing snapshots these around a render stage
	// and reports the deltas as spill spans.
	DemoteNanos  int64
	PromoteNanos int64
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, used, budget := s.order.Len(), s.used, s.budget
	var ts colstore.TierStats
	if s.spill != nil {
		ts = s.spill.Stats()
	}
	s.mu.Unlock()
	return Stats{
		Entries:      entries,
		UsedBytes:    used,
		Budget:       budget,
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Evicted:      s.evicted.Load(),
		Inserted:     s.inserted.Load(),
		Demoted:      s.demoted.Load(),
		Promoted:     s.promoted.Load(),
		SpillErrors:  s.spillErrors.Load(),
		DemoteNanos:  s.demoteNanos.Load(),
		PromoteNanos: s.promoteNanos.Load(),
		SpillEntries: ts.Entries,
		SpillBytes:   ts.Bytes,
		SpillBudget:  ts.Budget,
		Quarantined:  ts.Quarantined,
	}
}

// Len returns the number of RAM-resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Snapshot returns a copy of every stored entry, most recently used first:
// RAM-resident entries in LRU order, then spilled-only entries (their
// payloads are materialized from the mapped files). Sample slices are
// copied; the snapshot is safe to serialize. Stores with a spill tier
// normally persist via Sync + SpillKeys instead — a manifest operation —
// and use Snapshot only for full exports.
func (s *Store) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, s.order.Len())
	seen := make(map[string]bool, s.order.Len())
	var buf [64]byte
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		out = append(out, Entry{
			Site:    e.Site,
			Key:     e.Key,
			Samples: append([]float64(nil), e.Samples...),
		})
		seen[string(appendCompositeKey(buf[:0], e.Site, e.Key))] = true
	}
	if s.spill != nil {
		for _, kr := range s.spill.Keys() {
			if seen[string(appendCompositeKey(buf[:0], kr.Site, kr.Key))] {
				continue
			}
			if samples, ok := s.spill.Get(kr.Site, kr.Key); ok {
				out = append(out, Entry{
					Site:    kr.Site,
					Key:     kr.Key,
					Samples: append([]float64(nil), samples...),
				})
			}
		}
	}
	return out
}

// Restore inserts the snapshot's entries (least recently used first, so the
// snapshot's recency order is reproduced). Existing entries with the same
// keys are replaced; the budget applies as usual.
func (s *Store) Restore(entries []Entry) {
	for i := len(entries) - 1; i >= 0; i-- {
		s.Put(entries[i].Site, entries[i].Key, entries[i].Samples)
	}
}
