// Package storage implements Fuzzy Prophet's Storage Manager: the component
// that "manages the set of basis distributions" (paper §2, architecture
// cycle step 3).
//
// A basis distribution is the Monte Carlo sample vector produced for one
// (call site, argument tuple) during scenario evaluation. The online mode
// correlates new parameter points against these stored bases via
// fingerprints; a hit re-maps the stored samples instead of re-invoking the
// VG-Function. The store is bounded: entries are evicted least-recently-
// used once the configured memory budget is exceeded.
package storage

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
)

// Entry is one stored basis distribution.
type Entry struct {
	// Site identifies the VG call site (e.g. "CapacityModel#1").
	Site string
	// Key canonically encodes the argument tuple the samples were drawn
	// under.
	Key string
	// Samples is the Monte Carlo sample vector (one value per world).
	Samples []float64
}

func (e *Entry) bytes() int64 {
	// Sample payload plus a small fixed overhead for keys and bookkeeping.
	return int64(len(e.Samples))*8 + int64(len(e.Site)+len(e.Key)) + 64
}

// Store is a bounded, thread-safe basis-distribution store with LRU
// eviction. The hit/miss/eviction/insertion counters are atomic so
// monitoring can read them without contending on the structural lock.
type Store struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List               // front = most recent
	index  map[string]*list.Element // composite key → element

	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64
	inserted atomic.Int64
}

// NewStore returns a store with the given memory budget in bytes. A budget
// of <= 0 means unbounded.
func NewStore(budgetBytes int64) *Store {
	return &Store{
		budget: budgetBytes,
		order:  list.New(),
		index:  make(map[string]*list.Element),
	}
}

// appendCompositeKey appends the unambiguous index encoding of (site, key)
// to dst: the site length in decimal, then the two strings. It replaces
// the earlier fmt.Sprintf on the hottest reuse-lookup path — built into a
// stack buffer and passed to map operations as string(b), Get and Contains
// perform no allocation at all (the compiler elides the conversion for
// map lookups); only Put allocates the key it inserts.
func appendCompositeKey(dst []byte, site, key string) []byte {
	dst = strconv.AppendInt(dst, int64(len(site)), 10)
	dst = append(dst, ':')
	dst = append(dst, site...)
	dst = append(dst, '|')
	dst = append(dst, key...)
	return dst
}

// Put stores (or replaces) the samples for (site, key). The stored slice is
// copied so later caller mutations cannot corrupt the basis.
func (s *Store) Put(site, key string, samples []float64) {
	cp := append([]float64(nil), samples...)
	e := &Entry{Site: site, Key: key, Samples: cp}
	var buf [64]byte
	ck := string(appendCompositeKey(buf[:0], site, key))

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[ck]; ok {
		old := el.Value.(*Entry)
		s.used -= old.bytes()
		el.Value = e
		s.used += e.bytes()
		s.order.MoveToFront(el)
	} else {
		el := s.order.PushFront(e)
		s.index[ck] = el
		s.used += e.bytes()
		s.inserted.Add(1)
	}
	s.evictLocked()
}

// Get returns the samples for (site, key), marking the entry recently used.
// The returned slice is shared; callers must not mutate it.
func (s *Store) Get(site, key string) ([]float64, bool) {
	var buf [64]byte
	ck := appendCompositeKey(buf[:0], site, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[string(ck)]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.order.MoveToFront(el)
	return el.Value.(*Entry).Samples, true
}

// Contains reports whether (site, key) is stored, without touching LRU
// order.
func (s *Store) Contains(site, key string) bool {
	var buf [64]byte
	ck := appendCompositeKey(buf[:0], site, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[string(ck)]
	return ok
}

// Drop removes (site, key) if present.
func (s *Store) Drop(site, key string) {
	var buf [64]byte
	ck := appendCompositeKey(buf[:0], site, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[string(ck)]; ok {
		s.removeLocked(el)
	}
}

// Clear removes everything.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.order.Init()
	s.index = make(map[string]*list.Element)
	s.used = 0
}

func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*Entry)
	s.order.Remove(el)
	var buf [64]byte
	delete(s.index, string(appendCompositeKey(buf[:0], e.Site, e.Key)))
	s.used -= e.bytes()
}

func (s *Store) evictLocked() {
	if s.budget <= 0 {
		return
	}
	for s.used > s.budget && s.order.Len() > 0 {
		el := s.order.Back()
		s.removeLocked(el)
		s.evicted.Add(1)
	}
}

// Stats is a snapshot of store counters.
type Stats struct {
	Entries   int
	UsedBytes int64
	Budget    int64
	Hits      int64
	Misses    int64
	Evicted   int64
	Inserted  int64
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, used, budget := s.order.Len(), s.used, s.budget
	s.mu.Unlock()
	return Stats{
		Entries:   entries,
		UsedBytes: used,
		Budget:    budget,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evicted:   s.evicted.Load(),
		Inserted:  s.inserted.Load(),
	}
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Snapshot returns a copy of every stored entry, most recently used first.
// Sample slices are copied; the snapshot is safe to serialize.
func (s *Store) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		out = append(out, Entry{
			Site:    e.Site,
			Key:     e.Key,
			Samples: append([]float64(nil), e.Samples...),
		})
	}
	return out
}

// Restore inserts the snapshot's entries (least recently used first, so the
// snapshot's recency order is reproduced). Existing entries with the same
// keys are replaced; the budget applies as usual.
func (s *Store) Restore(entries []Entry) {
	for i := len(entries) - 1; i >= 0; i-- {
		s.Put(entries[i].Site, entries[i].Key, entries[i].Samples)
	}
}
