package colstore

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// manifestName is the key→file mapping at the root of a tier directory.
const manifestName = "MANIFEST.json"

// quarantineSuffix marks files that failed verification; they are renamed
// aside (never deleted) so an operator can inspect them.
const quarantineSuffix = ".quarantine"

// KeyRef names one basis by the Storage Manager's composite addressing
// scheme: the VG call site plus the canonical argument-tuple key.
type KeyRef struct {
	Site string `json:"site"`
	Key  string `json:"key"`
}

// manifestEntry is one column file's record in the manifest.
type manifestEntry struct {
	KeyRef
	// File is the column file's name within the tier directory.
	File string `json:"file"`
	// Bytes is the expected file size — a cheap truncation check at reopen,
	// ahead of the CRC verification at first map.
	Bytes int64 `json:"bytes"`
	// Length is the stored value count.
	Length int `json:"length"`
}

// manifest is the serialized form of a tier's key→file mapping.
type manifest struct {
	Version int             `json:"version"`
	Seq     uint64          `json:"seq"`
	Entries []manifestEntry `json:"entries"`
}

// tierEntry is the in-memory state of one spilled column.
type tierEntry struct {
	manifestEntry
	el *list.Element // position in the tier LRU
	m  *Mapped       // open mapping, nil until first Get
}

// TierStats is a snapshot of a tier's occupancy and lifecycle counters.
type TierStats struct {
	// Entries and Bytes describe current disk occupancy; Budget is the
	// configured bound (0 = unbounded).
	Entries int
	Bytes   int64
	Budget  int64
	// Hits/Misses count Get outcomes; Puts counts spills written; Evicted
	// counts files dropped by the disk budget; Quarantined counts files
	// renamed aside after failing verification; Errors counts write/map
	// failures that were absorbed (the tier is a cache — a failed spill
	// loses durability, never correctness).
	Hits        int64
	Misses      int64
	Puts        int64
	Evicted     int64
	Quarantined int64
	Errors      int64
	// PutNanos/GetNanos accumulate wall time spent inside Put and Get
	// (write+fsync+rename and map+verify respectively) so callers can
	// attribute spill-tier cost in render traces without per-call hooks.
	PutNanos int64
	GetNanos int64
}

// Tier is a directory of column files addressed by (site, key): the
// out-of-core half of the Storage Manager. All methods are safe for
// concurrent use. Zero-copy views returned by Get stay valid until Close —
// evicting or replacing an entry retires its mapping instead of unmapping
// it, so long-lived readers (plan kernels mid-render) never fault.
type Tier struct {
	dir    string
	budget int64

	mu      sync.Mutex
	entries map[string]*tierEntry // composite key → entry
	order   *list.List            // front = most recently used
	bytes   int64
	seq     uint64
	retired []*Mapped // mappings kept alive for outstanding views
	stats   TierStats
	closed  bool
}

// compositeKey mirrors the RAM store's unambiguous (site, key) encoding.
func compositeKey(site, key string) string {
	return strconv.Itoa(len(site)) + ":" + site + "|" + key
}

// OpenTier opens (or creates) a spill tier rooted at dir, bounded to
// budgetBytes of column files (<= 0 = unbounded). Reopen is crash-safe:
// manifest entries whose file is missing are dropped, entries whose file
// size disagrees with the manifest are quarantined, temp files from
// interrupted writes and orphan column files (written but never recorded)
// are removed. Payload CRCs are verified lazily, at first map.
func OpenTier(dir string, budgetBytes int64) (*Tier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("colstore: spill dir: %w", err)
	}
	t := &Tier{
		dir:     dir,
		budget:  budgetBytes,
		entries: make(map[string]*tierEntry),
		order:   list.New(),
	}

	var man manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case os.IsNotExist(err):
		// Fresh tier.
	case err != nil:
		return nil, fmt.Errorf("colstore: reading manifest: %w", err)
	default:
		if err := json.Unmarshal(data, &man); err != nil {
			// A torn manifest cannot happen through our temp+rename writes,
			// but defend anyway: start empty, treating every file as orphan.
			man = manifest{}
			t.stats.Errors++
		}
	}
	t.seq = man.Seq

	inManifest := make(map[string]bool, len(man.Entries))
	for _, me := range man.Entries {
		inManifest[me.File] = true
		path := filepath.Join(dir, me.File)
		fi, err := os.Stat(path)
		if err != nil {
			continue // spilled file lost; the basis will be re-simulated
		}
		if fi.Size() != me.Bytes {
			t.quarantineLocked(me.File)
			continue
		}
		e := &tierEntry{manifestEntry: me}
		e.el = t.order.PushBack(e) // manifest order is recency order
		t.entries[compositeKey(me.Site, me.Key)] = e
		t.bytes += me.Bytes
	}

	// Sweep temp files and orphan column files from interrupted writes.
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("colstore: scanning spill dir: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		if name == manifestName || de.IsDir() || strings.HasSuffix(name, quarantineSuffix) {
			continue
		}
		if strings.Contains(name, ".tmp") || (strings.HasSuffix(name, ".col") && !inManifest[name]) {
			os.Remove(filepath.Join(dir, name))
		}
	}
	if err := t.saveManifestLocked(); err != nil {
		return nil, err
	}
	return t, nil
}

// Dir returns the tier's root directory.
func (t *Tier) Dir() string { return t.dir }

// saveManifestLocked writes the manifest atomically (temp + rename),
// recording entries in recency order so reopen reproduces the LRU.
func (t *Tier) saveManifestLocked() error {
	man := manifest{Version: 1, Seq: t.seq, Entries: make([]manifestEntry, 0, t.order.Len())}
	for el := t.order.Front(); el != nil; el = el.Next() {
		man.Entries = append(man.Entries, el.Value.(*tierEntry).manifestEntry)
	}
	data, err := json.Marshal(&man)
	if err != nil {
		return fmt.Errorf("colstore: encoding manifest: %w", err)
	}
	path := filepath.Join(t.dir, manifestName)
	tmp, err := os.CreateTemp(t.dir, manifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("colstore: manifest temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("colstore: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("colstore: closing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("colstore: renaming manifest: %w", err)
	}
	return nil
}

// quarantineLocked renames a failed file aside and counts it.
func (t *Tier) quarantineLocked(file string) {
	os.Rename(filepath.Join(t.dir, file), filepath.Join(t.dir, file+quarantineSuffix))
	t.stats.Quarantined++
}

// removeLocked drops an entry: the file is unlinked, an open mapping is
// retired (views stay valid until Close), and the byte count shrinks.
func (t *Tier) removeLocked(e *tierEntry, unlink bool) {
	t.order.Remove(e.el)
	delete(t.entries, compositeKey(e.Site, e.Key))
	t.bytes -= e.Bytes
	if e.m != nil {
		t.retired = append(t.retired, e.m)
		e.m = nil
	}
	if unlink {
		os.Remove(filepath.Join(t.dir, e.File))
	}
}

// Put spills one basis vector (a float64 column) under (site, key),
// replacing any previous spill of the same key. The write is crash-safe
// (temp + fsync + rename, manifest updated after the file lands); over-
// budget entries are evicted least-recently-used.
func (t *Tier) Put(site, key string, samples []float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := time.Now()
	defer func() { t.stats.PutNanos += time.Since(start).Nanoseconds() }()
	if t.closed {
		return fmt.Errorf("colstore: tier is closed")
	}
	t.seq++
	file := fmt.Sprintf("b%08d.col", t.seq)
	path := filepath.Join(t.dir, file)
	if err := WriteFile(path, &Column{Kind: KindFloat64, Floats: samples}); err != nil {
		t.stats.Errors++
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.stats.Errors++
		return err
	}

	ck := compositeKey(site, key)
	if old, ok := t.entries[ck]; ok {
		t.removeLocked(old, true)
	}
	e := &tierEntry{manifestEntry: manifestEntry{
		KeyRef: KeyRef{Site: site, Key: key},
		File:   file,
		Bytes:  fi.Size(),
		Length: len(samples),
	}}
	e.el = t.order.PushFront(e)
	t.entries[ck] = e
	t.bytes += e.Bytes
	t.stats.Puts++

	if t.budget > 0 {
		for t.bytes > t.budget && t.order.Len() > 0 {
			t.removeLocked(t.order.Back().Value.(*tierEntry), true)
			t.stats.Evicted++
		}
	}
	return t.saveManifestLocked()
}

// Get returns the spilled basis for (site, key) as a zero-copy view of the
// mapped file (little-endian hosts; a verified copy elsewhere). The first
// Get of an entry maps and CRC-verifies its file; verification failure
// quarantines the file and reports a miss, so a corrupt spill degrades to
// re-simulation, never to garbage samples. The view is read-only and valid
// until Close.
func (t *Tier) Get(site, key string) ([]float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := time.Now()
	defer func() { t.stats.GetNanos += time.Since(start).Nanoseconds() }()
	e, ok := t.entries[compositeKey(site, key)]
	if !ok || t.closed {
		t.stats.Misses++
		return nil, false
	}
	if e.m == nil {
		m, err := OpenMapped(filepath.Join(t.dir, e.File))
		if err != nil {
			t.quarantineLocked(e.File)
			t.removeLocked(e, false)
			t.saveManifestLocked()
			t.stats.Misses++
			return nil, false
		}
		if m.Kind() != KindFloat64 {
			m.Close()
			t.quarantineLocked(e.File)
			t.removeLocked(e, false)
			t.saveManifestLocked()
			t.stats.Misses++
			return nil, false
		}
		e.m = m
	}
	fs, err := e.m.Float64s()
	if err != nil {
		t.stats.Misses++
		return nil, false
	}
	t.order.MoveToFront(e.el)
	t.stats.Hits++
	return fs, true
}

// Contains reports whether (site, key) is spilled, without mapping it or
// touching LRU order.
func (t *Tier) Contains(site, key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.entries[compositeKey(site, key)]
	return ok && !t.closed
}

// Drop removes (site, key)'s spill file if present.
func (t *Tier) Drop(site, key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[compositeKey(site, key)]; ok {
		t.removeLocked(e, true)
		t.saveManifestLocked()
	}
}

// Keys returns every spilled (site, key), most recently used first.
func (t *Tier) Keys() []KeyRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]KeyRef, 0, t.order.Len())
	for el := t.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*tierEntry).KeyRef)
	}
	return out
}

// Len returns the number of spilled entries.
func (t *Tier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len()
}

// Stats returns a snapshot of the tier counters.
func (t *Tier) Stats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.Entries = t.order.Len()
	st.Bytes = t.bytes
	st.Budget = t.budget
	return st
}

// Clear removes every spilled file (quarantined files are kept).
func (t *Tier) Clear() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.order.Len() > 0 {
		t.removeLocked(t.order.Back().Value.(*tierEntry), true)
	}
	return t.saveManifestLocked()
}

// Close releases every mapping (live and retired) and flushes the
// manifest. Views handed out by Get become invalid.
func (t *Tier) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var first error
	for el := t.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*tierEntry)
		if e.m != nil {
			if err := e.m.Close(); err != nil && first == nil {
				first = err
			}
			e.m = nil
		}
	}
	for _, m := range t.retired {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.retired = nil
	if err := t.saveManifestLocked(); err != nil && first == nil {
		first = err
	}
	return first
}
