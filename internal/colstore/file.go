package colstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"unsafe"
)

// WriteFile encodes the column and writes it crash-safely: the image goes
// to a temp file in the target directory, is fsynced, and is renamed into
// place — a crash mid-write leaves only a temp file (garbage-collected by
// Tier on reopen), never a torn file under the final name.
func WriteFile(path string, c *Column) error {
	data, err := Encode(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("colstore: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("colstore: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("colstore: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("colstore: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("colstore: renaming into %s: %w", path, err)
	}
	return nil
}

// ReadFile reads and fully verifies a column file, returning copied slices.
func ReadFile(path string) (*Column, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Mapped is a memory-mapped column file serving zero-copy views of its
// value section. The mapping (and every view handed out) stays valid until
// Close; unlinking the underlying file does not invalidate it.
type Mapped struct {
	data []byte
	h    header

	// decoded caches a byte-order-converted copy on big-endian hosts,
	// where the mapped bytes cannot be cast directly.
	decodeOnce sync.Once
	decoded    *Column
}

// OpenMapped maps the column file and verifies both CRCs (one sequential
// pass over the mapped payload — the contents enter the page cache warm).
// On any verification failure the mapping is released and an error
// returned; the caller decides whether to quarantine the file.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < headerSize {
		return nil, fmt.Errorf("colstore: %s is %d bytes, smaller than a header", path, size)
	}
	data, err := mmap(f, size)
	if err != nil {
		return nil, fmt.Errorf("colstore: mapping %s: %w", path, err)
	}
	h, err := parseHeader(data)
	if err == nil {
		err = verifyPayload(h, data)
	}
	if err != nil {
		munmap(data)
		return nil, err
	}
	return &Mapped{data: data, h: h}, nil
}

// Kind returns the column kind.
func (m *Mapped) Kind() Kind { return m.h.kind }

// Len returns the number of values.
func (m *Mapped) Len() int { return m.h.length }

// SizeBytes returns the file (and mapping) size.
func (m *Mapped) SizeBytes() int64 { return m.h.totalSize() }

// HasNulls reports whether the column carries a null bitmap.
func (m *Mapped) HasNulls() bool { return m.h.flags&flagHasNulls != 0 }

// Nulls returns the mapped null bitmap (nil when the column has none).
// Read-only, like every view.
func (m *Mapped) Nulls() []byte {
	if !m.HasNulls() {
		return nil
	}
	return m.data[headerSize+m.h.valueBytes : headerSize+m.h.valueBytes+m.h.nullBytes]
}

// Float64s returns the value vector of a float64 column. On little-endian
// hosts this is a zero-copy view of the mapping (page-aligned, so the cast
// is 8-byte aligned); mutating it is undefined behavior — the pages are
// mapped read-only and a write faults. Valid until Close.
func (m *Mapped) Float64s() ([]float64, error) {
	if m.h.kind != KindFloat64 {
		return nil, fmt.Errorf("colstore: column is %s, not float64", m.h.kind)
	}
	if m.h.length == 0 {
		return nil, nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&m.data[headerSize])), m.h.length), nil
	}
	c, err := m.decode()
	if err != nil {
		return nil, err
	}
	return c.Floats, nil
}

// Int64s is Float64s for int64 columns.
func (m *Mapped) Int64s() ([]int64, error) {
	if m.h.kind != KindInt64 {
		return nil, fmt.Errorf("colstore: column is %s, not int64", m.h.kind)
	}
	if m.h.length == 0 {
		return nil, nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int64)(unsafe.Pointer(&m.data[headerSize])), m.h.length), nil
	}
	c, err := m.decode()
	if err != nil {
		return nil, err
	}
	return c.Ints, nil
}

// Column decodes the mapped file into an owned Column (copying slices) —
// the non-zero-copy accessor for bool/string columns and for callers that
// need to outlive the mapping.
func (m *Mapped) Column() (*Column, error) {
	return Decode(m.data)
}

// decode lazily materializes the byte-order-converted copy (big-endian
// hosts only).
func (m *Mapped) decode() (*Column, error) {
	var err error
	m.decodeOnce.Do(func() {
		m.decoded, err = Decode(m.data)
	})
	if m.decoded == nil && err == nil {
		err = fmt.Errorf("colstore: mapped column failed to decode")
	}
	return m.decoded, err
}

// Close releases the mapping. Every view previously returned becomes
// invalid; accessing one afterwards faults.
func (m *Mapped) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return munmap(data)
}
