//go:build !unix

package colstore

import (
	"io"
	"os"
)

// mmap on platforms without syscall.Mmap falls back to reading the file
// into memory — the same verified views, without the zero-RSS property.
func mmap(f *os.File, size int64) ([]byte, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return data, nil
}

func munmap(data []byte) error { return nil }
