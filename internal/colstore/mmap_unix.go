//go:build unix

package colstore

import (
	"os"
	"syscall"
)

// mmap maps size bytes of f read-only and shared: the kernel page cache
// backs the data, so a basis evicted from the Go heap costs RSS only while
// its pages are hot, and views survive unlinking of the file.
func mmap(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error {
	return syscall.Munmap(data)
}
