// Package colstore is the out-of-core tier of the Storage Manager: a
// memory-mapped columnar file format plus a directory-level spill tier
// (Tier) that the in-RAM basis store demotes cold entries into and faults
// them back from.
//
// One column lives in one file: a page-aligned header (magic, kind,
// length, section sizes, CRC-32C checksums) followed by the value section,
// an optional null bitmap and, for string columns, an offset-addressed
// blob. Fixed-width values are little-endian, so on little-endian hosts a
// mapped file serves zero-copy []float64 / []int64 views that the reuse
// remapper and the SQL engine's plan kernels run over directly — the page
// cache, not the Go heap, holds cold bases.
//
// Crash safety: files are written to a temp name, fsynced and renamed into
// place, so a reader never observes a torn file under its final name; both
// header and payload carry CRCs, and the Tier quarantines (renames aside)
// any file that fails verification instead of serving garbage — a
// quarantined basis is simply re-simulated.
package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"
)

// Kind identifies a column's value type.
type Kind uint32

// Column kinds. The numeric values are part of the on-disk format.
const (
	KindFloat64 Kind = 1
	KindInt64   Kind = 2
	KindBool    Kind = 3
	KindString  Kind = 4
)

func (k Kind) String() string {
	switch k {
	case KindFloat64:
		return "float64"
	case KindInt64:
		return "int64"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint32(k))
	}
}

// valueWidth returns the fixed per-value width of the value section, in
// bytes. String columns store fixed-width uint32 end-offsets into the blob
// section (length+1 of them), so they too have a fixed-width value section.
func (k Kind) valueWidth() int {
	switch k {
	case KindFloat64, KindInt64:
		return 8
	case KindBool:
		return 1
	case KindString:
		return 4
	default:
		return 0
	}
}

// Column is one decoded (or to-be-encoded) column: a typed value vector
// plus an optional null bitmap. Exactly one of the value slices is
// populated, matching Kind; null positions hold the zero value.
type Column struct {
	Kind    Kind
	Floats  []float64
	Ints    []int64
	Bools   []bool
	Strings []string
	// Nulls is a little-endian bitmap (bit i of byte i/8 set = value i is
	// NULL); nil means no nulls.
	Nulls []byte
}

// Len returns the number of values.
func (c *Column) Len() int {
	switch c.Kind {
	case KindFloat64:
		return len(c.Floats)
	case KindInt64:
		return len(c.Ints)
	case KindBool:
		return len(c.Bools)
	case KindString:
		return len(c.Strings)
	default:
		return 0
	}
}

// IsNull reports whether value i is NULL.
func (c *Column) IsNull(i int) bool {
	return i/8 < len(c.Nulls) && c.Nulls[i/8]&(1<<(i%8)) != 0
}

// File format constants.
const (
	// headerSize is one page: the value section starts page-aligned, which
	// both keeps mapped []float64 casts 8-byte aligned and lets the value
	// section start on its own page of the OS page cache.
	headerSize = 4096
	// magic identifies a colstore column file, version 1.
	magic = "FPCOL001"

	// Header field offsets (all little-endian).
	offMagic      = 0  // [8]byte
	offKind       = 8  // uint32
	offFlags      = 12 // uint32
	offLength     = 16 // uint64: number of values
	offValueBytes = 24 // uint64: value-section size
	offNullBytes  = 32 // uint64: null-bitmap size (0 = no nulls)
	offBlobBytes  = 40 // uint64: string-blob size
	offPayloadCRC = 48 // uint32: CRC-32C of value||nulls||blob
	offHeaderCRC  = 52 // uint32: CRC-32C of header bytes [0, offHeaderCRC)

	// flagHasNulls marks a column carrying a null bitmap.
	flagHasNulls = 1 << 0

	// maxLength bounds the value count a header may claim, so a corrupt
	// header cannot drive a multi-terabyte allocation before CRC rejection.
	maxLength = 1 << 40
)

// castagnoli is the CRC-32C table (the iSCSI polynomial, hardware-
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the host's native byte order matches
// the on-disk little-endian format — when true, mapped value sections are
// served as zero-copy typed slices.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// header is the decoded fixed header.
type header struct {
	kind       Kind
	flags      uint32
	length     int
	valueBytes int64
	nullBytes  int64
	blobBytes  int64
	payloadCRC uint32
}

func (h *header) totalSize() int64 {
	return headerSize + h.valueBytes + h.nullBytes + h.blobBytes
}

// nullBitmapSize returns the bitmap size for n values.
func nullBitmapSize(n int) int { return (n + 7) / 8 }

// parseHeader validates and decodes the fixed header against the full file
// size (len(data) when the whole file is in hand).
func parseHeader(data []byte) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, fmt.Errorf("colstore: file too short for header (%d bytes)", len(data))
	}
	if string(data[offMagic:offMagic+8]) != magic {
		return h, fmt.Errorf("colstore: bad magic %q", data[offMagic:offMagic+8])
	}
	if got, want := crc32.Checksum(data[:offHeaderCRC], castagnoli), binary.LittleEndian.Uint32(data[offHeaderCRC:]); got != want {
		return h, fmt.Errorf("colstore: header CRC mismatch (got %08x, want %08x)", got, want)
	}
	h.kind = Kind(binary.LittleEndian.Uint32(data[offKind:]))
	h.flags = binary.LittleEndian.Uint32(data[offFlags:])
	length := binary.LittleEndian.Uint64(data[offLength:])
	h.valueBytes = int64(binary.LittleEndian.Uint64(data[offValueBytes:]))
	h.nullBytes = int64(binary.LittleEndian.Uint64(data[offNullBytes:]))
	h.blobBytes = int64(binary.LittleEndian.Uint64(data[offBlobBytes:]))
	h.payloadCRC = binary.LittleEndian.Uint32(data[offPayloadCRC:])

	w := h.kind.valueWidth()
	if w == 0 {
		return h, fmt.Errorf("colstore: unknown column kind %d", h.kind)
	}
	if length > maxLength {
		return h, fmt.Errorf("colstore: implausible length %d", length)
	}
	h.length = int(length)
	wantValues := int64(h.length) * int64(w)
	if h.kind == KindString {
		wantValues = int64(h.length+1) * int64(w)
	}
	if h.valueBytes != wantValues {
		return h, fmt.Errorf("colstore: value section %d bytes, want %d for %d %s values",
			h.valueBytes, wantValues, h.length, h.kind)
	}
	wantNulls := int64(0)
	if h.flags&flagHasNulls != 0 {
		wantNulls = int64(nullBitmapSize(h.length))
	}
	if h.nullBytes != wantNulls {
		return h, fmt.Errorf("colstore: null bitmap %d bytes, want %d", h.nullBytes, wantNulls)
	}
	if h.kind != KindString && h.blobBytes != 0 {
		return h, fmt.Errorf("colstore: %s column carries a %d-byte blob", h.kind, h.blobBytes)
	}
	if int64(len(data)) != h.totalSize() {
		return h, fmt.Errorf("colstore: file is %d bytes, header describes %d (truncated or padded)",
			len(data), h.totalSize())
	}
	if h.flags&^uint32(flagHasNulls) != 0 {
		return h, fmt.Errorf("colstore: unknown header flags %#x", h.flags)
	}
	// The header page's padding must be zero: the encoding of a column is
	// canonical (one valid byte image per column), which both the fuzz
	// round-trip property and content comparison rely on.
	for _, b := range data[offHeaderCRC+4 : headerSize] {
		if b != 0 {
			return h, fmt.Errorf("colstore: nonzero header padding")
		}
	}
	return h, nil
}

// verifyPayload checks the payload CRC of a parsed file image.
func verifyPayload(h header, data []byte) error {
	if got := crc32.Checksum(data[headerSize:], castagnoli); got != h.payloadCRC {
		return fmt.Errorf("colstore: payload CRC mismatch (got %08x, want %08x)", got, h.payloadCRC)
	}
	return nil
}

// Encode serializes the column into the file-format byte image
// (header + value section + null bitmap + string blob).
func Encode(c *Column) ([]byte, error) {
	w := c.Kind.valueWidth()
	if w == 0 {
		return nil, fmt.Errorf("colstore: cannot encode unknown kind %d", c.Kind)
	}
	n := c.Len()
	if c.Nulls != nil && len(c.Nulls) != nullBitmapSize(n) {
		return nil, fmt.Errorf("colstore: null bitmap is %d bytes, want %d for %d values",
			len(c.Nulls), nullBitmapSize(n), n)
	}
	valueBytes := n * w
	blobBytes := 0
	if c.Kind == KindString {
		valueBytes = (n + 1) * w
		for _, s := range c.Strings {
			blobBytes += len(s)
		}
		if blobBytes > math.MaxUint32 {
			return nil, fmt.Errorf("colstore: string blob %d bytes exceeds the uint32 offset space", blobBytes)
		}
	}
	nullBytes := len(c.Nulls)

	buf := make([]byte, headerSize+valueBytes+nullBytes+blobBytes)
	values := buf[headerSize : headerSize+valueBytes]
	switch c.Kind {
	case KindFloat64:
		for i, f := range c.Floats {
			binary.LittleEndian.PutUint64(values[i*8:], math.Float64bits(f))
		}
	case KindInt64:
		for i, v := range c.Ints {
			binary.LittleEndian.PutUint64(values[i*8:], uint64(v))
		}
	case KindBool:
		for i, b := range c.Bools {
			if b {
				values[i] = 1
			}
		}
	case KindString:
		blob := buf[headerSize+valueBytes+nullBytes:]
		off := 0
		for i, s := range c.Strings {
			copy(blob[off:], s)
			off += len(s)
			binary.LittleEndian.PutUint32(values[(i+1)*4:], uint32(off))
		}
	}
	copy(buf[headerSize+valueBytes:], c.Nulls)

	copy(buf[offMagic:], magic)
	binary.LittleEndian.PutUint32(buf[offKind:], uint32(c.Kind))
	flags := uint32(0)
	if c.Nulls != nil {
		flags |= flagHasNulls
	}
	binary.LittleEndian.PutUint32(buf[offFlags:], flags)
	binary.LittleEndian.PutUint64(buf[offLength:], uint64(n))
	binary.LittleEndian.PutUint64(buf[offValueBytes:], uint64(valueBytes))
	binary.LittleEndian.PutUint64(buf[offNullBytes:], uint64(nullBytes))
	binary.LittleEndian.PutUint64(buf[offBlobBytes:], uint64(blobBytes))
	binary.LittleEndian.PutUint32(buf[offPayloadCRC:], crc32.Checksum(buf[headerSize:], castagnoli))
	binary.LittleEndian.PutUint32(buf[offHeaderCRC:], crc32.Checksum(buf[:offHeaderCRC], castagnoli))
	return buf, nil
}

// Decode parses and verifies a full file image, returning a column whose
// slices are fresh copies (no aliasing of data). Mapped zero-copy access
// goes through Mapped instead.
func Decode(data []byte) (*Column, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if err := verifyPayload(h, data); err != nil {
		return nil, err
	}
	c := &Column{Kind: h.kind}
	values := data[headerSize : headerSize+h.valueBytes]
	switch h.kind {
	case KindFloat64:
		c.Floats = make([]float64, h.length)
		for i := range c.Floats {
			c.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(values[i*8:]))
		}
	case KindInt64:
		c.Ints = make([]int64, h.length)
		for i := range c.Ints {
			c.Ints[i] = int64(binary.LittleEndian.Uint64(values[i*8:]))
		}
	case KindBool:
		c.Bools = make([]bool, h.length)
		for i := range c.Bools {
			if values[i] > 1 {
				return nil, fmt.Errorf("colstore: non-canonical bool byte %#x at %d", values[i], i)
			}
			c.Bools[i] = values[i] == 1
		}
	case KindString:
		blob := data[headerSize+h.valueBytes+h.nullBytes:]
		c.Strings = make([]string, h.length)
		prev := uint32(0)
		if h.length > 0 && binary.LittleEndian.Uint32(values[0:]) != 0 {
			return nil, fmt.Errorf("colstore: string offsets do not start at 0")
		}
		for i := 0; i < h.length; i++ {
			end := binary.LittleEndian.Uint32(values[(i+1)*4:])
			if end < prev || int64(end) > h.blobBytes {
				return nil, fmt.Errorf("colstore: string offset %d out of order or past blob end", end)
			}
			c.Strings[i] = string(blob[prev:end])
			prev = end
		}
		if int64(prev) != h.blobBytes {
			return nil, fmt.Errorf("colstore: string blob has %d trailing bytes", h.blobBytes-int64(prev))
		}
	}
	if h.flags&flagHasNulls != 0 {
		// Non-nil even when empty: Encode keys the flag off Nulls != nil,
		// and canonical round-trips must preserve it.
		c.Nulls = make([]byte, h.nullBytes)
		copy(c.Nulls, data[headerSize+h.valueBytes:])
	}
	return c, nil
}
