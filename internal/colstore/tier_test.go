package colstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustPut(t *testing.T, tier *Tier, site, key string, samples []float64) {
	t.Helper()
	if err := tier.Put(site, key, samples); err != nil {
		t.Fatalf("Put(%s,%s): %v", site, key, err)
	}
}

func vec(seed float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = seed + float64(i)*0.5
	}
	return out
}

func TestTierPutGetRoundTrip(t *testing.T) {
	tier, err := OpenTier(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	want := vec(3, 100)
	mustPut(t, tier, "Site#1", "(7)", want)
	got, ok := tier.Get("Site#1", "(7)")
	if !ok {
		t.Fatal("Get missed a just-spilled key")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, ok := tier.Get("Site#1", "(8)"); ok {
		t.Fatal("Get hit an absent key")
	}
	if !tier.Contains("Site#1", "(7)") || tier.Contains("Other", "(7)") {
		t.Fatal("Contains wrong")
	}
	st := tier.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTierReopenRestoresEntries(t *testing.T) {
	dir := t.TempDir()
	tier, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	vecs := map[string][]float64{}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("(%d)", i)
		vecs[key] = vec(float64(i), 50+i)
		mustPut(t, tier, "S", key, vecs[key])
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 10 {
		t.Fatalf("reopened tier has %d entries, want 10", re.Len())
	}
	for key, want := range vecs {
		got, ok := re.Get("S", key)
		if !ok {
			t.Fatalf("key %s lost across reopen", key)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %s sample %d = %v, want %v", key, i, got[i], want[i])
			}
		}
	}
	if st := re.Stats(); st.Quarantined != 0 {
		t.Fatalf("clean reopen quarantined %d files", st.Quarantined)
	}
}

func TestTierBudgetEvictsLRU(t *testing.T) {
	// Each 64-value file is headerSize+512 bytes; budget fits ~3.
	budget := int64(3 * (headerSize + 512))
	tier, err := OpenTier(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	for i := 0; i < 6; i++ {
		mustPut(t, tier, "S", fmt.Sprintf("(%d)", i), vec(float64(i), 64))
	}
	st := tier.Stats()
	if st.Bytes > budget {
		t.Fatalf("tier holds %d bytes over budget %d", st.Bytes, budget)
	}
	if st.Evicted == 0 {
		t.Fatal("no evictions under a tight budget")
	}
	// Oldest keys evicted first.
	if _, ok := tier.Get("S", "(0)"); ok {
		t.Fatal("LRU key (0) survived")
	}
	if _, ok := tier.Get("S", "(5)"); !ok {
		t.Fatal("most recent key (5) evicted")
	}
}

// TestTierQuarantinesCorruptFile is the crash-safety satellite: a column
// file corrupted mid-payload must be quarantined at first read after
// reopen, turning into a miss (re-simulation) instead of garbage samples.
func TestTierQuarantinesCorruptFile(t *testing.T) {
	dir := t.TempDir()
	tier, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, tier, "S", "good", vec(1, 256))
	mustPut(t, tier, "S", "bad", vec(2, 256))
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit of the "bad" entry's file.
	corrupted := corruptOneEntry(t, dir, "bad")

	re, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Get("S", "bad"); ok {
		t.Fatal("corrupt entry served instead of quarantined")
	}
	st := re.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if _, err := os.Stat(filepath.Join(dir, corrupted+quarantineSuffix)); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The intact entry still reads back perfectly.
	got, ok := re.Get("S", "good")
	if !ok {
		t.Fatal("intact entry lost")
	}
	if got[3] != vec(1, 256)[3] {
		t.Fatal("intact entry corrupted")
	}
	// A second open after quarantine starts clean: the manifest no longer
	// references the quarantined file.
	re.Close()
	re2, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 1 || re2.Stats().Quarantined != 0 {
		t.Fatalf("post-quarantine reopen: len=%d stats=%+v", re2.Len(), re2.Stats())
	}
}

// TestTierQuarantinesTruncatedFile covers the torn-write shape of
// corruption: the manifest size check catches it at reopen, before any map.
func TestTierQuarantinesTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	tier, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, tier, "S", "torn", vec(5, 512))
	tier.Close()

	name := fileForKey(t, dir, "torn")
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data[:headerSize+37], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.Stats(); st.Quarantined != 1 || re.Len() != 0 {
		t.Fatalf("truncated file not quarantined at reopen: len=%d stats=%+v", re.Len(), st)
	}
	if _, ok := re.Get("S", "torn"); ok {
		t.Fatal("truncated entry served")
	}
}

func TestTierSweepsOrphansAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	tier, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, tier, "S", "keep", vec(1, 10))
	tier.Close()

	// Simulate a crash between file rename and manifest write (orphan
	// column file) and mid-write (temp file).
	orphan, err := Encode(&Column{Kind: KindFloat64, Floats: vec(9, 10)})
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "b99999999.col"), orphan, 0o644)
	os.WriteFile(filepath.Join(dir, "b00000002.col.tmp123"), []byte("partial"), 0o644)

	re, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("reopened len = %d, want 1", re.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.Contains(de.Name(), ".tmp") || de.Name() == "b99999999.col" {
			t.Fatalf("stale file %s not swept", de.Name())
		}
	}
}

func TestTierDropAndClear(t *testing.T) {
	dir := t.TempDir()
	tier, err := OpenTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	mustPut(t, tier, "S", "a", vec(1, 8))
	mustPut(t, tier, "S", "b", vec(2, 8))
	tier.Drop("S", "a")
	if tier.Contains("S", "a") || !tier.Contains("S", "b") {
		t.Fatal("Drop wrong")
	}
	if err := tier.Clear(); err != nil {
		t.Fatal(err)
	}
	if tier.Len() != 0 || tier.Stats().Bytes != 0 {
		t.Fatalf("Clear left %d entries, %d bytes", tier.Len(), tier.Stats().Bytes)
	}
	// Only the manifest remains on disk.
	entries, _ := os.ReadDir(dir)
	for _, de := range entries {
		if de.Name() != manifestName {
			t.Fatalf("Clear left %s", de.Name())
		}
	}
}

// TestTierReplaceKeepsOldViewsValid: replacing a key's spill retires the
// old mapping instead of unmapping it, so a view handed out earlier stays
// readable until Close.
func TestTierReplaceKeepsOldViewsValid(t *testing.T) {
	tier, err := OpenTier(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	mustPut(t, tier, "S", "k", vec(1, 64))
	old, ok := tier.Get("S", "k")
	if !ok {
		t.Fatal("miss")
	}
	mustPut(t, tier, "S", "k", vec(100, 128))
	fresh, ok := tier.Get("S", "k")
	if !ok || len(fresh) != 128 || fresh[0] != 100 {
		t.Fatal("replacement not served")
	}
	if old[0] != 1 || len(old) != 64 {
		t.Fatal("old view invalidated by replacement")
	}
}

// corruptOneEntry flips a payload bit in the file backing (S, key) and
// returns its file name.
func corruptOneEntry(t *testing.T, dir, key string) string {
	t.Helper()
	name := fileForKey(t, dir, key)
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+11] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

// fileForKey reads the manifest to find the file backing ("S", key).
func fileForKey(t *testing.T, dir, key string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	for _, e := range man.Entries {
		if e.Key == key {
			return e.File
		}
	}
	t.Fatalf("key %s not in manifest", key)
	return ""
}
