package colstore

import (
	"bytes"
	"testing"
)

// FuzzColumnCodec fuzzes the column-file decoder with arbitrary byte
// images: Decode must never panic or over-allocate, and any image it
// accepts must round-trip canonically (re-encoding the decoded column
// reproduces the accepted bytes exactly — there is exactly one valid
// encoding of any column). The corpus is seeded with every kind, with and
// without null bitmaps, plus a handful of adversarial mutations.
func FuzzColumnCodec(f *testing.F) {
	for _, c := range sampleColumns() {
		data, err := Encode(c)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Seed near-miss mutants so the fuzzer starts at the rejection
		// boundaries instead of random noise.
		for _, i := range []int{0, offKind, offLength, offPayloadCRC, len(data) - 1} {
			mut := append([]byte(nil), data...)
			mut[i] ^= 0xff
			f.Add(mut)
		}
		f.Add(data[:len(data)-1])
	}
	f.Add([]byte(magic))
	f.Add(bytes.Repeat([]byte{0}, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		re, err := Encode(c)
		if err != nil {
			t.Fatalf("decoded column failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("codec not canonical: accepted %d bytes, re-encoded to %d different bytes", len(data), len(re))
		}
		re2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded column failed to decode: %v", err)
		}
		assertColumnsEqual(t, c, re2)
	})
}
