package colstore

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleColumns returns one representative column per kind, with and
// without null bitmaps — the canonical round-trip corpus.
func sampleColumns() []*Column {
	return []*Column{
		{Kind: KindFloat64, Floats: []float64{0, 1.5, -2.25, math.Inf(1), math.Pi}},
		{Kind: KindFloat64, Floats: []float64{0, 3.5, 0}, Nulls: []byte{0b101}},
		{Kind: KindInt64, Ints: []int64{0, -1, math.MaxInt64, math.MinInt64}},
		{Kind: KindInt64, Ints: []int64{7, 0, 9}, Nulls: []byte{0b010}},
		{Kind: KindBool, Bools: []bool{true, false, true, true}},
		{Kind: KindBool, Bools: []bool{false, false}, Nulls: []byte{0b11}},
		{Kind: KindString, Strings: []string{"", "hello", "wörld", "x"}},
		{Kind: KindString, Strings: []string{"a", "", "c"}, Nulls: []byte{0b010}},
		{Kind: KindFloat64, Floats: nil},
		{Kind: KindString, Strings: nil},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i, c := range sampleColumns() {
		data, err := Encode(c)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		assertColumnsEqual(t, c, got)
		// Canonical: re-encoding the decoded column reproduces the bytes.
		data2, err := Encode(got)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if !reflect.DeepEqual(data, data2) {
			t.Errorf("case %d: encoding is not canonical", i)
		}
	}
}

func assertColumnsEqual(t *testing.T, want, got *Column) {
	t.Helper()
	if got.Kind != want.Kind || got.Len() != want.Len() {
		t.Fatalf("kind/len mismatch: got %v/%d, want %v/%d", got.Kind, got.Len(), want.Kind, want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.IsNull(i) != want.IsNull(i) {
			t.Fatalf("null[%d] mismatch", i)
		}
	}
	switch want.Kind {
	case KindFloat64:
		for i := range want.Floats {
			if math.Float64bits(got.Floats[i]) != math.Float64bits(want.Floats[i]) {
				t.Fatalf("float[%d] = %v, want %v", i, got.Floats[i], want.Floats[i])
			}
		}
	case KindInt64:
		if !reflect.DeepEqual(noNilSliceInt(got.Ints), noNilSliceInt(want.Ints)) {
			t.Fatalf("ints = %v, want %v", got.Ints, want.Ints)
		}
	case KindBool:
		if !reflect.DeepEqual(noNilSliceBool(got.Bools), noNilSliceBool(want.Bools)) {
			t.Fatalf("bools = %v, want %v", got.Bools, want.Bools)
		}
	case KindString:
		if !reflect.DeepEqual(noNilSliceStr(got.Strings), noNilSliceStr(want.Strings)) {
			t.Fatalf("strings = %v, want %v", got.Strings, want.Strings)
		}
	}
}

func noNilSliceInt(s []int64) []int64 {
	if s == nil {
		return []int64{}
	}
	return s
}
func noNilSliceBool(s []bool) []bool {
	if s == nil {
		return []bool{}
	}
	return s
}
func noNilSliceStr(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}

// TestFormatLayout pins the on-disk layout: a float64 column's value
// section starts at the 4096-byte page boundary with IEEE-754 bits in
// little-endian order. Changing this breaks every existing spill dir.
func TestFormatLayout(t *testing.T) {
	c := &Column{Kind: KindFloat64, Floats: []float64{1.5, -0.25}}
	data, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != headerSize+16 {
		t.Fatalf("file is %d bytes, want %d", len(data), headerSize+16)
	}
	if string(data[:8]) != "FPCOL001" {
		t.Fatalf("magic = %q", data[:8])
	}
	if got := binary.LittleEndian.Uint64(data[headerSize:]); got != math.Float64bits(1.5) {
		t.Fatalf("value[0] bits = %x, want %x", got, math.Float64bits(1.5))
	}
	if got := binary.LittleEndian.Uint64(data[headerSize+8:]); got != math.Float64bits(-0.25) {
		t.Fatalf("value[1] bits = %x, want %x", got, math.Float64bits(-0.25))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	c := &Column{Kind: KindFloat64, Floats: []float64{1, 2, 3, 4}}
	data, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte){
		"flip payload bit":  func(b []byte) { b[headerSize+5] ^= 0x40 },
		"flip header kind":  func(b []byte) { b[offKind] ^= 0x01 },
		"zero magic":        func(b []byte) { b[0] = 0 },
		"flip length":       func(b []byte) { b[offLength] ^= 0x01 },
		"flip payload CRC":  func(b []byte) { b[offPayloadCRC] ^= 0x01 },
		"flip null bitmap?": func(b []byte) { b[len(b)-1] ^= 0x80 },
	}
	for name, corrupt := range cases {
		bad := append([]byte(nil), data...)
		corrupt(bad)
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	// Truncation at every section boundary and mid-payload.
	for _, n := range []int{0, 7, headerSize - 1, headerSize, headerSize + 9, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
}

func TestMappedZeroCopyViews(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.col")
	want := []float64{0.5, -1.5, 42, math.SmallestNonzeroFloat64}
	if err := WriteFile(path, &Column{Kind: KindFloat64, Floats: want}); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Kind() != KindFloat64 || m.Len() != len(want) {
		t.Fatalf("kind/len = %v/%d", m.Kind(), m.Len())
	}
	got, err := m.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mapped[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// The view survives unlinking the file (pages are referenced).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if got[2] != 42 {
		t.Fatal("view invalid after unlink")
	}
}

func TestOpenMappedRejectsTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.col")
	if err := WriteFile(path, &Column{Kind: KindFloat64, Floats: make([]float64, 1024)}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-payload: the header describes more bytes than exist.
	if err := os.WriteFile(path, data[:headerSize+100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path); err == nil {
		t.Fatal("torn file not rejected")
	}
	// Bit flip mid-payload at full length: caught by the payload CRC.
	data[headerSize+512] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path); err == nil {
		t.Fatal("payload corruption not rejected")
	}
}
