package mc

import (
	"context"
	"math"
	"testing"

	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/obs"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlparser"
)

// Differential tests: tracing must observe a render, never change it. The
// five bundled example scenarios are evaluated twice — once with no span
// on the context (the disabled path) and once under a live trace — and the
// outputs must be bit-identical, on both the single-range and the sharded
// path.

// compileExamples compiles the bundled example scenarios against the bench
// fixture registry (real VG models with deterministic seeds).
func compileExamples(tb testing.TB) map[string]*scenario.Scenario {
	tb.Helper()
	reg, err := benchfix.Registry()
	if err != nil {
		tb.Fatal(err)
	}
	out := make(map[string]*scenario.Scenario)
	for _, name := range sqlparser.ExampleScenarioNames() {
		scn, err := scenario.Compile(sqlparser.ExampleScenarios()[name], reg)
		if err != nil {
			tb.Fatalf("%s: %v", name, err)
		}
		if name == "serverfleet" {
			regions, err := benchfix.RegionsTable()
			if err != nil {
				tb.Fatal(err)
			}
			if err := scn.AddTable(regions); err != nil {
				tb.Fatal(err)
			}
		}
		out[name] = scn
	}
	return out
}

// sameResult asserts two point results carry bit-identical sample vectors.
func sameResult(t *testing.T, name string, plain, traced *PointResult) {
	t.Helper()
	if plain.Worlds != traced.Worlds {
		t.Fatalf("%s: worlds %d != %d", name, plain.Worlds, traced.Worlds)
	}
	if len(plain.Columns) != len(traced.Columns) {
		t.Fatalf("%s: column count %d != %d", name, len(plain.Columns), len(traced.Columns))
	}
	for col, a := range plain.Columns {
		b, ok := traced.Columns[col]
		if !ok {
			t.Fatalf("%s: traced result lacks column %q", name, col)
		}
		if len(a) != len(b) {
			t.Fatalf("%s/%s: length %d != %d", name, col, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s/%s[%d]: %v != %v (not bit-identical)", name, col, i, a[i], b[i])
			}
		}
	}
}

func TestTracedEvaluationBitIdentical(t *testing.T) {
	for name, scn := range compileExamples(t) {
		for _, shards := range []int{1, 4} {
			opts := Options{Worlds: 120, Shards: shards}
			pt := scn.DefaultPoint()

			plain, err := NewEvaluator(scn, opts).EvaluatePoint(context.Background(), pt)
			if err != nil {
				t.Fatalf("%s (shards=%d, untraced): %v", name, shards, err)
			}

			tr := obs.New("render", obs.NewID())
			ctx := obs.With(context.Background(), tr.Root())
			traced, err := NewEvaluator(scn, opts).EvaluatePoint(ctx, pt)
			if err != nil {
				t.Fatalf("%s (shards=%d, traced): %v", name, shards, err)
			}
			tr.End()

			sameResult(t, name, plain, traced)

			// The trace must actually have recorded the render: a point span
			// with at least simulate and plan-execute stages under it.
			seen := map[string]bool{}
			tr.Tree().Visit(func(_ int, n *obs.Node) { seen[n.Name] = true })
			for _, want := range []string{"point", "simulate", "plan-execute"} {
				if !seen[want] {
					t.Errorf("%s (shards=%d): trace has no %q span; got %v", name, shards, want, seen)
				}
			}
		}
	}
}

// BenchmarkTraceDisabledOverhead measures the full render path with no
// span on the context (every instrumented call hits the nil fast path)
// against the same render under a live trace. The "untraced" variant is
// the one the CI gate watches: its allocation count must not grow when
// instrumentation is added to the pipeline.
func BenchmarkTraceDisabledOverhead(b *testing.B) {
	scn := compileBenchFigure2(b)
	pt := scn.DefaultPoint()
	b.Run("untraced", func(b *testing.B) {
		ev := NewEvaluator(scn, Options{Worlds: 100})
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ev.EvaluatePoint(ctx, pt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		ev := NewEvaluator(scn, Options{Worlds: 100})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := obs.New("render", "")
			ctx := obs.With(context.Background(), tr.Root())
			if _, err := ev.EvaluatePoint(ctx, pt); err != nil {
				b.Fatal(err)
			}
			tr.End()
		}
	})
}

func compileBenchFigure2(tb testing.TB) *scenario.Scenario {
	tb.Helper()
	reg, err := benchfix.Registry()
	if err != nil {
		tb.Fatal(err)
	}
	scn, err := scenario.Compile(sqlparser.ExampleScenarios()[sqlparser.ExampleScenarioNames()[0]], reg)
	if err != nil {
		tb.Fatal(err)
	}
	return scn
}
