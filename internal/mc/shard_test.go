package mc

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"fuzzyprophet/internal/aggregate"
	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/stats"
	"fuzzyprophet/internal/storage"
)

func TestSplitWorlds(t *testing.T) {
	cases := []struct {
		n, k int
		want []WorldRange
	}{
		{10, 2, []WorldRange{{0, 5}, {5, 10}}},
		{10, 3, []WorldRange{{0, 4}, {4, 7}, {7, 10}}},
		{3, 7, []WorldRange{{0, 1}, {1, 2}, {2, 3}}},
		{5, 1, []WorldRange{{0, 5}}},
		{0, 4, nil},
	}
	for _, tc := range cases {
		got := SplitWorlds(tc.n, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("SplitWorlds(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("SplitWorlds(%d,%d)[%d] = %v, want %v", tc.n, tc.k, i, got[i], tc.want[i])
			}
		}
	}
	// Exhaustive invariants: contiguous, non-empty, covering.
	for n := 1; n < 40; n++ {
		for k := 1; k < 20; k++ {
			ranges := SplitWorlds(n, k)
			lo := 0
			for _, r := range ranges {
				if r.Lo != lo || r.Len() <= 0 {
					t.Fatalf("SplitWorlds(%d,%d): bad range %v", n, k, ranges)
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("SplitWorlds(%d,%d) does not cover [0,%d): %v", n, k, n, ranges)
			}
		}
	}
}

// compileExample compiles one bundled example scenario with its side
// tables attached.
func compileExample(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	reg, err := benchfix.Registry()
	if err != nil {
		t.Fatal(err)
	}
	scn, err := scenario.Compile(sqlparser.ExampleScenarios()[name], reg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if name == "serverfleet" {
		regions, err := benchfix.RegionsTable()
		if err != nil {
			t.Fatal(err)
		}
		if err := scn.AddTable(regions); err != nil {
			t.Fatal(err)
		}
	}
	return scn
}

// TestShardedEvaluationBitIdentical: for every bundled example scenario,
// sharded evaluation at 2, 7 and 16 shards produces byte-for-byte the same
// per-world output vectors — and therefore bit-identical EXPECT /
// EXPECT_STDDEV / PROB — as the single-range evaluation, and the merged
// sketches agree with exact quantiles within the sketch tolerance.
func TestShardedEvaluationBitIdentical(t *testing.T) {
	ctx := context.Background()
	const worlds = 500
	for _, name := range sqlparser.ExampleScenarioNames() {
		t.Run(name, func(t *testing.T) {
			scn := compileExample(t, name)
			pt := scn.DefaultPoint()
			base := NewEvaluator(scn, Options{Worlds: worlds})
			want, err := base.EvaluatePoint(ctx, pt)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Columns) == 0 {
				t.Fatalf("%s: no output columns", name)
			}
			for _, shards := range []int{1, 2, 7, 16} {
				ev := NewEvaluator(scn, Options{Worlds: worlds, Shards: shards})
				got, err := ev.EvaluatePoint(ctx, pt)
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				assertSameColumns(t, shards, want, got)
				if shards > 1 {
					if got.Sketches == nil {
						t.Fatalf("%d shards: no merged sketches", shards)
					}
					for col, cs := range got.Sketches {
						exact, err := stats.Quantile(want.Columns[col], 0.95)
						if err != nil {
							t.Fatal(err)
						}
						lo, _ := stats.Quantile(want.Columns[col], 0.90)
						hi, _ := stats.Quantile(want.Columns[col], 1)
						if p95 := cs.P95(); p95 < lo || p95 > hi {
							t.Errorf("%d shards: %s sketch p95 %g outside [%g,%g] (exact %g)",
								shards, col, p95, lo, hi, exact)
						}
						if cs.Count() != int64(len(want.Columns[col])) {
							t.Errorf("%d shards: %s sketch count %d, want %d",
								shards, col, cs.Count(), len(want.Columns[col]))
						}
					}
				}
			}
		})
	}
}

func assertSameColumns(t *testing.T, shards int, want, got *PointResult) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%d shards: %d columns, want %d", shards, len(got.Columns), len(want.Columns))
	}
	for col, w := range want.Columns {
		g, ok := got.Columns[col]
		if !ok {
			t.Fatalf("%d shards: missing column %q", shards, col)
		}
		if len(g) != len(w) {
			t.Fatalf("%d shards: column %q has %d rows, want %d", shards, col, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] && !(math.IsNaN(g[i]) && math.IsNaN(w[i])) {
				t.Fatalf("%d shards: column %q world %d = %v, want %v (bit-identity violated)",
					shards, col, i, g[i], w[i])
			}
		}
		// Aggregating the stitched vectors must therefore be bit-identical.
		ws, gs := aggregate.NewColumnStats(), aggregate.NewColumnStats()
		ws.AddAll(w)
		gs.AddAll(g)
		if ws.Expect() != gs.Expect() || ws.StdDev() != gs.StdDev() || ws.Prob() != gs.Prob() {
			t.Fatalf("%d shards: column %q aggregate mismatch", shards, col)
		}
	}
}

// TestShardedEvaluationWithReuse: sharding composes with the fingerprint
// reuse engine — the coordinator computes reuse-aware site vectors, shards
// slice them, and the stitched output still matches bit for bit.
func TestShardedEvaluationWithReuse(t *testing.T) {
	ctx := context.Background()
	const worlds = 400
	scn := compileExample(t, "capacityplanning")
	pt := scn.DefaultPoint()

	base := NewEvaluator(scn, Options{Worlds: worlds})
	want, err := base.EvaluatePoint(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}

	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: worlds, Shards: 4, Reuse: reuse})
	first, err := ev.EvaluatePoint(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameColumns(t, 4, want, first)
	for site, kind := range first.SiteOutcome {
		if kind != Computed {
			t.Errorf("first render site %s = %v, want computed", site, kind)
		}
	}
	// Second render at the same point: exact cache hits, same bits.
	second, err := ev.EvaluatePoint(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameColumns(t, 4, want, second)
	for site, kind := range second.SiteOutcome {
		if kind != CachedExact {
			t.Errorf("second render site %s = %v, want cached", site, kind)
		}
	}
}

// TestEvaluateShardStitch: a full render reassembled from worker-style
// EvaluateShard calls (self-simulating partial evaluations, as the HTTP
// worker performs them) matches the single-range render bit for bit.
func TestEvaluateShardStitch(t *testing.T) {
	ctx := context.Background()
	const worlds = 300
	for _, name := range []string{"capacityplanning", "serverfleet"} {
		scn := compileExample(t, name)
		pt := scn.DefaultPoint()
		base := NewEvaluator(scn, Options{Worlds: worlds})
		want, err := base.EvaluatePoint(ctx, pt)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 7} {
			outs := make([]*ShardOutput, 0, shards)
			for _, r := range SplitWorlds(worlds, shards) {
				// A fresh evaluator per shard: workers share nothing.
				worker := NewEvaluator(scn, Options{Worlds: worlds, Shards: 2})
				out, err := worker.EvaluateShard(ctx, pt, r)
				if err != nil {
					t.Fatalf("%s shard %v: %v", name, r, err)
				}
				outs = append(outs, out)
			}
			columns, _, err := stitchShards(outs)
			if err != nil {
				t.Fatal(err)
			}
			for col, w := range want.Columns {
				g := columns[col]
				if len(g) != len(w) {
					t.Fatalf("%s %d shards: column %q rows %d, want %d", name, shards, col, len(g), len(w))
				}
				for i := range w {
					if g[i] != w[i] {
						t.Fatalf("%s %d shards: column %q row %d mismatch", name, shards, col, i)
					}
				}
			}
		}
	}
}

func TestEvaluateShardValidation(t *testing.T) {
	ctx := context.Background()
	scn := compileExample(t, "capacityplanning")
	ev := NewEvaluator(scn, Options{Worlds: 100})
	for _, r := range []WorldRange{{-1, 10}, {0, 101}, {5, 5}, {9, 3}} {
		if _, err := ev.EvaluateShard(ctx, scn.DefaultPoint(), r); err == nil {
			t.Errorf("EvaluateShard(%v) should reject the range", r)
		}
	}
}

// TestShardedRunnerFallback: a runner that always fails must not fail the
// render — every shard falls back to local evaluation, bit-identically.
func TestShardedRunnerFallback(t *testing.T) {
	ctx := context.Background()
	const worlds = 200
	scn := compileExample(t, "capacityplanning")
	pt := scn.DefaultPoint()
	base := NewEvaluator(scn, Options{Worlds: worlds})
	want, err := base.EvaluatePoint(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	failing := func(ctx context.Context, task ShardTask) (*ShardOutput, error) {
		calls.Add(1)
		return nil, fmt.Errorf("worker down")
	}
	ev := NewEvaluator(scn, Options{Worlds: worlds, Shards: 3, Runner: failing})
	got, err := ev.EvaluatePoint(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Errorf("runner called %d times, want 3", calls.Load())
	}
	assertSameColumns(t, 3, want, got)
}

// TestShardedCategoricalColumnWithEmptyShards: a categorical (string)
// output column must be skipped consistently even when a WHERE clause
// leaves some shards with zero rows — an empty shard cannot see the
// column's type, so the stitch reconciles the skip instead of erroring.
func TestShardedCategoricalColumnWithEmptyShards(t *testing.T) {
	ctx := context.Background()
	reg, err := benchfix.Registry()
	if err != nil {
		t.Fatal(err)
	}
	src := `
DECLARE PARAMETER @t AS SET (5);
SELECT DemandModel(@t, @t) AS demand, 'label' AS tag WHERE __world < 3;
GRAPH OVER @t EXPECT demand;
`
	scn, err := scenario.Compile(src, reg)
	if err != nil {
		t.Fatal(err)
	}
	pt := scn.DefaultPoint()
	want, err := NewEvaluator(scn, Options{Worlds: 10}).EvaluatePoint(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := want.Columns["tag"]; ok {
		t.Fatal("single-range render should skip the categorical column")
	}
	if len(want.Columns["demand"]) != 3 {
		t.Fatalf("demand has %d rows, want 3", len(want.Columns["demand"]))
	}
	// With 4 shards of 10 worlds, only shard [0,3) has rows: the others
	// carry the tag column as empty while shard 0 skips it as categorical.
	got, err := NewEvaluator(scn, Options{Worlds: 10, Shards: 4}).EvaluatePoint(ctx, pt)
	if err != nil {
		t.Fatalf("sharded render with empty shards: %v", err)
	}
	assertSameColumns(t, 4, want, got)
	if _, ok := got.Columns["tag"]; ok {
		t.Error("sharded render should skip the categorical column too")
	}
}
