package mc

// Sharded world evaluation: the Monte Carlo loop is embarrassingly parallel
// across possible worlds, and world seeds are derived per (site, world) —
// so any worker, in-process or on another machine, reproduces exactly the
// samples the coordinator would have computed for a world range [lo, hi).
// A coordinator splits a point's range [0, Worlds) into contiguous shards,
// each shard simulates its sites (or slices coordinator-computed vectors),
// executes the scenario's compiled plan over a shard-local worlds table,
// and returns partial output columns in world order plus mergeable
// per-column sketches (Welford moments + t-digest). The coordinator
// stitches the partial columns back in shard order — bit-identical to the
// single-range evaluation, because the compiled plan is row-wise over the
// worlds-major relation (sqlengine.Plan.Shardable) — and merges the
// sketches for consumers that want aggregates without a second pass.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"

	"fuzzyprophet/internal/aggregate"
	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/obs"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/storage"
	"fuzzyprophet/internal/value"
)

// WorldRange is a half-open shard [Lo, Hi) of a render's world range.
type WorldRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of worlds in the range.
func (r WorldRange) Len() int { return r.Hi - r.Lo }

// SplitWorlds splits [0, n) into at most k contiguous, near-equal,
// non-empty ranges covering it in order.
func SplitWorlds(n, k int) []WorldRange {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]WorldRange, 0, k)
	chunk := n / k
	rem := n % k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		out = append(out, WorldRange{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// SplitWorldsWeighted splits [0, n) into contiguous non-empty ranges in
// order, one per weight, sized proportionally to the weights — the
// worker-aware analog of SplitWorlds: a coordinator sizes each worker's
// shard by its observed throughput or advertised capacity. Invalid input
// (no weights, a non-finite, NaN or non-positive weight, or a zero sum)
// falls back to the equal split. When n < len(weights) only the first n
// ranges exist (each of one world), exactly like SplitWorlds.
func SplitWorldsWeighted(n int, weights []float64) []WorldRange {
	if n <= 0 {
		return nil
	}
	var sum float64
	for _, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return SplitWorlds(n, len(weights))
		}
		sum += w
	}
	if len(weights) == 0 || sum <= 0 || math.IsInf(sum, 0) {
		return SplitWorlds(n, len(weights))
	}
	k := len(weights)
	if k > n {
		k = n
	}
	out := make([]WorldRange, 0, k)
	lo := 0
	var cum float64
	for i := 0; i < k; i++ {
		cum += weights[i]
		hi := int(math.Round(float64(n) * cum / sum))
		// Every range must be non-empty and the remaining ranges must each
		// get at least one world, no matter how skewed the weights are.
		if min := lo + 1; hi < min {
			hi = min
		}
		if max := n - (k - 1 - i); hi > max {
			hi = max
		}
		out = append(out, WorldRange{Lo: lo, Hi: hi})
		lo = hi
	}
	out[k-1].Hi = n
	return out
}

// ShardTask describes one shard evaluation: the parameter point, the
// render's total world count and seed base (any worker re-derives the exact
// per-world samples from these), and the assigned world range.
type ShardTask struct {
	Point    guide.Point
	Worlds   int
	SeedBase uint64
	Range    WorldRange
	// Index is the shard's position within the render's split. A remote
	// runner uses it for worker affinity: shard i was sized by worker i's
	// weight, so routing it there first keeps weighted splits meaningful.
	Index int
	// SketchOnly asks the shard for merged per-column sketches WITHOUT the
	// per-world sample vectors — O(compression) response payload instead of
	// O(worlds).
	SketchOnly bool
}

// ShardOutput is one shard's partial render: per-column sample vectors for
// the rows its world range produced (in world order; joins may yield more
// rows than worlds, WHERE fewer), plus a mergeable sketch per column.
type ShardOutput struct {
	Columns  map[string][]float64
	Sketches map[string]aggregate.ColumnSketch
}

// ShardRunner evaluates one shard, typically on another machine (the HTTP
// fan-out in internal/server). Runners must be safe for concurrent calls.
// An error return makes the coordinator re-evaluate the shard locally.
type ShardRunner func(ctx context.Context, task ShardTask) (*ShardOutput, error)

// shardEnv is one pooled shard-execution environment: its own catalog and
// engine (the shard's worlds table must not race the coordinator's), an
// owned worlds table over the shard's world sub-range, and per-site
// simulation buffers for self-simulated shards.
type shardEnv struct {
	catalog *sqlengine.Catalog
	engine  *sqlengine.Engine
	columns []*sqlengine.Column
	worlds  *sqlengine.ColTable
	siteBuf [][]float64
}

func (ev *Evaluator) newShardEnv() (*shardEnv, error) {
	cat := sqlengine.NewCatalog()
	for _, t := range ev.scn.StaticTables {
		cat.Put(t)
	}
	columns, worlds, err := ownedWorldsTable(ev.worldCols)
	if err != nil {
		return nil, err
	}
	return &shardEnv{
		catalog: cat,
		engine:  sqlengine.New(cat),
		columns: columns,
		worlds:  worlds,
		siteBuf: make([][]float64, len(ev.scn.Sites)),
	}, nil
}

func (ev *Evaluator) acquireEnv() (*shardEnv, error) {
	ev.envMu.Lock()
	if n := len(ev.envs); n > 0 {
		env := ev.envs[n-1]
		ev.envs = ev.envs[:n-1]
		ev.envMu.Unlock()
		return env, nil
	}
	ev.envMu.Unlock()
	return ev.newShardEnv()
}

func (ev *Evaluator) releaseEnv(env *shardEnv) {
	ev.envMu.Lock()
	ev.envs = append(ev.envs, env)
	ev.envMu.Unlock()
}

// siteRange returns env's buffer for site si sized for m worlds.
func (env *shardEnv) siteRange(si, m int) []float64 {
	if cap(env.siteBuf[si]) < m {
		env.siteBuf[si] = make([]float64, m)
	}
	env.siteBuf[si] = env.siteBuf[si][:m]
	return env.siteBuf[si]
}

// simulateRange invokes one site's VG-Function for worlds [lo, hi) of the
// task, writing into dst (len hi-lo). The context is checked once per
// world-batch, exactly like the single-range simulate loop.
func (ev *Evaluator) simulateRange(ctx context.Context, site *scenario.Site, args []value.Value, task ShardTask, dst []float64) error {
	lo, hi := task.Range.Lo, task.Range.Hi
	for i := lo; i < hi; i++ {
		if (i-lo)%batchWorlds == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v, err := ev.scn.Registry.Invoke(site.Name, WorldSeed(task.SeedBase, site.ID, i), args)
		if err != nil {
			return fmt.Errorf("mc: %s world %d: %w", site.ID, i, err)
		}
		f, err := v.AsFloat()
		if err != nil {
			return fmt.Errorf("mc: %s world %d: %w", site.ID, i, err)
		}
		dst[i-lo] = f
	}
	return nil
}

// shardInputKey encodes everything a self-simulated shard input vector
// depends on beyond the site: the argument key, the seed base and the
// world range.
func shardInputKey(argKey string, seedBase uint64, lo, hi int) string {
	return argKey + "|" + strconv.FormatUint(seedBase, 10) + "|" +
		strconv.Itoa(lo) + ":" + strconv.Itoa(hi)
}

// runShardLocal evaluates one shard in process. ord holds the shard's
// world ordinals (len task.Range.Len(), absolute values). When siteSamples
// is non-nil it holds full [0, Worlds) per-site vectors (computed by the
// coordinator, reuse-aware) and the shard just slices its range; otherwise
// the shard simulates its own range from the task's seeds.
func (ev *Evaluator) runShardLocal(ctx context.Context, task ShardTask, siteSamples [][]float64, ord []int64) (*ShardOutput, error) {
	env, err := ev.acquireEnv()
	if err != nil {
		return nil, err
	}
	defer ev.releaseEnv(env)

	sp := obs.SpanFrom(ctx)
	ssp := sp.Child("simulate")
	var inputsBefore storage.Stats
	if ssp != nil && ev.opts.ShardInputs != nil {
		inputsBefore = ev.opts.ShardInputs.Stats()
	}
	var cacheHits int64
	lo, hi := task.Range.Lo, task.Range.Hi
	for si := range ev.scn.Sites {
		var vec []float64
		if siteSamples != nil {
			vec = siteSamples[si][lo:hi]
		} else {
			site := &ev.scn.Sites[si]
			args, key, err := site.ArgValues(task.Point)
			if err != nil {
				return nil, err
			}
			// Worker-mode shard-input cache: a worker re-rendering the same
			// point serves the range's samples from the store (RAM or spill
			// tier) instead of re-invoking the VG-Function per world. The
			// key pins everything the samples depend on — args, seed base
			// and world range — so a hit is bit-identical by determinism.
			var cacheKey string
			if ev.opts.ShardInputs != nil {
				cacheKey = shardInputKey(key, task.SeedBase, lo, hi)
				if cached, ok := ev.opts.ShardInputs.Get(site.ID, cacheKey); ok && len(cached) == hi-lo {
					cacheHits++
					env.columns[si+1].SetFloats(cached)
					continue
				}
			}
			vec = env.siteRange(si, hi-lo)
			if err := ev.simulateRange(ctx, site, args, task, vec); err != nil {
				return nil, err
			}
			if ev.opts.ShardInputs != nil {
				ev.opts.ShardInputs.Put(site.ID, cacheKey, vec)
			}
		}
		env.columns[si+1].SetFloats(vec)
	}
	if ssp != nil {
		ssp.SetInt("worlds", int64(hi-lo))
		ssp.SetInt("sites", int64(len(ev.scn.Sites)))
		if siteSamples != nil {
			ssp.SetInt("sliced", 1) // coordinator-computed vectors, no simulation
		}
		if cacheHits > 0 {
			ssp.SetInt("shard_input_cache_hits", cacheHits)
		}
		if ev.opts.ShardInputs != nil {
			noteSpillDeltas(ssp, inputsBefore, ev.opts.ShardInputs.Stats())
		}
	}
	ssp.End()

	msp := sp.Child("worlds-materialize")
	env.columns[0].SetInts(ord)
	env.catalog.PutColumns(env.worlds)
	msp.End()

	xsp := sp.Child("plan-execute")
	var counters *sqlengine.ExecCounters
	if xsp != nil {
		counters = &sqlengine.ExecCounters{}
	}
	out, err := ev.scn.Plan().ExecCounted(env.engine, task.Point, counters)
	if err != nil {
		return nil, fmt.Errorf("mc: executing scenario plan for shard [%d,%d): %w", lo, hi, err)
	}
	if out == nil {
		return nil, fmt.Errorf("mc: scenario plan produced no result for shard [%d,%d)", lo, hi)
	}
	defer out.Release()
	recordExecCounters(xsp, counters)
	xsp.End()

	result := &ShardOutput{
		Sketches: make(map[string]aggregate.ColumnSketch, len(ev.scn.OutputCols)),
	}
	if !task.SketchOnly {
		result.Columns = make(map[string][]float64, len(ev.scn.OutputCols))
	}
	for _, colName := range ev.scn.OutputCols {
		col, err := out.Column(colName)
		if err != nil {
			return nil, err
		}
		if col.Len() > 0 && col.AllStrings() {
			continue
		}
		fs, err := col.Float64s()
		if err != nil {
			return nil, fmt.Errorf("mc: output column %q: %w", colName, err)
		}
		if !task.SketchOnly {
			result.Columns[colName] = fs
		}
		cs := aggregate.NewColumnStats()
		cs.AddAll(fs)
		result.Sketches[colName] = cs.Sketch()
	}
	return result, nil
}

// stitchShards concatenates the shards' partial columns in shard (= world)
// order and merges their sketches. A column that SOME shards skipped as
// categorical (all-string) while others carried it empty — an empty shard
// cannot see the column's type — is dropped, matching the single-range
// path's skip of categorical columns; a shard carrying numeric rows for a
// column another shard deemed categorical is a genuine type mix and errors
// (the single-range conversion would error on it too).
func stitchShards(outs []*ShardOutput) (map[string][]float64, map[string]*aggregate.ColumnStats, error) {
	names := make(map[string]bool)
	total := make(map[string]int)
	inAll := make(map[string]int)
	for _, out := range outs {
		for col, fs := range out.Columns {
			names[col] = true
			total[col] += len(fs)
			inAll[col]++
		}
	}
	columns := make(map[string][]float64, len(names))
	sketches := make(map[string]*aggregate.ColumnStats, len(names))
	for col := range names {
		if inAll[col] < len(outs) {
			if total[col] > 0 {
				return nil, nil, fmt.Errorf("mc: column %q is categorical in some shards but numeric in others", col)
			}
			continue // categorical: every shard with rows skipped it
		}
		full := make([]float64, 0, total[col])
		parts := make([]aggregate.ColumnSketch, 0, len(outs))
		for _, out := range outs {
			full = append(full, out.Columns[col]...)
			if sk, ok := out.Sketches[col]; ok {
				parts = append(parts, sk)
			}
		}
		columns[col] = full
		if merged := aggregate.MergeSketches(parts); merged != nil {
			sketches[col] = merged
		}
	}
	return columns, sketches, nil
}

// stitchSketches is stitchShards for sketch-only shards: no sample vectors
// came back, so column presence and the categorical-mix check run over the
// sketch maps (a shard's sketch Count plays the role of its row count) and
// the merge is pure sketch merging — O(shards · compression) total.
func stitchSketches(outs []*ShardOutput) (map[string]*aggregate.ColumnStats, error) {
	names := make(map[string]bool)
	total := make(map[string]int64)
	inAll := make(map[string]int)
	for _, out := range outs {
		for col, sk := range out.Sketches {
			names[col] = true
			total[col] += sk.Count
			inAll[col]++
		}
	}
	sketches := make(map[string]*aggregate.ColumnStats, len(names))
	for col := range names {
		if inAll[col] < len(outs) {
			if total[col] > 0 {
				return nil, fmt.Errorf("mc: column %q is categorical in some shards but numeric in others", col)
			}
			continue // categorical: every shard with rows skipped it
		}
		parts := make([]aggregate.ColumnSketch, 0, len(outs))
		for _, out := range outs {
			parts = append(parts, out.Sketches[col])
		}
		if merged := aggregate.MergeSketches(parts); merged != nil {
			sketches[col] = merged
		}
	}
	return sketches, nil
}

// evaluateSharded is EvaluatePoint's sharded path: split, fan out, stitch.
func (ev *Evaluator) evaluateSharded(ctx context.Context, pt guide.Point) (*PointResult, error) {
	n := ev.opts.Worlds
	psp := obs.SpanFrom(ctx).Child("point")
	defer psp.End()
	psp.SetInt("worlds", int64(n))
	res := &PointResult{
		Point:       pt,
		Worlds:      n,
		SiteOutcome: make(map[string]ReuseKind, len(ev.scn.Sites)),
	}
	sql, err := ev.scn.GenerateSQL(pt)
	if err != nil {
		return nil, err
	}
	res.SQL = sql

	// Site samples: with a remote runner the workers re-derive them from
	// seeds (reuse bypassed); locally with reuse enabled the coordinator
	// computes full reuse-aware vectors once and shards slice them; locally
	// without reuse each shard simulates its own range in parallel.
	remote := ev.opts.Runner != nil
	var siteSamples [][]float64
	if !remote && ev.opts.Reuse != nil {
		ssp := psp.Child("simulate")
		var spillBefore storage.Stats
		if ssp != nil {
			spillBefore = ev.opts.Reuse.store.Stats()
		}
		siteSamples = make([][]float64, len(ev.scn.Sites))
		for si := range ev.scn.Sites {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			site := &ev.scn.Sites[si]
			samples, kind, err := ev.samplesFor(ctx, site, pt)
			if err != nil {
				return nil, err
			}
			siteSamples[si] = samples
			res.SiteOutcome[site.ID] = kind
		}
		if ssp != nil {
			ssp.SetInt("sites", int64(len(ev.scn.Sites)))
			recordOutcomes(ssp, res.SiteOutcome)
			noteSpillDeltas(ssp, spillBefore, ev.opts.Reuse.store.Stats())
		}
		ssp.End()
	} else {
		for si := range ev.scn.Sites {
			res.SiteOutcome[ev.scn.Sites[si].ID] = Computed
		}
	}

	// Worker-aware sizing: when the caller supplies per-worker weights
	// (latency EWMAs, advertised capacities), shards are sized
	// proportionally so a slow worker gets a small range instead of
	// stalling the stitch. Weights only make sense for remote fan-out —
	// local shards all run on the same cores.
	ranges := SplitWorlds(n, ev.opts.Shards)
	if remote && ev.opts.ShardWeights != nil {
		if ws := ev.opts.ShardWeights(); len(ws) > 0 {
			ranges = SplitWorldsWeighted(n, ws)
		}
	}
	sketchOnly := ev.opts.SketchOnly
	ev.ordRange(0, n) // pre-grow so shard goroutines only read
	fsp := psp.Child("shard-fanout")
	fsp.SetInt("shards", int64(len(ranges)))
	if sketchOnly {
		fsp.SetInt("sketch_only", 1)
	}
	outs := make([]*ShardOutput, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i := range ranges {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A panic in a shard (bad VG, kernel bug) fails this shard only;
			// wg.Done is registered first so it runs after the recovery.
			defer recoverToError(&errs[i], "shard")
			task := ShardTask{
				Point:      pt,
				Worlds:     n,
				SeedBase:   ev.opts.SeedBase,
				Range:      ranges[i],
				Index:      i,
				SketchOnly: sketchOnly,
			}
			// Each shard gets its own child span, carried via ctx so the
			// local path's stage spans (and a remote worker's grafted
			// subtree) land under it.
			ssp := fsp.Child("shard")
			defer ssp.End()
			ssp.SetInt("lo", int64(task.Range.Lo))
			ssp.SetInt("hi", int64(task.Range.Hi))
			sctx := obs.With(ctx, ssp)
			if remote {
				ssp.SetStr("exec", "remote")
				out, err := ev.opts.Runner(sctx, task)
				if err == nil {
					outs[i] = out
					return
				}
				if ctx.Err() != nil {
					errs[i] = err
					return
				}
				// Per-shard local fallback: a failed worker costs latency,
				// not the render.
				ssp.SetStr("exec", "local-fallback")
			}
			outs[i], errs[i] = ev.runShardLocal(sctx, task, siteSamples, ev.ord[task.Range.Lo:task.Range.Hi])
		}(i)
	}
	wg.Wait()
	fsp.End()
	for _, err := range errs {
		if err != nil {
			// Deadline mid-fan-out: with AllowDegraded, the shards that DID
			// complete are still a statistically honest (if wider-CI) answer
			// — merge their sketches instead of failing the render.
			if ev.opts.AllowDegraded && ctx.Err() != nil && ev.harvestDegraded(res, ranges, outs, errs, psp) {
				return res, nil
			}
			return nil, err
		}
	}
	msp := psp.Child("sketch-merge")
	if sketchOnly {
		sketches, err := stitchSketches(outs)
		msp.End()
		if err != nil {
			return nil, err
		}
		if len(sketches) > 0 {
			res.Sketches = sketches
		}
		return res, nil
	}
	columns, sketches, err := stitchShards(outs)
	msp.End()
	if err != nil {
		return nil, err
	}
	res.Columns = columns
	if len(sketches) > 0 {
		res.Sketches = sketches
	}
	return res, nil
}

// harvestDegraded turns a deadline-cut fan-out into a partial result: the
// sketches of every completed shard are merged and res is flagged
// Degraded with the completed world count. Returns false — leaving res
// untouched — when nothing completed, when any shard failed with a panic
// (deterministic bugs must surface, not degrade), or when the completed
// sketches cannot be merged. Errors racing the deadline (cancelled
// transports, cut simulations) are subsumed by the degraded result.
func (ev *Evaluator) harvestDegraded(res *PointResult, ranges []WorldRange, outs []*ShardOutput, errs []error, psp *obs.Span) bool {
	var done []*ShardOutput
	completed := 0
	for i, out := range outs {
		var perr *PanicError
		if errs[i] != nil && errors.As(errs[i], &perr) {
			return false
		}
		if out == nil || errs[i] != nil {
			continue
		}
		done = append(done, out)
		completed += ranges[i].Len()
	}
	if completed == 0 {
		return false
	}
	msp := psp.Child("sketch-merge")
	sketches, err := stitchSketches(done)
	msp.End()
	if err != nil || len(sketches) == 0 {
		return false
	}
	psp.SetInt("degraded", 1)
	psp.SetInt("worlds_completed", int64(completed))
	res.Sketches = sketches
	res.Degraded = true
	res.WorldsCompleted = completed
	return true
}

// EvaluateShard evaluates ONLY the worlds in shard (within [0,
// Options.Worlds)) at one parameter point — the worker half of distributed
// rendering: an HTTP worker receives (scenario, point, seed base, range),
// self-simulates the range from per-(site, world) seeds and returns the
// partial columns and sketches for the coordinator to stitch. The shard is
// itself split across Options.Shards in-process sub-shards, so a worker
// saturates its own cores. Fingerprint reuse is not consulted (partial
// vectors are not valid bases). Requires a shardable scenario plan.
//
// Like EvaluatePoint, EvaluateShard is not safe for concurrent calls on
// one Evaluator.
func (ev *Evaluator) EvaluateShard(ctx context.Context, pt guide.Point, shard WorldRange) (*ShardOutput, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if shard.Lo < 0 || shard.Hi > ev.opts.Worlds || shard.Lo >= shard.Hi {
		return nil, fmt.Errorf("mc: shard [%d,%d) outside world range [0,%d)", shard.Lo, shard.Hi, ev.opts.Worlds)
	}
	if !ev.scn.Plan().Shardable() {
		return nil, fmt.Errorf("mc: scenario plan is not shardable (grouped or fallback query)")
	}
	m := shard.Len()
	sub := SplitWorlds(m, ev.opts.Shards)
	// A shard-local ordinal vector: a worker evaluator serves one request,
	// so filling the shared [0, Hi) vector would cost O(total worlds) per
	// request; this costs O(shard length).
	ord := make([]int64, m)
	for i := range ord {
		ord[i] = int64(shard.Lo + i)
	}
	sp := obs.SpanFrom(ctx)
	outs := make([]*ShardOutput, len(sub))
	errs := make([]error, len(sub))
	var wg sync.WaitGroup
	for i := range sub {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer recoverToError(&errs[i], "shard")
			task := ShardTask{
				Point:      pt,
				Worlds:     ev.opts.Worlds,
				SeedBase:   ev.opts.SeedBase,
				Range:      WorldRange{Lo: shard.Lo + sub[i].Lo, Hi: shard.Lo + sub[i].Hi},
				Index:      i,
				SketchOnly: ev.opts.SketchOnly,
			}
			ssp := sp.Child("shard")
			defer ssp.End()
			ssp.SetInt("lo", int64(task.Range.Lo))
			ssp.SetInt("hi", int64(task.Range.Hi))
			outs[i], errs[i] = ev.runShardLocal(obs.With(ctx, ssp), task, nil, ord[sub[i].Lo:sub[i].Hi])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	msp := sp.Child("sketch-merge")
	if ev.opts.SketchOnly {
		sketches, err := stitchSketches(outs)
		msp.End()
		if err != nil {
			return nil, err
		}
		out := &ShardOutput{Sketches: make(map[string]aggregate.ColumnSketch, len(sketches))}
		for col, cs := range sketches {
			out.Sketches[col] = cs.Sketch()
		}
		return out, nil
	}
	columns, sketches, err := stitchShards(outs)
	msp.End()
	if err != nil {
		return nil, err
	}
	out := &ShardOutput{Columns: columns, Sketches: make(map[string]aggregate.ColumnSketch, len(sketches))}
	for col, cs := range sketches {
		out.Sketches[col] = cs.Sketch()
	}
	return out, nil
}
