package mc

import (
	"context"
	"math"
	"sort"
	"testing"

	"fuzzyprophet/internal/sqlparser"
)

// sketchQuantileRankTolerance is the pinned accuracy bound for sketch-only
// evaluation: any quantile read off the merged t-digest must land within
// this much RANK error of the exact sample quantile (at the default
// compression of 200 the theoretical bound is ~q(1-q)/50, well inside
// 0.02 across the whole quantile range). Loosening this constant is an API
// regression: sketch-only consumers size capacity plans off these tails.
const sketchQuantileRankTolerance = 0.02

// rankOf returns the rank interval [fraction <, fraction <=] of v within
// the ascending-sorted samples — an interval because of ties.
func rankOf(sorted []float64, v float64) (float64, float64) {
	n := float64(len(sorted))
	lo := sort.SearchFloat64s(sorted, v)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return float64(lo) / n, float64(hi) / n
}

// TestSketchOnlyQuantileAccuracy: for every bundled example scenario and
// shard counts 1, 2, 7 and 16, quantiles read from the sketch-only
// evaluation (merged per-shard t-digests, no sample vectors) agree with
// the exact sample quantiles within sketchQuantileRankTolerance — the
// regression guard for wire protocol v2's compressed response mode.
func TestSketchOnlyQuantileAccuracy(t *testing.T) {
	ctx := context.Background()
	const worlds = 2000
	quantiles := []float64{0.05, 0.25, 0.5, 0.75, 0.95}

	for _, name := range sqlparser.ExampleScenarioNames() {
		t.Run(name, func(t *testing.T) {
			scn := compileExample(t, name)
			pt := scn.DefaultPoint()
			base := NewEvaluator(scn, Options{Worlds: worlds})
			exact, err := base.EvaluatePoint(ctx, pt)
			if err != nil {
				t.Fatal(err)
			}
			if len(exact.Columns) == 0 {
				t.Fatalf("%s: no output columns", name)
			}
			sorted := make(map[string][]float64, len(exact.Columns))
			for col, samples := range exact.Columns {
				s := append([]float64(nil), samples...)
				sort.Float64s(s)
				sorted[col] = s
			}

			for _, shards := range []int{1, 2, 7, 16} {
				ev := NewEvaluator(scn, Options{Worlds: worlds, Shards: shards, SketchOnly: true})
				got, err := ev.EvaluatePoint(ctx, pt)
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				if len(got.Columns) != 0 {
					t.Errorf("%d shards: sketch-only result carries %d sample vectors", shards, len(got.Columns))
				}
				if len(got.Sketches) == 0 {
					t.Fatalf("%d shards: no sketches in sketch-only result", shards)
				}
				for col, s := range sorted {
					cs, ok := got.Sketches[col]
					if !ok {
						t.Fatalf("%d shards: missing sketch for column %q", shards, col)
					}
					if cs.Count() != int64(len(s)) {
						t.Errorf("%d shards: %s count %d, want %d", shards, col, cs.Count(), len(s))
					}
					for _, q := range quantiles {
						v, qerr := cs.Quantile(q)
						if qerr != nil {
							t.Fatalf("%d shards: %s q=%.2f: %v", shards, col, q, qerr)
						}
						lo, hi := rankOf(s, v)
						// The digest value's rank interval must overlap
						// [q - tol, q + tol].
						err := 0.0
						switch {
						case q < lo:
							err = lo - q
						case q > hi:
							err = q - hi
						}
						if err > sketchQuantileRankTolerance {
							t.Errorf("%d shards: %s q=%.2f sketch value %g has rank [%.4f,%.4f], rank error %.4f > %.3f",
								shards, col, q, v, lo, hi, err, sketchQuantileRankTolerance)
						}
						if math.IsNaN(v) {
							t.Errorf("%d shards: %s q=%.2f sketch quantile is NaN", shards, col, q)
						}
					}
				}
			}
		})
	}
}
