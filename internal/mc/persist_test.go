package mc

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/storage"
)

func TestReuseSaveLoadRoundTrip(t *testing.T) {
	scn := compileFigure2(t)
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 80, Reuse: reuse})
	pt := point(10, 16, 32, 36)
	original, err := ev.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reuse.Save(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadReuse(&buf, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config().Length != reuse.Config().Length {
		t.Error("config not restored")
	}
	// A fresh process with the loaded state: the same point is a pure
	// cache hit with zero VG invocations.
	reg := scn.Registry
	before := reg.TotalInvocations()
	ev2 := NewEvaluator(scn, Options{Worlds: 80, Reuse: loaded})
	res, err := ev2.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	if reg.TotalInvocations() != before {
		t.Errorf("loaded state should serve the point without invocations (spent %d)",
			reg.TotalInvocations()-before)
	}
	for site, kind := range res.SiteOutcome {
		if kind != CachedExact {
			t.Errorf("site %s = %v after load, want cached", site, kind)
		}
	}
	for col := range original.Columns {
		for i := range original.Columns[col] {
			if res.Columns[col][i] != original.Columns[col][i] {
				t.Fatalf("column %s world %d differs after reload", col, i)
			}
		}
	}
	// Fingerprint mappings also survive: a moved purchase still maps.
	res2, err := ev2.EvaluatePoint(context.Background(), point(10, 20, 32, 36))
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.SiteOutcome["CapacityModel#0"]; got != Identity && got != Affine {
		t.Errorf("mapping after reload = %v, want identity or affine", got)
	}
}

func TestLoadReuseRejectsGarbage(t *testing.T) {
	if _, err := LoadReuse(strings.NewReader("not a snapshot"), storage.Options{}); err == nil {
		t.Error("garbage input should error")
	}
	if _, err := LoadReuse(bytes.NewReader(nil), storage.Options{}); err == nil {
		t.Error("empty input should error")
	}
}

func TestSeedBaseBindingGuard(t *testing.T) {
	scn := compileFigure2(t)
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewEvaluator(scn, Options{Worlds: 20, SeedBase: 111, Reuse: reuse})
	if _, err := a.EvaluatePoint(context.Background(), point(5, 16, 32, 36)); err != nil {
		t.Fatal(err)
	}
	// A second evaluator with a different seed base must be rejected: its
	// worlds would not correspond to the stored bases.
	b := NewEvaluator(scn, Options{Worlds: 20, SeedBase: 222, Reuse: reuse})
	_, err = b.EvaluatePoint(context.Background(), point(5, 16, 32, 36))
	if err == nil {
		t.Fatal("mismatched seed base must be rejected")
	}
	if !strings.Contains(err.Error(), "seed base") {
		t.Errorf("error should explain the seed-base conflict: %v", err)
	}
	// Same base keeps working.
	c := NewEvaluator(scn, Options{Worlds: 20, SeedBase: 111, Reuse: reuse})
	if _, err := c.EvaluatePoint(context.Background(), point(6, 16, 32, 36)); err != nil {
		t.Fatal(err)
	}
}

func TestSeedBaseBindingSurvivesSaveLoad(t *testing.T) {
	scn := compileFigure2(t)
	reuse, _ := NewReuse(core.DefaultConfig(), storage.Options{})
	ev := NewEvaluator(scn, Options{Worlds: 20, SeedBase: 111, Reuse: reuse})
	if _, err := ev.EvaluatePoint(context.Background(), point(5, 16, 32, 36)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reuse.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReuse(&buf, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wrong := NewEvaluator(scn, Options{Worlds: 20, SeedBase: 999, Reuse: loaded})
	if _, err := wrong.EvaluatePoint(context.Background(), point(5, 16, 32, 36)); err == nil {
		t.Fatal("loaded state must keep its seed-base binding")
	}
}

func TestSnapshotRestoreStoreOrder(t *testing.T) {
	// The snapshot preserves LRU recency so a restored bounded store evicts
	// the same entries first.
	reuse, _ := NewReuse(core.DefaultConfig(), storage.Options{})
	reuse.store.Put("s", "old", []float64{1})
	reuse.store.Put("s", "new", []float64{2})
	if _, ok := reuse.store.Get("s", "old"); !ok { // touch: old becomes MRU
		t.Fatal("old missing")
	}
	var buf bytes.Buffer
	if err := reuse.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReuse(&buf, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := loaded.store.Snapshot()
	if len(snap) != 2 || snap[0].Key != "old" || snap[1].Key != "new" {
		t.Errorf("restored order = %v", []string{snap[0].Key, snap[1].Key})
	}
}

func TestPersistedMappingCorrectness(t *testing.T) {
	// End to end: state saved in one "process", loaded in another, must
	// produce samples identical to direct simulation.
	scn := compileFigure2(t)
	reuse, _ := NewReuse(core.DefaultConfig(), storage.Options{})
	ev := NewEvaluator(scn, Options{Worlds: 60, Reuse: reuse})
	if _, err := ev.EvaluatePoint(context.Background(), point(5, 20, 40, 36)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reuse.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReuse(&buf, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev2 := NewEvaluator(scn, Options{Worlds: 60, Reuse: loaded})
	got, err := ev2.EvaluatePoint(context.Background(), point(5, 28, 40, 36))
	if err != nil {
		t.Fatal(err)
	}
	direct := NewEvaluator(scn, Options{Worlds: 60})
	want, err := direct.EvaluatePoint(context.Background(), point(5, 28, 40, 36))
	if err != nil {
		t.Fatal(err)
	}
	for col := range want.Columns {
		for i := range want.Columns[col] {
			if got.Columns[col][i] != want.Columns[col][i] {
				t.Fatalf("reloaded mapping differs from direct at %s[%d]", col, i)
			}
		}
	}
}
