// Package mc implements the Monte Carlo executor: it turns one parameter
// point of a compiled scenario into per-world output samples by invoking
// VG-Functions (or re-mapping stored basis distributions via fingerprints),
// materializing the possible-worlds table, and running the Query
// Generator's pure TSQL through the relational engine.
//
// This is the inner loop of the paper's architecture cycle: Guide →
// instances → Query Generator → TSQL → engine → Storage Manager → Result
// Aggregator.
package mc

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"

	"fuzzyprophet/internal/aggregate"
	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/obs"
	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/storage"
	"fuzzyprophet/internal/value"
)

// Options configures an Evaluator.
type Options struct {
	// Worlds is the number of Monte Carlo worlds per point (default 1000).
	Worlds int
	// SeedBase seeds the fixed world sequence (default 20110612, the
	// paper's demo week). Changing it changes every sample.
	SeedBase uint64
	// Workers bounds VG-invocation parallelism (default: GOMAXPROCS).
	Workers int
	// Shards splits each point's world range [0, Worlds) into this many
	// contiguous shards evaluated concurrently, each producing partial
	// column vectors that the coordinator stitches back in world order
	// (default 1: the single-range path). Because world seeds derive per
	// (site, world), the stitched result is bit-identical to a single-range
	// evaluation regardless of shard count. Sharding requires the
	// scenario's compiled plan to be Shardable; other plans silently use
	// the single-range path.
	Shards int
	// Runner, when non-nil, evaluates shards remotely (the HTTP fan-out in
	// internal/server). A shard whose runner call fails is re-evaluated
	// locally by the coordinator, so a dying worker degrades throughput,
	// not correctness. With a Runner set, fingerprint reuse is bypassed
	// (workers re-derive samples from seeds).
	Runner ShardRunner
	// Reuse enables fingerprint-based computation reuse when non-nil.
	Reuse *Reuse
	// ShardInputs, when non-nil, caches self-simulated shard input vectors
	// keyed by (site, args, seed base, world range) — worker mode's analog
	// of the basis store. A worker repeatedly rendering the same scenario
	// points serves shard inputs from the cache (spilling out-of-core when
	// the store is configured with a spill dir) instead of re-invoking
	// VG-Functions; determinism of (seed base, site, world) seeds makes the
	// cached vectors bit-identical to fresh simulation.
	ShardInputs *storage.Store
	// SketchOnly makes sharded evaluations return ONLY merged per-column
	// sketches (Welford moments + t-digest) — PointResult.Columns stays nil
	// — so remote shard responses are O(compression) instead of O(worlds).
	// Consumers read Expect/StdDev/quantiles/CI95 from the sketches within
	// the t-digest error bound. Requires a shardable plan; non-shardable
	// plans fall back to the full single-range path.
	SketchOnly bool
	// ShardWeights, when non-nil with a remote Runner, supplies one
	// positive weight per shard slot just before each point's split; shard
	// ranges are sized proportionally (SplitWorldsWeighted). The
	// coordinator uses per-worker latency EWMAs / advertised capacities so
	// slow workers get small ranges. Invalid weights fall back to the
	// equal split.
	ShardWeights func() []float64
	// AllowDegraded permits a sharded evaluation cut short by its context
	// deadline to return a partial result instead of the context error:
	// the sketches of every shard that completed before the cut are merged
	// and the result carries Degraded=true with WorldsCompleted < Worlds.
	// Columns stays nil on a degraded result (missing world ranges cannot
	// be stitched), so consumers read the sketches. Degradation granularity
	// is one shard; if no shard completed, the context error is returned as
	// usual, and a shard that failed with a recovered panic always fails
	// the point (deterministic bugs must surface, not degrade).
	AllowDegraded bool
}

// DefaultSeedBase is the seed base used when Options.SeedBase is zero:
// the paper's demo week.
const DefaultSeedBase = 20110612

// WithDefaults returns a copy of o with zero fields replaced by defaults —
// the effective options an Evaluator built from o will run with.
func (o Options) WithDefaults() Options {
	if o.Worlds <= 0 {
		o.Worlds = 1000
	}
	if o.SeedBase == 0 {
		o.SeedBase = DefaultSeedBase
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// ReuseKind records how a site's sample vector was obtained.
type ReuseKind uint8

// Reuse kinds.
const (
	// Computed: fresh VG invocations, one per world.
	Computed ReuseKind = iota
	// CachedExact: the exact (site, args) pair was already stored.
	CachedExact
	// Identity: re-mapped from a basis with an identity mapping.
	Identity
	// Affine: re-mapped from a basis through an affine mapping.
	Affine
)

func (k ReuseKind) String() string {
	switch k {
	case Computed:
		return "computed"
	case CachedExact:
		return "cached"
	case Identity:
		return "identity"
	case Affine:
		return "affine"
	default:
		return fmt.Sprintf("ReuseKind(%d)", uint8(k))
	}
}

// Reuse is the fingerprint-reuse state shared across point evaluations: the
// fingerprint index plus the basis-distribution store. Safe for concurrent
// use.
type Reuse struct {
	cfg   core.Config
	index *core.Index
	store *storage.Store

	mu        sync.Mutex
	counts    map[ReuseKind]int
	seedBase  uint64
	seedBound bool
}

// NewReuse returns a reuse engine with the given fingerprint configuration
// and basis-store options. With storeOpts.SpillDir set, the basis store
// spills evicted bases to memory-mapped column files and faults them back
// on demand, so the working set may exceed the RAM budget without falling
// back to re-simulation.
func NewReuse(cfg core.Config, storeOpts storage.Options) (*Reuse, error) {
	ix, err := core.NewIndex(cfg)
	if err != nil {
		return nil, err
	}
	store, err := storage.Open(storeOpts)
	if err != nil {
		return nil, fmt.Errorf("mc: opening basis store: %w", err)
	}
	return &Reuse{
		cfg:    cfg,
		index:  ix,
		store:  store,
		counts: make(map[ReuseKind]int),
	}, nil
}

// Close releases the basis store's spill tier (mapped files, manifest).
// Sample slices previously returned by evaluations may reference mapped
// memory, so Close only after in-flight renders finish. A no-op for
// RAM-only stores.
func (r *Reuse) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Close()
}

// Config returns the fingerprint configuration.
func (r *Reuse) Config() core.Config { return r.cfg }

// Index exposes the fingerprint index (read access for visualization).
func (r *Reuse) Index() *core.Index { return r.index }

// StoreStats returns the basis store's counters.
func (r *Reuse) StoreStats() storage.Stats { return r.store.Stats() }

// Counts returns a snapshot of per-kind outcome counts.
func (r *Reuse) Counts() map[ReuseKind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ReuseKind]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// ResetCounts zeroes the outcome counters (not the stored bases).
func (r *Reuse) ResetCounts() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts = make(map[ReuseKind]int)
}

func (r *Reuse) record(k ReuseKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[k]++
}

// install records a freshly computed basis and its fingerprint as one
// atomic step under the engine lock — the same lock Save holds while
// capturing the store and index, so a snapshot can never contain an index
// entry whose basis it lacks (the store write always lands in the same
// critical section as its index entry).
func (r *Reuse) install(site, key string, samples []float64, fp core.Fingerprint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store.Put(site, key, samples)
	r.index.Put(site, key, fp)
	r.counts[Computed]++
}

// Evaluator evaluates scenario points.
type Evaluator struct {
	scn     *scenario.Scenario
	opts    Options
	catalog *sqlengine.Catalog
	engine  *sqlengine.Engine

	// The evaluator-owned possible-worlds table, updated in place per
	// point: the column headers are repointed at the fresh sample vectors
	// instead of allocating an ord vector, column headers and a ColTable
	// every point around the (allocation-free) compiled plan execution.
	worldCols    []string
	worldColumns []*sqlengine.Column
	worlds       *sqlengine.ColTable

	// ord holds world ordinals 0..cap-1, filled to a high-water mark and
	// shared read-only by the single-range path and every shard env.
	ord []int64

	// envs pools per-shard execution environments (own catalog + engine +
	// worlds table over a world sub-range).
	envMu sync.Mutex
	envs  []*shardEnv
}

// worldsSchema returns the worlds-table column names: the world ordinal
// followed by one column per VG call site.
func worldsSchema(scn *scenario.Scenario) []string {
	cols := make([]string, 0, len(scn.Sites)+1)
	cols = append(cols, scenario.WorldColumn)
	for _, s := range scn.Sites {
		cols = append(cols, s.Column)
	}
	return cols
}

// ownedWorldsTable builds a worlds ColTable whose column headers the owner
// repoints per evaluation (SetInts/SetFloats).
func ownedWorldsTable(cols []string) ([]*sqlengine.Column, *sqlengine.ColTable, error) {
	columns := make([]*sqlengine.Column, len(cols))
	columns[0] = sqlengine.IntColumn(nil)
	for i := 1; i < len(columns); i++ {
		columns[i] = sqlengine.FloatColumn(nil)
	}
	ct, err := sqlengine.NewColTable(scenario.WorldsTable, cols, columns)
	return columns, ct, err
}

// NewEvaluator returns an evaluator for the compiled scenario. The
// scenario's static side tables are installed into the evaluator's catalog.
func NewEvaluator(scn *scenario.Scenario, opts Options) *Evaluator {
	cat := sqlengine.NewCatalog()
	for _, t := range scn.StaticTables {
		cat.Put(t)
	}
	ev := &Evaluator{
		scn:       scn,
		opts:      opts.WithDefaults(),
		catalog:   cat,
		engine:    sqlengine.New(cat),
		worldCols: worldsSchema(scn),
	}
	var err error
	ev.worldColumns, ev.worlds, err = ownedWorldsTable(ev.worldCols)
	if err != nil {
		// Impossible by construction: the schema always has >= 1 column
		// with equal (zero) lengths.
		panic(err)
	}
	return ev
}

// ordRange returns world ordinals [lo, hi) as a slice of the shared,
// fill-once ordinal vector, growing it to hi when needed. Callers only read
// the slice; growth happens on the coordinating goroutine before shard
// goroutines start.
func (ev *Evaluator) ordRange(lo, hi int) []int64 {
	if hi > len(ev.ord) {
		grown := make([]int64, hi)
		copy(grown, ev.ord)
		for i := len(ev.ord); i < hi; i++ {
			grown[i] = int64(i)
		}
		ev.ord = grown
	}
	return ev.ord[lo:hi]
}

// Reconfigure retargets the evaluator at a new (worlds, seed base, sketch
// mode) triple without discarding its warmed state — the compiled plan,
// catalog, pooled shard envs and grown ordinal vector all carry over. This
// is what makes a per-fingerprint evaluator freelist worthwhile on a shard
// worker: consecutive requests for the same scenario differ only in these
// render parameters, and rebuilding an Evaluator per request repays the
// whole warm-up every shard. Zero worlds/seedBase take the defaults. Not
// safe to call concurrently with an evaluation.
func (ev *Evaluator) Reconfigure(worlds int, seedBase uint64, sketchOnly bool) {
	o := ev.opts
	o.Worlds = worlds
	o.SeedBase = seedBase
	o.SketchOnly = sketchOnly
	ev.opts = o.WithDefaults()
}

// Catalog exposes the evaluator's catalog so callers can install static
// side tables the scenario query joins against.
func (ev *Evaluator) Catalog() *sqlengine.Catalog { return ev.catalog }

// Options returns the effective options.
func (ev *Evaluator) Options() Options { return ev.opts }

// Scenario returns the compiled scenario.
func (ev *Evaluator) Scenario() *scenario.Scenario { return ev.scn }

// WorldSeed returns the fixed seed for (site, world i) under the given
// seed base. World seeds are disjoint from fingerprint seeds by
// construction (different derivation labels). Exported so harnesses (the
// fpbench engine benchmark) can materialize a worlds table identical to
// the executor's.
func WorldSeed(seedBase uint64, siteID string, i int) uint64 {
	return rng.Derive(seedBase, "world."+siteID, uint64(i)).Uint64()
}

func (ev *Evaluator) worldSeed(siteID string, i int) uint64 {
	return WorldSeed(ev.opts.SeedBase, siteID, i)
}

// PointResult holds one point's per-world outputs.
type PointResult struct {
	// Point is the evaluated parameter point.
	Point guide.Point
	// Columns maps each output column to its per-world sample vector.
	Columns map[string][]float64
	// Worlds is the number of worlds evaluated.
	Worlds int
	// SiteOutcome records, per site ID, how its samples were obtained.
	SiteOutcome map[string]ReuseKind
	// SQL is the pure TSQL the Query Generator emitted for this point.
	SQL string
	// Sketches holds the merged per-column mergeable aggregates (moments +
	// t-digest) when the point was evaluated in shards; nil on the
	// single-range path, where aggregation folds the full vectors directly.
	Sketches map[string]*aggregate.ColumnStats
	// Degraded marks a partial result: the context deadline expired before
	// the full world budget and Options.AllowDegraded harvested the shards
	// completed so far. Columns is nil and Sketches cover only
	// WorldsCompleted of the requested Worlds.
	Degraded bool
	// WorldsCompleted is the number of worlds whose samples contributed to
	// a degraded result's sketches; zero when Degraded is false.
	WorldsCompleted int
}

// FreshSites returns how many sites required fresh VG simulation.
func (p *PointResult) FreshSites() int {
	n := 0
	for _, k := range p.SiteOutcome {
		if k == Computed {
			n++
		}
	}
	return n
}

// batchWorlds is how many worlds are simulated between context checks: a
// cancelled context stops a simulation within one batch, not at the end of
// the full world loop.
const batchWorlds = 64

// PanicError reports a panic recovered inside the executor's simulation or
// shard goroutines. A panicking VG-Function (or a bug in a plan kernel)
// fails its own evaluation with this error instead of crashing the process
// — the point of recovery is that one bad render must not take down the
// in-flight renders sharing the server.
type PanicError struct {
	// Stage names where the panic was caught ("simulate", "shard").
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("mc: panic in %s: %v", e.Stage, e.Value)
}

// recoverToError converts a panic in scope into a *PanicError assigned to
// *dst (unless *dst is already set). Use as: defer recoverToError(&err, "stage").
func recoverToError(dst *error, stage string) {
	if r := recover(); r != nil {
		perr := &PanicError{Stage: stage, Value: r, Stack: debug.Stack()}
		if *dst == nil {
			*dst = perr
		}
	}
}

// EvaluatePoint runs the full pipeline for one parameter point. The context
// is checked between sites and once per world-batch during simulation, so
// cancellation aborts a long evaluation promptly; the first error returned
// after cancellation wraps ctx.Err().
//
// With Options.Shards > 1 (or a remote Runner configured) and a shardable
// scenario plan, the world range is split into contiguous shards evaluated
// concurrently and stitched back in world order — bit-identical to the
// single-range evaluation because world seeds derive per (site, world).
//
// An Evaluator is not safe for concurrent EvaluatePoint calls (the
// possible-worlds table lives in its catalog); share the Reuse engine and
// give each goroutine its own Evaluator instead.
func (ev *Evaluator) EvaluatePoint(ctx context.Context, pt guide.Point) (*PointResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if (ev.opts.Shards > 1 || ev.opts.Runner != nil || ev.opts.SketchOnly || ev.opts.AllowDegraded) && ev.scn.Plan().Shardable() && ev.opts.Worlds > 1 {
		return ev.evaluateSharded(ctx, pt)
	}
	// The point span groups this point's stage spans under the render's
	// active span; with no active span every obs call below is a nil no-op.
	psp := obs.SpanFrom(ctx).Child("point")
	defer psp.End()
	psp.SetInt("worlds", int64(ev.opts.Worlds))
	res := &PointResult{
		Point:       pt,
		Worlds:      ev.opts.Worlds,
		Columns:     make(map[string][]float64, len(ev.scn.OutputCols)),
		SiteOutcome: make(map[string]ReuseKind, len(ev.scn.Sites)),
	}

	// 1. Obtain per-site sample vectors (fresh or re-mapped).
	ssp := psp.Child("simulate")
	var spillBefore storage.Stats
	if ssp != nil && ev.opts.Reuse != nil {
		spillBefore = ev.opts.Reuse.store.Stats()
	}
	siteSamples := make([][]float64, len(ev.scn.Sites))
	for si := range ev.scn.Sites {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		site := &ev.scn.Sites[si]
		samples, kind, err := ev.samplesFor(ctx, site, pt)
		if err != nil {
			return nil, err
		}
		siteSamples[si] = samples
		res.SiteOutcome[site.ID] = kind
	}
	if ssp != nil {
		ssp.SetInt("sites", int64(len(ev.scn.Sites)))
		recordOutcomes(ssp, res.SiteOutcome)
		if ev.opts.Reuse != nil {
			noteSpillDeltas(ssp, spillBefore, ev.opts.Reuse.store.Stats())
		}
	}
	ssp.End()

	// 2. Materialize the possible-worlds table — directly as columns: the
	// world ordinal is an int vector and each site's sample vector becomes a
	// float column as-is, with no row transpose and no boxing. The table and
	// its column headers are evaluator-owned and updated in place; only the
	// catalog entry is refreshed, so the compiled plan's zero-allocation
	// execution is not surrounded by per-point table garbage.
	msp := psp.Child("worlds-materialize")
	ev.worldColumns[0].SetInts(ev.ordRange(0, ev.opts.Worlds))
	for si := range ev.scn.Sites {
		ev.worldColumns[si+1].SetFloats(siteSamples[si])
	}
	ev.catalog.PutColumns(ev.worlds)
	msp.End()

	// 3. Query Generator: emit pure TSQL for diagnostics (the paper's GUI
	// displays it), then execute the scenario's COMPILED plan with the
	// point's parameter bindings — semantically identical to parsing and
	// executing the generated SQL (the differential suite asserts so), but
	// with zero parse cost and, after warm-up, zero per-operator
	// allocation: the plan's kernels write into pooled buffers that are
	// recycled on Release below.
	xsp := psp.Child("plan-execute")
	var counters *sqlengine.ExecCounters
	if xsp != nil {
		counters = &sqlengine.ExecCounters{}
	}
	sql, err := ev.scn.GenerateSQL(pt)
	if err != nil {
		return nil, err
	}
	res.SQL = sql
	out, err := ev.scn.Plan().ExecCounted(ev.engine, pt, counters)
	if err != nil {
		return nil, fmt.Errorf("mc: executing scenario plan: %w", err)
	}
	if out == nil {
		return nil, fmt.Errorf("mc: scenario plan produced no result")
	}
	defer out.Release()
	recordExecCounters(xsp, counters)
	xsp.End()

	// 4. Collect output samples as column slices — the Result Aggregator
	// consumes float vectors, so the engine's typed columns convert without
	// boxing a single row. Purely categorical (string) columns are carried
	// in the SQL result but have no distribution to aggregate, so they are
	// skipped here; NULLs or mixed types in a numeric column are errors.
	for _, colName := range ev.scn.OutputCols {
		col, err := out.Column(colName)
		if err != nil {
			return nil, err
		}
		if col.Len() > 0 && col.AllStrings() {
			continue
		}
		fs, err := col.Float64s()
		if err != nil {
			return nil, fmt.Errorf("mc: output column %q: %w", colName, err)
		}
		res.Columns[colName] = fs
	}
	return res, nil
}

// probeCount returns k, the number of world-seed probes used as the
// fingerprint, clamped so probing never exceeds half the full simulation.
func (ev *Evaluator) probeCount() int {
	k := ev.opts.Reuse.cfg.Length
	if max := ev.opts.Worlds / 2; k > max {
		k = max
	}
	if k < 2 {
		k = 2
	}
	return k
}

// samplesFor produces the per-world sample vector for one site at one
// point, consulting the reuse engine when configured.
//
// The fingerprint of a point is its output under the first k *world* seeds
// — a prefix of the very sample vector the point would produce. This keeps
// the paper's "fixed sequence of random inputs" definition while making
// probes double as validation on real output worlds: a computed point's
// fingerprint costs nothing extra, and a re-mapped vector is exact at every
// probed index (the probes overwrite the mapped values).
func (ev *Evaluator) samplesFor(ctx context.Context, site *scenario.Site, pt guide.Point) ([]float64, ReuseKind, error) {
	args, key, err := site.ArgValues(pt)
	if err != nil {
		return nil, Computed, err
	}
	r := ev.opts.Reuse
	if r == nil {
		samples, err := ev.simulate(ctx, site, args, 0, ev.opts.Worlds, nil)
		return samples, Computed, err
	}
	if err := r.bindSeedBase(ev.opts.SeedBase); err != nil {
		return nil, Computed, err
	}

	// Exact cache hit: this (site, args) pair was already evaluated.
	if cached, ok := r.store.Get(site.ID, key); ok {
		if len(cached) >= ev.opts.Worlds {
			r.record(CachedExact)
			return cached[:ev.opts.Worlds], CachedExact, nil
		}
		// Stored run was smaller than requested; fall through to recompute.
	}

	// Probe the target at the first k world seeds (k VG invocations).
	k := ev.probeCount()
	probes, err := ev.simulate(ctx, site, args, 0, k, nil)
	if err != nil {
		return nil, Computed, fmt.Errorf("mc: fingerprinting %s%s: %w", site.ID, key, err)
	}
	fp := core.Fingerprint{Outputs: probes}
	for i, v := range probes {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, Computed, fmt.Errorf("mc: fingerprinting %s%s: non-finite probe %g at world %d", site.ID, key, v, i)
		}
	}

	// Try to re-map from an explored basis.
	if match, ok := r.index.FindMapping(site.ID, fp); ok {
		if basis, ok := r.store.Get(site.ID, match.BasisKey); ok && len(basis) >= ev.opts.Worlds {
			mapped, err := match.Mapping.Apply(basis[:ev.opts.Worlds])
			if err == nil {
				// The probed worlds are exact; splice them in.
				copy(mapped[:k], probes)
				// Cache the mapped vector for exact re-hits, but do NOT
				// register it as a basis: all mappings stay single-hop from
				// computed points, so affine error cannot compound.
				r.store.Put(site.ID, key, mapped)
				kind := Identity
				if match.Mapping.Kind == core.MappingAffine {
					kind = Affine
				}
				r.record(kind)
				return mapped, kind, nil
			}
		}
		// Basis evicted or unusable: simulate below.
	}

	// Simulate the remaining worlds; the probes are worlds 0..k-1.
	samples, err := ev.simulate(ctx, site, args, k, ev.opts.Worlds, probes)
	if err != nil {
		return nil, Computed, err
	}
	r.install(site.ID, key, samples, fp)
	return samples, Computed, nil
}

// simulate invokes the site's VG-Function for worlds [from, to), in
// parallel, returning the full [0, to) vector. prefix supplies the already-
// computed worlds [0, from) (nil when from is 0). The context is checked
// once per batchWorlds worlds in every worker, so cancellation stops a long
// simulation within one world-batch.
func (ev *Evaluator) simulate(ctx context.Context, site *scenario.Site, args []value.Value, from, to int, prefix []float64) ([]float64, error) {
	samples := make([]float64, to)
	copy(samples, prefix[:from])
	n := to - from
	workers := ev.opts.Workers
	if workers > n {
		workers = n
	}
	run := func(lo, hi int) (err error) {
		// A panicking VG-Function fails this simulation, not the process.
		defer recoverToError(&err, "simulate")
		for i := lo; i < hi; i++ {
			if (i-lo)%batchWorlds == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			v, err := ev.scn.Registry.Invoke(site.Name, ev.worldSeed(site.ID, i), args)
			if err != nil {
				return fmt.Errorf("mc: %s world %d: %w", site.ID, i, err)
			}
			f, err := v.AsFloat()
			if err != nil {
				return fmt.Errorf("mc: %s world %d: %w", site.ID, i, err)
			}
			samples[i] = f
		}
		return nil
	}
	if workers <= 1 {
		if err := run(from, to); err != nil {
			return nil, err
		}
		return samples, nil
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := from + w*chunk
		hi := lo + chunk
		if hi > to {
			hi = to
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var err error
			defer func() {
				if err != nil {
					errCh <- err
				}
			}()
			// run recovers VG panics itself, but the boundary defer is what
			// guarantees a panic anywhere in this goroutine fails the
			// simulation, not the process (errCh is buffered per worker).
			defer recoverToError(&err, "simulate")
			err = run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return samples, nil
}
