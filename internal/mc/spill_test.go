package mc

import (
	"context"
	"os"
	"testing"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/storage"
)

// spillBudget is small enough that a single 300-world basis overflows the
// RAM tier: with spill enabled nearly every basis lives out-of-core.
const spillBudget = 4096

// TestSpillDifferentialBitIdentical is the tentpole acceptance test: for
// every bundled example scenario, a point sweep evaluated with a RAM
// budget far below the basis working set plus a spill tier produces
// byte-for-byte the same output vectors as unbounded in-RAM reuse — on the
// first pass (demotions during the sweep) and on a second pass over the
// same points (every basis faulted back from disk). The reuse decisions
// match because the two stores address the same basis set; the samples
// match because spilled payloads round-trip exactly.
func TestSpillDifferentialBitIdentical(t *testing.T) {
	ctx := context.Background()
	const worlds = 300
	for _, name := range sqlparser.ExampleScenarioNames() {
		t.Run(name, func(t *testing.T) {
			scn := compileExample(t, name)
			axis := scn.Space.Params[0].Name
			points, err := scn.Space.Sweep(axis, scn.DefaultPoint())
			if err != nil {
				t.Fatal(err)
			}

			baseReuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			base := NewEvaluator(scn, Options{Worlds: worlds, Reuse: baseReuse})

			spillReuse, err := NewReuse(core.DefaultConfig(), storage.Options{
				BudgetBytes: spillBudget,
				SpillDir:    t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer spillReuse.Close()
			spill := NewEvaluator(scn, Options{Worlds: worlds, Reuse: spillReuse})

			for pass := 0; pass < 2; pass++ {
				for pi, pt := range points {
					want, err := base.EvaluatePoint(ctx, pt)
					if err != nil {
						t.Fatal(err)
					}
					got, err := spill.EvaluatePoint(ctx, pt)
					if err != nil {
						t.Fatalf("pass %d point %d (spilled): %v", pass, pi, err)
					}
					assertSameColumns(t, pass, want, got)
					for site, kind := range want.SiteOutcome {
						if got.SiteOutcome[site] != kind {
							t.Fatalf("pass %d point %d: site %s outcome %v, want %v (reuse decisions diverged)",
								pass, pi, site, got.SiteOutcome[site], kind)
						}
					}
				}
			}

			st := spillReuse.StoreStats()
			if st.Inserted >= 2 && st.Demoted == 0 {
				t.Fatalf("working set never spilled: %+v", st)
			}
			if st.SpillErrors != 0 || st.Quarantined != 0 {
				t.Fatalf("spill tier errors: %+v", st)
			}
		})
	}
}

// TestSpillKillAndReopen: snapshot a spill-enabled engine WITHOUT closing
// it (simulating a killed process — the tier persists its manifest after
// every put, and column files are fsynced before rename), reopen against
// the same spill dir, and require every basis back with zero corrupted
// reads: all sites serve as exact cache hits, nothing is quarantined, and
// the outputs are bit-identical.
func TestSpillKillAndReopen(t *testing.T) {
	ctx := context.Background()
	const worlds = 300
	scn := compileExample(t, "capacityplanning")
	axis := scn.Space.Params[0].Name
	points, err := scn.Space.Sweep(axis, scn.DefaultPoint())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snap := dir + "/reuse.snap"

	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{BudgetBytes: spillBudget, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: worlds, Reuse: reuse})
	want := make([]*PointResult, len(points))
	for i, pt := range points {
		if want[i], err = ev.EvaluatePoint(ctx, pt); err != nil {
			t.Fatal(err)
		}
	}
	if err := reuse.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// The manifest-mode snapshot carries keys, not payloads: it must be far
	// smaller than the bases it addresses (len(points) sites × worlds × 8B).
	if fi, err := os.Stat(snap); err != nil {
		t.Fatal(err)
	} else if max := int64(len(points)) * worlds * 8 / 2; fi.Size() > max {
		t.Fatalf("manifest snapshot is %d bytes (payload-sized; want < %d)", fi.Size(), max)
	}
	// No Close: the process "dies" here.

	loaded, err := LoadSnapshot(snap, storage.Options{BudgetBytes: spillBudget, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	ev2 := NewEvaluator(scn, Options{Worlds: worlds, Reuse: loaded})
	for i, pt := range points {
		got, err := ev2.EvaluatePoint(ctx, pt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameColumns(t, i, want[i], got)
		for site, kind := range got.SiteOutcome {
			if kind != CachedExact {
				t.Fatalf("point %d site %s: outcome %v after reopen, want cached (basis lost or re-simulated)", i, site, kind)
			}
		}
	}
	st := loaded.StoreStats()
	if st.Quarantined != 0 || st.SpillErrors != 0 {
		t.Fatalf("reopen saw corruption: %+v", st)
	}
}

// TestShardInputCacheBitIdentical: worker-mode shard renders with the
// shard-input cache (spilling) return byte-identical outputs to uncached
// renders, and the second render serves from the cache.
func TestShardInputCacheBitIdentical(t *testing.T) {
	ctx := context.Background()
	const worlds = 300
	scn := compileExample(t, "capacityplanning")
	pt := scn.DefaultPoint()
	shard := WorldRange{Lo: 50, Hi: 250}

	base := NewEvaluator(scn, Options{Worlds: worlds, Shards: 4})
	want, err := base.EvaluateShard(ctx, pt, shard)
	if err != nil {
		t.Fatal(err)
	}

	inputs, err := storage.Open(storage.Options{BudgetBytes: spillBudget, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer inputs.Close()
	ev := NewEvaluator(scn, Options{Worlds: worlds, Shards: 4, ShardInputs: inputs})
	for pass := 0; pass < 2; pass++ {
		got, err := ev.EvaluateShard(ctx, pt, shard)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for col, fs := range want.Columns {
			gs, ok := got.Columns[col]
			if !ok || len(gs) != len(fs) {
				t.Fatalf("pass %d: column %q shape mismatch", pass, col)
			}
			for i := range fs {
				if gs[i] != fs[i] {
					t.Fatalf("pass %d: column %q world %d = %v, want %v", pass, col, i, gs[i], fs[i])
				}
			}
		}
	}
	st := inputs.Stats()
	if st.Hits == 0 {
		t.Fatalf("second render did not hit the shard-input cache: %+v", st)
	}
}
