package mc

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/storage"
)

// TestSnapshotDuringConcurrentEvaluation drives evaluators over a shared
// reuse engine while snapshots are taken in parallel — the server's
// periodic-persistence pattern. Run under -race (the CI test job does),
// this covers the store/index consistency the Save lock now guarantees;
// every snapshot taken mid-flight must also load cleanly.
func TestSnapshotDuringConcurrentEvaluation(t *testing.T) {
	scn := compileFigure2(t)
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const evaluators = 4
	const rounds = 6
	var wg sync.WaitGroup
	for g := 0; g < evaluators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine gets its own Evaluator (the worlds table is
			// evaluator-local); only the reuse engine is shared.
			ev := NewEvaluator(scn, Options{Worlds: 64, Reuse: reuse})
			for i := 0; i < rounds; i++ {
				pt := point(int64(i*4), int64(8*(g%3)), 32, 36)
				if _, err := ev.EvaluatePoint(context.Background(), pt); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	path := filepath.Join(t.TempDir(), "reuse.snap")
	for i := 0; i < 8; i++ {
		if err := reuse.SaveSnapshot(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadSnapshot(path, storage.Options{})
		if err != nil {
			t.Fatalf("snapshot %d did not load: %v", i, err)
		}
		// Every index entry in a consistent snapshot must have its basis
		// present in the store — the torn state the Save lock prevents.
		for _, ie := range loaded.index.Export() {
			if !loaded.store.Contains(ie.Label, ie.Key) {
				t.Fatalf("snapshot %d: index entry %s%s has no stored basis", i, ie.Label, ie.Key)
			}
		}
	}
	wg.Wait()

	// One final snapshot of the settled state must round-trip too.
	if err := reuse.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path, storage.Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestSaveSnapshotAtomicRename: a failed write never clobbers an existing
// snapshot, and the temp file is cleaned up.
func TestSaveSnapshotAtomicRename(t *testing.T) {
	scn := compileFigure2(t)
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 32, Reuse: reuse})
	if _, err := ev.EvaluatePoint(context.Background(), point(0, 0, 0, 12)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "reuse.snap")
	if err := reuse.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "reuse.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("snapshot dir = %v, want exactly [reuse.snap]", names)
	}
	if _, err := LoadSnapshot(filepath.Join(dir, "missing.snap"), storage.Options{}); err == nil {
		t.Error("loading a missing snapshot should error")
	}
	// Truncated snapshots are rejected, not silently accepted.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.snap")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(trunc, storage.Options{}); err == nil || err == io.EOF {
		t.Errorf("truncated snapshot should produce a wrapped error, got %v", err)
	}
}
