package mc

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/storage"
)

// Persistence for the reuse state. The paper notes models live in the
// database so "she can update all Fuzzy Prophet instances using the model";
// the reuse engine's basis distributions and fingerprints are similarly
// shareable state: because every sample is deterministic in (seed base,
// site, world), a saved snapshot stays valid across processes as long as
// the scenario, models and seed base are unchanged.
//
// The snapshot embeds the fingerprint configuration and the bound seed
// base; loading validates both, refusing to mix incompatible state.

// snapshotVersion guards the gob layout. Version 2 adds SpillKeys:
// a store with a spill tier snapshots as a MANIFEST — the spilled keys,
// with payloads left in their CRC-protected column files — instead of a
// full payload copy. Version 1 streams (full Bases, no SpillKeys) still
// decode: gob matches fields by name.
const snapshotVersion = 2

type reuseSnapshot struct {
	Version  int
	Config   core.Config
	SeedBase uint64
	Bound    bool
	Bases    []storage.Entry
	Index    []core.IndexEntry
	// SpillKeys lists the bases resident in the spill tier at save time
	// (manifest-mode snapshots only). Loading against the same spill dir
	// re-addresses them without copying a byte; loading without the spill
	// dir degrades those bases to on-demand re-simulation.
	SpillKeys []storage.KeyRef
}

// Save serializes the reuse engine's basis store and fingerprint index.
// Counters are not persisted (they describe a run, not the state).
//
// With a spill tier configured, Save is a manifest operation: every
// RAM-resident basis is first demoted to its column file (Store.Sync), and
// the snapshot records only the spilled keys — no sample payloads cross
// the encoder. Such a snapshot is bound to its spill directory; load it
// with the same SpillDir, or the bases degrade to on-demand re-simulation
// (the fingerprint index still loads, so re-mapping resumes as bases are
// recomputed). RAM-only stores snapshot full payloads, as before.
//
// The engine lock is held for the duration, and evaluators install each
// computed basis and its fingerprint under that same lock (Reuse.install),
// so the captured store and index are mutually consistent: the snapshot
// never contains an index entry whose basis it lacks. Renders sharing the
// engine block on their install step until the snapshot is written; keep
// snapshots off the render hot path (a periodic ticker, not per-request).
func (r *Reuse) Save(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := reuseSnapshot{
		Version:  snapshotVersion,
		Config:   r.cfg,
		SeedBase: r.seedBase,
		Bound:    r.seedBound,
		Index:    r.index.Export(),
	}
	if r.store.HasSpill() {
		if err := r.store.Sync(); err != nil {
			return fmt.Errorf("mc: syncing basis store to spill tier: %w", err)
		}
		snap.SpillKeys = r.store.SpillKeys()
	} else {
		snap.Bases = r.store.Snapshot()
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("mc: saving reuse state: %w", err)
	}
	return nil
}

// SaveSnapshot writes the reuse state to path atomically: the snapshot is
// encoded to a temporary file in the same directory and renamed into
// place, so a reader (or a crash mid-write) never observes a torn file.
// Like Save, it holds the engine lock for the duration.
func (r *Reuse) SaveSnapshot(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mc: snapshot dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("mc: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := r.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("mc: snapshot temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("mc: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot, returning a
// fresh reuse engine whose basis store is configured by storeOpts. A
// manifest-mode snapshot (saved with a spill tier) needs storeOpts.SpillDir
// pointing at the same directory to re-address its bases.
func LoadSnapshot(path string, storeOpts storage.Options) (*Reuse, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mc: opening reuse snapshot: %w", err)
	}
	defer f.Close()
	return LoadReuse(f, storeOpts)
}

// LoadReuse reads a snapshot previously written by Save, returning a reuse
// engine whose basis store is configured by storeOpts. The snapshot's
// fingerprint configuration is restored verbatim. Accepts version 1 (full
// payload) and version 2 (manifest-mode when saved with a spill tier)
// streams. Manifest-mode bases not found in the reopened spill tier —
// wrong or missing SpillDir, or files quarantined after corruption —
// degrade to on-demand re-simulation rather than failing the load.
func LoadReuse(rd io.Reader, storeOpts storage.Options) (*Reuse, error) {
	var snap reuseSnapshot
	if err := gob.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mc: loading reuse state: %w", err)
	}
	if snap.Version != 1 && snap.Version != snapshotVersion {
		return nil, fmt.Errorf("mc: reuse snapshot version %d not supported (want <= %d)", snap.Version, snapshotVersion)
	}
	r, err := NewReuse(snap.Config, storeOpts)
	if err != nil {
		return nil, err
	}
	r.seedBase = snap.SeedBase
	r.seedBound = snap.Bound
	r.store.Restore(snap.Bases)
	if err := r.index.Import(snap.Index); err != nil {
		return nil, err
	}
	return r, nil
}

// bindSeedBase pins the reuse state to one world-seed base. All evaluators
// sharing a reuse engine must agree on it — basis samples drawn under a
// different base would be silently wrong.
func (r *Reuse) bindSeedBase(base uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.seedBound {
		r.seedBase = base
		r.seedBound = true
		return nil
	}
	if r.seedBase != base {
		return fmt.Errorf("mc: reuse state is bound to seed base %d; evaluator uses %d (shared reuse requires a single seed base)",
			r.seedBase, base)
	}
	return nil
}
