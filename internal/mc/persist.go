package mc

import (
	"encoding/gob"
	"fmt"
	"io"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/storage"
)

// Persistence for the reuse state. The paper notes models live in the
// database so "she can update all Fuzzy Prophet instances using the model";
// the reuse engine's basis distributions and fingerprints are similarly
// shareable state: because every sample is deterministic in (seed base,
// site, world), a saved snapshot stays valid across processes as long as
// the scenario, models and seed base are unchanged.
//
// The snapshot embeds the fingerprint configuration and the bound seed
// base; loading validates both, refusing to mix incompatible state.

// snapshotVersion guards the gob layout.
const snapshotVersion = 1

type reuseSnapshot struct {
	Version  int
	Config   core.Config
	SeedBase uint64
	Bound    bool
	Bases    []storage.Entry
	Index    []core.IndexEntry
}

// Save serializes the reuse engine's basis store and fingerprint index.
// Counters are not persisted (they describe a run, not the state).
func (r *Reuse) Save(w io.Writer) error {
	r.mu.Lock()
	snap := reuseSnapshot{
		Version:  snapshotVersion,
		Config:   r.cfg,
		SeedBase: r.seedBase,
		Bound:    r.seedBound,
	}
	r.mu.Unlock()
	snap.Bases = r.store.Snapshot()
	snap.Index = r.index.Export()
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("mc: saving reuse state: %w", err)
	}
	return nil
}

// LoadReuse reads a snapshot previously written by Save, returning a reuse
// engine with the given store budget. The snapshot's fingerprint
// configuration is restored verbatim.
func LoadReuse(rd io.Reader, storeBudget int64) (*Reuse, error) {
	var snap reuseSnapshot
	if err := gob.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mc: loading reuse state: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("mc: reuse snapshot version %d not supported (want %d)", snap.Version, snapshotVersion)
	}
	r, err := NewReuse(snap.Config, storeBudget)
	if err != nil {
		return nil, err
	}
	r.seedBase = snap.SeedBase
	r.seedBound = snap.Bound
	r.store.Restore(snap.Bases)
	if err := r.index.Import(snap.Index); err != nil {
		return nil, err
	}
	return r, nil
}

// bindSeedBase pins the reuse state to one world-seed base. All evaluators
// sharing a reuse engine must agree on it — basis samples drawn under a
// different base would be silently wrong.
func (r *Reuse) bindSeedBase(base uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.seedBound {
		r.seedBase = base
		r.seedBound = true
		return nil
	}
	if r.seedBase != base {
		return fmt.Errorf("mc: reuse state is bound to seed base %d; evaluator uses %d (shared reuse requires a single seed base)",
			r.seedBase, base)
	}
	return nil
}
