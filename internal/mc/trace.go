package mc

// Stage-span helpers for render tracing. Every helper is a no-op when the
// span is nil, so the untraced hot path pays a nil check and nothing else;
// snapshotting store stats (which takes the store lock) happens only on
// traced runs.

import (
	"time"

	"fuzzyprophet/internal/obs"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/storage"
)

// recordOutcomes attaches per-reuse-kind site counts to a simulate span.
func recordOutcomes(sp *obs.Span, outcomes map[string]ReuseKind) {
	if sp == nil {
		return
	}
	var counts [4]int64
	for _, k := range outcomes {
		if int(k) < len(counts) {
			counts[k]++
		}
	}
	for k, n := range counts {
		if n > 0 {
			sp.SetInt("sites_"+ReuseKind(k).String(), n)
		}
	}
}

// noteSpillDeltas reports spill-tier work that happened between two store
// stat snapshots as synthetic completed child spans, attributing demotion
// (eviction writes) and promotion (mapped fault-backs) time to the stage
// that triggered it.
func noteSpillDeltas(sp *obs.Span, before, after storage.Stats) {
	if sp == nil {
		return
	}
	if d := after.Demoted - before.Demoted; d > 0 {
		c := sp.Note("spill-demote", time.Duration(after.DemoteNanos-before.DemoteNanos))
		c.SetInt("count", d)
	}
	if p := after.Promoted - before.Promoted; p > 0 {
		c := sp.Note("spill-promote", time.Duration(after.PromoteNanos-before.PromoteNanos))
		c.SetInt("count", p)
	}
}

// recordExecCounters turns one plan execution's operator counters into
// attributes and per-operator child spans of the plan-execute span.
func recordExecCounters(sp *obs.Span, c *sqlengine.ExecCounters) {
	if sp == nil || c == nil {
		return
	}
	sp.SetInt("rows_in", c.RowsIn)
	sp.SetInt("rows_out", c.RowsOut)
	if c.Fallback {
		sp.SetStr("fallback_reason", c.FallbackReason)
		op := sp.Note("op:interpreted", time.Duration(c.EvalNS))
		op.SetInt("rows_out", c.RowsOut)
		return
	}
	bind := sp.Note("op:bind", time.Duration(c.BindNS))
	bind.SetInt("rows_out", c.RowsIn)
	if c.JoinKind != "" {
		bind.SetStr("join", c.JoinKind)
		bind.SetInt("build_rows", c.BuildRows)
		bind.SetInt("probe_rows", c.ProbeRows)
	}
	if c.WhereIn > 0 {
		w := sp.Note("op:where", time.Duration(c.WhereNS))
		w.SetInt("rows_in", c.WhereIn)
		w.SetInt("rows_out", c.WhereOut)
	}
	eval := sp.Note("op:project", time.Duration(c.EvalNS))
	eval.SetInt("rows_out", c.RowsOut)
	if c.Grouped {
		eval.SetInt("grouped", 1)
	}
}
