package mc

import (
	"context"
	"math"
	"strings"
	"testing"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/stats"
	"fuzzyprophet/internal/storage"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

const figure2 = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current EXPECT overload WITH bold red, EXPECT capacity WITH blue y2, EXPECT_STDDEV demand WITH orange y2;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.01 GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`

func testRegistry(t *testing.T) *vg.Registry {
	t.Helper()
	r := vg.NewRegistry()
	if err := vg.RegisterBuiltins(r); err != nil {
		t.Fatal(err)
	}
	if err := models.RegisterDefaults(r); err != nil {
		t.Fatal(err)
	}
	return r
}

func compileFigure2(t *testing.T) *scenario.Scenario {
	t.Helper()
	scn, err := scenario.Compile(figure2, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func point(current, p1, p2, feature int64) guide.Point {
	return guide.Point{
		"current":   value.Int(current),
		"purchase1": value.Int(p1),
		"purchase2": value.Int(p2),
		"feature":   value.Int(feature),
	}
}

func TestEvaluatePointBasics(t *testing.T) {
	scn := compileFigure2(t)
	ev := NewEvaluator(scn, Options{Worlds: 200})
	res, err := ev.EvaluatePoint(context.Background(), point(5, 16, 32, 36))
	if err != nil {
		t.Fatal(err)
	}
	if res.Worlds != 200 {
		t.Errorf("worlds = %d", res.Worlds)
	}
	for _, col := range []string{"demand", "capacity", "overload"} {
		samples, ok := res.Columns[col]
		if !ok || len(samples) != 200 {
			t.Fatalf("column %s = %d samples", col, len(samples))
		}
	}
	// Week 5, purchases far away: capacity near initial, no overload.
	var over stats.Moments
	for _, x := range res.Columns["overload"] {
		over.Add(x)
	}
	if over.Mean() > 0.05 {
		t.Errorf("week-5 overload probability = %g, want ~0", over.Mean())
	}
	var dem stats.Moments
	for _, x := range res.Columns["demand"] {
		dem.Add(x)
	}
	if math.Abs(dem.Mean()-41500) > 1000 {
		t.Errorf("week-5 demand mean = %g, want ≈ 41500", dem.Mean())
	}
	if !strings.Contains(res.SQL, "__worlds") {
		t.Errorf("generated SQL missing worlds table: %s", res.SQL)
	}
	if res.FreshSites() != 2 {
		t.Errorf("fresh sites = %d, want 2 (no reuse engine)", res.FreshSites())
	}
}

func TestEvaluatePointDeterministic(t *testing.T) {
	scn := compileFigure2(t)
	a := NewEvaluator(scn, Options{Worlds: 50})
	b := NewEvaluator(scn, Options{Worlds: 50})
	pt := point(20, 8, 24, 12)
	ra, err := a.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	for col := range ra.Columns {
		for i := range ra.Columns[col] {
			if ra.Columns[col][i] != rb.Columns[col][i] {
				t.Fatalf("column %s world %d differs across evaluators", col, i)
			}
		}
	}
}

func TestSeedBaseChangesSamples(t *testing.T) {
	scn := compileFigure2(t)
	a := NewEvaluator(scn, Options{Worlds: 50, SeedBase: 1})
	b := NewEvaluator(scn, Options{Worlds: 50, SeedBase: 2})
	pt := point(20, 8, 24, 12)
	ra, _ := a.EvaluatePoint(context.Background(), pt)
	rb, _ := b.EvaluatePoint(context.Background(), pt)
	same := 0
	for i := range ra.Columns["demand"] {
		if ra.Columns["demand"][i] == rb.Columns["demand"][i] {
			same++
		}
	}
	if same == 50 {
		t.Error("different seed bases must give different samples")
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	scn := compileFigure2(t)
	serial := NewEvaluator(scn, Options{Worlds: 64, Workers: 1})
	parallel := NewEvaluator(scn, Options{Worlds: 64, Workers: 8})
	pt := point(30, 12, 28, 44)
	rs, err := serial.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	for col := range rs.Columns {
		for i := range rs.Columns[col] {
			if rs.Columns[col][i] != rp.Columns[col][i] {
				t.Fatalf("parallel evaluation differs at %s[%d]", col, i)
			}
		}
	}
}

func TestReuseCachedExact(t *testing.T) {
	scn := compileFigure2(t)
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 100, Reuse: reuse})
	pt := point(10, 16, 32, 36)
	r1, err := ev.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SiteOutcome["DemandModel#0"] != Computed {
		t.Errorf("first evaluation should compute, got %v", r1.SiteOutcome)
	}
	r2, err := ev.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	for site, kind := range r2.SiteOutcome {
		if kind != CachedExact {
			t.Errorf("site %s second evaluation = %v, want cached", site, kind)
		}
	}
	for col := range r1.Columns {
		for i := range r1.Columns[col] {
			if r1.Columns[col][i] != r2.Columns[col][i] {
				t.Fatal("cached evaluation changed the samples")
			}
		}
	}
}

// The headline behaviour: moving a purchase date re-uses weeks the move
// cannot affect, via identity mappings, and the re-mapped samples are
// exactly what direct simulation would produce.
func TestReuseIdentityAcrossPurchaseMove(t *testing.T) {
	scn := compileFigure2(t)
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 100, Reuse: reuse})

	// Evaluate week 5 with purchase1 = 20, then move purchase1 to 28.
	// Week 5 precedes any arrival, so CapacityModel's outputs coincide.
	if _, err := ev.EvaluatePoint(context.Background(), point(5, 20, 40, 36)); err != nil {
		t.Fatal(err)
	}
	res, err := ev.EvaluatePoint(context.Background(), point(5, 28, 40, 36))
	if err != nil {
		t.Fatal(err)
	}
	if res.SiteOutcome["CapacityModel#0"] != Identity {
		t.Errorf("capacity site = %v, want identity reuse", res.SiteOutcome["CapacityModel#0"])
	}
	// Demand does not depend on purchases at all, so its argument tuple is
	// unchanged: an exact cache hit, cheaper than even an identity map.
	if res.SiteOutcome["DemandModel#0"] != CachedExact {
		t.Errorf("demand site = %v, want exact cache hit", res.SiteOutcome["DemandModel#0"])
	}

	// Ground truth: direct simulation without reuse.
	direct := NewEvaluator(scn, Options{Worlds: 100})
	want, err := direct.EvaluatePoint(context.Background(), point(5, 28, 40, 36))
	if err != nil {
		t.Fatal(err)
	}
	for col := range want.Columns {
		for i := range want.Columns[col] {
			if res.Columns[col][i] != want.Columns[col][i] {
				t.Fatalf("identity-reused samples differ from direct simulation at %s[%d]", col, i)
			}
		}
	}
}

func TestReuseSavesVGInvocations(t *testing.T) {
	reg := testRegistry(t)
	scn, err := scenario.Compile(figure2, reg)
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const worlds = 200
	ev := NewEvaluator(scn, Options{Worlds: worlds, Reuse: reuse})

	if _, err := ev.EvaluatePoint(context.Background(), point(5, 20, 40, 36)); err != nil {
		t.Fatal(err)
	}
	before := reg.TotalInvocations()
	if _, err := ev.EvaluatePoint(context.Background(), point(5, 24, 40, 36)); err != nil {
		t.Fatal(err)
	}
	after := reg.TotalInvocations()
	spent := after - before
	// The moved-purchase point costs only the capacity site's fingerprint
	// (k seeds); the demand site is an exact cache hit with zero
	// invocations.
	k := int64(core.DefaultConfig().Length)
	if spent > k {
		t.Errorf("reused point spent %d invocations, want <= %d", spent, k)
	}
	counts := reuse.Counts()
	if counts[Identity] != 1 || counts[CachedExact] != 1 {
		t.Errorf("counts = %v, want identity=1 cached=1", counts)
	}
}

func TestReuseStatsAndReset(t *testing.T) {
	scn := compileFigure2(t)
	reuse, _ := NewReuse(core.DefaultConfig(), storage.Options{})
	ev := NewEvaluator(scn, Options{Worlds: 50, Reuse: reuse})
	if _, err := ev.EvaluatePoint(context.Background(), point(5, 20, 40, 36)); err != nil {
		t.Fatal(err)
	}
	if got := reuse.Counts()[Computed]; got != 2 {
		t.Errorf("computed = %d", got)
	}
	if reuse.StoreStats().Entries != 2 {
		t.Errorf("store entries = %d", reuse.StoreStats().Entries)
	}
	reuse.ResetCounts()
	if len(reuse.Counts()) != 0 {
		t.Error("ResetCounts failed")
	}
	if reuse.Config().Length != core.DefaultConfig().Length {
		t.Error("Config accessor wrong")
	}
	if reuse.Index() == nil {
		t.Error("Index accessor nil")
	}
}

func TestEvaluateErrorsPropagate(t *testing.T) {
	reg := testRegistry(t)
	scn, err := scenario.Compile(`
DECLARE PARAMETER @p AS RANGE -5 TO 5 STEP BY 1;
SELECT Gaussian(0, @p) AS g;`, reg)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 10})
	// Negative stddev parameter: VG invocation fails, error must surface.
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(-1)}); err == nil {
		t.Error("VG error should propagate")
	}
	// Works for the valid part of the space.
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(1)}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateErrorsPropagateWithReuse(t *testing.T) {
	reg := testRegistry(t)
	scn, err := scenario.Compile(`
DECLARE PARAMETER @p AS RANGE -5 TO 5 STEP BY 1;
SELECT Gaussian(0, @p) AS g;`, reg)
	if err != nil {
		t.Fatal(err)
	}
	reuse, _ := NewReuse(core.DefaultConfig(), storage.Options{})
	ev := NewEvaluator(scn, Options{Worlds: 10, Reuse: reuse})
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(-1)}); err == nil {
		t.Error("VG error should propagate through the fingerprint path")
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Worlds != 1000 || o.SeedBase != 20110612 || o.Workers < 1 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestReuseKindString(t *testing.T) {
	names := map[ReuseKind]string{
		Computed: "computed", CachedExact: "cached",
		Identity: "identity", Affine: "affine",
		ReuseKind(9): "ReuseKind(9)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestStaticTableJoin(t *testing.T) {
	reg := testRegistry(t)
	scn, err := scenario.Compile(`
DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;
SELECT region, Gaussian(100, 1) * share AS local;`, reg)
	if err == nil {
		// The FROM-less form cannot reference region/share; expect the
		// error at evaluation time instead of compile time, so recompile
		// with the FROM clause.
		_ = scn
	}
	scn, err = scenario.Compile(`
DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;
SELECT region, Gaussian(100, 1) * share AS local FROM regions;`, reg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sqlengine.NewTable("regions", []string{"region", "share"}, [][]value.Value{
		{value.Str("east"), value.Float(0.75)},
		{value.Str("west"), value.Float(0.25)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 40})
	res, err := ev.EvaluatePoint(context.Background(), guide.Point{"w": value.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	// One row per (world × region): 80 samples for the numeric column;
	// the categorical region column is excluded from aggregation.
	if got := len(res.Columns["local"]); got != 80 {
		t.Fatalf("local samples = %d, want 80", got)
	}
	if _, ok := res.Columns["region"]; ok {
		t.Error("categorical column should not be aggregated")
	}
	// The shares partition the Gaussian: mean over all rows ≈ 100 × 0.5.
	var m stats.Moments
	for _, x := range res.Columns["local"] {
		m.Add(x)
	}
	if math.Abs(m.Mean()-50) > 2 {
		t.Errorf("mean = %g, want ≈ 50", m.Mean())
	}
}

func TestAffineReuseOnRevenueModel(t *testing.T) {
	// The revenue model's units at two prices are exactly proportional for
	// a fixed seed — the affine-mapping showcase.
	reg := testRegistry(t)
	scn, err := scenario.Compile(`
DECLARE PARAMETER @week AS RANGE 0 TO 10 STEP BY 1;
DECLARE PARAMETER @price AS SET (8, 10, 12);
SELECT UnitsModel(@week, @price) AS units;`, reg)
	if err != nil {
		t.Fatal(err)
	}
	reuse, _ := NewReuse(core.DefaultConfig(), storage.Options{})
	ev := NewEvaluator(scn, Options{Worlds: 300, Reuse: reuse})
	pt1 := guide.Point{"week": value.Int(3), "price": value.Int(10)}
	pt2 := guide.Point{"week": value.Int(3), "price": value.Int(12)}
	if _, err := ev.EvaluatePoint(context.Background(), pt1); err != nil {
		t.Fatal(err)
	}
	res, err := ev.EvaluatePoint(context.Background(), pt2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SiteOutcome["UnitsModel#0"] != Affine {
		t.Fatalf("units site = %v, want affine", res.SiteOutcome["UnitsModel#0"])
	}
	// Affine-mapped samples match direct simulation to high precision.
	direct := NewEvaluator(scn, Options{Worlds: 300})
	want, err := direct.EvaluatePoint(context.Background(), pt2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Columns["units"] {
		a, b := res.Columns["units"][i], want.Columns["units"][i]
		if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("affine remap error too large at world %d: %g vs %g", i, a, b)
		}
	}
}
