package mc

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/storage"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

// Failure injection: the executor must surface model failures cleanly,
// stay usable afterwards, and behave correctly when the basis store is
// under memory pressure.

// flakyVG fails every invocation once failAfter invocations have happened.
type flakyVG struct {
	calls     atomic.Int64
	failAfter int64
}

func (f *flakyVG) Name() string { return "Flaky" }
func (f *flakyVG) Arity() int   { return 1 }
func (f *flakyVG) Generate(seed uint64, args []value.Value) (value.Value, error) {
	n := f.calls.Add(1)
	if f.failAfter >= 0 && n > f.failAfter {
		return value.Null, errors.New("flaky model exploded")
	}
	return value.Float(rng.New(seed).Normal(0, 1)), nil
}

func flakyScenario(t *testing.T, failAfter int64) (*scenario.Scenario, *flakyVG) {
	t.Helper()
	reg := vg.NewRegistry()
	f := &flakyVG{failAfter: failAfter}
	if err := reg.Register(f); err != nil {
		t.Fatal(err)
	}
	scn, err := scenario.Compile(`
DECLARE PARAMETER @p AS RANGE 0 TO 10 STEP BY 1;
SELECT Flaky(@p) AS x;`, reg)
	if err != nil {
		t.Fatal(err)
	}
	return scn, f
}

func TestMidRunFailureSurfaces(t *testing.T) {
	scn, _ := flakyScenario(t, 30) // fails during the first point's worlds
	ev := NewEvaluator(scn, Options{Worlds: 100, Workers: 1})
	_, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(0)})
	if err == nil {
		t.Fatal("mid-run VG failure must surface")
	}
	if !strings.Contains(err.Error(), "flaky model exploded") {
		t.Errorf("error lost cause: %v", err)
	}
	if !strings.Contains(err.Error(), "world") {
		t.Errorf("error lacks world context: %v", err)
	}
}

func TestMidRunFailureSurfacesInParallel(t *testing.T) {
	scn, _ := flakyScenario(t, 30)
	ev := NewEvaluator(scn, Options{Worlds: 100, Workers: 8})
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(0)}); err == nil {
		t.Fatal("parallel mid-run VG failure must surface")
	}
}

func TestFailureDuringFingerprintProbes(t *testing.T) {
	scn, _ := flakyScenario(t, 10) // fails during the probe prefix
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 100, Workers: 1, Reuse: reuse})
	_, err = ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(0)})
	if err == nil {
		t.Fatal("probe failure must surface")
	}
	if !strings.Contains(err.Error(), "fingerprinting") && !strings.Contains(err.Error(), "world") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestRecoveryAfterFailure(t *testing.T) {
	scn, f := flakyScenario(t, 30)
	ev := NewEvaluator(scn, Options{Worlds: 20, Workers: 1})
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(0)}); err != nil {
		t.Fatalf("first 20 worlds should succeed: %v", err)
	}
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(1)}); err == nil {
		t.Fatal("second point should hit the failure")
	}
	// "Fix the model": the evaluator keeps working.
	f.failAfter = -1
	f.calls.Store(0)
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(1)}); err != nil {
		t.Fatalf("evaluator should recover once the model is fixed: %v", err)
	}
}

// nanVG produces NaN for a specific parameter value.
type nanVG struct{}

func (nanVG) Name() string { return "Nanny" }
func (nanVG) Arity() int   { return 1 }
func (nanVG) Generate(seed uint64, args []value.Value) (value.Value, error) {
	p, _ := args[0].AsInt()
	if p == 3 {
		return value.Float(math.NaN()), nil
	}
	return value.Float(1), nil
}

func TestNaNOutputRejectedByFingerprintPath(t *testing.T) {
	reg := vg.NewRegistry()
	if err := reg.Register(nanVG{}); err != nil {
		t.Fatal(err)
	}
	scn, err := scenario.Compile(`
DECLARE PARAMETER @p AS RANGE 0 TO 10 STEP BY 1;
SELECT Nanny(@p) AS x;`, reg)
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 50, Reuse: reuse})
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(3)}); err == nil {
		t.Fatal("NaN output must be rejected before it poisons the index")
	}
	// The index stays clean: other points still work.
	if _, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(4)}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreEvictionForcesRecompute: with a tiny basis-store budget, bases
// are evicted and reuse degrades to recomputation — results must stay
// correct throughout.
func TestStoreEvictionForcesRecompute(t *testing.T) {
	reg := vg.NewRegistry()
	if err := vg.RegisterBuiltins(reg); err != nil {
		t.Fatal(err)
	}
	scn, err := scenario.Compile(`
DECLARE PARAMETER @p AS RANGE 0 TO 20 STEP BY 1;
SELECT Gaussian(@p, 1) AS x;`, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Budget for roughly two 100-world vectors.
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{BudgetBytes: 2 * (100*8 + 80)})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(scn, Options{Worlds: 100, Reuse: reuse})
	direct := NewEvaluator(scn, Options{Worlds: 100})

	// Sweep forward and backward so early points are long evicted.
	order := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 1, 2}
	for _, p := range order {
		got, err := ev.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(p)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.EvaluatePoint(context.Background(), guide.Point{"p": value.Int(p)})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Columns["x"] {
			a, b := got.Columns["x"][i], want.Columns["x"][i]
			// Affine-remapped worlds may differ by floating-point rounding
			// of the fitted map; anything beyond that is corruption.
			if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
				t.Fatalf("p=%d world %d: eviction corrupted results (%g vs %g)", p, i, a, b)
			}
		}
	}
	if reuse.StoreStats().Evicted == 0 {
		t.Error("test should actually trigger evictions")
	}
}

// TestSmallerWorldCountReusesLargerRun: a cached basis longer than the
// requested world count serves a prefix; a shorter one forces recompute.
func TestWorldCountInteractionWithCache(t *testing.T) {
	reg := vg.NewRegistry()
	if err := vg.RegisterBuiltins(reg); err != nil {
		t.Fatal(err)
	}
	scn, err := scenario.Compile(`
DECLARE PARAMETER @p AS RANGE 0 TO 5 STEP BY 1;
SELECT Gaussian(@p, 1) AS x;`, reg)
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big := NewEvaluator(scn, Options{Worlds: 200, Reuse: reuse})
	small := NewEvaluator(scn, Options{Worlds: 50, Reuse: reuse})
	pt := guide.Point{"p": value.Int(2)}
	if _, err := big.EvaluatePoint(context.Background(), pt); err != nil {
		t.Fatal(err)
	}
	res, err := small.EvaluatePoint(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	if res.SiteOutcome["Gaussian#0"] != CachedExact {
		t.Errorf("prefix of a longer run should be a cache hit, got %v", res.SiteOutcome)
	}
	// The other direction recomputes (no silent truncation).
	pt2 := guide.Point{"p": value.Int(3)}
	if _, err := small.EvaluatePoint(context.Background(), pt2); err != nil {
		t.Fatal(err)
	}
	res, err = big.EvaluatePoint(context.Background(), pt2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SiteOutcome["Gaussian#0"] == CachedExact {
		t.Error("a shorter cached run must not serve a longer request")
	}
	if len(res.Columns["x"]) != 200 {
		t.Errorf("world count = %d", len(res.Columns["x"]))
	}
}
