// Package cli holds the plumbing shared by the fuzzyprophet, fpbench and
// fpserver commands: OS-signal-driven context cancellation and the
// conventional exit-code handling for interrupted runs.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled by Ctrl-C (SIGINT) or SIGTERM.
// Every simulation loop in the engine checks its context per world-batch,
// so cancellation aborts long renders and sweeps within milliseconds. Call
// stop to release the signal handlers.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// ExitCode maps an error to the process exit code: 0 for nil, 130
// (128+SIGINT, the shell convention) for context cancellation so scripts
// can tell an interrupt from a real failure, and 1 otherwise.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 130
	default:
		return 1
	}
}

// Fatal reports err on stderr prefixed with the program name and exits
// with ExitCode(err). Cancellation prints "cancelled" rather than the raw
// context error.
func Fatal(prog string, err error) {
	if ExitCode(err) == 130 {
		fmt.Fprintf(os.Stderr, "%s: cancelled\n", prog)
	} else {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	}
	os.Exit(ExitCode(err))
}
