package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirstAnalyzer enforces the PR 1 API contract: cancellation flows
// through explicit context parameters — first in the signature, per Go
// convention — and is never frozen into a struct, where it would outlive
// the call that supplied it and silently decouple renders from their
// callers' deadlines (the resilience layer's budget propagation depends on
// every layer passing ctx through).
//
// It reports exported functions and methods that take a context.Context
// anywhere but parameter 0, and struct types that declare a
// context.Context field.
var CtxFirstAnalyzer = &Analyzer{
	Name: "fpctxfirst",
	Doc: "exported functions must take context.Context as their first " +
		"parameter, and no struct may store one",
	Run: runCtxFirst,
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func runCtxFirst(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				checkCtxPosition(pass, d)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) {
							pass.Reportf(field.Pos(), "struct %s stores a context.Context: contexts are call-scoped — pass ctx as the first parameter instead, or deadlines and cancellation silently detach from the caller", ts.Name.Name)
						}
					}
				}
			}
		}
	}
	return nil
}

func checkCtxPosition(pass *Pass, d *ast.FuncDecl) {
	idx := 0
	for _, field := range d.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && isContextType(t) && idx != 0 {
			pass.Reportf(field.Pos(), "%s takes context.Context as parameter %d: context goes first so call sites read uniformly and cancellation is never an afterthought", d.Name.Name, idx)
		}
		idx += n
	}
}
