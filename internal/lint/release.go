package lint

import (
	"go/ast"
	"go/types"
)

// ReleaseAnalyzer guards the pooled-buffer contract behind the compiled
// plan path's 0 allocs/op: PlanResult columns live in plan-owned pooled
// buffers recycled by PlanResult.Release (PR 4), and shard workers keep
// per-fingerprint evaluator freelists checked out per request (PR 8). A
// value checked out of one of those pools and silently dropped is a leak
// that erodes the pools until every request allocates again.
//
// For each call to a pool-origin function (Execute, ExecCounted, checkout)
// whose result type has a Release or Close method, the assigned variable
// must be released (a Release/Close call, possibly deferred), returned, or
// passed onward (argument, assignment target, composite literal, channel
// send) somewhere in the enclosing function. Read-only use is not enough.
var ReleaseAnalyzer = &Analyzer{
	Name: "fprelease",
	Doc: "values checked out of plan-result and evaluator pools " +
		"(Execute/ExecCounted/checkout) must be Released/Closed, returned, or passed on",
	Run: runRelease,
}

// originCallNames are the pool checkout points: sqlengine's
// Plan.Execute/ExecCounted hand out pooled PlanResults; ShardWorker's and
// the shard env pool's checkout hands out freelisted evaluators.
var originCallNames = map[string]bool{
	"Execute":     true,
	"ExecCounted": true,
	"checkout":    true,
}

func runRelease(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk declared functions only: closures are scanned as part of
		// their enclosing declaration (a checkout in a closure and its
		// release in the same closure — or vice versa — both land in the
		// one walk), which keeps each finding reported exactly once.
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkReleases(pass, funcNode{name: fd.Name.Name, body: fd.Body, typ: fd.Type, decl: fd})
			}
		}
	}
	return nil
}

func checkReleases(pass *Pass, fn funcNode) {
	// Collect (variable, origin) pairs checked out anywhere in this
	// declaration, closures included.
	type checkout struct {
		obj    *types.Var
		def    *ast.Ident
		origin string
		method string // the Release/Close method the type offers
	}
	var outs []checkout
	ast.Inspect(fn.body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeObject(pass.TypesInfo, call)
		if callee == nil || !originCallNames[callee.Name()] {
			return true
		}
		for _, lhs := range asg.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
			if !ok {
				if obj, ok = pass.TypesInfo.Uses[id].(*types.Var); !ok {
					continue
				}
			}
			if m, ok := hasMethod(obj.Type(), "Release", "Close"); ok {
				outs = append(outs, checkout{obj: obj, def: id, origin: callee.Name(), method: m})
			}
		}
		return true
	})
	if len(outs) == 0 {
		return
	}

	for _, co := range outs {
		released := false
		escaped := false
		inspectWithParents(fn.body, func(n ast.Node, parents []ast.Node) bool {
			if released || escaped {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || id == co.def {
				return true
			}
			if pass.TypesInfo.Uses[id] != co.obj {
				return true
			}
			if len(parents) == 0 {
				return true
			}
			switch p := parents[len(parents)-1].(type) {
			case *ast.SelectorExpr:
				// v.Release() / v.Close() — including deferred forms.
				if p.X == id && (p.Sel.Name == "Release" || p.Sel.Name == "Close") {
					if len(parents) >= 2 {
						if call, ok := parents[len(parents)-2].(*ast.CallExpr); ok && call.Fun == p {
							released = true
						}
					}
				}
			case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
				escaped = true
			case *ast.CallExpr:
				// v passed as an argument (not v itself being called).
				for _, arg := range p.Args {
					if ast.Unparen(arg) == ast.Expr(id) {
						escaped = true
					}
				}
			case *ast.AssignStmt:
				// v on the right-hand side of another assignment: aliased
				// or stored; the new holder owns the release.
				for _, rhs := range p.Rhs {
					if ast.Unparen(rhs) == ast.Expr(id) {
						escaped = true
					}
				}
			case *ast.UnaryExpr:
				if p.Op.String() == "&" {
					escaped = true
				}
			}
			return true
		})
		if !released && !escaped {
			pass.Reportf(co.def.Pos(), "%s checked out of %s is never released: call %s (or defer it), return it, or pass it on — dropped pooled values leak the pool", co.obj.Name(), co.origin, co.method)
		}
	}
}
