package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// DeterminismAnalyzer enforces the repository's central invariant: the
// simulate/plan path is a pure function of (scenario, bindings, seed).
// Every bit-identity guarantee — shard stitching (PR 5), spill vs RAM
// (PR 6), renders under chaos (PR 9) — rests on it.
//
// Inside the determinism-critical packages it reports:
//
//   - imports of math/rand, math/rand/v2, or crypto/rand: entropy is
//     internal/rng's job (seeded per (site, world)); any other source is
//     unseeded or machine-dependent;
//   - calls to time.Now / time.Since / time.Tick / time.After: results
//     must not observe the wall clock (internal/obs owns the observability
//     clock for timing instrumentation, whose readings never feed result
//     columns);
//   - `for range` over a map that appends to an outer slice (unless the
//     enclosing function visibly sorts that slice afterwards) or folds
//     into an outer floating-point accumulator: map iteration order is
//     randomized per run, so such loops produce order-dependent output —
//     the exact bug class that breaks shard bit-identity undetectably.
var DeterminismAnalyzer = &Analyzer{
	Name: "fpdeterminism",
	Doc: "forbid wall-clock reads, non-rng entropy, and map-iteration-order-" +
		"dependent folds in the simulate/plan packages",
	Packages: []string{
		"internal/sqlengine",
		"internal/mc",
		"internal/vg",
		"internal/aggregate",
		"internal/stats",
	},
	Run: runDeterminism,
}

var forbiddenEntropyImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

var forbiddenClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Tick":  true,
	"After": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if forbiddenEntropyImports[path] {
				pass.Reportf(spec.Pos(), "import of %s in a determinism-critical package: only internal/rng may draw entropy (seeded per (site, world)) so renders stay bit-reproducible", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "time" && forbiddenClockFuncs[obj.Name()] {
				pass.Reportf(call.Pos(), "call to time.%s in a determinism-critical package: results must not observe the wall clock (use internal/obs's clock for timing instrumentation)", obj.Name())
			}
			return true
		})
		for _, fn := range functionsIn(f) {
			checkMapRangeFolds(pass, fn)
		}
	}
	return nil
}

// checkMapRangeFolds flags map-range loops in fn whose body builds
// order-dependent output.
func checkMapRangeFolds(pass *Pass, fn funcNode) {
	ast.Inspect(fn.body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch asg.Tok {
			case token.ASSIGN:
				// x = append(x, ...) onto a slice declared outside the loop.
				for i, rhs := range asg.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(asg.Lhs) {
						continue
					}
					if obj := outerVar(pass.TypesInfo, asg.Lhs[i], rng); obj != nil && !sortedAfter(pass, fn.body, obj, rng) {
						pass.Reportf(asg.Pos(), "appends to %s in map iteration order: map order is randomized per run; iterate sorted keys or sort %s afterwards", obj.Name(), obj.Name())
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				// x += v floating-point fold: float addition is not
				// associative, so the fold's value depends on map order.
				for _, lhs := range asg.Lhs {
					obj := outerVar(pass.TypesInfo, lhs, rng)
					if obj == nil {
						continue
					}
					if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						pass.Reportf(asg.Pos(), "floating-point fold into %s in map iteration order: float %s is not associative, so the result depends on randomized map order; fold over sorted keys", obj.Name(), asg.Tok)
					}
				}
			}
			return true
		})
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outerVar resolves expr to a variable declared outside loop (or a struct
// field, which is outer by definition). Returns nil for loop-local
// variables and unresolvable expressions.
func outerVar(info *types.Info, expr ast.Expr, loop ast.Node) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			if v, ok = info.Defs[e].(*types.Var); !ok {
				return nil
			}
		}
		if within(loop, int(v.Pos())) {
			return nil // declared inside the loop: per-iteration, not a fold target
		}
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

// sortedAfter reports whether fn's body, after the range loop, passes obj
// to a sort.* or slices.Sort* call — the Catalog.Names pattern: collect map
// keys, then sort, which is deterministic.
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj *types.Var, loop ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() {
			return true
		}
		fnObj := calleeObject(pass.TypesInfo, call)
		if fnObj == nil || fnObj.Pkg() == nil {
			return true
		}
		if p := fnObj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
