package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ShadowAnalyzer is the x/tools "shadow" check, narrowed to the shape that
// risks real bugs: a block-level `x, err := f()` re-declares a
// function-local variable of the same name and identical type, the block
// *falls through* (its last statement is not a return/branch/panic), and
// the first thing the function later does with the outer variable is READ
// it. Execution can then flow straight from the shadowing declaration to a
// read of the stale outer value — the classic "handled the inner err,
// forgot it never propagated" bug.
//
// Deliberate idiom stays silent: shadows in terminating blocks
// (`if cond { v, err := f(); return v, err }`), `if err := f(); ...` and
// other init-clause declarations (scoped by construction), closure and
// function parameters (capture-by-value), range variables, shadows of
// package-level names, shadows of a different type, and inner variables
// whose outer twin is never used again or is overwritten before its next
// read (a write cannot observe the stale value).
var ShadowAnalyzer = &Analyzer{
	Name: "fpshadow",
	Doc: "flag block-level re-declarations that shadow a same-typed function-" +
		"local variable when control falls through to a later use of the outer one",
	Run: runShadow,
}

func runShadow(pass *Pass) error {
	// All use positions per object, once per package, sorted so the first
	// use after a given position is findable.
	uses := map[types.Object][]token.Pos{}
	for id, obj := range pass.TypesInfo.Uses {
		uses[obj] = append(uses[obj], id.Pos())
	}
	for _, ps := range uses {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}

	// Positions where an identifier is a plain assignment target: such a
	// use overwrites the variable rather than reading it.
	writes := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && st.Tok != token.ADD_ASSIGN &&
						st.Tok != token.SUB_ASSIGN && st.Tok != token.MUL_ASSIGN &&
						st.Tok != token.QUO_ASSIGN && st.Tok != token.REM_ASSIGN &&
						st.Tok != token.AND_ASSIGN && st.Tok != token.OR_ASSIGN &&
						st.Tok != token.XOR_ASSIGN && st.Tok != token.SHL_ASSIGN &&
						st.Tok != token.SHR_ASSIGN && st.Tok != token.AND_NOT_ASSIGN {
						writes[id.Pos()] = true
					}
				}
			case *ast.RangeStmt:
				if st.Tok == token.ASSIGN {
					if id, ok := st.Key.(*ast.Ident); ok {
						writes[id.Pos()] = true
					}
					if id, ok := st.Value.(*ast.Ident); ok {
						writes[id.Pos()] = true
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		inspectWithParents(f, func(n ast.Node, parents []ast.Node) bool {
			if len(parents) == 0 {
				return true
			}
			block, inBlock := parents[len(parents)-1].(*ast.BlockStmt)
			if !inBlock {
				return true
			}
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok != token.DEFINE {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						checkShadowedDecl(pass, uses, writes, id, block)
					}
				}
			case *ast.DeclStmt:
				gd, ok := st.Decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					return true
				}
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							checkShadowedDecl(pass, uses, writes, id, block)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkShadowedDecl reports id when it newly declares a variable that
// shadows a live, same-typed variable of an enclosing function scope and
// its block falls through toward a stale read of the outer variable.
func checkShadowedDecl(pass *Pass, uses map[types.Object][]token.Pos, writes map[token.Pos]bool, id *ast.Ident, block *ast.BlockStmt) {
	v, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok || v.Name() == "_" {
		return // "_", or a := that re-uses an existing variable
	}
	inner := v.Parent()
	if inner == nil || inner.Parent() == nil {
		return
	}
	_, outerObj := inner.Parent().LookupParent(v.Name(), id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer == v || outer.IsField() {
		return
	}
	outerScope := outer.Parent()
	if outerScope == nil || outerScope == types.Universe || outerScope == pass.Pkg.Scope() {
		return // package-level or universe shadows are idiomatic
	}
	if !types.Identical(v.Type(), outer.Type()) {
		return // a different type is a deliberate reuse of the name
	}
	if terminates(block) {
		return // the block exits before the outer variable can be read stale
	}
	// Find the outer variable's first use after the inner scope ends; only
	// a READ can observe the stale value (a write overwrites it first).
	for _, p := range uses[outer] {
		if p <= inner.End() {
			continue
		}
		if !writes[p] {
			pass.Reportf(id.Pos(), "declaration of %q shadows a same-typed variable declared at %s, and control falls through to a later read of the outer one: the outer value is not updated here — rename the inner variable or assign with =", v.Name(), pass.Fset.Position(outer.Pos()))
		}
		return
	}
}

// terminates reports whether a block's execution cannot fall off its end:
// its last statement returns, branches away, panics, or is an
// if/else or block whose arms all terminate. (A conservative subset of the
// spec's terminating statements — loops and switches are treated as
// falling through.)
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return terminatingStmt(b.List[len(b.List)-1])
}

func terminatingStmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(st)
	case *ast.IfStmt:
		if st.Else == nil {
			return false
		}
		return terminates(st.Body) && terminatingStmt(st.Else)
	}
	return false
}
