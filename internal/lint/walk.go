package lint

import "go/ast"

// inspectWithParents walks root like ast.Inspect but hands the visitor the
// stack of ancestor nodes (outermost first, not including n itself).
// Several checks need one level of context — "is this selector the operand
// of &, and is that the argument of an atomic call" — that plain Inspect
// cannot answer.
func inspectWithParents(root ast.Node, visit func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		stack = append(stack, n)
		if !descend {
			// Still push/pop symmetrically: Inspect will deliver the nil
			// pop for this node only if we return true, so mirror that.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// within reports whether pos falls inside node's source span.
func within(node ast.Node, pos int) bool {
	return int(node.Pos()) <= pos && pos < int(node.End())
}
