// Package recoverfix is fpgorecover's bad fixture: goroutine literals in an
// internal/mc-pathed package that do not isolate panics at their boundary.
package recoverfix

func work() {}

func Bare(done chan struct{}) {
	go func() { // want "goroutine must isolate panics at its boundary"
		work()
		close(done)
	}()
}

// LateDefer registers its recovery after work has begun, which protects
// nothing that came before it.
func LateDefer(errs chan error) {
	go func() { // want "goroutine must isolate panics at its boundary"
		work()
		var err error
		defer recoverToError(&err, "late")
	}()
}

// NonRecoveringDefer defers cleanup, not recovery.
func NonRecoveringDefer(done chan struct{}) {
	go func() { // want "goroutine must isolate panics at its boundary"
		defer close(done)
		work()
	}()
}
