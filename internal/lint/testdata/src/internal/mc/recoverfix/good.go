package recoverfix

// recoverToError mirrors the real helper's shape: a recovering defer for
// goroutine boundaries.
func recoverToError(dst *error, stage string) {
	if r := recover(); r != nil {
		_ = r
		_ = dst
		_ = stage
	}
}

// Helper recovers via the named helper, registered before any work; the
// declarations and the result-send defer ahead of it are allowed prologue.
func Helper(errs chan error) {
	go func() {
		var err error
		defer func() { errs <- err }()
		defer recoverToError(&err, "work")
		work()
	}()
}

// Inline recovers with a literal defer that calls recover directly.
func Inline() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		work()
	}()
}

type runner struct{}

func (runner) run() {}

// Method launches a named method, which owns its recovery; only literals
// are checked at the launch site.
func Method() {
	var r runner
	go r.run()
}
