package determfix

import "sort"

// SortedKeys is the Catalog.Names pattern: collecting in map order is fine
// when the slice is visibly sorted before anyone can observe the order.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IntTotal folds integers, which are associative: any iteration order
// produces the same bits.
func IntTotal(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SliceSum ranges over a slice, whose order is deterministic.
func SliceSum(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// PerKey folds into a loop-local accumulator: each key's sum is independent
// of iteration order.
func PerKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}
