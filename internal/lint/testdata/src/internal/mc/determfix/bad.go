// Package determfix is fpdeterminism's bad fixture: the path places it
// under internal/mc, so every construct here sits inside the analyzer's
// determinism-critical scope and must be flagged.
package determfix

import (
	"math/rand" // want "import of math/rand in a determinism-critical package"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want `call to time\.Now in a determinism-critical package`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `call to time\.Since in a determinism-critical package`
}

func Draw() int {
	return rand.Int()
}

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to keys in map iteration order"
	}
	return keys
}

func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point fold into sum in map iteration order"
	}
	return sum
}
