package ctxfix

import "context"

// Run takes ctx first, per convention.
func Run(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// Job passes ctx per call instead of storing it.
type Job struct{ name string }

// Process is an exported method with ctx first.
func (j *Job) Process(ctx context.Context) error {
	_ = j.name
	return ctx.Err()
}

// helper is unexported: the position rule covers the exported API surface.
func helper(name string, ctx context.Context) error {
	_ = name
	return ctx.Err()
}
