// Package ctxfix is fpctxfirst's bad fixture: contexts out of position and
// contexts frozen into structs.
package ctxfix

import "context"

func Fetch(name string, ctx context.Context) error { // want `Fetch takes context\.Context as parameter 1`
	return ctx.Err()
}

func Render(a, b int, ctx context.Context, verbose bool) error { // want `Render takes context\.Context as parameter 2`
	_ = verbose
	return ctx.Err()
}

type Worker struct {
	ctx context.Context // want `struct Worker stores a context\.Context`
	n   int
}

func (w *Worker) N() int { return w.n }
