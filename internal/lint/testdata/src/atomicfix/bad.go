// Package atomicfix is fpatomic's bad fixture: a field updated through
// sync/atomic in one method and accessed plainly in others.
package atomicfix

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
}

func (c *counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) Read() int64 {
	return c.hits // want "non-atomic access to field hits"
}

func (c *counter) Reset() {
	c.hits = 0 // want "non-atomic access to field hits"
}

// Bump touches total, which is never accessed atomically: plain-only fields
// are outside the rule.
func (c *counter) Bump() {
	c.total++
}
