package atomicfix

import "sync/atomic"

// gauge accesses val atomically everywhere.
type gauge struct {
	val int64
}

func (g *gauge) Set(v int64) { atomic.StoreInt64(&g.val, v) }
func (g *gauge) Get() int64  { return atomic.LoadInt64(&g.val) }

// typed uses the typed wrapper, which makes plain access impossible — the
// repository's preferred form.
type typed struct {
	n atomic.Int64
}

func (t *typed) Inc()       { t.n.Add(1) }
func (t *typed) Get() int64 { return t.n.Load() }
