package releasefix

// Released gives the buffer back explicitly after use.
func Released(p *Plan) int {
	res := p.Execute()
	n := len(res.cols)
	res.Release()
	return n
}

// Deferred releases on every exit path.
func Deferred(p *Plan) int {
	res := p.Execute()
	defer res.Release()
	return len(res.cols)
}

// Returned transfers ownership to the caller.
func Returned(p *Plan) *Result {
	res := p.Execute()
	return res
}

// Handoff passes the value on; the receiver owns the release.
func Handoff(p *Plan, sink func(*Result)) {
	res := p.Execute()
	sink(res)
}

// Closed applies to Close-style values too.
func Closed(pl pool) int {
	e := pl.checkout()
	defer e.Close()
	return e.n
}
