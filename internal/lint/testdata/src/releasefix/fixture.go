// Package releasefix models the pooled-value contract fprelease guards: a
// Plan whose Execute hands out pooled Results, and a pool whose checkout
// hands out closable environments.
package releasefix

type Result struct{ cols []float64 }

func (r *Result) Release() {}

type Plan struct{}

func (p *Plan) Execute() *Result { return &Result{} }

type env struct{ n int }

func (env) Close() {}

type pool struct{}

func (pool) checkout() env { return env{} }
