package releasefix

// ReadOnly uses the pooled result but never gives it back: the pool drains.
func ReadOnly(p *Plan) int {
	res := p.Execute() // want "res checked out of Execute is never released"
	return len(res.cols)
}

// DroppedEnv reads a field off the checked-out environment and drops it.
func DroppedEnv(pl pool) {
	e := pl.checkout() // want "e checked out of checkout is never released"
	println(e.n)
}
