package unusedfix

import (
	"fmt"
	"os"
	"strings"
)

type status int

func (s status) String() string { return "status" }

func Good(name string) string {
	msg := fmt.Sprintf("hello %s", name)
	fmt.Fprintln(os.Stdout, msg) // effectful: fine in statement position
	if strings.Contains(name, "x") {
		return strings.ToLower(name)
	}
	status(0).String() // same-package method: outside the cross-package rule
	return msg
}
