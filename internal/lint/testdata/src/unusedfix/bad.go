// Package unusedfix is fpunusedresult's bad fixture: pure calls in
// statement position whose only effect — the result — is discarded.
package unusedfix

import (
	"fmt"
	"strings"
	"time"
)

func Bad(name string, d time.Duration) error {
	if name == "" {
		fmt.Errorf("empty name") // want `result of fmt\.Errorf call is unused`
	}
	strings.ToUpper(name) // want `result of strings\.ToUpper call is unused`
	d.String()            // want `result of \(time\.Duration\)\.String call is unused`
	return nil
}
