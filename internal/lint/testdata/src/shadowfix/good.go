package shadowfix

func fetch() (string, error) { return "", nil }
func ping() error            { return nil }

// Terminating block: the shadow cannot flow into a stale outer read.
func Terminating(flag bool) (string, error) {
	s, err := fetch()
	if flag {
		s2, err := fetch()
		return s2, err
	}
	return s, err
}

// Init-clause declarations are scoped to their statement by construction.
func InitClause() string {
	s, err := fetch()
	if err != nil {
		return ""
	}
	if err := ping(); err != nil {
		return ""
	}
	return s
}

// Overwritten: the outer variable is reassigned before its next read, so
// the stale value cannot be observed.
func Overwritten(flag bool) error {
	s, err := fetch()
	if flag {
		s2, err := fetch()
		if err != nil {
			s = s2
		}
	}
	s, err = fetch()
	if err != nil {
		return err
	}
	_ = s
	return nil
}

// OtherType reuses the name for a different type, which is deliberate.
func OtherType() int {
	n := 0
	{
		n := "local"
		logf(nil)
		_ = n
	}
	if n > 0 {
		return n
	}
	return 0
}
