// Package shadowfix is fpshadow's bad fixture: block-level shadows of a
// same-typed variable where control falls through to a stale read of the
// outer one.
package shadowfix

func load() (string, error)           { return "", nil }
func sanitize(string) (string, error) { return "", nil }
func parse(string) (int, error)       { return 0, nil }
func logf(error)                      {}

// ShortDecl is the classic bug: the inner err is handled, but the block
// falls through and the stale outer err decides the function's result.
func ShortDecl() error {
	data, err := load()
	if data == "" {
		cleaned, err := sanitize(data) // want `declaration of "err" shadows a same-typed variable`
		if err != nil {
			logf(err)
		}
		data = cleaned
	}
	if err != nil {
		return err
	}
	_ = data
	return nil
}

// VarDecl is the same hazard spelled with a var declaration.
func VarDecl(mode string) (int, error) {
	n, err := parse(mode)
	if mode != "" {
		var err error // want `declaration of "err" shadows a same-typed variable`
		n, err = parse(mode + "!")
		if err != nil {
			n = 0
		}
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}
