package lint

import (
	"go/ast"
	"go/types"
)

// AtomicCounterAnalyzer guards against the storage.Store counter bug fixed
// in PR 2: a struct field updated through sync/atomic in one place and read
// with a plain load in another is a data race the race detector only
// catches when both paths happen to run concurrently under test. The rule
// is absolute: once any access to a field goes through sync/atomic, every
// access must.
//
// (Fields of the typed atomic.* wrapper types are immune by construction —
// the type system already forbids plain access — which is why the
// repository migrated to them; this analyzer keeps the call-style mixed
// pattern from coming back.)
var AtomicCounterAnalyzer = &Analyzer{
	Name: "fpatomic",
	Doc: "struct fields accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere in the package",
	Run: runAtomicCounter,
}

func runAtomicCounter(pass *Pass) error {
	// Pass 1: fields whose address is taken as a sync/atomic argument.
	atomicFields := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if v := fieldOf(pass.TypesInfo, un.X); v != nil {
					atomicFields[v] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields must itself sit under a
	// &field argument of a sync/atomic call.
	for _, f := range pass.Files {
		inspectWithParents(f, func(n ast.Node, parents []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldOf(pass.TypesInfo, sel)
			if v == nil || !atomicFields[v] {
				return true
			}
			if isAtomicOperand(pass.TypesInfo, parents) {
				return true
			}
			pass.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed with sync/atomic elsewhere in this package: mixed access is a data race — use sync/atomic here too (or migrate the field to a typed atomic.*)", v.Name())
			return true
		})
	}
	return nil
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves expr to the struct field it selects, or nil.
func fieldOf(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isAtomicOperand reports whether the selector whose ancestor stack is
// parents is the direct &sel operand of a sync/atomic call argument.
func isAtomicOperand(info *types.Info, parents []ast.Node) bool {
	n := len(parents)
	if n < 2 {
		return false
	}
	un, ok := parents[n-1].(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return false
	}
	call, ok := parents[n-2].(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}
