// Package lint is fplint's analyzer suite: mechanical enforcement of the
// invariants this repository's correctness claims rest on.
//
// Every bit-identity guarantee the system makes — stitched shard renders
// equal to single-range renders, spill-tier renders equal to RAM renders,
// chaos-schedule renders equal to clean runs — holds only while a handful
// of coding invariants hold everywhere:
//
//   - the simulate/plan path draws entropy exclusively through internal/rng
//     and never observes the wall clock or map iteration order;
//   - every goroutine launched by the evaluator or the server converts
//     panics into errors at its own boundary (the PR 9 isolation contract);
//   - pooled buffers checked out of the plan executor or shard-worker
//     freelists are always released or handed onward;
//   - contexts are passed first and never stored;
//   - a counter field touched through sync/atomic is never touched any
//     other way.
//
// Each invariant is encoded as an Analyzer modeled on the
// golang.org/x/tools/go/analysis API (Name, Doc, Run(*Pass)). The suite is
// built on the standard library alone — go/ast, go/types, and the gc export
// data the toolchain already produces — so the repository keeps its
// zero-dependency go.mod and the linter runs anywhere the toolchain does.
// Fixtures under testdata/src follow the analysistest convention: "// want"
// comments pin the diagnostic each bad line must produce.
//
// Run the whole suite with:
//
//	go run ./cmd/fplint ./...
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant check. It mirrors the x/tools analysis.Analyzer
// surface that this suite needs: a name for diagnostics, a doc string for
// -list, a Run function, and — because scoping lives in the driver rather
// than in each check — an optional package allowlist.
type Analyzer struct {
	Name string
	Doc  string

	// Packages restricts the analyzer to import paths that match one of
	// these path fragments (see PathMatches). Empty means every package.
	Packages []string

	Run func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer run, like analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns every analyzer in the fplint suite, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		GoRecoverAnalyzer,
		ReleaseAnalyzer,
		CtxFirstAnalyzer,
		AtomicCounterAnalyzer,
		ShadowAnalyzer,
		UnusedResultAnalyzer,
	}
}

// PathMatches reports whether import path pkg falls under the path fragment
// target: equal to it, or containing it as a complete slash-separated
// segment run ("internal/mc" matches "fuzzyprophet/internal/mc" and
// "internal/mc/fixture" but not "internal/mcmc").
func PathMatches(pkg, target string) bool {
	if pkg == target {
		return true
	}
	if strings.HasPrefix(pkg, target+"/") || strings.HasSuffix(pkg, "/"+target) {
		return true
	}
	return strings.Contains(pkg, "/"+target+"/")
}

// applies reports whether a runs on package path pkg.
func applies(a *Analyzer, pkg string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, t := range a.Packages {
		if PathMatches(pkg, t) {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every applicable analyzer over every package and
// returns the findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !applies(a, pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ---- shared syntax/type helpers ----

// calleeObject resolves the object a call expression invokes, looking
// through parentheses. Returns nil for calls through function values,
// conversions, and built-ins.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// hasMethod reports whether t (or *t) has a method with one of the given
// names, and returns the first matching name.
func hasMethod(t types.Type, names ...string) (string, bool) {
	if t == nil {
		return "", false
	}
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for _, name := range names {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return name, true
			}
		}
	}
	return "", false
}

// enclosingFuncs returns every function declaration and literal in f, each
// paired with its body. Used by checks that reason per-function.
type funcNode struct {
	name string // declared name, or "func literal"
	body *ast.BlockStmt
	typ  *ast.FuncType
	decl *ast.FuncDecl // nil for literals
}

func functionsIn(f *ast.File) []funcNode {
	var out []funcNode
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcNode{name: fn.Name.Name, body: fn.Body, typ: fn.Type, decl: fn})
			}
		case *ast.FuncLit:
			out = append(out, funcNode{name: "func literal", body: fn.Body, typ: fn.Type})
		}
		return true
	})
	return out
}
