package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T the fixture runner needs; taking the
// interface keeps "testing" out of the non-test build.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantKey locates one expectation: base filename + line.
type wantKey struct {
	file string
	line int
}

// RunFixture loads the fixture package at srcRoot/pkgPath, runs analyzer a
// over it, and checks its diagnostics against the fixture's `// want`
// comments — the analysistest contract:
//
//	time.Now() // want `call to time\.Now`
//
// Each want comment holds one or more Go-quoted regular expressions; every
// diagnostic on that line must match one (and consume it), every want must
// be matched, and lines without a want comment must stay silent.
//
// The analyzer's package scoping is honored: fixtures live under paths like
// testdata/src/internal/mc/..., so scoped analyzers are exercised through
// the same path matching the driver uses.
func RunFixture(t TB, srcRoot, pkgPath string, a *Analyzer) {
	t.Helper()
	pkg, err := LoadFixture(srcRoot, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	if !applies(a, pkg.PkgPath) {
		t.Fatalf("analyzer %s does not apply to fixture package %s (scope %v)", a.Name, pkg.PkgPath, a.Packages)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{file: filepath.Base(pos.Filename), line: pos.Line}
				res, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", key.file, key.line, err)
				}
				wants[key] = append(wants[key], res...)
			}
		}
	}

	for _, d := range diags {
		key := wantKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		matched := false
		rest := wants[key][:0:0]
		for _, re := range wants[key] {
			if !matched && re.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, re)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
		}
	}
}

// parseWant extracts the sequence of Go-quoted regexps from a want
// comment's payload.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = s[len(q):]
	}
}
