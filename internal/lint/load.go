package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON object stream it prints.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %w\n%s", args, err, stderr.String())
	}
	var out []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go %v: decoding output: %w", args, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// exportLookup adapts an ImportPath→export-file map to the lookup function
// the gc importer wants. The importer resolves transitive dependencies
// through the same lookup, so the map must come from a `-deps` listing.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

func typeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return tpkg, info, nil
}

func parseDirFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load loads and type-checks the packages matched by patterns (e.g.
// "./...") in module directory dir. Type information for dependencies comes
// from the toolchain's export data (`go list -export`), so loading works
// offline and without any dependency beyond the go command itself.
//
// Only non-test Go files are analyzed: the invariants fplint enforces
// guard production code paths, and test files routinely (and legitimately)
// use wall clocks and ad-hoc randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,Name,GoFiles,Standard,DepOnly"}, patterns...)
	entries, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	var targets []listEntry
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard && e.Name != "" {
			targets = append(targets, e)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, e := range targets {
		files, err := parseDirFiles(fset, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := typeCheck(fset, e.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{PkgPath: e.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}

// LoadFixture loads one analysis fixture: the package rooted at
// srcRoot/pkgPath (the analysistest testdata/src convention), type-checked
// under import path pkgPath. Fixture imports are limited to the standard
// library; their export data is resolved through `go list -export` exactly
// as in Load.
func LoadFixture(srcRoot, pkgPath string) (*Package, error) {
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && filepath.Ext(de.Name()) == ".go" {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in fixture %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseDirFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}

	imports := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			if p != "unsafe" {
				imports[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		args := []string{"list", "-export", "-deps", "-json=ImportPath,Export"}
		for p := range imports {
			args = append(args, p)
		}
		sort.Strings(args[4:])
		entries, err := goList(srcRoot, args...)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}

	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	tpkg, info, err := typeCheck(fset, pkgPath, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
