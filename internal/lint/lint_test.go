package lint_test

import (
	"testing"

	"fuzzyprophet/internal/lint"
)

// TestFixtures runs every analyzer over its good+bad fixture package under
// testdata/src, checking diagnostics against the `// want` comments — each
// bad line must produce its pinned message, and every good line must stay
// silent. Fixture paths mirror real package paths (internal/mc/...) so
// scoped analyzers are exercised through the driver's path matching.
func TestFixtures(t *testing.T) {
	cases := []struct {
		pkg string
		a   *lint.Analyzer
	}{
		{"internal/mc/determfix", lint.DeterminismAnalyzer},
		{"internal/mc/recoverfix", lint.GoRecoverAnalyzer},
		{"releasefix", lint.ReleaseAnalyzer},
		{"ctxfix", lint.CtxFirstAnalyzer},
		{"atomicfix", lint.AtomicCounterAnalyzer},
		{"shadowfix", lint.ShadowAnalyzer},
		{"unusedfix", lint.UnusedResultAnalyzer},
	}
	for _, tc := range cases {
		t.Run(tc.a.Name, func(t *testing.T) {
			lint.RunFixture(t, "testdata/src", tc.pkg, tc.a)
		})
	}
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		pkg, target string
		want        bool
	}{
		{"internal/mc", "internal/mc", true},
		{"fuzzyprophet/internal/mc", "internal/mc", true},
		{"internal/mc/determfix", "internal/mc", true},
		{"fuzzyprophet/internal/mc/sub", "internal/mc", true},
		{"fuzzyprophet/internal/mcmc", "internal/mc", false},
		{"fuzzyprophet/internal/server", "internal/mc", false},
		{"internal/mcx/mc2", "internal/mc", false},
	}
	for _, tc := range cases {
		if got := lint.PathMatches(tc.pkg, tc.target); got != tc.want {
			t.Errorf("PathMatches(%q, %q) = %v, want %v", tc.pkg, tc.target, got, tc.want)
		}
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestSuiteCleanOnRepo is the merged-tree gate in test form: the whole
// suite must report nothing on the repository itself.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data for the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
