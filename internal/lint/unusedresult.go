package lint

import (
	"go/ast"
)

// UnusedResultAnalyzer is the vet "unusedresult" check with an extended
// list: calling a pure function as a statement discards its only effect.
// The classic bug is `fmt.Errorf(...)` on its own line where `return
// fmt.Errorf(...)` was meant — the error silently vanishes.
var UnusedResultAnalyzer = &Analyzer{
	Name: "fpunusedresult",
	Doc:  "flag statement-position calls to pure functions whose result is discarded",
	Run:  runUnusedResult,
}

// pureFuncs maps package path → function names whose only effect is their
// return value.
var pureFuncs = map[string]map[string]bool{
	"fmt": {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true},
	"errors": {
		"New": true, "Unwrap": true, "Join": true, "Is": true, "As": true,
	},
	"strings": {
		"TrimSpace": true, "ToLower": true, "ToUpper": true, "Repeat": true,
		"Replace": true, "ReplaceAll": true, "Split": true, "Join": true,
		"Fields": true, "Contains": true, "HasPrefix": true, "HasSuffix": true,
	},
	"sort":    {"Reverse": true},
	"maps":    {"Keys": true, "Values": true, "Clone": true},
	"slices":  {"Clone": true, "Contains": true, "Index": true, "Sorted": true},
	"strconv": {"Itoa": true, "Quote": true, "FormatFloat": true, "FormatInt": true},
}

// pureMethods are conventionally side-effect-free methods: discarding their
// result is always a bug.
var pureMethods = map[string]bool{"Error": true, "String": true}

func runUnusedResult(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() != 0 {
					// Method call: flag the conventional pure ones.
					if pureMethods[obj.Name()] && obj.Pkg().Path() != pass.Pkg.Path() {
						pass.Reportf(call.Pos(), "result of (%s).%s call is unused", s.Recv(), obj.Name())
					}
					return true
				}
			}
			if names, ok := pureFuncs[obj.Pkg().Path()]; ok && names[obj.Name()] {
				pass.Reportf(call.Pos(), "result of %s.%s call is unused: the call has no other effect", obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
	return nil
}
