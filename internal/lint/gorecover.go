package lint

import (
	"go/ast"
)

// GoRecoverAnalyzer enforces the PR 9 panic-isolation contract: a panic in
// one shard or simulation goroutine fails that shard's work, never the
// process, and concurrent renders are untouched. That only holds if every
// goroutine launched in the evaluator and the server converts panics into
// errors at its own boundary — a single bare `go func()` reintroduces the
// process-killing panic path.
//
// In internal/mc and internal/server, every `go func() {...}()` literal
// must register a recovering defer before any other work: among the
// literal's leading statements (declarations, assignments, and defers),
// one defer must call recover, recoverToError, or recoverToLog — or be a
// func literal that itself calls recover.
var GoRecoverAnalyzer = &Analyzer{
	Name: "fpgorecover",
	Doc: "every goroutine literal in internal/mc and internal/server must " +
		"begin with a recovering defer (recoverToError / recoverToLog / recover)",
	Packages: []string{"internal/mc", "internal/server"},
	Run:      runGoRecover,
}

// recoveringNames are the helpers this repository uses to convert panics
// at goroutine boundaries: mc.recoverToError and server.recoverToError
// produce *PanicError, server.recoverToLog logs and swallows (for
// background loops with no error channel).
var recoveringNames = map[string]bool{
	"recover":        true,
	"recoverToError": true,
	"recoverToLog":   true,
}

func runGoRecover(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true // `go method(...)`: the callee owns its recovery
			}
			if !hasLeadingRecoverDefer(lit.Body) {
				pass.Reportf(g.Pos(), "goroutine must isolate panics at its boundary: begin the literal with `defer recoverToError(...)` (or a recover-calling defer) so a panic fails this work item, not the process")
			}
			return true
		})
	}
	return nil
}

// hasLeadingRecoverDefer scans the leading prefix of body consisting of
// declarations, assignments, and defer statements, and reports whether one
// of those defers recovers. Statements after the first "real" statement do
// not count: a defer registered after work has begun does not protect that
// work.
func hasLeadingRecoverDefer(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		switch st := st.(type) {
		case *ast.DeclStmt, *ast.AssignStmt:
			continue
		case *ast.DeferStmt:
			if deferRecovers(st) {
				return true
			}
		default:
			return false
		}
	}
	return false
}

func deferRecovers(d *ast.DeferStmt) bool {
	switch fn := ast.Unparen(d.Call.Fun).(type) {
	case *ast.Ident:
		return recoveringNames[fn.Name]
	case *ast.SelectorExpr:
		return recoveringNames[fn.Sel.Name]
	case *ast.FuncLit:
		recovers := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
					recovers = true
				}
			}
			return !recovers
		})
		return recovers
	}
	return false
}
