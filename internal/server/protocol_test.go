package server

import (
	"bytes"
	"net/http"
	"reflect"
	"testing"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/server/protocoltest"
	"fuzzyprophet/internal/sqlparser"
)

// evaluatePoints runs a batch evaluation against base for an already
// registered scenario.
func evaluatePoints(t *testing.T, base, scnID string, req evaluateRequest) fp.BatchResult {
	t.Helper()
	var res fp.BatchResult
	if code := call(t, "POST", base+"/scenarios/"+scnID+"/evaluate", req, &res); code != http.StatusOK {
		t.Fatalf("evaluate = %d", code)
	}
	return res
}

var testPoints = []map[string]any{
	{"current": 2, "purchase1": 0, "feature": 4},
	{"current": 5, "purchase1": 8, "feature": 8},
	{"current": 3, "purchase1": 16, "feature": 6},
}

// TestSteadyStateShardRequestsCarryNoPayload is the wire contract's core
// assertion: after first contact, every shard request to a warm worker
// carries only the fingerprint and point bindings — no script, no side
// tables — verified by inspecting the actual bytes through the proxy.
func TestSteadyStateShardRequestsCarryNoPayload(t *testing.T) {
	_, worker := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(worker.URL)
	t.Cleanup(proxy.Close)
	coordSrv, coord := newTestServer(t, func(c *Config) { c.Workers = []string{proxy.URL()} })

	scn := registerScenario(t, coord.URL)
	for _, pt := range testPoints {
		evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: []map[string]any{pt}, Worlds: 64})
	}

	ex := proxy.ShardExchanges()
	if len(ex) < len(testPoints) {
		t.Fatalf("proxy saw %d shard exchanges, want >= %d", len(ex), len(testPoints))
	}
	if !ex[0].HasSQLPayload() {
		t.Error("first contact did not carry the full scenario payload")
	}
	for i, e := range ex[1:] {
		if e.HasSQLPayload() {
			t.Errorf("steady-state exchange %d carries a script payload: %s", i+1, e.RequestBody)
		}
		if bytes.Contains(e.RequestBody, []byte(`"tables"`)) {
			t.Errorf("steady-state exchange %d carries side tables", i+1)
		}
		if e.Status != http.StatusOK {
			t.Errorf("steady-state exchange %d = %d", i+1, e.Status)
		}
		if e.RequestBytes >= ex[0].RequestBytes {
			t.Errorf("slim request (%dB) not smaller than full (%dB)", e.RequestBytes, ex[0].RequestBytes)
		}
	}
	if n := coordSrv.metrics.shardSlimRequests.Load(); n < int64(len(testPoints)-1) {
		t.Errorf("slim request counter = %d, want >= %d", n, len(testPoints)-1)
	}
	if n := coordSrv.metrics.shardFullRequests.Load(); n < 1 {
		t.Errorf("full request counter = %d, want >= 1", n)
	}
}

// TestCacheMissResend: flushing the worker's scenario cache between
// renders makes the next fingerprint-only request answer 409, upon which
// the coordinator re-sends the full payload exactly once and the render
// succeeds; steady state then resumes fingerprint-only.
func TestCacheMissResend(t *testing.T) {
	workerSrv, worker := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(worker.URL)
	t.Cleanup(proxy.Close)
	coordSrv, coord := newTestServer(t, func(c *Config) { c.Workers = []string{proxy.URL()} })

	scn := registerScenario(t, coord.URL)
	one := []map[string]any{testPoints[0]}
	evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: 64})

	// The worker forgets every scenario (restart / LRU eviction stand-in).
	workerSrv.shardCache.flush()
	proxy.Reset()
	evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: 64})

	ex := proxy.ShardExchanges()
	if len(ex) != 2 {
		t.Fatalf("recovery took %d exchanges, want 2 (slim 409 + full 200): %+v", len(ex), ex)
	}
	if ex[0].HasSQLPayload() || ex[0].Status != http.StatusConflict {
		t.Errorf("first recovery exchange = payload %v status %d, want slim 409", ex[0].HasSQLPayload(), ex[0].Status)
	}
	if !ex[1].HasSQLPayload() || ex[1].Status != http.StatusOK {
		t.Errorf("second recovery exchange = payload %v status %d, want full 200", ex[1].HasSQLPayload(), ex[1].Status)
	}
	if n := coordSrv.metrics.shardCacheMissResends.Load(); n != 1 {
		t.Errorf("cache-miss re-send counter = %d, want 1", n)
	}
	if n := workerSrv.metrics.shardCacheMisses.Load(); n != 1 {
		t.Errorf("worker cache-miss counter = %d, want 1", n)
	}

	// Steady state resumed: the next render is slim again.
	proxy.Reset()
	evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: 64})
	ex = proxy.ShardExchanges()
	if len(ex) != 1 || ex[0].HasSQLPayload() || ex[0].Status != http.StatusOK {
		t.Errorf("post-recovery exchanges = %+v, want one slim 200", ex)
	}
}

// TestCacheMissStorm: a multi-point batch right after the worker lost its
// whole cache (a cache-miss storm) recovers per shard and stays
// bit-identical to the local evaluation.
func TestCacheMissStorm(t *testing.T) {
	workerSrv, worker := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(worker.URL)
	t.Cleanup(proxy.Close)
	_, coord := newTestServer(t, func(c *Config) { c.Workers = []string{proxy.URL()} })
	_, local := newTestServer(t, nil)

	scnLocal := registerScenario(t, local.URL)
	want := evaluatePoints(t, local.URL, scnLocal.ID, evaluateRequest{Points: testPoints, Worlds: 64})

	scn := registerScenario(t, coord.URL)
	evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: testPoints[:1], Worlds: 64})
	workerSrv.shardCache.flush()
	got := evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: testPoints, Worlds: 64})

	for i := range want.Points {
		if !reflect.DeepEqual(want.Points[i].Summaries, got.Points[i].Summaries) {
			t.Errorf("point %d summaries diverged after cache-miss storm:\nlocal: %+v\nfanned: %+v",
				i, want.Points[i].Summaries, got.Points[i].Summaries)
		}
	}
}

// TestVersionSkewDowngrade: a worker that rejects fingerprint-only
// requests (protocol v1) is downgraded to full payloads after one 400 and
// renders keep succeeding.
func TestVersionSkewDowngrade(t *testing.T) {
	_, worker := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(worker.URL)
	t.Cleanup(proxy.Close)
	proxy.SetFault(protocoltest.VersionSkew)
	coordSrv, coord := newTestServer(t, func(c *Config) { c.Workers = []string{proxy.URL()} })

	scn := registerScenario(t, coord.URL)
	one := []map[string]any{testPoints[0]}
	// Cold contact is full-payload — a v1 worker accepts it.
	evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: 64})
	// The coordinator now believes the worker is warm and goes slim; the
	// v1 worker rejects, the coordinator downgrades and re-sends full.
	evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: 64})
	// Downgraded for good: no more slim attempts.
	evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: 64})

	ex := proxy.ShardExchanges()
	if len(ex) != 4 {
		t.Fatalf("saw %d exchanges, want 4 (full, slim-400, full, full): %+v", len(ex), ex)
	}
	wantSeq := []struct {
		payload bool
		status  int
	}{
		{true, http.StatusOK},
		{false, http.StatusBadRequest},
		{true, http.StatusOK},
		{true, http.StatusOK},
	}
	for i, w := range wantSeq {
		if ex[i].HasSQLPayload() != w.payload || ex[i].Status != w.status {
			t.Errorf("exchange %d = payload %v status %d, want payload %v status %d",
				i, ex[i].HasSQLPayload(), ex[i].Status, w.payload, w.status)
		}
	}
	if n := coordSrv.metrics.shardProtoDowngrades.Load(); n != 1 {
		t.Errorf("downgrade counter = %d, want 1", n)
	}
	if n := coordSrv.metrics.shardWorkerFailures.Load(); n != 0 {
		t.Errorf("version skew caused %d local fallbacks; the downgrade should have recovered in-band", n)
	}
}

// TestFlappingWorkerCooldown: a worker that fails a shard request enters
// the unhealthy cool-down and is not offered another shard until it
// expires — a flapping worker never serves (or fails) two consecutive
// shards.
func TestFlappingWorkerCooldown(t *testing.T) {
	_, good := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	_, flappy := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(flappy.URL)
	t.Cleanup(proxy.Close)
	proxy.SetFault(protocoltest.Drop)

	coordSrv, coord := newTestServer(t, func(c *Config) {
		c.Workers = []string{proxy.URL(), good.URL}
		c.WorkerCooldown = time.Hour
	})
	scn := registerScenario(t, coord.URL)
	for _, pt := range testPoints {
		evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: []map[string]any{pt}, Worlds: 64})
	}

	if ex := proxy.ShardExchanges(); len(ex) != 1 {
		t.Errorf("flapping worker saw %d shard requests during the cool-down, want exactly 1", len(ex))
	}
	if n := coordSrv.metrics.shardCooldowns.Load(); n != 1 {
		t.Errorf("cooldown counter = %d, want 1", n)
	}
	if n := coordSrv.metrics.shardWorkerFailures.Load(); n != 0 {
		t.Errorf("%d shards fell back locally; the healthy worker should have covered them", n)
	}
}

// ---- fault matrix over the five bundled example scenarios ----

// newExampleSystem mirrors benchfix.Registry through the public API: demo
// models plus the quickstart's OrderVolume stand-in.
func newExampleSystem(t *testing.T) *fp.System {
	t.Helper()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		t.Fatal(err)
	}
	err = sys.RegisterVG("OrderVolume", 2, func(seed uint64, args []float64) (float64, error) {
		src := rng.New(seed)
		return float64(src.Poisson(1800+40*args[0]+2*args[1])) * (1 + 0.05*src.Norm()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// regionsTableDef is the serverfleet example's dimension table in wire
// form (mirrors benchfix.RegionsTable).
var regionsTableDef = tableDef{
	Name:    "regions",
	Columns: []string{"region", "share", "local_capacity"},
	Rows: [][]any{
		{"us-east", 0.40, 21000.0},
		{"us-west", 0.25, 16500.0},
		{"europe", 0.20, 14000.0},
		{"asia", 0.15, 11500.0},
	},
}

func registerExample(t *testing.T, base, name, sql string) scenarioJSON {
	t.Helper()
	req := registerRequest{SQL: sql, ID: name}
	if name == "serverfleet" {
		req.Tables = []tableDef{regionsTableDef}
	}
	var scn scenarioJSON
	if code := call(t, "POST", base+"/scenarios", req, &scn); code != http.StatusCreated {
		t.Fatalf("register %s = %d", name, code)
	}
	return scn
}

// examplePoints derives two parameter points (first and last value of
// every parameter) from a registered scenario's declared space.
func examplePoints(scn scenarioJSON) []map[string]any {
	lo := map[string]any{}
	hi := map[string]any{}
	for _, p := range scn.Params {
		lo[p.Name] = p.Values[0]
		hi[p.Name] = p.Values[len(p.Values)-1]
	}
	return []map[string]any{lo, hi}
}

// TestFaultMatrixBitIdentical runs every bundled example scenario through
// a two-worker fan-out where one worker is hit by each fault in turn —
// dropped connections (a worker killed mid-render), truncated and
// corrupted responses, duplicated requests — and asserts the batch result
// is bit-identical to the single-node evaluation every time: per-shard
// retry and local fallback protect correctness, not just availability.
func TestFaultMatrixBitIdentical(t *testing.T) {
	faults := []protocoltest.Fault{
		protocoltest.Drop,
		protocoltest.Truncate,
		protocoltest.Corrupt,
		protocoltest.Duplicate,
	}
	for name, sql := range sqlparser.ExampleScenarios() {
		t.Run(name, func(t *testing.T) {
			_, local := newTestServer(t, func(c *Config) { c.System = newExampleSystem(t) })
			scnLocal := registerExample(t, local.URL, name, sql)
			points := examplePoints(scnLocal)
			want := evaluatePoints(t, local.URL, scnLocal.ID, evaluateRequest{Points: points, Worlds: 48})

			_, workerB := newTestServer(t, func(c *Config) {
				c.System = newExampleSystem(t)
				c.WorkerMode = true
			})
			_, workerA := newTestServer(t, func(c *Config) {
				c.System = newExampleSystem(t)
				c.WorkerMode = true
			})
			proxy := protocoltest.New(workerA.URL)
			t.Cleanup(proxy.Close)

			for _, fault := range faults {
				t.Run(fault.String(), func(t *testing.T) {
					coordSrv, coord := newTestServer(t, func(c *Config) {
						c.System = newExampleSystem(t)
						c.Workers = []string{proxy.URL(), workerB.URL}
					})
					proxy.Reset()
					proxy.SetFaultWindow(fault, 1)
					scn := registerExample(t, coord.URL, name, sql)
					got := evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: points, Worlds: 48})

					if len(got.Points) != len(want.Points) {
						t.Fatalf("%d points, want %d", len(got.Points), len(want.Points))
					}
					for i := range want.Points {
						if !reflect.DeepEqual(want.Points[i].Summaries, got.Points[i].Summaries) {
							t.Errorf("point %d diverged under %s:\nlocal:  %+v\nfanned: %+v",
								i, fault, want.Points[i].Summaries, got.Points[i].Summaries)
						}
					}
					if n := coordSrv.metrics.renderErrors.Load(); n != 0 {
						t.Errorf("%d render errors under %s", n, fault)
					}
				})
			}
		})
	}
}

// TestSketchOnlyEvaluate: a sketch_only batch over workers returns
// summaries whose exact statistics (count, moments) match the full-vector
// evaluation, while the shard responses stay far smaller than the sample
// vectors they replace.
func TestSketchOnlyEvaluate(t *testing.T) {
	_, worker := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(worker.URL)
	t.Cleanup(proxy.Close)
	_, coord := newTestServer(t, func(c *Config) { c.Workers = []string{proxy.URL()} })
	_, local := newTestServer(t, nil)

	const worlds = 4000
	one := []map[string]any{testPoints[0]}
	scnLocal := registerScenario(t, local.URL)
	want := evaluatePoints(t, local.URL, scnLocal.ID, evaluateRequest{Points: one, Worlds: worlds})

	scn := registerScenario(t, coord.URL)
	full := evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: worlds})
	fullEx := proxy.ShardExchanges()
	proxy.Reset()
	sketch := evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: worlds, SketchOnly: true})
	sketchEx := proxy.ShardExchanges()

	for col, ws := range want.Points[0].Summaries {
		fs, ok := full.Points[0].Summaries[col]
		if !ok {
			t.Fatalf("column %q missing from full fan-out", col)
		}
		ss, ok := sketch.Points[0].Summaries[col]
		if !ok {
			t.Fatalf("column %q missing from sketch-only result", col)
		}
		if fs.N != ws.N || ss.N != ws.N {
			t.Errorf("column %s: N full/sketch = %d/%d, want %d", col, fs.N, ss.N, ws.N)
		}
		// Moments are exact under sketch merging (Welford combination),
		// modulo float re-association across shards.
		if !closeRel(ss.Mean, ws.Mean, 1e-9) || !closeRel(ss.StdDev, ws.StdDev, 1e-9) {
			t.Errorf("column %s: sketch mean/stddev %g/%g != exact %g/%g",
				col, ss.Mean, ss.StdDev, ws.Mean, ws.StdDev)
		}
		if ss.Min != ws.Min || ss.Max != ws.Max {
			t.Errorf("column %s: sketch min/max %g/%g != exact %g/%g", col, ss.Min, ss.Max, ws.Min, ws.Max)
		}
	}

	// Response payloads: sketches are O(compression), vectors O(worlds).
	var fullBytes, sketchBytes int
	for _, e := range fullEx {
		fullBytes += e.ResponseBytes
	}
	for _, e := range sketchEx {
		sketchBytes += e.ResponseBytes
	}
	if sketchBytes == 0 || fullBytes == 0 {
		t.Fatalf("missing exchanges: full %dB sketch %dB", fullBytes, sketchBytes)
	}
	if sketchBytes*2 >= fullBytes {
		t.Errorf("sketch-only responses (%dB) not meaningfully smaller than full (%dB) at %d worlds",
			sketchBytes, fullBytes, worlds)
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb < 0 {
		bb = -bb
		if bb > m {
			m = bb
		}
	} else if bb > m {
		m = bb
	}
	return d <= tol*m
}
