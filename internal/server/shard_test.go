package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	fp "fuzzyprophet"
)

// newWorkerServer starts a shard worker (WorkerMode).
func newWorkerServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	return ts
}

func TestShardWorkerEndpoint(t *testing.T) {
	ts := newWorkerServer(t)

	var res shardResponse
	code := call(t, "POST", ts.URL+"/shard/render", shardRequest{
		SQL:    testScenario,
		Point:  map[string]any{"current": 3, "purchase1": 8, "feature": 4},
		Worlds: 100,
		Lo:     25,
		Hi:     75,
	}, &res)
	if code != http.StatusOK {
		t.Fatalf("shard render = %d", code)
	}
	if res.Rows != 50 {
		t.Errorf("rows = %d, want 50", res.Rows)
	}
	for _, col := range []string{"demand", "capacity", "overload"} {
		if len(res.Columns[col]) != 50 {
			t.Errorf("column %s has %d rows, want 50", col, len(res.Columns[col]))
		}
		sk, ok := res.Sketches[col]
		if !ok || sk.Count != 50 {
			t.Errorf("column %s sketch count = %d, want 50", col, sk.Count)
		}
	}

	// Bad ranges are rejected.
	for _, bad := range []shardRequest{
		{SQL: testScenario, Worlds: 100, Lo: -1, Hi: 10},
		{SQL: testScenario, Worlds: 100, Lo: 10, Hi: 101},
		{SQL: testScenario, Worlds: 100, Lo: 10, Hi: 10},
		{SQL: testScenario, Worlds: 0, Lo: 0, Hi: 1},
		{Worlds: 100, Lo: 0, Hi: 10},
	} {
		bad.Point = map[string]any{"current": 0, "purchase1": 0, "feature": 4}
		if code := call(t, "POST", ts.URL+"/shard/render", bad, nil); code != http.StatusBadRequest {
			t.Errorf("bad shard request %+v = %d, want 400", bad, code)
		}
	}

	// A wrong fingerprint (coordinator/worker drift) is rejected.
	code = call(t, "POST", ts.URL+"/shard/render", shardRequest{
		SQL:         testScenario,
		Fingerprint: "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
		Point:       map[string]any{"current": 0, "purchase1": 0, "feature": 4},
		Worlds:      100,
		Lo:          0,
		Hi:          10,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("fingerprint mismatch = %d, want 400", code)
	}

	// Worker mode serves only the shard surface.
	if code := call(t, "POST", ts.URL+"/scenarios", registerRequest{SQL: testScenario}, nil); code != http.StatusNotFound {
		t.Errorf("worker-mode /scenarios = %d, want 404", code)
	}
	if code := call(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("worker-mode /healthz = %d", code)
	}
}

// renderGraph registers the test scenario, opens a session and renders.
func renderGraph(t *testing.T, base string) fp.Graph {
	t.Helper()
	scn := registerScenario(t, base)
	sess := openSession(t, base, scn.ID, openSessionRequest{Worlds: 80})
	var rr renderResponse
	if code := call(t, "GET", base+"/sessions/"+sess.ID+"/render", nil, &rr); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}
	return *rr.Graph
}

func assertSameGraph(t *testing.T, want, got fp.Graph) {
	t.Helper()
	if len(got.Series) != len(want.Series) {
		t.Fatalf("series count %d, want %d", len(got.Series), len(want.Series))
	}
	for i := range want.Series {
		w, g := want.Series[i], got.Series[i]
		if w.Name != g.Name || len(w.Y) != len(g.Y) {
			t.Fatalf("series %d shape mismatch", i)
		}
		for j := range w.Y {
			if w.Y[j] != g.Y[j] {
				t.Fatalf("series %s x=%g: fanned-out %v != local %v (bit-identity violated)",
					w.Name, w.X[j], g.Y[j], w.Y[j])
			}
			if w.CI95[j] != g.CI95[j] {
				t.Fatalf("series %s x=%g: CI95 %v != %v", w.Name, w.X[j], g.CI95[j], w.CI95[j])
			}
		}
	}
}

// TestCoordinatorFanout: a session render fanned out across two HTTP shard
// workers is bit-identical to the same render evaluated locally.
func TestCoordinatorFanout(t *testing.T) {
	w1 := newWorkerServer(t)
	w2 := newWorkerServer(t)
	_, local := newTestServer(t, nil)
	coordSrv, coord := newTestServer(t, func(c *Config) { c.Workers = []string{w1.URL, w2.URL} })

	want := renderGraph(t, local.URL)
	got := renderGraph(t, coord.URL)
	assertSameGraph(t, want, got)

	if n := coordSrv.metrics.shardFanouts.Load(); n == 0 {
		t.Error("no shard fan-outs recorded")
	}
	if n := coordSrv.metrics.shardWorkerFailures.Load(); n != 0 {
		t.Errorf("%d worker failures on healthy workers", n)
	}
}

// TestCoordinatorRetry: with one dead worker in the pool, shards retry on
// the live one and the render still matches the local render bit for bit.
func TestCoordinatorRetry(t *testing.T) {
	live := newWorkerServer(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	_, local := newTestServer(t, nil)
	coordSrv, coord := newTestServer(t, func(c *Config) { c.Workers = []string{dead.URL, live.URL} })

	want := renderGraph(t, local.URL)
	got := renderGraph(t, coord.URL)
	assertSameGraph(t, want, got)

	if n := coordSrv.metrics.shardRetries.Load(); n == 0 {
		t.Error("no shard retries recorded despite a dead worker")
	}
	if n := coordSrv.metrics.shardWorkerFailures.Load(); n != 0 {
		t.Errorf("%d shards failed every worker; the live worker should have covered them", n)
	}
}

// TestCoordinatorLocalFallback: when every worker is unreachable, each
// shard falls back to local evaluation — the render succeeds and stays
// bit-identical.
func TestCoordinatorLocalFallback(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusBadGateway)
	}))
	t.Cleanup(dead.Close)

	_, local := newTestServer(t, nil)
	coordSrv, coord := newTestServer(t, func(c *Config) { c.Workers = []string{dead.URL} })

	want := renderGraph(t, local.URL)
	got := renderGraph(t, coord.URL)
	assertSameGraph(t, want, got)

	if n := coordSrv.metrics.shardWorkerFailures.Load(); n == 0 {
		t.Error("no worker failures recorded despite all workers dead")
	}
}

// TestCoordinatorBatchEvaluate: batch evaluation also fans out, with
// summaries identical to the local path.
func TestCoordinatorBatchEvaluate(t *testing.T) {
	worker := newWorkerServer(t)
	_, local := newTestServer(t, nil)
	_, coord := newTestServer(t, func(c *Config) { c.Workers = []string{worker.URL} })

	points := []map[string]any{
		{"current": 2, "purchase1": 0, "feature": 4},
		{"current": 5, "purchase1": 8, "feature": 8},
	}
	run := func(base string) fp.BatchResult {
		scn := registerScenario(t, base)
		var res fp.BatchResult
		if code := call(t, "POST", base+"/scenarios/"+scn.ID+"/evaluate",
			evaluateRequest{Points: points, Worlds: 64}, &res); code != http.StatusOK {
			t.Fatalf("evaluate = %d", code)
		}
		return res
	}
	want, got := run(local.URL), run(coord.URL)
	if len(got.Points) != len(want.Points) {
		t.Fatalf("%d points, want %d", len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		for col, ws := range want.Points[i].Summaries {
			gs := got.Points[i].Summaries[col]
			if ws.Mean != gs.Mean || ws.StdDev != gs.StdDev || ws.N != gs.N {
				t.Errorf("point %d column %s: fanned-out mean/stddev %v/%v != local %v/%v",
					i, col, gs.Mean, gs.StdDev, ws.Mean, ws.StdDev)
			}
		}
	}
}
