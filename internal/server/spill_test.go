package server

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// metricValue extracts the value of a single-sample metric from a
// Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("metric %s: parsing %q: %v", name, rest, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSpillAcrossRestart: with a RAM budget far below the basis working
// set and a spill dir configured, renders demote bases out-of-core (and
// the /metrics exposition says so), re-renders stay exact, and after a
// full server restart against the same directories the warm-started
// scenario re-addresses its spilled bases — the first warm render
// recomputes nothing and matches the cold render byte for byte.
func TestSpillAcrossRestart(t *testing.T) {
	spillDir := t.TempDir()
	snapDir := t.TempDir()
	mutate := func(c *Config) {
		c.SpillDir = spillDir
		c.SnapshotDir = snapDir
		c.StoreBudget = 2048 // a 60-world basis is ~640B: a handful fit
	}

	srv1, ts1 := newTestServer(t, mutate)
	scn1 := registerScenario(t, ts1.URL)
	sess1 := openSession(t, ts1.URL, scn1.ID, openSessionRequest{})
	var r1 renderResponse
	if code := call(t, "GET", ts1.URL+"/sessions/"+sess1.ID+"/render", nil, &r1); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}

	text := scrape(t, ts1.URL)
	if d := metricValue(t, text, "fpserver_spill_demotions"); d == 0 {
		t.Fatal("no demotions despite a tiny RAM budget and a spill dir")
	}
	if b := metricValue(t, text, "fpserver_spill_bytes"); b == 0 {
		t.Fatal("spill tier holds no bytes after demotions")
	}
	if e := metricValue(t, text, "fpserver_spill_errors"); e != 0 {
		t.Fatalf("spill errors: %v", e)
	}
	if q := metricValue(t, text, "fpserver_spill_quarantined"); q != 0 {
		t.Fatalf("quarantined spill files: %v", q)
	}

	// A second render of the same point reuses spilled bases exactly.
	var r1b renderResponse
	if code := call(t, "GET", ts1.URL+"/sessions/"+sess1.ID+"/render", nil, &r1b); code != http.StatusOK {
		t.Fatalf("re-render = %d", code)
	}
	for i := range r1.Graph.Series[0].Y {
		if r1.Graph.Series[0].Y[i] != r1b.Graph.Series[0].Y[i] {
			t.Fatalf("re-render with spilled bases diverges at week %d", i)
		}
	}

	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, mutate)
	scn2 := registerScenario(t, ts2.URL)
	if !scn2.Warm {
		t.Fatal("re-registration after restart should warm-start from the snapshot")
	}
	sess2 := openSession(t, ts2.URL, scn2.ID, openSessionRequest{})
	var r2 renderResponse
	if code := call(t, "GET", ts2.URL+"/sessions/"+sess2.ID+"/render", nil, &r2); code != http.StatusOK {
		t.Fatalf("warm render = %d", code)
	}
	if r2.Graph.Stats.Recomputed != 0 {
		t.Errorf("warm render recomputed %d weeks despite spilled bases: %+v", r2.Graph.Stats.Recomputed, r2.Graph.Stats)
	}
	for i := range r1.Graph.Series[0].Y {
		if r1.Graph.Series[0].Y[i] != r2.Graph.Series[0].Y[i] {
			t.Fatalf("warm render over spilled bases diverges at week %d", i)
		}
	}
	text2 := scrape(t, ts2.URL)
	if q := metricValue(t, text2, "fpserver_spill_quarantined"); q != 0 {
		t.Fatalf("reopen quarantined spill files: %v", q)
	}
}
