// Slow-render trace retention: every non-coalesced render and batch
// evaluation is traced internally (feeding the per-stage latency
// histograms); the ones slower than Config.SlowRenderThreshold keep their
// full span tree in a fixed-size ring served by GET /debug/traces, newest
// first — a flight recorder for "why was that slider move slow" without
// re-running anything.
package server

import (
	"net/http"
	"sync"
	"time"

	"fuzzyprophet/internal/obs"
)

// traceRecord is one retained slow render.
type traceRecord struct {
	// RenderID correlates this record with the slow-render log line and
	// the X-FP-Render-ID header seen by shard workers.
	RenderID string `json:"render_id"`
	// Kind is "render", "render-stream" or "evaluate".
	Kind     string    `json:"kind"`
	Scenario string    `json:"scenario,omitempty"`
	Session  string    `json:"session,omitempty"`
	At       time.Time `json:"at"`
	// DurationMS is the end-to-end duration in milliseconds.
	DurationMS float64   `json:"duration_ms"`
	Tree       *obs.Node `json:"tree"`
}

// traceRing retains the last N slow-render traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []traceRecord
	next int // index of the slot the next add overwrites
	n    int // live records (≤ len(buf))
}

func newTraceRing(size int) *traceRing {
	if size <= 0 {
		size = 1
	}
	return &traceRing{buf: make([]traceRecord, size)}
}

func (r *traceRing) add(rec traceRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns the retained records, newest first.
func (r *traceRing) snapshot() []traceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]traceRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// handleTraces serves the retained slow-render traces.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.json(w, http.StatusOK, map[string]any{
		"threshold_ms": float64(s.cfg.SlowRenderThreshold) / float64(time.Millisecond),
		"traces":       s.traces.snapshot(),
	})
}

// observeTrace is the post-render common path: feed the per-stage latency
// histograms, retain + log the trace when the render was slow, and return
// the snapshotted tree for optional response embedding.
func (s *Server) observeTrace(kind, scenario, session string, tr *obs.Trace, dur time.Duration) *obs.Node {
	tr.End()
	tree := tr.Tree()
	s.metrics.observeStages(tree)
	if s.cfg.SlowRenderThreshold > 0 && dur >= s.cfg.SlowRenderThreshold {
		s.traces.add(traceRecord{
			RenderID:   tr.ID(),
			Kind:       kind,
			Scenario:   scenario,
			Session:    session,
			At:         time.Now(),
			DurationMS: float64(dur) / float64(time.Millisecond),
			Tree:       tree,
		})
		s.cfg.Log.Warn("slow render",
			"render_id", tr.ID(),
			"kind", kind,
			"scenario", scenario,
			"session", session,
			"duration_ms", float64(dur)/float64(time.Millisecond),
			"threshold_ms", float64(s.cfg.SlowRenderThreshold)/float64(time.Millisecond))
	}
	return tree
}
