package server

import (
	"bytes"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fuzzyprophet/internal/obs"
)

// openTestSession registers the test scenario and opens a session.
func openTestSession(t *testing.T, base string, worlds int) string {
	t.Helper()
	scn := registerScenario(t, base)
	sess := openSession(t, base, scn.ID, openSessionRequest{Worlds: worlds})
	return sess.ID
}

// TestTracedShardedRenderStitchesWorkerTrees: a ?trace=1 render on a
// coordinator with two shard workers returns ONE span tree containing the
// coordinator's own stages AND both workers' shard subtrees, grafted under
// the fan-out spans — the cross-process stitching acceptance test.
func TestTracedShardedRenderStitchesWorkerTrees(t *testing.T) {
	w1srv, w1 := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	w2srv, w2 := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	_, coord := newTestServer(t, func(c *Config) { c.Workers = []string{w1.URL, w2.URL} })

	id := openTestSession(t, coord.URL, 80)
	var rr renderResponse
	if code := call(t, "GET", coord.URL+"/sessions/"+id+"/render?trace=1", nil, &rr); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}
	if rr.Coalesced {
		t.Fatal("first render reported coalesced")
	}
	if rr.RenderID == "" {
		t.Error("no render_id in traced response")
	}
	if rr.Trace == nil {
		t.Fatal("no trace in ?trace=1 response")
	}

	// Coordinator-side stages must be present in the one returned tree.
	seen := map[string]int{}
	rr.Trace.Visit(func(_ int, n *obs.Node) { seen[n.Name]++ })
	for _, stage := range []string{"point", "shard-fanout", "shard", "sketch-merge"} {
		if seen[stage] == 0 {
			t.Errorf("stitched tree lacks coordinator span %q; got %v", stage, seen)
		}
	}

	// Both workers' subtrees must be grafted in. A session render evaluates
	// every axis point and fans each point's worlds out in two shards, so
	// the stitched tree carries one worker-shard root per (point, shard) —
	// each recorded in the WORKER process with its own simulate and
	// plan-execute stages.
	var workerRoots []*obs.Node
	rr.Trace.Visit(func(_ int, n *obs.Node) {
		if n.Name == "worker-shard" {
			workerRoots = append(workerRoots, n)
		}
	})
	if want := 2 * seen["point"]; seen["point"] == 0 || len(workerRoots) != want {
		t.Fatalf("stitched tree has %d worker-shard subtrees over %d points, want %d", len(workerRoots), seen["point"], want)
	}
	// Shard boundaries are throughput-weighted, so exact ranges vary per
	// point; every point must still split into (at least) two distinct
	// ranges, one per worker.
	los := map[any]bool{}
	for _, wn := range workerRoots {
		los[wn.Attrs["lo"]] = true
		sub := map[string]int{}
		wn.Visit(func(_ int, n *obs.Node) { sub[n.Name]++ })
		if sub["simulate"] == 0 || sub["plan-execute"] == 0 {
			t.Errorf("worker subtree (lo=%v) lacks worker-side stages; got %v", wn.Attrs["lo"], sub)
		}
	}
	if len(los) < 2 {
		t.Errorf("worker subtrees cover %d distinct world ranges, want >= 2", len(los))
	}
	// Both worker processes served shards of this render.
	for i, wsrv := range []*Server{w1srv, w2srv} {
		if wsrv.metrics.shardRendersServed.Load() == 0 {
			t.Errorf("worker %d served no shards", i+1)
		}
	}

	// Without ?trace=1 the response stays clean.
	var plain renderResponse
	if code := call(t, "GET", coord.URL+"/sessions/"+id+"/render", nil, &plain); code != http.StatusOK {
		t.Fatalf("untraced render = %d", code)
	}
	if plain.Trace != nil || plain.RenderID != "" {
		t.Error("untraced render response carries trace fields")
	}
}

// syncWriter serializes slog output from request goroutines.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestSlowRenderRingAndLog: with a threshold every render exceeds, the
// render is logged with its render ID and retained at /debug/traces.
func TestSlowRenderRingAndLog(t *testing.T) {
	logw := &syncWriter{}
	_, ts := newTestServer(t, func(c *Config) {
		c.SlowRenderThreshold = time.Nanosecond
		c.Log = slog.New(slog.NewTextHandler(logw, nil))
	})

	id := openTestSession(t, ts.URL, 60)
	var rr renderResponse
	if code := call(t, "GET", ts.URL+"/sessions/"+id+"/render?trace=1", nil, &rr); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}

	var got struct {
		ThresholdMS float64       `json:"threshold_ms"`
		Traces      []traceRecord `json:"traces"`
	}
	if code := call(t, "GET", ts.URL+"/debug/traces", nil, &got); code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", code)
	}
	if len(got.Traces) == 0 {
		t.Fatal("no slow-render traces retained")
	}
	rec := got.Traces[0]
	if rec.RenderID != rr.RenderID {
		t.Errorf("retained render_id %q != response render_id %q", rec.RenderID, rr.RenderID)
	}
	if rec.Tree == nil || rec.Kind != "render" || rec.Session != id {
		t.Errorf("bad trace record: %+v", rec)
	}

	logged := logw.String()
	if !strings.Contains(logged, "slow render") || !strings.Contains(logged, rr.RenderID) {
		t.Errorf("slow-render log line missing or lacks render ID:\n%s", logged)
	}

	// The ring is newest-first and bounded.
	for i := 0; i < 40; i++ {
		call(t, "GET", ts.URL+"/sessions/"+id+"/render", nil, nil)
	}
	if code := call(t, "GET", ts.URL+"/debug/traces", nil, &got); code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", code)
	}
	if len(got.Traces) > 32 {
		t.Errorf("ring retained %d traces, want <= 32", len(got.Traces))
	}
}
