package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	fp "fuzzyprophet"
)

// SnapshotStore wires the reuse engine's gob persistence into the server
// lifecycle: one snapshot file per scenario fingerprint under a directory.
// Registering a scenario warm-starts its shared reuse cache from the file
// when present, and the server persists each registered scenario's cache
// periodically and on shutdown — so a restarted server answers its first
// render from remapped bases instead of cold Monte Carlo.
type SnapshotStore struct {
	dir string

	saves    atomic.Int64
	loads    atomic.Int64
	errors   atomic.Int64
	lastSave atomic.Int64 // unix nanos of the last successful save
}

// NewSnapshotStore returns a store rooted at dir, creating it if needed.
func NewSnapshotStore(dir string) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	return &SnapshotStore{dir: dir}, nil
}

// Path returns the snapshot file for a scenario fingerprint.
func (s *SnapshotStore) Path(fingerprint string) string {
	return filepath.Join(s.dir, fingerprint+".reuse")
}

// Load restores the reuse cache snapshotted for fingerprint. The second
// return reports whether a snapshot existed; a corrupt or incompatible
// snapshot is surfaced as an error (the caller falls back to a cold cache).
func (s *SnapshotStore) Load(fingerprint string, opts ...fp.EvalOption) (*fp.ReuseCache, bool, error) {
	path := s.Path(fingerprint)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	cache, err := fp.LoadReuseCacheFile(path, opts...)
	if err != nil {
		s.errors.Add(1)
		return nil, true, err
	}
	s.loads.Add(1)
	return cache, true, nil
}

// Save persists the cache under fingerprint (atomic temp-file + rename,
// consistent under concurrent renders — the engine lock is held for the
// write).
func (s *SnapshotStore) Save(fingerprint string, cache *fp.ReuseCache) error {
	if err := cache.SaveFile(s.Path(fingerprint)); err != nil {
		s.errors.Add(1)
		return err
	}
	s.saves.Add(1)
	s.lastSave.Store(time.Now().UnixNano())
	return nil
}

// SaveAll persists every entry's cache, returning the first error after
// attempting all of them.
func (s *SnapshotStore) SaveAll(entries []*ScenarioEntry) error {
	var firstErr error
	for _, e := range entries {
		if err := s.Save(e.Fingerprint, e.Cache); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Saves, Loads and Errors return lifetime counters; LastSave the time of
// the most recent successful save (zero if none).
func (s *SnapshotStore) Saves() int64  { return s.saves.Load() }
func (s *SnapshotStore) Loads() int64  { return s.loads.Load() }
func (s *SnapshotStore) Errors() int64 { return s.errors.Load() }
func (s *SnapshotStore) LastSave() time.Time {
	ns := s.lastSave.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
