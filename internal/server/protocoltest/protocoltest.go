// Package protocoltest is an in-process fault-injecting HTTP proxy for
// exercising the shard wire protocol between an fpserver coordinator and
// its workers. A Proxy sits in front of a real worker; the coordinator is
// pointed at the proxy's URL and every POST /shard/render passing through
// is recorded as an Exchange (byte counts, status, raw request body) and
// optionally perturbed by the configured Fault — connections dropped,
// responses truncated or corrupted, requests delayed or duplicated, or the
// worker impersonated as protocol v1. Tests then assert two things at
// once: the coordinator's recovery behavior (per-shard retry, cache-miss
// re-send, protocol downgrade, local fallback) and the wire contract
// itself (steady-state requests carry no script payload).
//
// Everything is deterministic: faults fire on the proxied request flow,
// never on timers or free-running randomness, so a test that sets a fault
// window of one knows exactly which exchange was hit. The chaos mode
// (SetChaos) draws per-exchange faults from a seeded PRNG — randomized
// schedules of kills, hangs and slow-downs that replay identically for a
// given seed.
package protocoltest

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Fault enumerates the injectable failure modes. Faults apply only to
// POST /shard/render exchanges; other routes (healthz, metrics) always
// pass through untouched.
type Fault int

const (
	// None passes the exchange through unmodified.
	None Fault = iota
	// Drop aborts the connection without writing any response — the
	// coordinator sees a transport error (a worker dying mid-render).
	Drop
	// Delay holds the request for the configured delay before forwarding.
	Delay
	// Truncate forwards the request but cuts the response body off halfway
	// through — the coordinator sees an unexpected EOF mid-decode.
	Truncate
	// Corrupt forwards the request but flips bytes in the response body —
	// the coordinator sees a JSON decode failure.
	Corrupt
	// Duplicate forwards the same request to the worker twice and answers
	// with the second response — exercising worker-side idempotency.
	Duplicate
	// VersionSkew impersonates a protocol-v1 worker: fingerprint-only
	// requests (no "sql" in the body) are rejected with 400 as a v1 worker
	// would; full payloads pass through.
	VersionSkew
	// Hang holds the request open without answering until the client gives
	// up (its context ends), then aborts the connection — a worker that is
	// alive at the TCP level but never makes progress. The coordinator only
	// escapes via its own deadline or a hedged duplicate.
	Hang
)

func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case Duplicate:
		return "duplicate"
	case VersionSkew:
		return "version-skew"
	case Hang:
		return "hang"
	default:
		return "unknown"
	}
}

// Exchange records one proxied request/response pair.
type Exchange struct {
	// Path and Query identify the route ("/shard/render", "sketch_only=1").
	Path  string
	Query string
	// Fault is the fault applied to this exchange (None for pass-through).
	Fault Fault
	// Status is the HTTP status answered to the client; 0 when the
	// connection was dropped before a response.
	Status int
	// RequestBytes and ResponseBytes are the body sizes on the wire (the
	// response size BEFORE truncation/corruption, i.e. the worker's answer).
	RequestBytes  int
	ResponseBytes int
	// RequestBody is the raw request body, for payload inspection.
	RequestBody []byte
}

// HasSQLPayload reports whether the exchange's request body carried a
// scenario script — the thing steady-state v2 requests must NOT do.
func (e Exchange) HasSQLPayload() bool {
	var probe struct {
		SQL string `json:"sql"`
	}
	return json.Unmarshal(e.RequestBody, &probe) == nil && probe.SQL != ""
}

// Proxy is the recording fault injector. Create with New, point the
// coordinator at URL(), and drive faults with SetFault/SetFaultWindow.
type Proxy struct {
	target string
	client *http.Client
	srv    *httptest.Server

	mu        sync.Mutex
	fault     Fault
	window    int // remaining faulted exchanges; -1 = until changed
	delay     time.Duration
	exchanges []Exchange
	// chaos, when non-nil, draws a fault per shard exchange from a seeded
	// PRNG instead of the fixed fault/window schedule.
	chaos *chaosSchedule
}

// chaosSchedule is the seeded randomized fault source for chaos tests:
// each shard exchange independently Drops, Hangs or Delays with the
// configured probabilities. The PRNG is consulted in exchange arrival
// order under the proxy lock, so one seed replays one schedule.
type chaosSchedule struct {
	rng                  *rand.Rand
	pDrop, pHang, pDelay float64
}

func (c *chaosSchedule) draw() Fault {
	u := c.rng.Float64()
	switch {
	case u < c.pDrop:
		return Drop
	case u < c.pDrop+c.pHang:
		return Hang
	case u < c.pDrop+c.pHang+c.pDelay:
		return Delay
	default:
		return None
	}
}

// New starts a proxy in front of the worker at target (a base URL like
// httptest.Server.URL). Close it when done.
func New(target string) *Proxy {
	p := &Proxy{
		target: target,
		client: &http.Client{},
		window: -1,
		delay:  50 * time.Millisecond,
	}
	p.srv = httptest.NewServer(http.HandlerFunc(p.handle))
	return p
}

// URL returns the proxy's base URL — what the coordinator's Workers list
// should contain.
func (p *Proxy) URL() string { return p.srv.URL }

// Close shuts the proxy down.
func (p *Proxy) Close() { p.srv.Close() }

// SetFault applies f to every subsequent shard exchange until changed.
func (p *Proxy) SetFault(f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fault, p.window = f, -1
}

// SetFaultWindow applies f to the next n shard exchanges, then reverts to
// None.
func (p *Proxy) SetFaultWindow(f Fault, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fault, p.window = f, n
}

// SetDelay sets the hold time used by the Delay fault (default 50ms).
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.delay = d
}

// SetChaos switches the proxy to a seeded randomized fault schedule: each
// shard exchange independently aborts (Drop), never answers (Hang) or is
// delayed, with the given probabilities. The same seed replays the same
// schedule. Probabilities must sum to <= 1; the remainder passes through.
// SetChaos(0, 0, 0, 0) with any seed effectively disables chaos; Reset
// also clears it.
func (p *Proxy) SetChaos(seed uint64, pDrop, pHang, pDelay float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.chaos = &chaosSchedule{
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		pDrop: pDrop, pHang: pHang, pDelay: pDelay,
	}
}

// Exchanges returns a copy of every recorded exchange, in arrival order.
func (p *Proxy) Exchanges() []Exchange {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Exchange, len(p.exchanges))
	copy(out, p.exchanges)
	return out
}

// ShardExchanges returns only the POST /shard/render exchanges.
func (p *Proxy) ShardExchanges() []Exchange {
	var out []Exchange
	for _, e := range p.Exchanges() {
		if e.Path == "/shard/render" {
			out = append(out, e)
		}
	}
	return out
}

// Reset clears the recorded exchanges, the fault state and any chaos
// schedule.
func (p *Proxy) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exchanges = nil
	p.fault, p.window = None, -1
	p.chaos = nil
}

// takeFault consumes one slot of the current fault window (or one chaos
// draw).
func (p *Proxy) takeFault() (Fault, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.chaos != nil {
		return p.chaos.draw(), p.delay
	}
	f := p.fault
	if f == None {
		return None, 0
	}
	if p.window == 0 {
		p.fault = None
		return None, 0
	}
	if p.window > 0 {
		p.window--
		if p.window == 0 {
			defer func() { p.fault = None }()
		}
	}
	return f, p.delay
}

func (p *Proxy) record(e Exchange) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exchanges = append(p.exchanges, e)
}

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	shard := r.Method == http.MethodPost && r.URL.Path == "/shard/render"
	fault, delay := None, time.Duration(0)
	if shard {
		fault, delay = p.takeFault()
	}
	ex := Exchange{
		Path:         r.URL.Path,
		Query:        r.URL.RawQuery,
		Fault:        fault,
		RequestBytes: len(body),
		RequestBody:  body,
	}

	switch fault {
	case Drop:
		p.record(ex)
		panic(http.ErrAbortHandler)
	case Hang:
		// Never answer: wait for the client to abandon the request (deadline
		// or hedge win), then abort without a response.
		p.record(ex)
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	case Delay:
		time.Sleep(delay)
	case VersionSkew:
		if !ex.HasSQLPayload() {
			// A v1 worker has no fingerprint-only path: the request looks
			// like it's simply missing its script.
			ex.Status = http.StatusBadRequest
			p.record(ex)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			io.WriteString(w, `{"error":"missing \"sql\""}`)
			return
		}
	}

	status, header, respBody, err := p.forward(r, body)
	if fault == Duplicate && err == nil {
		status, header, respBody, err = p.forward(r, body)
	}
	if err != nil {
		ex.Status = http.StatusBadGateway
		p.record(ex)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	ex.Status = status
	ex.ResponseBytes = len(respBody)
	p.record(ex)

	for k, vs := range header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	switch fault {
	case Truncate:
		w.WriteHeader(status)
		w.Write(respBody[:len(respBody)/2])
		panic(http.ErrAbortHandler)
	case Corrupt:
		for i := 0; i < len(respBody); i += 7 {
			respBody[i] ^= 0x5a
		}
	}
	w.WriteHeader(status)
	w.Write(respBody)
}

// forward replays the request against the real worker and buffers the
// answer.
func (p *Proxy) forward(r *http.Request, body []byte) (int, http.Header, []byte, error) {
	url := p.target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	h := resp.Header.Clone()
	h.Del("Content-Length") // may change under corruption/truncation
	return resp.StatusCode, h, respBody, nil
}
