package protocoltest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBackend is a stub worker: echoes a fixed JSON body on /shard/render
// and counts requests.
func newBackend(t *testing.T) (*httptest.Server, *int) {
	t.Helper()
	hits := new(int)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shard/render", func(w http.ResponseWriter, r *http.Request) {
		*hits++
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"rows":10,"columns":{"margin":[1,2,3,4,5,6,7,8,9,10]}}`)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"status":"ok"}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, hits
}

func post(t *testing.T, url, body string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Post(url+"/shard/render", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp, raw, err
}

func TestPassThroughRecordsExchanges(t *testing.T) {
	backend, _ := newBackend(t)
	p := New(backend.URL)
	defer p.Close()

	body := `{"fingerprint":"abc","point":{},"worlds":10,"lo":0,"hi":10}`
	resp, raw, err := post(t, p.URL(), body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Rows int `json:"rows"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.Rows != 10 {
		t.Fatalf("bad pass-through body: %s (err %v)", raw, err)
	}

	// Non-shard routes never count as shard exchanges.
	if _, err := http.Get(p.URL() + "/healthz"); err != nil {
		t.Fatal(err)
	}
	ex := p.ShardExchanges()
	if len(ex) != 1 {
		t.Fatalf("shard exchanges = %d, want 1", len(ex))
	}
	e := ex[0]
	if e.Fault != None || e.Status != http.StatusOK {
		t.Errorf("exchange = %+v", e)
	}
	if e.RequestBytes != len(body) || e.ResponseBytes == 0 {
		t.Errorf("byte counts = %d/%d", e.RequestBytes, e.ResponseBytes)
	}
	if e.HasSQLPayload() {
		t.Error("fingerprint-only body reported as carrying SQL")
	}
	if all := p.Exchanges(); len(all) != 2 {
		t.Errorf("total exchanges = %d, want 2 (shard + healthz)", len(all))
	}
}

func TestHasSQLPayload(t *testing.T) {
	withSQL := Exchange{RequestBody: []byte(`{"sql":"CREATE SCENARIO x AS ...","worlds":5}`)}
	if !withSQL.HasSQLPayload() {
		t.Error("full payload not detected")
	}
	slim := Exchange{RequestBody: []byte(`{"proto":2,"fingerprint":"deadbeef","worlds":5}`)}
	if slim.HasSQLPayload() {
		t.Error("slim payload misdetected as full")
	}
}

func TestDropAbortsConnection(t *testing.T) {
	backend, hits := newBackend(t)
	p := New(backend.URL)
	defer p.Close()

	p.SetFaultWindow(Drop, 1)
	if _, _, err := post(t, p.URL(), `{}`); err == nil {
		t.Fatal("dropped request returned no error")
	}
	if *hits != 0 {
		t.Errorf("backend saw %d requests through a Drop", *hits)
	}
	// The window is spent: the next request passes.
	resp, _, err := post(t, p.URL(), `{}`)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-window request: %v / %v", resp, err)
	}
	ex := p.ShardExchanges()
	if len(ex) != 2 || ex[0].Fault != Drop || ex[0].Status != 0 || ex[1].Fault != None {
		t.Errorf("exchanges = %+v", ex)
	}
}

func TestTruncateAndCorruptBreakTheBody(t *testing.T) {
	backend, _ := newBackend(t)
	p := New(backend.URL)
	defer p.Close()

	p.SetFaultWindow(Truncate, 1)
	_, raw, err := post(t, p.URL(), `{}`)
	if err == nil && json.Valid(raw) {
		t.Fatalf("truncated response decoded cleanly: %s", raw)
	}

	p.SetFaultWindow(Corrupt, 1)
	resp, raw, err := post(t, p.URL(), `{}`)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Rows int `json:"rows"`
	}
	if resp.StatusCode == http.StatusOK && json.Unmarshal(raw, &out) == nil && out.Rows == 10 {
		t.Fatalf("corrupted response decoded cleanly: %s", raw)
	}
	// The recorded response size reflects the worker's true answer.
	for _, e := range p.ShardExchanges() {
		if e.ResponseBytes == 0 {
			t.Errorf("exchange %+v lost the response byte count", e)
		}
	}
}

func TestDuplicateForwardsTwice(t *testing.T) {
	backend, hits := newBackend(t)
	p := New(backend.URL)
	defer p.Close()

	p.SetFaultWindow(Duplicate, 1)
	resp, raw, err := post(t, p.URL(), `{}`)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate request failed: %v / %v", resp, err)
	}
	if !bytes.Contains(raw, []byte(`"rows":10`)) {
		t.Fatalf("bad body: %s", raw)
	}
	if *hits != 2 {
		t.Errorf("backend saw %d requests, want 2", *hits)
	}
}

func TestVersionSkewRejectsSlimOnly(t *testing.T) {
	backend, hits := newBackend(t)
	p := New(backend.URL)
	defer p.Close()
	p.SetFault(VersionSkew)

	resp, raw, err := post(t, p.URL(), `{"proto":2,"fingerprint":"abc","worlds":10,"lo":0,"hi":10}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("slim request through v1 worker = %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != "" || !strings.Contains(eb.Error, "sql") {
		t.Fatalf("v1 rejection body = %s", raw)
	}
	if *hits != 0 {
		t.Error("slim request reached the backend through a v1 worker")
	}

	// Full payloads pass: a v1 worker understands them.
	resp, _, err = post(t, p.URL(), `{"sql":"CREATE SCENARIO x AS ...","worlds":10,"lo":0,"hi":10}`)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("full request through v1 worker: %v / %v", resp, err)
	}
	if *hits != 1 {
		t.Errorf("backend hits = %d, want 1", *hits)
	}
}

func TestDelayHoldsTheRequest(t *testing.T) {
	backend, _ := newBackend(t)
	p := New(backend.URL)
	defer p.Close()
	p.SetDelay(80 * time.Millisecond)
	p.SetFaultWindow(Delay, 1)

	start := time.Now()
	resp, _, err := post(t, p.URL(), `{}`)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed request: %v / %v", resp, err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Errorf("request returned after %v, want >= 80ms", d)
	}
}

func TestResetClearsState(t *testing.T) {
	backend, _ := newBackend(t)
	p := New(backend.URL)
	defer p.Close()
	p.SetFault(Drop)
	post(t, p.URL(), `{}`)
	p.Reset()
	if len(p.Exchanges()) != 0 {
		t.Error("Reset left exchanges behind")
	}
	resp, _, err := post(t, p.URL(), `{}`)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-Reset request still faulted: %v / %v", resp, err)
	}
}
