// Package server is Fuzzy Prophet's multi-tenant HTTP service layer: the
// paper's interactive what-if exploration (sliders, progressive renders,
// prefetch-warmed reuse) exposed as a long-running JSON service instead of
// a library linked into one binary.
//
// Three components grow the architecture toward the ROADMAP's
// production-scale goal:
//
//   - A scenario registry: a concurrent map of compiled scenarios with
//     ref-counting, so re-registering an ID never breaks sessions opened
//     against the previous compilation.
//   - A session manager: TTL-based idle eviction, per-session render
//     single-flight (a burst of slider moves coalesces into one
//     simulation), and max-sessions backpressure returning 429.
//   - A reuse-snapshot store: each scenario's shared fingerprint-reuse
//     cache is persisted to disk periodically and on shutdown, and
//     warm-started at registration — a restarted server answers its first
//     render from remapped bases instead of cold Monte Carlo.
//
// Endpoints:
//
//	POST   /scenarios                 compile + register (returns scenario ID)
//	GET    /scenarios                 list registered scenarios
//	GET    /scenarios/{id}            scenario details + reuse stats
//	DELETE /scenarios/{id}            unregister (sessions keep the old entry)
//	POST   /scenarios/{id}/sessions   open an online session
//	POST   /scenarios/{id}/evaluate   batch point evaluation (shared reuse)
//	GET    /sessions/{id}             session details
//	PUT    /sessions/{id}/params      slider moves
//	GET    /sessions/{id}/render      JSON graph with CI95 bands + reuse stats;
//	                                  ?stream=1 streams progressive SSE frames
//	DELETE /sessions/{id}             close the session
//	GET    /healthz                   liveness + basic occupancy
//	GET    /metrics                   Prometheus text: reuse hit rate, store
//	                                  occupancy, session count, render latency
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"runtime/debug"
	rpprof "runtime/pprof"
	"strconv"
	"sync"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/obs"
)

// Config configures a Server. Zero fields take the documented defaults.
type Config struct {
	// System compiles scenarios (its VG registry is shared by all of
	// them). Required.
	System *fp.System
	// DefaultWorlds is the world count used when a request does not
	// specify one (default 400).
	DefaultWorlds int
	// MaxSessions bounds concurrently open sessions; excess opens get 429
	// (default 256; <0 means unbounded).
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this (default 15m;
	// <0 disables eviction).
	SessionTTL time.Duration
	// SnapshotDir enables reuse-snapshot persistence when non-empty: one
	// file per scenario fingerprint, loaded at registration and written
	// every SnapshotInterval and at Close.
	SnapshotDir string
	// SnapshotInterval is the periodic persistence cadence (default 60s;
	// <0 disables the ticker, leaving registration-load and Close-save).
	SnapshotInterval time.Duration
	// StoreBudget bounds each scenario's basis-distribution store in
	// bytes (0 = unbounded).
	StoreBudget int64
	// SpillDir enables out-of-core basis storage when non-empty: each
	// scenario's bases evicted from StoreBudget are demoted to
	// memory-mapped column files under SpillDir/bases/<fingerprint> and
	// faulted back on demand, and shard renders cache their self-simulated
	// input vectors under SpillDir/shard-inputs (the worker role's hot
	// set). Reopened crash-safely: torn or corrupt files are quarantined
	// and their bases re-simulated. Sessions with a custom seed base stay
	// RAM-only (their samples are incompatible with the shared tier).
	SpillDir string
	// SpillBudget bounds each spill tier's disk usage in bytes (0 =
	// unbounded). Over-budget column files are dropped least-recently-used.
	SpillBudget int64
	// EnablePprof mounts net/http/pprof handlers under /debug/pprof/ so
	// the serving path can be profiled in place (fpserver -pprof). Leave
	// off on exposed deployments: the profiles reveal internals.
	EnablePprof bool
	// Workers lists shard-worker base URLs (e.g. "http://10.0.0.2:8080").
	// When non-empty, session renders and batch evaluations fan each
	// point's world range out across them, one shard per worker, with
	// per-shard retry on the remaining workers and local fallback when all
	// fail. The workers must run the same VG model registry (verified per
	// shard by scenario fingerprint). Empty = evaluate locally.
	Workers []string
	// WorkerMode serves ONLY the shard-render endpoint (plus health,
	// metrics and optional pprof): the fpserver -worker role. Scenario
	// registration, sessions and snapshots are disabled.
	WorkerMode bool
	// ShardTimeout bounds one coordinator→worker shard request (default
	// 2m; <0 disables the client timeout). The effective per-attempt
	// timeout is the smaller of this and the request's remaining deadline
	// budget.
	ShardTimeout time.Duration
	// WorkerCooldown is the circuit breaker's base open window: a worker
	// whose breaker opens (BreakerThreshold consecutive transport/5xx
	// failures) is skipped in favor of its peers for a jittered window
	// that doubles on every failed half-open probe (default 5s; <0
	// disables the breaker).
	WorkerCooldown time.Duration
	// BreakerThreshold is how many consecutive shard failures open a
	// worker's circuit breaker (default 1, preserving the historical
	// skip-on-first-failure cool-down).
	BreakerThreshold int
	// RequestTimeout is the server-side deadline budget applied to every
	// render/evaluate request (default 1m; <0 disables). A per-request
	// ?timeout= query parameter can shorten — never extend — it. The
	// budget propagates to shard fan-out (per-shard timeouts derive from
	// the remaining budget) and to workers via the X-FP-Budget-Ms header.
	RequestTimeout time.Duration
	// MaxConcurrentRenders bounds renders + batch evaluations running at
	// once; excess requests queue (deadline-aware, up to 1s) and are then
	// shed with 429 + Retry-After (default 0 = unbounded).
	MaxConcurrentRenders int
	// HedgeDelay controls hedged shard requests: after a shard request has
	// been outstanding this long, a duplicate is issued to a different
	// worker and the first result wins. 0 (default) adapts the delay to
	// the observed shard-latency P95; >0 fixes it; <0 disables hedging.
	HedgeDelay time.Duration
	// RetryBackoff is the base for the jittered exponential backoff
	// between shard retry attempts (default 10ms; <0 disables backoff,
	// restoring immediate retry).
	RetryBackoff time.Duration
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
	// Log receives structured log records (currently the slow-render
	// line). Default: a discard logger.
	Log *slog.Logger
	// SlowRenderThreshold marks renders at or above this duration as slow:
	// they are logged via Log with their render ID and retained (full span
	// tree) in the /debug/traces ring. Default 1s; <0 disables both.
	SlowRenderThreshold time.Duration
	// TraceBuffer is the number of slow-render traces /debug/traces
	// retains (default 32).
	TraceBuffer int
}

func (c Config) withDefaults() Config {
	if c.DefaultWorlds <= 0 {
		c.DefaultWorlds = 400
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	if c.SlowRenderThreshold == 0 {
		c.SlowRenderThreshold = time.Second
	}
	if c.ShardTimeout == 0 {
		c.ShardTimeout = defaultShardTimeout
	} else if c.ShardTimeout < 0 {
		c.ShardTimeout = 0
	}
	if c.WorkerCooldown == 0 {
		c.WorkerCooldown = defaultWorkerCooldown
	} else if c.WorkerCooldown < 0 {
		c.WorkerCooldown = 0
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 1
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = defaultRequestTimeout
	} else if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = defaultRetryBackoff
	} else if c.RetryBackoff < 0 {
		c.RetryBackoff = 0
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 32
	}
	return c
}

// Server is the HTTP service. It implements http.Handler; run it under any
// http.Server and call Close on shutdown (final snapshot + session drain).
type Server struct {
	cfg       Config
	registry  *Registry
	sessions  *Manager
	snapshots *SnapshotStore // nil when persistence is disabled
	metrics   *metrics
	traces    *traceRing
	mux       *http.ServeMux

	// shardCache caches worker-side compiled scenarios by fingerprint;
	// shardClient is the coordinator-side HTTP client for shard fan-out;
	// workerStates is the coordinator's per-worker protocol book-keeping
	// (warm fingerprints, health cool-down, latency EWMA, capacity),
	// shared by every scenario's worker pool.
	shardCache   *shardScenarios
	shardClient  *http.Client
	workerStates []*workerState
	// shardInputs caches self-simulated shard input vectors across shard
	// renders, spilling out-of-core; nil without Config.SpillDir.
	shardInputs *fp.ShardInputCache

	// gate is the render admission gate (concurrency bound, load shedding,
	// shutdown draining); shardLatency feeds the adaptive hedge delay with
	// successful shard round-trip times.
	gate         *admission
	shardLatency *latencyTracker

	stop      chan struct{}
	loops     sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New builds a Server from cfg and starts its background loops (idle
// eviction, periodic snapshots).
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("server: Config.System is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		registry:   NewRegistry(),
		sessions:   NewManager(cfg.MaxSessions, cfg.SessionTTL),
		metrics:    newMetrics(),
		traces:     newTraceRing(cfg.TraceBuffer),
		mux:        http.NewServeMux(),
		shardCache: newShardScenarios(),
		stop:       make(chan struct{}),
	}
	s.gate = newAdmission(cfg.MaxConcurrentRenders)
	s.shardLatency = &latencyTracker{}
	// No client-level timeout: per-attempt deadlines derive from the
	// smaller of ShardTimeout and the request's remaining budget, applied
	// via the attempt context in the shard fan-out.
	s.shardClient = &http.Client{}
	s.workerStates = newWorkerStates(cfg.Workers, cfg.BreakerThreshold, cfg.WorkerCooldown)
	if cfg.SnapshotDir != "" && !cfg.WorkerMode {
		store, err := NewSnapshotStore(cfg.SnapshotDir)
		if err != nil {
			return nil, err
		}
		s.snapshots = store
	}
	if cfg.SpillDir != "" {
		cache, err := fp.NewShardInputCache(cfg.StoreBudget,
			filepath.Join(cfg.SpillDir, "shard-inputs"), cfg.SpillBudget)
		if err != nil {
			return nil, fmt.Errorf("server: opening shard-input spill tier: %w", err)
		}
		s.shardInputs = cache
	}
	s.routes()
	s.startLoops()
	return s, nil
}

func (s *Server) routes() {
	// Every server can evaluate world shards; a worker serves only these.
	s.mux.HandleFunc("POST /shard/render", s.handleShardRender)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if s.cfg.EnablePprof {
		// Registered explicitly: importing net/http/pprof for side effects
		// would mount the handlers on the DefaultServeMux, not ours.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if s.cfg.WorkerMode {
		return
	}
	s.mux.HandleFunc("POST /scenarios", s.handleRegister)
	s.mux.HandleFunc("GET /scenarios", s.handleListScenarios)
	s.mux.HandleFunc("GET /scenarios/{id}", s.handleGetScenario)
	s.mux.HandleFunc("DELETE /scenarios/{id}", s.handleDeleteScenario)
	s.mux.HandleFunc("POST /scenarios/{id}/sessions", s.handleOpenSession)
	s.mux.HandleFunc("POST /scenarios/{id}/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleGetSession)
	s.mux.HandleFunc("PUT /sessions/{id}/params", s.handleSetParams)
	s.mux.HandleFunc("GET /sessions/{id}/render", s.handleRender)
	s.mux.HandleFunc("GET /sessions/{id}/map", s.handleExplorationMap)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleCloseSession)
}

func (s *Server) startLoops() {
	if s.cfg.SessionTTL > 0 {
		interval := s.cfg.SessionTTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		s.loops.Add(1)
		go func() {
			defer s.loops.Done()
			defer s.recoverToLog("session-sweep loop")
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case now := <-t.C:
					if n := s.sessions.Sweep(now); n > 0 {
						s.cfg.Logf("evicted %d idle session(s)", n)
					}
				}
			}
		}()
	}
	if len(s.workerStates) > 0 {
		// Seed shard-sizing weights from the workers' advertised core
		// counts before any latency observations exist.
		s.loops.Add(1)
		go func() {
			defer s.loops.Done()
			defer s.recoverToLog("capacity probe")
			s.probeWorkerCapacities()
		}()
	}
	if s.snapshots != nil && s.cfg.SnapshotInterval > 0 {
		s.loops.Add(1)
		go func() {
			defer s.loops.Done()
			defer s.recoverToLog("snapshot loop")
			t := time.NewTicker(s.cfg.SnapshotInterval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					if err := s.snapshots.SaveAll(s.registry.List()); err != nil {
						s.cfg.Logf("snapshot save: %v", err)
					}
				}
			}
		}()
	}
}

// Close drains in-flight renders (new requests get 503 + Retry-After the
// moment draining begins), stops the background loops, drains sessions and
// writes a final snapshot of every registered scenario's reuse cache.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		// Flip to draining first and wait for admitted renders: the final
		// snapshot then captures their reuse-cache contributions, and no
		// render races the spill-tier teardown below. In-flight work is
		// bounded by the request deadline budget.
		s.gate.drain()
		close(s.stop)
		s.loops.Wait()
		s.sessions.CloseAll()
		if s.snapshots != nil {
			s.closeErr = s.snapshots.SaveAll(s.registry.List())
		}
		// Release spill tiers (mapped files, manifests) after sessions are
		// drained and the final snapshot is written.
		for _, e := range s.registry.List() {
			if err := e.Cache.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if s.shardInputs != nil {
			if err := s.shardInputs.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// ServeHTTP dispatches to the route table, counting every request. It
// rejects new work while draining (health and metrics stay reachable for
// orchestrators) and isolates handler panics: a panicking request answers
// 500 while every other in-flight request continues untouched.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	if s.gate.isDraining() && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
		w.Header().Set("Retry-After", "1")
		s.error(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	rw := &recoverWriter{ResponseWriter: w}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec) // net/http's own "abort this response" signal
		}
		s.metrics.panics.Add(1)
		s.cfg.Logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
		if !rw.wrote {
			s.json(rw.ResponseWriter, http.StatusInternalServerError, map[string]any{
				"error": fmt.Sprintf("internal error: %v", rec),
				"code":  "panic",
			})
		}
	}()
	s.mux.ServeHTTP(rw, r)
}

// ---- request/response shapes ----

type tableDef struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

type registerRequest struct {
	// SQL is the scenario script (required).
	SQL string `json:"sql"`
	// ID optionally names the scenario; default is the fingerprint's
	// first 12 hex digits.
	ID string `json:"id,omitempty"`
	// Tables are deterministic side tables the query's FROM may join.
	Tables []tableDef `json:"tables,omitempty"`
}

type paramJSON struct {
	Name   string `json:"name"`
	Values []any  `json:"values"`
}

type scenarioJSON struct {
	ID            string         `json:"id"`
	Fingerprint   string         `json:"fingerprint"`
	Generation    int            `json:"generation"`
	Params        []paramJSON    `json:"params"`
	OutputColumns []string       `json:"output_columns"`
	SpaceSize     int            `json:"space_size"`
	Warm          bool           `json:"warm_start"`
	Replaced      bool           `json:"replaced,omitempty"`
	Refs          int64          `json:"refs"`
	Store         *fp.StoreStats `json:"store,omitempty"`
	ReuseCounts   map[string]int `json:"reuse_counts,omitempty"`
	CreatedAt     time.Time      `json:"created_at"`
}

type openSessionRequest struct {
	// Worlds overrides the server's default world count.
	Worlds int `json:"worlds,omitempty"`
	// Seed, when nonzero, gives the session a private seed base AND a
	// private reuse engine (the shared cache is bound to one seed base).
	Seed uint64 `json:"seed,omitempty"`
	// Params are initial slider positions.
	Params map[string]any `json:"params,omitempty"`
	// SketchOnly makes the session's sharded renders exchange merged
	// per-column sketches instead of per-world sample vectors (wire
	// protocol v2's compressed response mode). Moments are exact,
	// quantiles carry the t-digest error bound.
	SketchOnly bool `json:"sketch_only,omitempty"`
	// AllowDegraded opts the session's renders into graceful degradation:
	// when the deadline budget expires mid-render, the response carries
	// the worlds (and sweep points) completed so far, flagged
	// "degraded": true with "worlds_completed", instead of a 504.
	AllowDegraded bool `json:"allow_degraded,omitempty"`
}

type sessionJSON struct {
	ID          string          `json:"id"`
	ScenarioID  string          `json:"scenario_id"`
	Axis        string          `json:"axis"`
	Worlds      int             `json:"worlds"`
	Params      map[string]any  `json:"params"`
	Stats       fp.SessionStats `json:"stats"`
	Renders     int64           `json:"renders"`
	Coalesced   int64           `json:"coalesced"`
	ReuseCounts map[string]int  `json:"reuse_counts,omitempty"`
	CreatedAt   time.Time       `json:"created_at"`
}

type renderResponse struct {
	Graph *fp.Graph `json:"graph"`
	// Coalesced reports the frame was served by single-flight (shared
	// with, or cached from, another request) rather than freshly
	// simulated for this call.
	Coalesced   bool           `json:"coalesced"`
	ReuseCounts map[string]int `json:"reuse_counts,omitempty"`
	// RenderID and Trace are present only with ?trace=1 on a non-coalesced
	// render: the span tree covers every stage of this render, including
	// grafted worker subtrees of sharded evaluations.
	RenderID string    `json:"render_id,omitempty"`
	Trace    *obs.Node `json:"trace,omitempty"`
	// Degraded marks a partial frame: the deadline budget expired
	// mid-render and the session opted in via allow_degraded. The graph
	// carries the points completed so far; WorldsCompleted is the minimum
	// world count any returned point was estimated from.
	Degraded        bool `json:"degraded,omitempty"`
	WorldsCompleted int  `json:"worlds_completed,omitempty"`
}

type evaluateRequest struct {
	Points []map[string]any `json:"points"`
	Worlds int              `json:"worlds,omitempty"`
	// SketchOnly makes sharded evaluations exchange merged per-column
	// sketches instead of per-world sample vectors.
	SketchOnly bool `json:"sketch_only,omitempty"`
	// AllowDegraded opts the batch into graceful degradation under the
	// deadline budget: points evaluated before the budget expired are
	// returned flagged degraded instead of the whole batch failing 504.
	AllowDegraded bool `json:"allow_degraded,omitempty"`
}

// ---- handlers ----

const maxBodyBytes = 8 << 20

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.SQL == "" {
		s.error(w, http.StatusBadRequest, fmt.Errorf("missing \"sql\""))
		return
	}
	scn, err := s.cfg.System.Compile(req.SQL)
	if err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	for _, t := range req.Tables {
		rows := make([][]any, len(t.Rows))
		for i, row := range t.Rows {
			rows[i] = make([]any, len(row))
			for j, v := range row {
				rows[i][j] = canonicalNumber(v)
			}
		}
		if err := scn.AddTable(t.Name, t.Columns, rows); err != nil {
			s.error(w, http.StatusBadRequest, err)
			return
		}
	}
	fingerprint := scn.Fingerprint()
	id := req.ID
	if id == "" {
		id = fingerprint[:12]
	}

	cacheOpts := []fp.EvalOption{fp.WithStoreBudget(s.cfg.StoreBudget)}
	if s.cfg.SpillDir != "" {
		// One spill tier per scenario content fingerprint: bases are only
		// valid for the exact compiled scenario (and the default seed base),
		// and the subdir keying means a re-registered identical scenario —
		// or a restart — re-addresses its spilled bases without resimulation.
		cacheOpts = append(cacheOpts,
			fp.WithSpillDir(filepath.Join(s.cfg.SpillDir, "bases", fingerprint)),
			fp.WithSpillBudget(s.cfg.SpillBudget))
	}
	var cache *fp.ReuseCache
	warm := false
	// An idempotent re-registration (same content) keeps the live cache:
	// it is at least as fresh as any disk snapshot, and sessions of both
	// generations then keep sharing one reuse engine.
	if old, ok := s.registry.Get(id); ok && old.Fingerprint == fingerprint {
		cache, warm = old.Cache, true
	}
	if cache == nil && s.snapshots != nil {
		loaded, found, err := s.snapshots.Load(fingerprint, cacheOpts...)
		switch {
		case err != nil:
			s.cfg.Logf("snapshot for %s unusable, starting cold: %v", id, err)
		case found:
			cache, warm = loaded, true
		}
	}
	if cache == nil {
		if cache, err = fp.NewReuseCache(cacheOpts...); err != nil {
			s.error(w, http.StatusInternalServerError, err)
			return
		}
	}

	entry := &ScenarioEntry{
		ID:          id,
		Fingerprint: fingerprint,
		Scenario:    scn,
		Cache:       cache,
		Warm:        warm,
		Source:      req.SQL,
		Tables:      req.Tables,
		CreatedAt:   time.Now(),
	}
	replaced := s.registry.Register(entry)
	s.cfg.Logf("registered scenario %s (fingerprint %.12s, warm=%v, replaced=%v)",
		id, fingerprint, warm, replaced)
	resp := scenarioToJSON(entry, false)
	resp.Replaced = replaced
	s.json(w, http.StatusCreated, resp)
}

func (s *Server) handleListScenarios(w http.ResponseWriter, r *http.Request) {
	entries := s.registry.List()
	out := make([]scenarioJSON, len(entries))
	for i, e := range entries {
		out[i] = scenarioToJSON(e, false)
	}
	s.json(w, http.StatusOK, map[string]any{"scenarios": out})
}

func (s *Server) handleGetScenario(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown scenario %q", r.PathValue("id")))
		return
	}
	s.json(w, http.StatusOK, scenarioToJSON(entry, true))
}

func (s *Server) handleDeleteScenario(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry.Remove(id) {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown scenario %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req openSessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	entry, ok := s.registry.Acquire(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown scenario %q", r.PathValue("id")))
		return
	}
	worlds := req.Worlds
	if worlds <= 0 {
		worlds = s.cfg.DefaultWorlds
	}
	opts := []fp.EvalOption{fp.WithWorlds(worlds)}
	if req.Seed != 0 {
		// A custom seed base changes every sample, so the session cannot
		// share the scenario cache (bound to the default base): it gets a
		// private reuse engine instead.
		opts = append(opts, fp.WithSeedBase(req.Seed), fp.WithStoreBudget(s.cfg.StoreBudget))
	} else {
		opts = append(opts, fp.WithReuseCache(entry.Cache))
	}
	// With workers configured, the session's renders fan each point's
	// world range out across them (shardable scenarios only; others keep
	// evaluating locally inside the executor).
	opts = append(opts, s.shardEvalOptions(entry)...)
	if req.SketchOnly {
		opts = append(opts, fp.WithSketchOnly())
	}
	if req.AllowDegraded {
		opts = append(opts, fp.WithAllowDegraded())
	}
	inner, err := entry.Scenario.OpenSession(opts...)
	if err != nil {
		entry.release()
		s.error(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.sessions.Open(entry, inner, worlds)
	if err != nil {
		entry.release()
		if errors.Is(err, ErrSessionLimit) {
			w.Header().Set("Retry-After", "1")
			s.error(w, http.StatusTooManyRequests, err)
			return
		}
		s.error(w, http.StatusInternalServerError, err)
		return
	}
	if len(req.Params) > 0 {
		if err := sess.SetParams(req.Params); err != nil {
			s.sessions.Close(sess.ID)
			s.error(w, http.StatusBadRequest, err)
			return
		}
	}
	s.json(w, http.StatusCreated, sessionToJSON(sess))
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	s.json(w, http.StatusOK, sessionToJSON(sess))
}

func (s *Server) handleSetParams(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	var params map[string]any
	if !s.decode(w, r, &params) {
		return
	}
	if len(params) == 0 {
		s.error(w, http.StatusBadRequest, fmt.Errorf("no parameters in body"))
		return
	}
	if err := sess.SetParams(params); err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	s.json(w, http.StatusOK, map[string]any{"params": sess.Params()})
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	bctx, cancel, ok := s.withBudget(w, r)
	if !ok {
		return
	}
	defer cancel()
	if err := s.gate.acquire(bctx); err != nil {
		s.admissionError(w, err)
		return
	}
	defer s.gate.release()
	if r.URL.Query().Has("stream") || r.Header.Get("Accept") == "text/event-stream" {
		s.renderSSE(w, r.WithContext(bctx), sess)
		return
	}
	start := time.Now()
	// Every render carries a trace: it feeds the per-stage histograms and
	// the slow-render ring whether or not the client asked for ?trace=1.
	// Coalesced followers share the leader's simulation but not its trace,
	// so their (empty) trees are discarded below.
	tr := obs.New("render", obs.NewID())
	var (
		g         *fp.Graph
		coalesced bool
		err       error
	)
	rpprof.Do(bctx, rpprof.Labels("render_id", tr.ID(), "scenario", sess.Entry.ID), func(ctx context.Context) {
		g, coalesced, err = sess.Render(obs.With(ctx, tr.Root()))
	})
	if err != nil {
		s.metrics.renderErrors.Add(1)
		s.renderError(w, bctx, err)
		return
	}
	resp := renderResponse{
		Graph:           g,
		Coalesced:       coalesced,
		ReuseCounts:     sess.Sess.ReuseCounts(),
		Degraded:        g.Stats.Degraded,
		WorldsCompleted: g.Stats.WorldsCompleted,
	}
	if g.Stats.Degraded {
		s.metrics.degradedRenders.Add(1)
	}
	if coalesced {
		s.metrics.rendersCoalesced.Add(1)
	} else {
		dur := time.Since(start)
		s.metrics.rendersTotal.Add(1)
		s.metrics.renderLatency.observe(dur.Seconds())
		tree := s.observeTrace("render", sess.Entry.ID, sess.ID, tr, dur)
		if r.URL.Query().Get("trace") == "1" {
			resp.RenderID = tr.ID()
			resp.Trace = tree
		}
	}
	s.json(w, http.StatusOK, resp)
}

// renderSSE streams RenderProgressive refinements as server-sent events:
// one "frame" event per world-count pass, then a closing "done" event.
func (s *Server) renderSSE(w http.ResponseWriter, r *http.Request, sess *Session) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.error(w, http.StatusNotAcceptable, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	startWorlds := 64
	if v := r.URL.Query().Get("start_worlds"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.error(w, http.StatusBadRequest, fmt.Errorf("bad start_worlds %q", v))
			return
		}
		startWorlds = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, payload any) bool {
		data, err := json.Marshal(payload)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	start := time.Now()
	tr := obs.New("render", obs.NewID())
	var final *fp.Graph
	var err error
	rpprof.Do(r.Context(), rpprof.Labels("render_id", tr.ID(), "scenario", sess.Entry.ID), func(ctx context.Context) {
		final, err = sess.Sess.RenderProgressive(obs.With(ctx, tr.Root()), startWorlds, func(g *fp.Graph, worlds int) bool {
			if r.Context().Err() != nil {
				return false
			}
			return emit("frame", map[string]any{"worlds": worlds, "graph": g})
		})
	})
	if err != nil {
		s.metrics.renderErrors.Add(1)
		emit("error", map[string]any{"error": err.Error()})
		return
	}
	sess.Touch()
	dur := time.Since(start)
	s.metrics.rendersTotal.Add(1)
	s.metrics.renderLatency.observe(dur.Seconds())
	if final.Stats.Degraded {
		s.metrics.degradedRenders.Add(1)
	}
	s.observeTrace("render-stream", sess.Entry.ID, sess.ID, tr, dur)
	emit("done", map[string]any{
		"render_id":    tr.ID(),
		"stats":        final.Stats,
		"reuse_counts": sess.Sess.ReuseCounts(),
	})
}

// handleExplorationMap serves the paper's Figure 4 exploration grid over
// two slider parameters (?rows=param&cols=param) as JSON.
func (s *Server) handleExplorationMap(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	rows, cols := r.URL.Query().Get("rows"), r.URL.Query().Get("cols")
	if rows == "" || cols == "" {
		s.error(w, http.StatusBadRequest, fmt.Errorf("need ?rows=<param>&cols=<param>"))
		return
	}
	data, err := sess.Sess.ExplorationMapJSON(rows, cols)
	if err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Close(r.PathValue("id")) {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		s.error(w, http.StatusBadRequest, fmt.Errorf("no points in body"))
		return
	}
	entry, ok := s.registry.Acquire(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown scenario %q", r.PathValue("id")))
		return
	}
	defer entry.release()
	bctx, cancel, ok := s.withBudget(w, r)
	if !ok {
		return
	}
	defer cancel()
	if err := s.gate.acquire(bctx); err != nil {
		s.admissionError(w, err)
		return
	}
	defer s.gate.release()
	worlds := req.Worlds
	if worlds <= 0 {
		worlds = s.cfg.DefaultWorlds
	}
	points := make([]map[string]any, len(req.Points))
	for i, pt := range req.Points {
		points[i] = make(map[string]any, len(pt))
		for k, v := range pt {
			points[i][k] = canonicalNumber(v)
		}
	}
	batchOpts := []fp.EvalOption{fp.WithWorlds(worlds), fp.WithReuseCache(entry.Cache)}
	batchOpts = append(batchOpts, s.shardEvalOptions(entry)...)
	if req.SketchOnly {
		batchOpts = append(batchOpts, fp.WithSketchOnly())
	}
	if req.AllowDegraded {
		batchOpts = append(batchOpts, fp.WithAllowDegraded())
	}
	start := time.Now()
	tr := obs.New("evaluate", obs.NewID())
	var res *fp.BatchResult
	var err error
	rpprof.Do(bctx, rpprof.Labels("render_id", tr.ID(), "scenario", entry.ID), func(ctx context.Context) {
		res, err = entry.Scenario.EvaluateBatch(obs.With(ctx, tr.Root()), points, batchOpts...)
	})
	if err != nil {
		s.renderError(w, bctx, err)
		return
	}
	if res.Degraded {
		s.metrics.degradedRenders.Add(1)
	}
	s.metrics.evaluatesTotal.Add(1)
	s.metrics.pointsEvaluated.Add(int64(len(points)))
	tree := s.observeTrace("evaluate", entry.ID, "", tr, time.Since(start))
	if r.URL.Query().Get("trace") == "1" {
		s.json(w, http.StatusOK, struct {
			*fp.BatchResult
			RenderID string    `json:"render_id"`
			Trace    *obs.Node `json:"trace"`
		}{res, tr.ID(), tree})
		return
	}
	s.json(w, http.StatusOK, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.json(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.metrics.start).Seconds()),
		"scenarios":      s.registry.Len(),
		"sessions":       s.sessions.Len(),
		// Shard-serving advertisement: protocol version and core count,
		// read by coordinators to seed worker-aware shard sizing.
		"shard_proto":    fp.ShardProtocolVersion,
		"shard_capacity": runtime.GOMAXPROCS(0),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeTo(w, s)
}

// ---- helpers ----

func scenarioToJSON(e *ScenarioEntry, detailed bool) scenarioJSON {
	params := e.Scenario.Params()
	ps := make([]paramJSON, len(params))
	for i, p := range params {
		ps[i] = paramJSON{Name: p.Name, Values: p.Values}
	}
	out := scenarioJSON{
		ID:            e.ID,
		Fingerprint:   e.Fingerprint,
		Generation:    e.Generation,
		Params:        ps,
		OutputColumns: e.Scenario.OutputColumns(),
		SpaceSize:     e.Scenario.SpaceSize(),
		Warm:          e.Warm,
		Refs:          e.Refs(),
		CreatedAt:     e.CreatedAt,
	}
	if detailed {
		st := e.Cache.StoreStats()
		out.Store = &st
		out.ReuseCounts = e.Cache.Counts()
	}
	return out
}

func sessionToJSON(s *Session) sessionJSON {
	return sessionJSON{
		ID:          s.ID,
		ScenarioID:  s.Entry.ID,
		Axis:        s.Sess.Axis(),
		Worlds:      s.Worlds,
		Params:      s.Params(),
		Stats:       s.Sess.SessionStats(),
		Renders:     s.Renders(),
		Coalesced:   s.Coalesced(),
		ReuseCounts: s.Sess.ReuseCounts(),
		CreatedAt:   s.CreatedAt,
	}
}

// canonicalNumber converts whole JSON numbers (always decoded as float64)
// to int64, so parameter values and table cells match integer-declared
// spaces and produce canonical reuse-cache argument keys.
func canonicalNumber(v any) any {
	f, ok := v.(float64)
	if !ok {
		return v
	}
	if f == math.Trunc(f) && math.Abs(f) < 1<<53 {
		return int64(f)
	}
	return v
}

// decode reads a JSON body into dst, reporting malformed input as 400.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		s.error(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) json(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		s.cfg.Logf("encoding response: %v", err)
	}
}

// error writes a JSON error envelope; compile errors carry line/col.
func (s *Server) error(w http.ResponseWriter, status int, err error) {
	body := map[string]any{"error": err.Error()}
	var ce *fp.CompileError
	if errors.As(err, &ce) && ce.Line > 0 {
		body["line"], body["col"] = ce.Line, ce.Col
	}
	s.json(w, status, body)
}

// renderError maps evaluation failures to statuses: client-caused input
// errors are 400; client disconnects 499 (nginx convention, no error-log
// spam — the client is gone); the server's own deadline budget expiring is
// a structured 504; recovered evaluation panics are a structured 500 with
// the stack logged; everything else 500. ctx is the request context the
// evaluation ran under, consulted to tell the server's budget (via its
// cancellation cause) from the client's disappearance.
func (s *Server) renderError(w http.ResponseWriter, ctx context.Context, err error) {
	var unknown *fp.UnknownParamError
	var pe *fp.PanicError
	switch {
	case errors.As(err, &unknown):
		s.error(w, http.StatusBadRequest, err)
	case errors.As(err, &pe):
		s.metrics.panics.Add(1)
		s.cfg.Logf("panic in %s: %v\n%s", pe.Stage, pe.Value, pe.Stack)
		s.json(w, http.StatusInternalServerError, map[string]any{
			"error": err.Error(),
			"code":  "panic",
		})
	case errors.Is(err, context.Canceled):
		s.metrics.clientDisconnects.Add(1)
		s.error(w, 499, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.deadlinesExceeded.Add(1)
		body := map[string]any{
			"error": err.Error(),
			"code":  "deadline_exceeded",
		}
		var be *budgetExceededError
		if ctx != nil && errors.As(context.Cause(ctx), &be) {
			body["budget"] = be.budget.String()
		}
		s.json(w, http.StatusGatewayTimeout, body)
	default:
		s.error(w, http.StatusInternalServerError, err)
	}
}

// admissionError maps gate rejections: draining → 503, shed → 429 (both
// with Retry-After), client disconnect while queued → 499.
func (s *Server) admissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "1")
		s.error(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, errOverloaded):
		s.metrics.rendersShed.Add(1)
		w.Header().Set("Retry-After", "1")
		s.error(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.Canceled):
		s.metrics.clientDisconnects.Add(1)
		s.error(w, 499, err)
	default:
		s.error(w, http.StatusInternalServerError, err)
	}
}
