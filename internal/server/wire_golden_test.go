package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format fixtures")

// goldenFP is a fixed fake scenario fingerprint for wire fixtures.
const goldenFP = "8c1f37a0d9b45e627c3a1b09e8d47f5a8c1f37a0d9b45e627c3a1b09e8d47f5a"

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "wire", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(got)) {
		t.Errorf("wire format drifted from %s:\n got: %s\nwant: %s", path, got, bytes.TrimSpace(want))
	}
}

// TestWireGoldenFixtures pins the v2 wire format: the steady-state
// fingerprint-only request, the full-payload re-send, the sketch-only
// variant, and the worker's distinguishable cache-miss answer. A diff here
// means the wire protocol changed — bump fp.ShardProtocolVersion and
// update the coordinator's compatibility path before updating fixtures.
func TestWireGoldenFixtures(t *testing.T) {
	point := map[string]any{"budget": 12.0, "week": 3.0}

	slim := shardRequest{
		Proto:       2,
		Fingerprint: goldenFP,
		Point:       point,
		Worlds:      100000,
		Seed:        20110612,
		Lo:          25000,
		Hi:          50000,
	}
	raw, err := json.Marshal(slim)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "request_v2_slim.json", raw)

	sketch := slim
	sketch.SketchOnly = true
	raw, err = json.Marshal(sketch)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "request_v2_sketch_only.json", raw)

	full := slim
	full.SQL = "CREATE SCENARIO demo AS SELECT Gaussian(100, 15) AS demand"
	full.Tables = []tableDef{{
		Name:    "regions",
		Columns: []string{"region", "share"},
		Rows:    [][]any{{"us-east", 0.4}, {"europe", 0.6}},
	}}
	raw, err = json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "request_v2_full.json", raw)

	// The 409 cache-miss body, produced by a real worker.
	_, ts := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	resp, err := http.Post(ts.URL+"/shard/render", "application/json",
		bytes.NewReader(mustMarshal(t, slim)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("uncached fingerprint = %d, want 409", resp.StatusCode)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "response_409_scenario_not_cached.json", bytes.TrimSpace(body.Bytes()))
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
