// World-shard fan-out: the HTTP half of distributed rendering.
//
// A render's Monte Carlo world range is embarrassingly parallel and every
// sample derives from a per-(site, world) seed, so any fpserver holding the
// same VG registry can evaluate a world range [lo, hi) of any scenario
// bit-identically. Two roles cooperate:
//
//   - WORKER (fpserver -worker): serves POST /shard/render. The request
//     carries the scenario script + side tables (cached by fingerprint
//     after the first shard), the parameter point, the total world count
//     and seed base, and the world range. The worker self-simulates the
//     range, executes the compiled plan, and returns the partial output
//     columns in world order plus mergeable per-column sketches.
//
//   - COORDINATOR (fpserver -workers=url1,url2,...): a workerPool
//     implements fp.ShardEvaluator; session renders and batch evaluates
//     fan each point's world range out across the configured workers. A
//     failed shard request is retried on every other worker in turn; when
//     all fail, the Monte Carlo executor evaluates that shard locally —
//     dying workers degrade throughput, never correctness or results.
//     With no workers configured everything evaluates locally, unchanged.
package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/obs"
)

// Trace propagation headers: the coordinator stamps each shard request
// with the render ID and a trace flag; the worker returns its span tree in
// shardResponse.Trace and the coordinator grafts it under the requesting
// shard span — one stitched tree per render across processes.
const (
	headerRenderID = "X-FP-Render-ID"
	headerTrace    = "X-FP-Trace"
)

// shardRequest is the wire form of one shard evaluation.
type shardRequest struct {
	// SQL is the scenario script; Tables its deterministic side tables.
	SQL    string     `json:"sql"`
	Tables []tableDef `json:"tables,omitempty"`
	// Fingerprint, when set, must match the compiled scenario's content
	// identity — it guards against coordinator/worker model drift and keys
	// the worker's scenario cache.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Point holds the parameter point; Worlds the render's TOTAL world
	// count; Seed the seed base (0 = the default).
	Point  map[string]any `json:"point"`
	Worlds int            `json:"worlds"`
	Seed   uint64         `json:"seed,omitempty"`
	// Lo/Hi is the assigned world range [Lo, Hi) within [0, Worlds).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// shardResponse mirrors fp.ShardResult on the wire.
type shardResponse struct {
	Rows     int                        `json:"rows"`
	Columns  map[string][]float64       `json:"columns"`
	Sketches map[string]fp.ColumnSketch `json:"sketches,omitempty"`
	// Trace is the worker's span tree for this shard, present only when
	// the request carried the X-FP-Trace header.
	Trace *obs.Node `json:"trace,omitempty"`
}

// shardScenarioCacheMax bounds the worker's compiled-scenario cache.
const shardScenarioCacheMax = 64

// shardScenarios is the worker-side compiled-scenario cache, keyed by
// fingerprint (LRU beyond shardScenarioCacheMax). Compiling per shard
// request would dwarf small shards; after the first shard of a scenario,
// workers pay only the evaluation.
type shardScenarios struct {
	mu    sync.Mutex
	byFP  map[string]*list.Element // fingerprint → element holding *shardScenarioEntry
	order *list.List               // front = most recent
}

type shardScenarioEntry struct {
	fp  string
	scn *fp.Scenario
}

func newShardScenarios() *shardScenarios {
	return &shardScenarios{byFP: make(map[string]*list.Element), order: list.New()}
}

// get returns the cached compiled scenario for the request, compiling (and
// verifying the fingerprint of) a fresh one on miss.
func (c *shardScenarios) get(sys *fp.System, req *shardRequest) (*fp.Scenario, error) {
	if req.Fingerprint != "" {
		c.mu.Lock()
		if el, ok := c.byFP[req.Fingerprint]; ok {
			c.order.MoveToFront(el)
			scn := el.Value.(*shardScenarioEntry).scn
			c.mu.Unlock()
			return scn, nil
		}
		c.mu.Unlock()
	}
	scn, err := sys.Compile(req.SQL)
	if err != nil {
		return nil, err
	}
	for _, t := range req.Tables {
		rows := make([][]any, len(t.Rows))
		for i, row := range t.Rows {
			rows[i] = make([]any, len(row))
			for j, v := range row {
				rows[i][j] = canonicalNumber(v)
			}
		}
		if err := scn.AddTable(t.Name, t.Columns, rows); err != nil {
			return nil, err
		}
	}
	got := scn.Fingerprint()
	if req.Fingerprint != "" && got != req.Fingerprint {
		return nil, fmt.Errorf("scenario fingerprint mismatch: coordinator sent %.12s, worker compiled %.12s (model registries differ?)", req.Fingerprint, got)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byFP[got]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*shardScenarioEntry).scn, nil
	}
	c.byFP[got] = c.order.PushFront(&shardScenarioEntry{fp: got, scn: scn})
	for c.order.Len() > shardScenarioCacheMax {
		el := c.order.Back()
		delete(c.byFP, el.Value.(*shardScenarioEntry).fp)
		c.order.Remove(el)
	}
	return scn, nil
}

// handleShardRender serves one shard evaluation (worker role).
func (s *Server) handleShardRender(w http.ResponseWriter, r *http.Request) {
	var req shardRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.SQL == "" {
		s.error(w, http.StatusBadRequest, fmt.Errorf("missing \"sql\""))
		return
	}
	if req.Worlds <= 0 || req.Lo < 0 || req.Hi > req.Worlds || req.Lo >= req.Hi {
		s.error(w, http.StatusBadRequest, fmt.Errorf("bad shard range [%d,%d) of %d worlds", req.Lo, req.Hi, req.Worlds))
		return
	}
	scn, err := s.shardCache.get(s.cfg.System, &req)
	if err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	point := make(map[string]any, len(req.Point))
	for k, v := range req.Point {
		point[k] = canonicalNumber(v)
	}
	opts := []fp.EvalOption{
		// Sub-shard across this worker's cores so one request saturates it.
		fp.WithShards(runtime.GOMAXPROCS(0)),
	}
	if s.shardInputs != nil {
		// Serve repeated (site, args, seed, range) input vectors from the
		// spillable cache instead of re-invoking VG-Functions per world.
		opts = append(opts, fp.WithShardInputCache(s.shardInputs))
	}
	ctx := r.Context()
	var tr *obs.Trace
	if r.Header.Get(headerTrace) != "" {
		// The coordinator asked for this shard's span tree: trace under the
		// propagated render ID and return the tree in the response.
		tr = obs.New("worker-shard", r.Header.Get(headerRenderID))
		ctx = obs.With(ctx, tr.Root())
		tr.Root().SetInt("lo", int64(req.Lo))
		tr.Root().SetInt("hi", int64(req.Hi))
	}
	res, err := scn.EvaluateShard(ctx, point, req.Worlds, req.Seed,
		fp.WorldShard{Lo: req.Lo, Hi: req.Hi}, opts...)
	if err != nil {
		s.renderError(w, err)
		return
	}
	s.metrics.shardRendersServed.Add(1)
	resp := shardResponse{Rows: res.Rows, Columns: res.Columns, Sketches: res.Sketches}
	if tr != nil {
		tr.End()
		resp.Trace = tr.Tree()
		// Worker-side stage histograms see shard work even though the
		// coordinator also observes the stitched tree on its side.
		s.metrics.observeStages(resp.Trace)
	}
	s.json(w, http.StatusOK, resp)
}

// workerPool fans shard evaluations out to a fixed set of worker base
// URLs, implementing fp.ShardEvaluator for one scenario entry. Worker
// selection round-robins per shard; a failed request is retried on every
// other worker before reporting failure (upon which the Monte Carlo
// executor evaluates the shard locally).
type workerPool struct {
	urls    []string
	client  *http.Client
	entry   *ScenarioEntry
	metrics *metrics
	logf    func(string, ...any)
	next    atomic.Uint64
}

// newWorkerPool builds the fan-out evaluator for one scenario entry.
func (s *Server) newWorkerPool(entry *ScenarioEntry) *workerPool {
	return &workerPool{
		urls:    s.cfg.Workers,
		client:  s.shardClient,
		entry:   entry,
		metrics: s.metrics,
		logf:    s.cfg.Logf,
	}
}

// EvaluateShard implements fp.ShardEvaluator over HTTP.
func (p *workerPool) EvaluateShard(ctx context.Context, point map[string]any, worlds int, seed uint64, shard fp.WorldShard) (*fp.ShardResult, error) {
	body, err := json.Marshal(shardRequest{
		SQL:         p.entry.Source,
		Tables:      p.entry.Tables,
		Fingerprint: p.entry.Fingerprint,
		Point:       point,
		Worlds:      worlds,
		Seed:        seed,
		Lo:          shard.Lo,
		Hi:          shard.Hi,
	})
	if err != nil {
		return nil, err
	}
	start := int(p.next.Add(1)-1) % len(p.urls)
	var lastErr error
	for k := 0; k < len(p.urls); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		url := p.urls[(start+k)%len(p.urls)]
		res, err := p.post(ctx, url, body)
		if err == nil {
			p.metrics.shardFanouts.Add(1)
			return res, nil
		}
		lastErr = err
		if k+1 < len(p.urls) {
			p.metrics.shardRetries.Add(1)
			p.logf("shard [%d,%d): worker %s failed (%v), retrying on next", shard.Lo, shard.Hi, url, err)
		}
	}
	p.metrics.shardWorkerFailures.Add(1)
	p.logf("shard [%d,%d): all %d worker(s) failed, evaluating locally: %v", shard.Lo, shard.Hi, len(p.urls), lastErr)
	return nil, lastErr
}

// post performs one shard request against one worker.
func (p *workerPool) post(ctx context.Context, base string, body []byte) (*fp.ShardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shard/render", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	sp := obs.SpanFrom(ctx)
	if sp != nil {
		req.Header.Set(headerTrace, "1")
		if id := sp.TraceID(); id != "" {
			req.Header.Set(headerRenderID, id)
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("worker %s: status %d: %s", base, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var sr shardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("worker %s: decoding response: %w", base, err)
	}
	if sr.Trace != nil {
		sp.Graft(sr.Trace)
	}
	return &fp.ShardResult{Rows: sr.Rows, Columns: sr.Columns, Sketches: sr.Sketches}, nil
}

// shardEvalOptions returns the fan-out options for evaluations of entry
// when workers are configured (nil otherwise): one shard per worker,
// evaluated through the entry's worker pool.
func (s *Server) shardEvalOptions(entry *ScenarioEntry) []fp.EvalOption {
	if len(s.cfg.Workers) == 0 {
		return nil
	}
	return []fp.EvalOption{
		fp.WithShards(len(s.cfg.Workers)),
		fp.WithShardEvaluator(s.newWorkerPool(entry)),
	}
}

// defaultShardTimeout bounds one shard request; the per-request context
// still cancels earlier when the client goes away.
const defaultShardTimeout = 2 * time.Minute
