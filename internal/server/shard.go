// World-shard fan-out: the HTTP half of distributed rendering.
//
// A render's Monte Carlo world range is embarrassingly parallel and every
// sample derives from a per-(site, world) seed, so any fpserver holding the
// same VG registry can evaluate a world range [lo, hi) of any scenario
// bit-identically. Two roles cooperate over wire protocol v2:
//
//   - WORKER (fpserver -worker): serves POST /shard/render. A steady-state
//     v2 request carries only the scenario FINGERPRINT plus the parameter
//     point, total world count, seed base and world range — no script, no
//     side tables. The worker resolves the fingerprint in its compiled-
//     scenario cache; a miss answers 409 {"code":"scenario_not_cached"},
//     upon which the coordinator re-sends once with the full payload. Each
//     cached scenario keeps a freelist of warmed evaluators, so repeat
//     shards pay only the evaluation. With sketch_only set (body field or
//     ?sketch_only=1) the response carries merged per-column sketches
//     instead of per-world sample vectors — O(compression), not O(worlds).
//
//   - COORDINATOR (fpserver -workers=url1,url2,...): a workerPool
//     implements fp.ShardEvaluator; session renders and batch evaluates
//     fan each point's world range out across the configured workers,
//     sizing each worker's range by its observed throughput (latency EWMA)
//     or /healthz-advertised capacity. The coordinator tracks, per worker,
//     which fingerprints are warm (so steady state sends fingerprint-only
//     requests) and whether the worker speaks v2 (a v1 worker rejecting a
//     fingerprint-only request with 400 downgrades it to full payloads).
//     A worker failing with a transport error or 5xx trips its circuit
//     breaker and is only retried after the (jittered, backoff-doubling)
//     open window lapses — or when every worker's breaker is open. Slow
//     shards are hedged: past the hedge delay (the observed P95 by
//     default) a duplicate request races on a second worker and the first
//     result wins. A failed shard request is retried on the remaining
//     workers with jittered exponential backoff; when all fail, the Monte
//     Carlo executor evaluates that shard locally — dying workers degrade
//     throughput, never correctness or results. Per-attempt deadlines
//     derive from the request's remaining deadline budget (capped by
//     ShardTimeout) and propagate to workers via X-FP-Budget-Ms. With no
//     workers configured everything evaluates locally, unchanged.
package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/obs"
)

// Trace propagation headers: the coordinator stamps each shard request
// with the render ID and a trace flag; the worker returns its span tree in
// shardResponse.Trace and the coordinator grafts it under the requesting
// shard span — one stitched tree per render across processes. The worker
// also advertises its protocol version and core count on every shard
// response.
const (
	headerRenderID = "X-FP-Render-ID"
	headerTrace    = "X-FP-Trace"
	headerProto    = "X-FP-Shard-Proto"
	headerCapacity = "X-FP-Shard-Capacity"
	// headerBudget carries the coordinator attempt's remaining deadline
	// budget in milliseconds; the worker applies it server-side so an
	// abandoned shard stops burning cores even if the connection lingers.
	headerBudget = "X-FP-Budget-Ms"
)

// Error codes carried in the "code" field of shard error bodies, so
// coordinators distinguish protocol states from plain failures without
// parsing prose.
const (
	codeScenarioNotCached   = "scenario_not_cached"
	codeUnsupportedProtocol = "unsupported_protocol"
)

// shardRequest is the wire form of one shard evaluation.
//
// Protocol v2 (Proto == 2): the steady-state request carries Fingerprint
// but neither SQL nor Tables; the worker resolves the scenario from its
// cache and answers 409/scenario_not_cached when it can't, triggering a
// one-shot full re-send. Version 1 (Proto 0 or 1) always carries SQL; a v1
// worker ignores the v2-only fields, so a full v2 request is also a valid
// v1 request.
type shardRequest struct {
	// Proto is the wire protocol version the coordinator speaks (0 and 1
	// mean v1). Workers reject versions above theirs with 400
	// unsupported_protocol.
	Proto int `json:"proto,omitempty"`
	// SQL is the scenario script; Tables its deterministic side tables.
	// Omitted on steady-state v2 requests.
	SQL    string     `json:"sql,omitempty"`
	Tables []tableDef `json:"tables,omitempty"`
	// Fingerprint identifies the compiled scenario's content — it keys the
	// worker's scenario cache and guards against coordinator/worker model
	// drift when a full payload is compiled.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Point holds the parameter point; Worlds the render's TOTAL world
	// count; Seed the seed base (0 = the default).
	Point  map[string]any `json:"point"`
	Worlds int            `json:"worlds"`
	Seed   uint64         `json:"seed,omitempty"`
	// Lo/Hi is the assigned world range [Lo, Hi) within [0, Worlds).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// SketchOnly asks for merged per-column sketches WITHOUT the per-world
	// sample vectors (equivalent to the ?sketch_only=1 query parameter).
	SketchOnly bool `json:"sketch_only,omitempty"`
}

// shardResponse mirrors fp.ShardResult on the wire.
type shardResponse struct {
	Rows     int                        `json:"rows"`
	Columns  map[string][]float64       `json:"columns,omitempty"`
	Sketches map[string]fp.ColumnSketch `json:"sketches,omitempty"`
	// Trace is the worker's span tree for this shard, present only when
	// the request carried the X-FP-Trace header.
	Trace *obs.Node `json:"trace,omitempty"`
}

// shardScenarioCacheMax bounds the worker's compiled-scenario cache.
const shardScenarioCacheMax = 64

// shardScenarios is the worker-side compiled-scenario cache, keyed by
// fingerprint (LRU beyond shardScenarioCacheMax). Compiling per shard
// request would dwarf small shards; after the first shard of a scenario,
// workers pay only the evaluation — and each entry's evaluator freelist
// (fp.ShardWorker) carries warmed execution state across requests.
type shardScenarios struct {
	mu    sync.Mutex
	byFP  map[string]*list.Element // fingerprint → element holding *shardScenarioEntry
	order *list.List               // front = most recent
}

type shardScenarioEntry struct {
	fp     string
	scn    *fp.Scenario
	worker *fp.ShardWorker
}

func newShardScenarios() *shardScenarios {
	return &shardScenarios{byFP: make(map[string]*list.Element), order: list.New()}
}

// lookup returns the cached entry for a fingerprint without compiling —
// the v2 steady-state path. A false return means the coordinator must
// re-send the full payload.
func (c *shardScenarios) lookup(fingerprint string) (*shardScenarioEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byFP[fingerprint]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*shardScenarioEntry), true
}

// flush drops every cached scenario (test hook for cache-miss storms).
func (c *shardScenarios) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byFP = make(map[string]*list.Element)
	c.order = list.New()
}

// get returns the cached compiled scenario for the request, compiling (and
// verifying the fingerprint of) a fresh one on miss. mkWorker builds the
// entry's evaluator freelist from the compiled scenario.
func (c *shardScenarios) get(sys *fp.System, req *shardRequest, mkWorker func(*fp.Scenario) (*fp.ShardWorker, error)) (*shardScenarioEntry, error) {
	if req.Fingerprint != "" {
		if e, ok := c.lookup(req.Fingerprint); ok {
			return e, nil
		}
	}
	scn, err := sys.Compile(req.SQL)
	if err != nil {
		return nil, err
	}
	for _, t := range req.Tables {
		rows := make([][]any, len(t.Rows))
		for i, row := range t.Rows {
			rows[i] = make([]any, len(row))
			for j, v := range row {
				rows[i][j] = canonicalNumber(v)
			}
		}
		if err := scn.AddTable(t.Name, t.Columns, rows); err != nil {
			return nil, err
		}
	}
	got := scn.Fingerprint()
	if req.Fingerprint != "" && got != req.Fingerprint {
		return nil, fmt.Errorf("scenario fingerprint mismatch: coordinator sent %.12s, worker compiled %.12s (model registries differ?)", req.Fingerprint, got)
	}
	worker, err := mkWorker(scn)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byFP[got]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*shardScenarioEntry), nil
	}
	entry := &shardScenarioEntry{fp: got, scn: scn, worker: worker}
	c.byFP[got] = c.order.PushFront(entry)
	for c.order.Len() > shardScenarioCacheMax {
		el := c.order.Back()
		delete(c.byFP, el.Value.(*shardScenarioEntry).fp)
		c.order.Remove(el)
	}
	return entry, nil
}

// newShardWorkerFor builds the per-scenario evaluator freelist a worker
// serves shard requests from: sub-sharded across this machine's cores,
// with the spillable shard-input cache when configured.
func (s *Server) newShardWorkerFor(scn *fp.Scenario) (*fp.ShardWorker, error) {
	opts := []fp.EvalOption{
		// Sub-shard across this worker's cores so one request saturates it.
		fp.WithShards(runtime.GOMAXPROCS(0)),
	}
	if s.shardInputs != nil {
		// Serve repeated (site, args, seed, range) input vectors from the
		// spillable cache instead of re-invoking VG-Functions per world.
		opts = append(opts, fp.WithShardInputCache(s.shardInputs))
	}
	return scn.NewShardWorker(opts...)
}

// protocolError writes a JSON error body with a machine-readable code, so
// coordinators branch on protocol states without parsing prose.
func (s *Server) protocolError(w http.ResponseWriter, status int, code string, err error) {
	s.json(w, status, map[string]any{"error": err.Error(), "code": code})
}

// handleShardRender serves one shard evaluation (worker role).
func (s *Server) handleShardRender(w http.ResponseWriter, r *http.Request) {
	var req shardRequest
	if !s.decode(w, r, &req) {
		return
	}
	w.Header().Set(headerProto, strconv.Itoa(fp.ShardProtocolVersion))
	w.Header().Set(headerCapacity, strconv.Itoa(runtime.GOMAXPROCS(0)))
	if req.Proto > fp.ShardProtocolVersion {
		s.protocolError(w, http.StatusBadRequest, codeUnsupportedProtocol,
			fmt.Errorf("unsupported shard protocol %d (this worker speaks <= %d)", req.Proto, fp.ShardProtocolVersion))
		return
	}
	if req.Worlds <= 0 || req.Lo < 0 || req.Hi > req.Worlds || req.Lo >= req.Hi {
		s.error(w, http.StatusBadRequest, fmt.Errorf("bad shard range [%d,%d) of %d worlds", req.Lo, req.Hi, req.Worlds))
		return
	}
	var entry *shardScenarioEntry
	if req.SQL == "" {
		if req.Fingerprint == "" {
			s.error(w, http.StatusBadRequest, fmt.Errorf("missing \"sql\""))
			return
		}
		// v2 steady state: fingerprint-only resolution. A miss is the
		// protocol's distinguishable cache-miss answer, not a failure: the
		// coordinator re-sends once with the full payload.
		var ok bool
		if entry, ok = s.shardCache.lookup(req.Fingerprint); !ok {
			s.metrics.shardCacheMisses.Add(1)
			s.protocolError(w, http.StatusConflict, codeScenarioNotCached,
				fmt.Errorf("scenario %.12s not cached on this worker; re-send with the full payload", req.Fingerprint))
			return
		}
	} else {
		var err error
		if entry, err = s.shardCache.get(s.cfg.System, &req, s.newShardWorkerFor); err != nil {
			s.error(w, http.StatusBadRequest, err)
			return
		}
	}
	sketchOnly := req.SketchOnly || r.URL.Query().Get("sketch_only") == "1"
	point := make(map[string]any, len(req.Point))
	for k, v := range req.Point {
		point[k] = canonicalNumber(v)
	}
	ctx := r.Context()
	// Honor the coordinator's propagated deadline budget: the shard aborts
	// between world batches once the budget is gone, whether or not the
	// transport connection has been torn down yet.
	if v := r.Header.Get(headerBudget); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			budget := time.Duration(ms) * time.Millisecond
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeoutCause(ctx, budget, &budgetExceededError{budget})
			defer cancel()
		}
	}
	var tr *obs.Trace
	if r.Header.Get(headerTrace) != "" {
		// The coordinator asked for this shard's span tree: trace under the
		// propagated render ID and return the tree in the response.
		tr = obs.New("worker-shard", r.Header.Get(headerRenderID))
		ctx = obs.With(ctx, tr.Root())
		tr.Root().SetInt("lo", int64(req.Lo))
		tr.Root().SetInt("hi", int64(req.Hi))
		if sketchOnly {
			tr.Root().SetInt("sketch_only", 1)
		}
	}
	res, err := entry.worker.EvaluateShard(ctx, point, req.Worlds, req.Seed,
		fp.WorldShard{Lo: req.Lo, Hi: req.Hi}, sketchOnly)
	if err != nil {
		s.renderError(w, ctx, err)
		return
	}
	s.metrics.shardRendersServed.Add(1)
	if sketchOnly {
		s.metrics.shardSketchOnlyServed.Add(1)
	}
	resp := shardResponse{Rows: res.Rows, Columns: res.Columns, Sketches: res.Sketches}
	if tr != nil {
		tr.End()
		resp.Trace = tr.Tree()
		// Worker-side stage histograms see shard work even though the
		// coordinator also observes the stitched tree on its side.
		s.metrics.observeStages(resp.Trace)
	}
	s.json(w, http.StatusOK, resp)
}

// ---- coordinator side ----

// ewmaAlpha weighs the newest per-world latency observation in a worker's
// moving average.
const ewmaAlpha = 0.3

// workerState is the coordinator's per-worker book-keeping, shared by every
// scenario's workerPool so warm sets, health and throughput estimates
// survive across renders and scenarios.
type workerState struct {
	url string
	// br is the worker's circuit breaker: opened by consecutive transport
	// errors / 5xx answers, it moves the worker to the back of the retry
	// order until its (jittered, backoff-doubling) open window lapses.
	br *breaker

	mu sync.Mutex
	// warm records which scenario fingerprints this worker has confirmed
	// cached, making fingerprint-only (slim) requests safe.
	warm map[string]bool
	// v1 marks a worker that rejected a fingerprint-only request outright
	// (version skew): it gets full payloads from then on.
	v1 bool
	// ewmaNsPerWorld is the exponentially weighted per-world latency; 0
	// until the first successful shard.
	ewmaNsPerWorld float64
	// capacity is the worker's /healthz-advertised core count (0 unknown).
	capacity float64
}

// newWorkerStates builds the shared per-worker book-keeping; threshold and
// cooldown parameterize each worker's circuit breaker (cooldown <= 0
// disables opening, restoring always-try behavior).
func newWorkerStates(urls []string, threshold int, cooldown time.Duration) []*workerState {
	out := make([]*workerState, len(urls))
	for i, u := range urls {
		out[i] = &workerState{url: u, br: newBreaker(threshold, cooldown), warm: make(map[string]bool)}
	}
	return out
}

func (ws *workerState) isWarm(fingerprint string) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return !ws.v1 && ws.warm[fingerprint]
}

func (ws *workerState) setWarm(fingerprint string, warm bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if warm {
		ws.warm[fingerprint] = true
	} else {
		delete(ws.warm, fingerprint)
	}
}

func (ws *workerState) supportsV2() bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return !ws.v1
}

func (ws *workerState) downgrade() {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.v1 = true
	ws.warm = make(map[string]bool)
}

// healthy reports whether the worker's breaker admits an attempt now
// (closed, or half-open — the attempt doubles as the probe).
func (ws *workerState) healthy(now time.Time) bool {
	return ws.br.allow(now)
}

// markFailed records a qualifying shard failure on the breaker and reports
// whether it opened (or re-opened).
func (ws *workerState) markFailed() bool {
	return ws.br.onFailure(time.Now())
}

func (ws *workerState) markHealthy() {
	ws.br.onSuccess()
}

func (ws *workerState) setCapacity(cores float64) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.capacity = cores
}

// observe folds one successful shard's per-world latency into the EWMA.
func (ws *workerState) observe(worlds int, dur time.Duration) {
	if worlds <= 0 || dur <= 0 {
		return
	}
	nsPerWorld := float64(dur.Nanoseconds()) / float64(worlds)
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.ewmaNsPerWorld == 0 {
		ws.ewmaNsPerWorld = nsPerWorld
		return
	}
	ws.ewmaNsPerWorld += ewmaAlpha * (nsPerWorld - ws.ewmaNsPerWorld)
}

// snapshot returns (ewmaNsPerWorld, capacity) under the lock.
func (ws *workerState) snapshot() (float64, float64) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.ewmaNsPerWorld, ws.capacity
}

// shardHTTPError is a non-200 worker answer, carrying the machine-readable
// protocol code when the body had one.
type shardHTTPError struct {
	url    string
	status int
	code   string
	msg    string
}

func (e *shardHTTPError) Error() string {
	return fmt.Sprintf("worker %s: status %d: %s", e.url, e.status, e.msg)
}

// workerPool fans shard evaluations out to the configured workers,
// implementing fp.ShardEvaluator for one scenario entry over wire protocol
// v2. Worker selection starts at the shard's index (shard i was sized by
// worker i's weight), preferring workers whose circuit breaker admits
// traffic. A slow shard is hedged: after the hedge delay (observed P95 by
// default) a duplicate request goes to the next candidate and the first
// result wins. A failed request is retried on every other candidate with
// jittered exponential backoff before reporting failure (upon which the
// Monte Carlo executor evaluates the shard locally).
type workerPool struct {
	states       []*workerState
	client       *http.Client
	entry        *ScenarioEntry
	metrics      *metrics
	logf         func(string, ...any)
	shardTimeout time.Duration // per-attempt cap (0 = request budget only)
	hedge        time.Duration // 0 adaptive, >0 fixed, <0 disabled
	retryBackoff time.Duration // base of the jittered exponential backoff
	latency      *latencyTracker
}

// newWorkerPool builds the fan-out evaluator for one scenario entry.
func (s *Server) newWorkerPool(entry *ScenarioEntry) *workerPool {
	return &workerPool{
		states:       s.workerStates,
		client:       s.shardClient,
		entry:        entry,
		metrics:      s.metrics,
		logf:         s.cfg.Logf,
		shardTimeout: s.cfg.ShardTimeout,
		hedge:        s.cfg.HedgeDelay,
		retryBackoff: s.cfg.RetryBackoff,
		latency:      s.shardLatency,
	}
}

// weights returns the per-worker shard-sizing weights: inverse per-world
// latency when every worker has an EWMA, advertised capacities when every
// worker advertised one, nil (= equal split) otherwise. Mixing the two
// scales would compare incomparable units.
func (p *workerPool) weights() []float64 {
	ewmas := make([]float64, len(p.states))
	caps := make([]float64, len(p.states))
	allEwma, allCaps := true, true
	for i, ws := range p.states {
		e, c := ws.snapshot()
		ewmas[i], caps[i] = e, c
		if e <= 0 {
			allEwma = false
		}
		if c <= 0 {
			allCaps = false
		}
	}
	switch {
	case allEwma:
		out := make([]float64, len(ewmas))
		for i, e := range ewmas {
			out[i] = 1 / e
		}
		return out
	case allCaps:
		return caps
	default:
		return nil
	}
}

// order returns the workers to try for a shard, starting at its index and
// rotating, with workers in unhealthy cool-down moved to the back — they
// are only reached when every healthy worker has failed.
func (p *workerPool) order(index int) []*workerState {
	n := len(p.states)
	start := 0
	if n > 0 && index > 0 {
		start = index % n
	}
	now := time.Now()
	healthy := make([]*workerState, 0, n)
	var cooling []*workerState
	for k := 0; k < n; k++ {
		ws := p.states[(start+k)%n]
		if ws.healthy(now) {
			healthy = append(healthy, ws)
		} else {
			cooling = append(cooling, ws)
		}
	}
	return append(healthy, cooling...)
}

// EvaluateShard implements fp.ShardEvaluator over HTTP (protocol v2).
func (p *workerPool) EvaluateShard(ctx context.Context, req fp.ShardRequest) (*fp.ShardResult, error) {
	wire := shardRequest{
		Proto:       fp.ShardProtocolVersion,
		Fingerprint: p.entry.Fingerprint,
		Point:       req.Point,
		Worlds:      req.Worlds,
		Seed:        req.Seed,
		Lo:          req.Shard.Lo,
		Hi:          req.Shard.Hi,
		SketchOnly:  req.SketchOnly,
	}
	slim, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}
	// The full payload doubles as the v1 form: a v1 worker ignores the
	// fields it doesn't know.
	wire.SQL = p.entry.Source
	wire.Tables = p.entry.Tables
	full, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}

	candidates := p.order(req.Shard.Index)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("no shard workers configured")
	}

	// Attempts race on a shared channel: the primary, a possible hedge
	// (launched when the primary is slower than the hedge delay), and
	// failure-driven retries. The first success wins; acancel aborts every
	// losing attempt, and late duplicate completions drain into the
	// buffered channel and are discarded.
	type attemptResult struct {
		ws     *workerState
		res    *fp.ShardResult
		err    error
		hedged bool
	}
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	results := make(chan attemptResult, len(candidates))
	launch := func(ws *workerState, hedged bool) {
		go func() {
			var res *fp.ShardResult
			var err error
			// The result send is registered first so it runs after the
			// recovery: a panicking attempt still reports to the race loop
			// (as a *PanicError) instead of leaving it waiting forever.
			defer func() {
				results <- attemptResult{ws: ws, res: res, err: err, hedged: hedged}
			}()
			defer recoverToError(&err, "shard attempt")
			res, err = p.tryWorker(actx, ws, req, slim, full)
		}()
	}

	next := 0
	launch(candidates[next], false)
	next++

	// One hedge per shard, and only when a second candidate exists.
	var hedgeC <-chan time.Time
	if d, ok := p.hedgeDelay(); ok && next < len(candidates) {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	inflight := 1
	backoff := p.retryBackoff
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if next < len(candidates) {
				p.metrics.shardHedges.Add(1)
				p.logf("shard [%d,%d): hedging on worker %s", req.Shard.Lo, req.Shard.Hi, candidates[next].url)
				launch(candidates[next], true)
				next++
				inflight++
			}
		case r := <-results:
			if r.err == nil {
				if r.hedged {
					p.metrics.shardHedgeWins.Add(1)
				}
				p.metrics.shardFanouts.Add(1)
				return r.res, nil
			}
			inflight--
			lastErr = r.err
			if next < len(candidates) {
				p.metrics.shardRetries.Add(1)
				p.logf("shard [%d,%d): worker %s failed (%v), trying next", req.Shard.Lo, req.Shard.Hi, r.ws.url, r.err)
				if backoff > 0 {
					t := time.NewTimer(jitter(backoff))
					select {
					case <-ctx.Done():
						t.Stop()
						return nil, ctx.Err()
					case <-t.C:
					}
					if backoff *= 2; backoff > time.Second {
						backoff = time.Second
					}
				}
				launch(candidates[next], false)
				next++
				inflight++
			} else if inflight == 0 {
				p.metrics.shardWorkerFailures.Add(1)
				p.logf("shard [%d,%d): all %d worker(s) failed, evaluating locally: %v", req.Shard.Lo, req.Shard.Hi, len(p.states), lastErr)
				return nil, lastErr
			}
		}
	}
}

// hedgeDelay resolves the pool's hedge policy: a fixed configured delay, or
// — by default — the observed shard-latency P95 once enough samples exist
// (hedging stays off until then; the first renders have no tail estimate to
// hedge against). Reports false when hedging is off.
func (p *workerPool) hedgeDelay() (time.Duration, bool) {
	switch {
	case p.hedge < 0:
		return 0, false
	case p.hedge > 0:
		return p.hedge, true
	}
	d, ok := p.latency.p95()
	if !ok {
		return 0, false
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	return d, true
}

// tryWorker runs one shard against one worker: slim (fingerprint-only)
// when the worker is known v2 and warm for this scenario, with a one-shot
// full re-send on 409/scenario_not_cached, and a permanent downgrade to
// full payloads when a slim request comes back 400 (a v1 worker).
func (p *workerPool) tryWorker(ctx context.Context, ws *workerState, req fp.ShardRequest, slim, full []byte) (*fp.ShardResult, error) {
	sp := obs.SpanFrom(ctx)
	fingerprint := p.entry.Fingerprint
	useSlim := ws.isWarm(fingerprint)
	body := full
	if useSlim {
		body = slim
		p.metrics.shardSlimRequests.Add(1)
	} else {
		p.metrics.shardFullRequests.Add(1)
	}
	start := time.Now()
	res, err := p.post(ctx, ws.url, body)
	if err == nil {
		p.recordSuccess(ws, req, start)
		if !useSlim {
			ws.setWarm(fingerprint, true)
		}
		if sp != nil {
			if useSlim {
				sp.SetStr("wire", "slim")
			} else {
				sp.SetStr("wire", "full")
			}
		}
		return res, nil
	}
	var he *shardHTTPError
	if useSlim && errors.As(err, &he) {
		switch {
		case he.status == http.StatusConflict && he.code == codeScenarioNotCached:
			// The worker lost (or never had) the scenario: one-shot full
			// re-send, then remember it as warm again.
			ws.setWarm(fingerprint, false)
			p.metrics.shardCacheMissResends.Add(1)
			p.metrics.shardFullRequests.Add(1)
			sp.SetInt("cache_miss_resend", 1)
			start = time.Now()
			if res, err = p.post(ctx, ws.url, full); err == nil {
				p.recordSuccess(ws, req, start)
				ws.setWarm(fingerprint, true)
				sp.SetStr("wire", "full-resend")
				return res, nil
			}
		case he.status == http.StatusBadRequest:
			// Version skew: a v1 worker has no fingerprint-only path and
			// rejects the slim request as missing its script. Downgrade the
			// worker to full payloads permanently and re-send.
			ws.downgrade()
			p.metrics.shardProtoDowngrades.Add(1)
			p.metrics.shardFullRequests.Add(1)
			sp.SetInt("proto_downgrade", 1)
			start = time.Now()
			if res, err = p.post(ctx, ws.url, full); err == nil {
				p.recordSuccess(ws, req, start)
				sp.SetStr("wire", "full-downgrade")
				return res, nil
			}
		}
	}
	// A transport error or server-side failure counts against the worker's
	// circuit breaker so the next shards prefer its peers; 4xx answers
	// (bad input, fingerprint mismatch) mean the worker is alive and would
	// fail again identically.
	if ctx.Err() == nil {
		var he2 *shardHTTPError
		if !errors.As(err, &he2) || he2.status >= 500 {
			if ws.markFailed() {
				p.metrics.shardCooldowns.Add(1)
			}
		}
	}
	return nil, err
}

// recordSuccess folds a successful shard into the worker's breaker and
// throughput state and the pool's hedge-delay latency window.
func (p *workerPool) recordSuccess(ws *workerState, req fp.ShardRequest, start time.Time) {
	dur := time.Since(start)
	ws.markHealthy()
	ws.observe(req.Shard.Hi-req.Shard.Lo, dur)
	if p.latency != nil {
		p.latency.observe(dur)
	}
}

// post performs one shard request against one worker. The attempt deadline
// is the smaller of the pool's ShardTimeout and the request's remaining
// budget (already on ctx), and is propagated to the worker as X-FP-Budget-Ms
// so it aborts server-side too.
func (p *workerPool) post(ctx context.Context, base string, body []byte) (*fp.ShardResult, error) {
	if p.shardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.shardTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shard/render", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			req.Header.Set(headerBudget, strconv.FormatInt(rem.Milliseconds()+1, 10))
		}
	}
	sp := obs.SpanFrom(ctx)
	if sp != nil {
		req.Header.Set(headerTrace, "1")
		if id := sp.TraceID(); id != "" {
			req.Header.Set(headerRenderID, id)
		}
	}
	p.metrics.shardRequestBytes.Add(int64(len(body)))
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		he := &shardHTTPError{url: base, status: resp.StatusCode, msg: string(bytes.TrimSpace(raw))}
		var eb struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(raw, &eb) == nil {
			he.code = eb.Code
			if eb.Error != "" {
				he.msg = eb.Error
			}
		}
		return nil, he
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("worker %s: reading response: %w", base, err)
	}
	p.metrics.shardResponseBytes.Add(int64(len(raw)))
	var sr shardResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return nil, fmt.Errorf("worker %s: decoding response: %w", base, err)
	}
	if sr.Trace != nil {
		sp.Graft(sr.Trace)
	}
	return &fp.ShardResult{Rows: sr.Rows, Columns: sr.Columns, Sketches: sr.Sketches}, nil
}

// shardEvalOptions returns the fan-out options for evaluations of entry
// when workers are configured (nil otherwise): one shard per worker, sized
// by the pool's worker weights, evaluated through the entry's worker pool.
func (s *Server) shardEvalOptions(entry *ScenarioEntry) []fp.EvalOption {
	if len(s.cfg.Workers) == 0 {
		return nil
	}
	pool := s.newWorkerPool(entry)
	return []fp.EvalOption{
		fp.WithShards(len(s.cfg.Workers)),
		fp.WithShardEvaluator(pool),
		fp.WithShardWeights(pool.weights),
	}
}

// probeWorkerCapacities asks each worker's /healthz once for its
// advertised core count, seeding shard-sizing weights before any latency
// EWMA exists. Failures are benign: sizing falls back to the equal split.
// The probe window derives from the configured shard timeout (capped at
// 10s) rather than a hardcoded constant, and Server.Close cancels it.
func (s *Server) probeWorkerCapacities() {
	timeout := 10 * time.Second
	if s.cfg.ShardTimeout > 0 && s.cfg.ShardTimeout < timeout {
		timeout = s.cfg.ShardTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	go func() {
		defer s.recoverToLog("probe canceller")
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	for _, ws := range s.workerStates {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.url+"/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := s.shardClient.Do(req)
		if err != nil {
			continue
		}
		var body struct {
			ShardCapacity float64 `json:"shard_capacity"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
		resp.Body.Close()
		if err == nil && body.ShardCapacity > 0 {
			ws.setCapacity(body.ShardCapacity)
		}
	}
}

// defaultShardTimeout bounds one shard request; the per-request context
// still cancels earlier when the client goes away.
const defaultShardTimeout = 2 * time.Minute

// defaultWorkerCooldown is how long a worker that failed with a transport
// error or 5xx is skipped in favor of its peers.
const defaultWorkerCooldown = 5 * time.Second
