package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	fp "fuzzyprophet"
)

// testScenario is a reduced Figure 2 so tests stay fast.
const testScenario = `
DECLARE PARAMETER @current AS RANGE 0 TO 12 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @feature AS SET (4, 8);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase1) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current EXPECT overload WITH bold red, EXPECT capacity WITH blue y2;
`

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{System: sys, DefaultWorlds: 60}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// call performs a JSON request and decodes the response body into out
// (when out is non-nil), returning the status code.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func registerScenario(t *testing.T, base string) scenarioJSON {
	t.Helper()
	var scn scenarioJSON
	if code := call(t, "POST", base+"/scenarios", registerRequest{SQL: testScenario}, &scn); code != http.StatusCreated {
		t.Fatalf("register = %d", code)
	}
	return scn
}

func openSession(t *testing.T, base, scenarioID string, req openSessionRequest) sessionJSON {
	t.Helper()
	var sess sessionJSON
	if code := call(t, "POST", base+"/scenarios/"+scenarioID+"/sessions", req, &sess); code != http.StatusCreated {
		t.Fatalf("open session = %d", code)
	}
	return sess
}

// TestEndToEnd drives the full paper workflow over HTTP: compile → open
// session → slider move → render → batch evaluate → adjusted re-render,
// asserting the second render reports nonzero reuse.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, nil)
	scn := registerScenario(t, ts.URL)
	if scn.SpaceSize != 13*3*2 {
		t.Errorf("space size = %d, want %d", scn.SpaceSize, 13*3*2)
	}
	if scn.Warm {
		t.Error("first registration should not be warm")
	}

	sess := openSession(t, ts.URL, scn.ID, openSessionRequest{})
	if sess.Axis != "current" {
		t.Errorf("axis = %q", sess.Axis)
	}

	// Slider move.
	var setResp struct {
		Params map[string]any `json:"params"`
	}
	if code := call(t, "PUT", ts.URL+"/sessions/"+sess.ID+"/params",
		map[string]any{"purchase1": 8}, &setResp); code != http.StatusOK {
		t.Fatalf("set params = %d", code)
	}
	if got := setResp.Params["purchase1"]; got != float64(8) {
		t.Errorf("params echo = %v", setResp.Params)
	}

	// First render: everything computed fresh.
	var r1 renderResponse
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/render", nil, &r1); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}
	if r1.Graph == nil || len(r1.Graph.Series) != 2 || len(r1.Graph.X) != 13 {
		t.Fatalf("unexpected graph shape: %+v", r1.Graph)
	}
	if r1.Graph.Stats.Recomputed != 13 {
		t.Errorf("first render recomputed = %d, want 13", r1.Graph.Stats.Recomputed)
	}

	// Batch evaluation through the same shared cache.
	var batch fp.BatchResult
	code := call(t, "POST", ts.URL+"/scenarios/"+scn.ID+"/evaluate", evaluateRequest{
		Points: []map[string]any{
			{"current": 3, "purchase1": 8, "feature": 4},
			{"current": 4, "purchase1": 8, "feature": 4},
		},
	}, &batch)
	if code != http.StatusOK {
		t.Fatalf("evaluate = %d", code)
	}
	if len(batch.Points) != 2 {
		t.Fatalf("batch points = %d", len(batch.Points))
	}
	if _, ok := batch.Points[0].Summaries["demand"]; !ok {
		t.Errorf("missing demand summary: %v", batch.Points[0].Summaries)
	}
	// The session rendered at purchase1=8 feature=4 already: the batch's
	// exact points are served from the shared cache.
	if batch.ReuseCounts["cached"] == 0 {
		t.Errorf("batch should hit the session-warmed shared cache: %v", batch.ReuseCounts)
	}

	// Adjusted re-render: the moved slider remaps, the rest is cached.
	if code := call(t, "PUT", ts.URL+"/sessions/"+sess.ID+"/params",
		map[string]any{"purchase1": 16}, nil); code != http.StatusOK {
		t.Fatalf("set params = %d", code)
	}
	var r2 renderResponse
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/render", nil, &r2); code != http.StatusOK {
		t.Fatalf("second render = %d", code)
	}
	if reused := r2.Graph.Stats.Remapped + r2.Graph.Stats.Unchanged; reused == 0 {
		t.Errorf("second render reports no reuse: %+v", r2.Graph.Stats)
	}

	// The exploration map reflects the two rendered pin combinations.
	var mapResp struct {
		Cells [][]string `json:"cells"`
	}
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/map?rows=purchase1&cols=feature", nil, &mapResp); code != http.StatusOK {
		t.Fatalf("exploration map = %d", code)
	}
	explored := 0
	for _, row := range mapResp.Cells {
		for _, cell := range row {
			if cell == "computed" {
				explored++
			}
		}
	}
	if explored != 2 {
		t.Errorf("explored cells = %d, want 2 (rendered at purchase1=8 and 16)", explored)
	}
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/map?rows=current&cols=feature", nil, nil); code != http.StatusBadRequest {
		t.Errorf("map over the axis = %d, want 400", code)
	}

	// Session introspection reflects the work done.
	var info sessionJSON
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID, nil, &info); code != http.StatusOK {
		t.Fatalf("get session = %d", code)
	}
	if info.Stats.Renders != 2 {
		t.Errorf("session renders = %d, want 2", info.Stats.Renders)
	}

	// Close; a render on the closed session is 404.
	if code := call(t, "DELETE", ts.URL+"/sessions/"+sess.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("close = %d", code)
	}
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/render", nil, nil); code != http.StatusNotFound {
		t.Errorf("render after close = %d, want 404", code)
	}
}

// TestWarmStart kills and restarts the "server" with a snapshot dir: the
// restarted server's first render must be served from the snapshot (zero
// weeks recomputed, reuse > 0) — the acceptance criterion.
func TestWarmStart(t *testing.T) {
	dir := t.TempDir()

	srv1, ts1 := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	scn1 := registerScenario(t, ts1.URL)
	sess1 := openSession(t, ts1.URL, scn1.ID, openSessionRequest{})
	var r1 renderResponse
	if code := call(t, "GET", ts1.URL+"/sessions/"+sess1.ID+"/render", nil, &r1); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}
	// Kill the first server (Close writes the final snapshot).
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	scn2 := registerScenario(t, ts2.URL)
	if !scn2.Warm {
		t.Fatal("re-registration after restart should warm-start from the snapshot")
	}
	if scn2.Fingerprint != scn1.Fingerprint {
		t.Fatalf("fingerprint changed across restart: %s vs %s", scn1.Fingerprint, scn2.Fingerprint)
	}
	sess2 := openSession(t, ts2.URL, scn2.ID, openSessionRequest{})
	var r2 renderResponse
	if code := call(t, "GET", ts2.URL+"/sessions/"+sess2.ID+"/render", nil, &r2); code != http.StatusOK {
		t.Fatalf("warm render = %d", code)
	}
	if r2.Graph.Stats.Recomputed != 0 {
		t.Errorf("warm first render recomputed %d weeks, want 0: %+v", r2.Graph.Stats.Recomputed, r2.Graph.Stats)
	}
	if reused := r2.Graph.Stats.Unchanged + r2.Graph.Stats.Remapped; reused == 0 {
		t.Error("warm first render reports no fingerprint reuse")
	}
	if r2.ReuseCounts["cached"]+r2.ReuseCounts["identity"]+r2.ReuseCounts["affine"] == 0 {
		t.Errorf("warm render reuse counts: %v", r2.ReuseCounts)
	}
	// The values must agree with the cold render: remapping is exact for
	// cache hits.
	for i := range r1.Graph.Series[0].Y {
		if r1.Graph.Series[0].Y[i] != r2.Graph.Series[0].Y[i] {
			t.Fatalf("warm render diverges at week %d", i)
		}
	}
	_ = srv2
}

// TestSessionBackpressure: MaxSessions admits exactly that many sessions,
// the next open gets 429, and closing one frees a slot.
func TestSessionBackpressure(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxSessions = 2 })
	scn := registerScenario(t, ts.URL)
	s1 := openSession(t, ts.URL, scn.ID, openSessionRequest{})
	openSession(t, ts.URL, scn.ID, openSessionRequest{})
	if code := call(t, "POST", ts.URL+"/scenarios/"+scn.ID+"/sessions", openSessionRequest{}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("third open = %d, want 429", code)
	}
	if code := call(t, "DELETE", ts.URL+"/sessions/"+s1.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("close = %d", code)
	}
	openSession(t, ts.URL, scn.ID, openSessionRequest{})
}

// TestRenderSingleFlight: a burst of concurrent renders at one param
// version coalesces into a single simulation.
func TestRenderSingleFlight(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	scn := registerScenario(t, ts.URL)
	sess := openSession(t, ts.URL, scn.ID, openSessionRequest{})

	const burst = 8
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/sessions/" + sess.ID + "/render")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d = %d", i, code)
		}
	}
	ms, _ := srv.sessions.Get(sess.ID)
	if got := ms.Renders(); got != 1 {
		t.Errorf("simulated renders = %d, want 1 (coalesced %d)", got, ms.Coalesced())
	}
	if got := ms.Coalesced(); got != burst-1 {
		t.Errorf("coalesced = %d, want %d", got, burst-1)
	}
}

// TestReregistration: replacing a scenario keeps in-flight sessions on the
// old compilation (ref-counted) while new sessions get the new one.
func TestReregistration(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	var scn scenarioJSON
	if code := call(t, "POST", ts.URL+"/scenarios",
		registerRequest{SQL: testScenario, ID: "demo"}, &scn); code != http.StatusCreated {
		t.Fatalf("register = %d", code)
	}
	sess := openSession(t, ts.URL, "demo", openSessionRequest{})
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/render", nil, nil); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}

	// Re-registering identical content carries the live warm cache over:
	// a fresh session's first render is served without new simulation.
	var same scenarioJSON
	if code := call(t, "POST", ts.URL+"/scenarios",
		registerRequest{SQL: testScenario, ID: "demo"}, &same); code != http.StatusCreated {
		t.Fatalf("idempotent re-register = %d", code)
	}
	if !same.Warm {
		t.Error("identical re-registration should carry the warm cache over")
	}
	carried := openSession(t, ts.URL, "demo", openSessionRequest{})
	var rc renderResponse
	if code := call(t, "GET", ts.URL+"/sessions/"+carried.ID+"/render", nil, &rc); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}
	if rc.Graph.Stats.Recomputed != 0 {
		t.Errorf("carried-cache render recomputed %d weeks, want 0", rc.Graph.Stats.Recomputed)
	}
	if code := call(t, "DELETE", ts.URL+"/sessions/"+carried.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("close = %d", code)
	}

	// Re-register under the same ID with a different script.
	changed := strings.Replace(testScenario, "SET (4, 8)", "SET (4, 8, 10)", 1)
	var scn2 scenarioJSON
	if code := call(t, "POST", ts.URL+"/scenarios",
		registerRequest{SQL: changed, ID: "demo"}, &scn2); code != http.StatusCreated {
		t.Fatalf("re-register = %d", code)
	}
	if !scn2.Replaced || scn2.Generation != 2 {
		t.Errorf("replaced=%v generation=%d", scn2.Replaced, scn2.Generation)
	}
	if scn2.Fingerprint == scn.Fingerprint {
		t.Error("changed script should change the fingerprint")
	}
	if srv.registry.RetiredLive() != 1 {
		t.Errorf("retired-live = %d, want 1", srv.registry.RetiredLive())
	}

	// The old session still renders against its pinned compilation.
	var r renderResponse
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/render", nil, &r); code != http.StatusOK {
		t.Fatalf("render on retired entry = %d", code)
	}
	if len(r.Graph.X) != 13 {
		t.Errorf("graph weeks = %d", len(r.Graph.X))
	}

	// Closing the last session drains the retired entry.
	if code := call(t, "DELETE", ts.URL+"/sessions/"+sess.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("close = %d", code)
	}
	if srv.registry.RetiredLive() != 0 {
		t.Errorf("retired-live after close = %d, want 0", srv.registry.RetiredLive())
	}
}

// TestIdleEviction: sessions idle past the TTL are swept; busy or fresh
// ones survive.
func TestIdleEviction(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.SessionTTL = 50 * time.Millisecond })
	scn := registerScenario(t, ts.URL)
	stale := openSession(t, ts.URL, scn.ID, openSessionRequest{})
	time.Sleep(70 * time.Millisecond)
	fresh := openSession(t, ts.URL, scn.ID, openSessionRequest{})

	if n := srv.sessions.Sweep(time.Now()); n != 1 {
		t.Fatalf("swept %d sessions, want 1", n)
	}
	if code := call(t, "GET", ts.URL+"/sessions/"+stale.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("stale session = %d, want 404", code)
	}
	if code := call(t, "GET", ts.URL+"/sessions/"+fresh.ID, nil, nil); code != http.StatusOK {
		t.Errorf("fresh session = %d, want 200", code)
	}
	if srv.sessions.Evicted() != 1 {
		t.Errorf("evicted counter = %d", srv.sessions.Evicted())
	}
}

// TestSSEProgressiveRender: the streaming variant delivers at least one
// refinement frame and a closing done event with reuse stats.
func TestSSEProgressiveRender(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.DefaultWorlds = 128 })
	scn := registerScenario(t, ts.URL)
	sess := openSession(t, ts.URL, scn.ID, openSessionRequest{})

	resp, err := http.Get(ts.URL + "/sessions/" + sess.ID + "/render?stream=1&start_worlds=32")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	frames, done := 0, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: frame":
			frames++
		case line == "event: done":
			done = true
		case strings.HasPrefix(line, "data: ") && done:
			var payload struct {
				Stats       fp.RenderStats `json:"stats"`
				ReuseCounts map[string]int `json:"reuse_counts"`
			}
			if err := json.Unmarshal([]byte(line[len("data: "):]), &payload); err != nil {
				t.Fatalf("done payload: %v", err)
			}
			if payload.Stats.Points != 13 {
				t.Errorf("done stats points = %d", payload.Stats.Points)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 32 → 64 → 128 worlds: at least two refinement frames.
	if frames < 2 || !done {
		t.Errorf("frames = %d done = %v", frames, done)
	}
}

// TestCompileErrorsSurfacePosition: a syntax error comes back as 400 with
// the offending line.
func TestCompileErrorsSurfacePosition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var body map[string]any
	code := call(t, "POST", ts.URL+"/scenarios",
		registerRequest{SQL: "DECLARE PARAMETER @x AS RANGE 0 TO"}, &body)
	if code != http.StatusBadRequest {
		t.Fatalf("bad sql = %d", code)
	}
	if body["error"] == "" || body["line"] == nil {
		t.Errorf("error body = %v", body)
	}
	// Unknown routes and IDs are 404.
	if code := call(t, "GET", ts.URL+"/scenarios/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown scenario = %d", code)
	}
	if code := call(t, "PUT", ts.URL+"/sessions/nope/params", map[string]any{"a": 1}, nil); code != http.StatusNotFound {
		t.Errorf("unknown session = %d", code)
	}
	// A bad slider value is a 400, not a 500.
	scn := registerScenario(t, ts.URL)
	sess := openSession(t, ts.URL, scn.ID, openSessionRequest{})
	if code := call(t, "PUT", ts.URL+"/sessions/"+sess.ID+"/params", map[string]any{"purchase1": 7}, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-space value = %d, want 400", code)
	}
	if code := call(t, "PUT", ts.URL+"/sessions/"+sess.ID+"/params", map[string]any{"nosuch": 1}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown param = %d, want 400", code)
	}
}

// TestHealthzAndMetrics: liveness JSON plus the Prometheus exposition
// carrying the reuse and session gauges.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)
	scn := registerScenario(t, ts.URL)
	sess := openSession(t, ts.URL, scn.ID, openSessionRequest{})
	if code := call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/render", nil, nil); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}

	var health struct {
		Status    string `json:"status"`
		Scenarios int    `json:"scenarios"`
		Sessions  int    `json:"sessions"`
	}
	if code := call(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "ok" || health.Scenarios != 1 || health.Sessions != 1 {
		t.Errorf("healthz = %+v", health)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"fpserver_sessions_open 1",
		"fpserver_scenarios_registered 1",
		"fpserver_renders_total 1",
		"fpserver_reuse_store_entries",
		"fpserver_reuse_hit_rate",
		"fpserver_render_seconds_bucket",
		`fpserver_reuse_outcomes{kind="computed"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestSharedCacheAcrossSessions: two sessions of one scenario share the
// reuse cache — the second session's first render is served warm.
func TestSharedCacheAcrossSessions(t *testing.T) {
	_, ts := newTestServer(t, nil)
	scn := registerScenario(t, ts.URL)
	a := openSession(t, ts.URL, scn.ID, openSessionRequest{})
	if code := call(t, "GET", ts.URL+"/sessions/"+a.ID+"/render", nil, nil); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}
	b := openSession(t, ts.URL, scn.ID, openSessionRequest{})
	var r renderResponse
	if code := call(t, "GET", ts.URL+"/sessions/"+b.ID+"/render", nil, &r); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}
	if r.Graph.Stats.Recomputed != 0 {
		t.Errorf("second tenant's first render recomputed %d weeks, want 0", r.Graph.Stats.Recomputed)
	}
	// A session with a private seed does NOT share the cache.
	c := openSession(t, ts.URL, scn.ID, openSessionRequest{Seed: 42})
	var rc renderResponse
	if code := call(t, "GET", ts.URL+"/sessions/"+c.ID+"/render", nil, &rc); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}
	if rc.Graph.Stats.Recomputed == 0 {
		t.Error("private-seed session should simulate fresh")
	}
}

func TestRegisterValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if code := call(t, "POST", ts.URL+"/scenarios", registerRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty sql = %d", code)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/scenarios", strings.NewReader("{not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d", resp.StatusCode)
	}
	// Evaluate with an undeclared parameter key is 400.
	scn := registerScenario(t, ts.URL)
	if code := call(t, "POST", ts.URL+"/scenarios/"+scn.ID+"/evaluate", evaluateRequest{
		Points: []map[string]any{{"bogus": 1}},
	}, nil); code != http.StatusBadRequest {
		t.Errorf("bogus point key = %d, want 400", code)
	}
}

// TestPprofEndpoints asserts the profiling handlers are mounted only when
// EnablePprof is set (they expose internals, so off must mean absent, not
// merely empty).
func TestPprofEndpoints(t *testing.T) {
	_, off := newTestServer(t, nil)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, func(c *Config) { c.EnablePprof = true })
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof enabled: GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}
