package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	fp "fuzzyprophet"
)

func benchServer(b *testing.B) (string, func()) {
	b.Helper()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{System: sys, DefaultWorlds: 60})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	return ts.URL, func() { ts.Close(); srv.Close() }
}

func benchJSON(b *testing.B, method, url string, body any) []byte {
	b.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		b.Fatalf("%s %s = %d: %s", method, url, resp.StatusCode, data)
	}
	return data
}

// BenchmarkHTTP_RenderCoalesced: the hot path a dashboard polls — renders
// at an unchanged param version are served from the single-flight cache
// without simulation.
func BenchmarkHTTP_RenderCoalesced(b *testing.B) {
	base, stop := benchServer(b)
	defer stop()
	var scn scenarioJSON
	json.Unmarshal(benchJSON(b, "POST", base+"/scenarios", registerRequest{SQL: testScenario}), &scn)
	var sess sessionJSON
	json.Unmarshal(benchJSON(b, "POST", base+"/scenarios/"+scn.ID+"/sessions", openSessionRequest{}), &sess)
	benchJSON(b, "GET", base+"/sessions/"+sess.ID+"/render", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchJSON(b, "GET", base+"/sessions/"+sess.ID+"/render", nil)
	}
}

// BenchmarkHTTP_SliderAdjustRender: a slider move plus re-render — the
// interactive latency the paper's online mode optimizes, over the wire.
func BenchmarkHTTP_SliderAdjustRender(b *testing.B) {
	base, stop := benchServer(b)
	defer stop()
	var scn scenarioJSON
	json.Unmarshal(benchJSON(b, "POST", base+"/scenarios", registerRequest{SQL: testScenario}), &scn)
	var sess sessionJSON
	json.Unmarshal(benchJSON(b, "POST", base+"/scenarios/"+scn.ID+"/sessions", openSessionRequest{}), &sess)
	positions := []int{0, 8, 16}
	benchJSON(b, "GET", base+"/sessions/"+sess.ID+"/render", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchJSON(b, "PUT", base+"/sessions/"+sess.ID+"/params",
			map[string]any{"purchase1": positions[i%len(positions)]})
		benchJSON(b, "GET", base+"/sessions/"+sess.ID+"/render", nil)
	}
}

// BenchmarkHTTP_EvaluateBatch: batch point evaluation through the shared
// reuse cache.
func BenchmarkHTTP_EvaluateBatch(b *testing.B) {
	base, stop := benchServer(b)
	defer stop()
	var scn scenarioJSON
	json.Unmarshal(benchJSON(b, "POST", base+"/scenarios", registerRequest{SQL: testScenario}), &scn)
	points := make([]map[string]any, 0, 6)
	for wk := 0; wk < 6; wk++ {
		points = append(points, map[string]any{"current": wk, "purchase1": 8, "feature": 4})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchJSON(b, "POST", base+"/scenarios/"+scn.ID+"/evaluate", evaluateRequest{Points: points})
	}
}

// BenchmarkHTTP_RegisterScenario: compile + register throughput, each
// iteration a distinct script so compilation is not amortized.
func BenchmarkHTTP_RegisterScenario(b *testing.B) {
	base, stop := benchServer(b)
	defer stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := testScenario + fmt.Sprintf("\n-- variant %d\n", i)
		benchJSON(b, "POST", base+"/scenarios", registerRequest{SQL: sql, ID: "bench"})
	}
}
