package server

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// ---- a minimal Prometheus text-format parser for assertions ----

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promExposition struct {
	help    map[string]string
	types   map[string]string
	samples []promSample
}

// parsePromText parses the Prometheus 0.0.4 text format far enough to
// check metadata and histogram invariants, failing the test on anything
// malformed.
func parsePromText(t *testing.T, text string) *promExposition {
	t.Helper()
	exp := &promExposition{help: map[string]string{}, types: map[string]string{}}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if _, dup := exp.help[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			exp.help[name] = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: TYPE without type: %q", ln+1, line)
			}
			if _, dup := exp.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s (duplicate metric name)", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			exp.types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s := promSample{labels: map[string]string{}}
		rest := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			s.name = line[:i]
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			for _, pair := range strings.Split(line[i+1:j], ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					t.Fatalf("line %d: bad label %q", ln+1, pair)
				}
				unq, err := strconv.Unquote(v)
				if err != nil {
					t.Fatalf("line %d: label value %s not quoted: %v", ln+1, v, err)
				}
				s.labels[k] = unq
			}
			rest = strings.TrimSpace(line[j+1:])
		} else {
			var ok bool
			s.name, rest, ok = strings.Cut(line, " ")
			if !ok {
				t.Fatalf("line %d: sample without value: %q", ln+1, line)
			}
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value in %q: %v", ln+1, line, err)
		}
		s.value = v
		exp.samples = append(exp.samples, s)
	}
	return exp
}

// baseName strips histogram sample suffixes when the stripped name is a
// declared histogram.
func (e *promExposition) baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok && e.types[b] == "histogram" {
			return b
		}
	}
	return name
}

// labelKey renders labels minus `le` as a stable grouping key.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

// checkExposition asserts the invariants the ISSUE's acceptance names:
// every sample's metric has HELP and TYPE, metric names are unique (the
// parser already fails on duplicate TYPE), and histogram buckets are
// cumulative/monotone with the +Inf bucket equal to the count.
func checkExposition(t *testing.T, exp *promExposition) {
	t.Helper()
	type series struct {
		buckets map[float64]float64 // le -> cumulative value
		count   float64
		hasCnt  bool
	}
	hist := map[string]*series{} // "name|labelKey"
	for _, s := range exp.samples {
		base := exp.baseName(s.name)
		if _, ok := exp.types[base]; !ok {
			t.Errorf("sample %s has no # TYPE", s.name)
		}
		if _, ok := exp.help[base]; !ok {
			t.Errorf("sample %s has no # HELP", s.name)
		}
		if exp.types[base] != "histogram" {
			continue
		}
		key := base + "|" + labelKey(s.labels)
		sr := hist[key]
		if sr == nil {
			sr = &series{buckets: map[float64]float64{}}
			hist[key] = sr
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le := s.labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("%s: bad le %q", s.name, le)
				}
			}
			sr.buckets[bound] = s.value
		case strings.HasSuffix(s.name, "_count"):
			sr.count, sr.hasCnt = s.value, true
		}
	}
	for key, sr := range hist {
		bounds := make([]float64, 0, len(sr.buckets))
		for b := range sr.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		if len(bounds) == 0 || !math.IsInf(bounds[len(bounds)-1], 1) {
			t.Errorf("%s: histogram lacks a +Inf bucket", key)
			continue
		}
		prev := -1.0
		for _, b := range bounds {
			if sr.buckets[b] < prev {
				t.Errorf("%s: bucket le=%g value %g < previous %g (not cumulative)", key, b, sr.buckets[b], prev)
			}
			prev = sr.buckets[b]
		}
		if !sr.hasCnt {
			t.Errorf("%s: histogram lacks _count", key)
		} else if inf := sr.buckets[math.Inf(1)]; sr.count != inf {
			t.Errorf("%s: _count %g != +Inf bucket %g", key, sr.count, inf)
		}
	}
}

// TestMetricsExposition scrapes /metrics from a live server while a render
// is in flight and checks the whole exposition's invariants.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id := openTestSession(t, ts.URL, 60)

	// Populate the render + stage histograms.
	if code := call(t, "GET", ts.URL+"/sessions/"+id+"/render", nil, nil); code != http.StatusOK {
		t.Fatalf("render = %d", code)
	}

	// Scrape mid-render: a concurrent render (fresh params so it is not
	// coalesced from cache) is in flight while /metrics is read.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		call(t, "PUT", ts.URL+"/sessions/"+id+"/params", map[string]any{"purchase1": 8}, nil)
		call(t, "GET", ts.URL+"/sessions/"+id+"/render", nil, nil)
	}()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	exp := parsePromText(t, string(body))
	checkExposition(t, exp)

	// The tentpole's series must be present with the right shapes.
	if exp.types["fpserver_stage_seconds"] != "histogram" {
		t.Errorf("fpserver_stage_seconds type = %q, want histogram", exp.types["fpserver_stage_seconds"])
	}
	stages := map[string]bool{}
	var buildInfo *promSample
	for i, s := range exp.samples {
		if s.name == "fpserver_stage_seconds_count" {
			stages[s.labels["stage"]] = true
		}
		if s.name == "fpserver_build_info" {
			buildInfo = &exp.samples[i]
		}
	}
	for _, want := range stageNames {
		if !stages[want] {
			t.Errorf("no fpserver_stage_seconds series for stage %q", want)
		}
	}
	if buildInfo == nil {
		t.Error("no fpserver_build_info sample")
	} else if buildInfo.value != 1 || buildInfo.labels["version"] == "" || buildInfo.labels["go_version"] == "" {
		t.Errorf("bad build_info sample: %+v", *buildInfo)
	}

	// A final post-render scrape must show simulate/plan-execute stage
	// observations (the first render fed them).
	var simulateCount float64
	for _, s := range exp.samples {
		if s.name == "fpserver_stage_seconds_count" && s.labels["stage"] == "simulate" {
			simulateCount = s.value
		}
	}
	if simulateCount == 0 {
		t.Error("simulate stage histogram never observed despite a completed render")
	}
}

// ---- histogram: concurrency invariant + before/after benchmark ----

// TestHistogramConcurrentScrape hammers one histogram from many goroutines
// while scraping it, asserting every scrape is internally consistent.
func TestHistogramConcurrentScrape(t *testing.T) {
	h := newHistogram(stageBuckets)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := float64(g+1) * 0.0003
			for {
				select {
				case <-stop:
					return
				default:
					h.observe(v)
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		h.write(&buf, "x_seconds", "")
		exp := parsePromText(t, buf.String())
		exp.types["x_seconds"] = "histogram"
		exp.help["x_seconds"] = "synthetic"
		checkExposition(t, exp)
	}
	close(stop)
	wg.Wait()
}

// mutexHistogram is the pre-refactor reference implementation (a lock
// around a cumulative bucket loop), kept only as the benchmark baseline
// for the atomic replacement.
type mutexHistogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []int64
	count   int64
	sum     float64
}

func newMutexHistogram(bounds []float64) *mutexHistogram {
	return &mutexHistogram{bounds: bounds, buckets: make([]int64, len(bounds))}
}

func (h *mutexHistogram) observe(seconds float64) {
	h.mu.Lock()
	h.count++
	h.sum += seconds
	for i, b := range h.bounds {
		if seconds <= b {
			h.buckets[i]++
		}
	}
	h.mu.Unlock()
}

func BenchmarkHistogramObserve(b *testing.B) {
	values := make([]float64, 1024)
	for i := range values {
		values[i] = float64(i%200) * 0.0001
	}
	b.Run("mutex", func(b *testing.B) {
		h := newMutexHistogram(stageBuckets)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				h.observe(values[i%len(values)])
				i++
			}
		})
	})
	b.Run("atomic", func(b *testing.B) {
		h := newHistogram(stageBuckets)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				h.observe(values[i%len(values)])
				i++
			}
		})
	})
}
