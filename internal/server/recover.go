// Panic isolation helpers for the server's own goroutines. The PR 9
// contract — a panic fails one piece of work, never the process — is
// enforced mechanically by fplint's fpgorecover analyzer: every goroutine
// literal in this package must begin with a defer of one of these helpers
// (or an inline recover). ServeHTTP has its own middleware for the request
// path; these cover shard attempts and background loops.
package server

import (
	"runtime/debug"

	fp "fuzzyprophet"
)

// recoverToError converts a panic in scope into a *fp.PanicError assigned
// to *dst (unless *dst is already set), mirroring mc's helper of the same
// name. Use as: defer recoverToError(&err, "stage") — registered before
// any work, so the panic is caught no matter where in the goroutine it
// fires.
func recoverToError(dst *error, stage string) {
	if r := recover(); r != nil {
		perr := &fp.PanicError{Stage: stage, Value: r, Stack: debug.Stack()}
		if *dst == nil {
			*dst = perr
		}
	}
}

// recoverToLog is the boundary for background loops that have no error
// channel (session sweeping, snapshot persistence, capacity probing): the
// panic is counted, logged with its stack, and swallowed, so one bad sweep
// never takes the server down. m may be nil in tests.
func (s *Server) recoverToLog(stage string) {
	if r := recover(); r != nil {
		s.metrics.panics.Add(1)
		s.cfg.Logf("panic in %s (recovered): %v\n%s", stage, r, debug.Stack())
	}
}
