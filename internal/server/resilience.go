package server

// Resilience primitives for the serving path: request deadline budgets,
// per-worker circuit breakers, an adaptive hedge-delay tracker, and the
// render admission gate. The shard fan-out (shard.go) consumes the breaker
// and latency tracker; the HTTP handlers (server.go) consume the budget
// helper and the gate. Everything here is deliberately dependency-free and
// lock-scoped per instance so it composes with the lock-free metrics.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"slices"
	"sync"
	"time"
)

// ---- request deadline budgets ----

// defaultRequestTimeout is the server-side deadline applied to every
// request when Config.RequestTimeout is unset.
const defaultRequestTimeout = time.Minute

// defaultRetryBackoff is the base of the jittered exponential backoff
// between shard retry attempts when Config.RetryBackoff is unset.
const defaultRetryBackoff = 10 * time.Millisecond

// budgetExceededError is the context cancellation cause when the SERVER's
// deadline budget — not the client's own context — expired. renderError
// uses it to answer 504 with the budget that was in force, distinguishing
// "the server gave up" from "the client went away" (499).
type budgetExceededError struct{ budget time.Duration }

func (e *budgetExceededError) Error() string {
	return fmt.Sprintf("server: request exceeded its %s deadline budget", e.budget)
}

// withBudget wraps the request context with the server-side deadline:
// Config.RequestTimeout by default, shortened — never extended — by a
// per-request ?timeout= override (a Go duration, e.g. ?timeout=500ms).
// Reports false after writing a 400 when the override is malformed.
func (s *Server) withBudget(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	budget := s.cfg.RequestTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.error(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q: want a positive duration like \"2s\"", v))
			return nil, nil, false
		}
		if budget <= 0 || d < budget {
			budget = d
		}
	}
	if budget <= 0 {
		return r.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeoutCause(r.Context(), budget, &budgetExceededError{budget})
	return ctx, cancel, true
}

// ---- circuit breaker ----

// Breaker states, exported to /metrics as fpserver_breaker_state.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breaker is a per-worker circuit breaker generalizing the old binary
// cool-down: closed → (threshold consecutive failures) → open for a
// jittered window that doubles on every failed half-open probe, capped.
// State is derived from (failures, openUntil, now) rather than stored, so
// open→half-open needs no timer goroutine: once the window passes, the
// breaker reads half-open and the next attempt is the probe.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures to open (>= 1)
	base      time.Duration // first open window; <= 0 disables opening
	maxOpen   time.Duration // backoff cap on the open window

	failures  int
	openSpan  time.Duration // current un-jittered open window
	openUntil time.Time
}

func newBreaker(threshold int, base time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, base: base, maxOpen: 16 * base}
}

// state reports the breaker's position at now.
func (b *breaker) state(now time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(now)
}

func (b *breaker) stateLocked(now time.Time) int {
	if b.failures < b.threshold || b.base <= 0 {
		return breakerClosed
	}
	if now.Before(b.openUntil) {
		return breakerOpen
	}
	return breakerHalfOpen
}

// allow reports whether an attempt should be routed to this worker: true
// while closed, and true once the open window has lapsed (the attempt is
// then the half-open probe). Callers may still force an attempt on an open
// breaker as a last resort; correctness never depends on the breaker.
func (b *breaker) allow(now time.Time) bool {
	return b.state(now) != breakerOpen
}

// onSuccess closes the breaker and resets the backoff.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.failures = 0
	b.openSpan = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// onFailure records a qualifying failure (transport error or 5xx) and
// reports whether it opened (or re-opened) the breaker. A failure while
// half-open is a failed probe: the open window doubles, up to the cap.
func (b *breaker) onFailure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasHalfOpen := b.stateLocked(now) == breakerHalfOpen
	b.failures++
	if b.failures < b.threshold || b.base <= 0 {
		return false
	}
	switch {
	case b.openSpan == 0:
		b.openSpan = b.base
	case wasHalfOpen:
		b.openSpan *= 2
		if b.maxOpen > 0 && b.openSpan > b.maxOpen {
			b.openSpan = b.maxOpen
		}
	}
	b.openUntil = now.Add(jitter(b.openSpan))
	return true
}

// jitter spreads d over [0.9d, 1.1d) so a fleet of breakers (or retry
// backoffs) opened by one event does not re-probe in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.9 + 0.2*rand.Float64()))
}

// ---- hedge-delay tracking ----

// latencyRingSize bounds the shard-latency sample window the adaptive
// hedge delay is computed over.
const latencyRingSize = 256

// minHedgeSamples is how many shard latencies must be observed before the
// adaptive P95 enables hedging.
const minHedgeSamples = 16

// minHedgeDelay floors the adaptive hedge delay so microsecond-scale P95s
// (tiny test renders) don't hedge every request reflexively.
const minHedgeDelay = 5 * time.Millisecond

// latencyTracker keeps a ring of recent successful shard latencies and
// serves their exact P95 — the hedge fires when a shard request has been
// outstanding longer than 95% of recent ones completed in, the classic
// tail-latency trade of a little duplicate work for a bounded tail.
type latencyTracker struct {
	mu   sync.Mutex
	ring [latencyRingSize]time.Duration
	n    int // total observations (ring index = n % size)
}

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.n%latencyRingSize] = d
	t.n++
	t.mu.Unlock()
}

// p95 returns the 95th percentile of the recorded window and whether
// enough samples exist for it to be meaningful.
func (t *latencyTracker) p95() (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < minHedgeSamples {
		return 0, false
	}
	k := t.n
	if k > latencyRingSize {
		k = latencyRingSize
	}
	window := make([]time.Duration, k)
	copy(window, t.ring[:k])
	slices.Sort(window)
	return window[(k-1)*95/100], true
}

// ---- admission gate ----

// errDraining rejects work arriving after Close began: 503 + Retry-After.
var errDraining = errors.New("server: shutting down")

// errOverloaded sheds work the gate could not admit before its queue wait
// (bounded by the request's own deadline) expired: 429 + Retry-After.
var errOverloaded = errors.New("server: render capacity saturated, retry later")

// defaultQueueWait bounds how long an unbudgeted request queues for a
// render slot before being shed.
const defaultQueueWait = time.Second

// admission is the render admission gate: a semaphore bounding concurrent
// renders (nil = unbounded), a deadline-aware queue in front of it, and
// draining state for graceful shutdown. Every admitted request is tracked
// so drain() can wait for in-flight work.
type admission struct {
	sem chan struct{} // nil when unbounded

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	draining bool

	queueDepth int64 // guarded by mu only for read consistency in metrics
}

func newAdmission(maxConcurrent int) *admission {
	g := &admission{}
	g.cond = sync.NewCond(&g.mu)
	if maxConcurrent > 0 {
		g.sem = make(chan struct{}, maxConcurrent)
	}
	return g
}

// acquire admits one render. It returns nil and reserves a slot, or:
// errDraining (shutdown), errOverloaded (no slot before the deadline-aware
// queue wait lapsed — shed), or the context's own cancellation (client
// disconnect while queued). Pair every nil return with release().
func (g *admission) acquire(ctx context.Context) error {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return errDraining
	}
	g.inflight++
	g.mu.Unlock()
	if g.sem == nil {
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	// Queue for a slot, but never past the request's own deadline: work
	// admitted with no budget left would only be killed by the deadline —
	// shedding now lets the client retry elsewhere immediately.
	wait := defaultQueueWait
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
		}
	}
	if wait <= 0 {
		g.exit()
		return errOverloaded
	}
	g.mu.Lock()
	g.queueDepth++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.queueDepth--
		g.mu.Unlock()
	}()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		g.exit()
		if errors.Is(context.Cause(ctx), context.Canceled) {
			return ctx.Err() // client went away while queued
		}
		return errOverloaded // budget burned in the queue: shed
	case <-timer.C:
		g.exit()
		return errOverloaded
	}
}

// release returns an admitted render's slot.
func (g *admission) release() {
	if g.sem != nil {
		<-g.sem
	}
	g.exit()
}

// exit decrements the in-flight count and wakes drain().
func (g *admission) exit() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 && g.draining {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// isDraining reports whether drain() has begun.
func (g *admission) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// stats returns (inflight, queued) for /metrics.
func (g *admission) stats() (int64, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(g.inflight), g.queueDepth
}

// drain flips the gate to draining — every subsequent acquire fails with
// errDraining (503 + Retry-After) — and blocks until in-flight renders
// finish. Renders carry deadline budgets, so the wait is bounded unless
// the operator disabled RequestTimeout.
func (g *admission) drain() {
	g.mu.Lock()
	g.draining = true
	for g.inflight > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// ---- panic isolation ----

// recoverWriter tracks whether the handler already wrote a status line, so
// the panic middleware knows a 500 can still be sent. It forwards Flush
// for the SSE path.
type recoverWriter struct {
	http.ResponseWriter
	wrote bool
}

func (rw *recoverWriter) WriteHeader(code int) {
	rw.wrote = true
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recoverWriter) Write(b []byte) (int, error) {
	rw.wrote = true
	return rw.ResponseWriter.Write(b)
}

func (rw *recoverWriter) Flush() {
	if f, ok := rw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
