package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	fp "fuzzyprophet"
)

// ScenarioEntry is one registered compiled scenario together with the
// shared reuse cache all of its sessions and batch evaluations draw from.
// An entry is immutable after registration; re-registering the same ID
// installs a NEW entry while in-flight sessions keep (and ref-count) the
// old one, so a re-deploying planner never breaks a colleague mid-render.
type ScenarioEntry struct {
	// ID is the registry key clients address the scenario by.
	ID string
	// Fingerprint is the scenario's content identity (Scenario.Fingerprint),
	// the key snapshot warm-starts are looked up under.
	Fingerprint string
	// Scenario is the compiled scenario (safe for concurrent use).
	Scenario *fp.Scenario
	// Cache is the reuse engine shared by every consumer of this entry.
	Cache *fp.ReuseCache
	// Warm records whether Cache started with prior state: restored from
	// a disk snapshot, or carried over live from a previous registration
	// of identical content.
	Warm bool
	// Source is the scenario script exactly as registered and Tables its
	// side tables; the shard coordinator ships both to workers, which
	// recompile an identical scenario (verified by fingerprint).
	Source string
	Tables []tableDef
	// Generation increments each time the ID is re-registered.
	Generation int
	// CreatedAt is the registration time.
	CreatedAt time.Time

	// refs counts pins: one held by the registry while the entry is
	// current, plus one per open session. onZero fires when the count
	// drains — for retired entries, that is the moment the last session
	// let go.
	refs   atomic.Int64
	onZero func()
}

// acquire pins the entry. Callers must pair it with release.
func (e *ScenarioEntry) acquire() { e.refs.Add(1) }

// release unpins the entry, firing onZero on the last release.
func (e *ScenarioEntry) release() {
	if e.refs.Add(-1) == 0 && e.onZero != nil {
		e.onZero()
	}
}

// Refs returns the current pin count (monitoring only).
func (e *ScenarioEntry) Refs() int64 { return e.refs.Load() }

// Registry is the concurrent scenario registry: ID → current entry, with
// ref-counting so replaced entries survive as long as sessions use them.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*ScenarioEntry

	registered  atomic.Int64 // total successful registrations
	retiredLive atomic.Int64 // replaced entries still pinned by sessions
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*ScenarioEntry)}
}

// Register installs entry under entry.ID, retiring any current entry with
// that ID. It reports whether an entry was replaced. The registry holds
// one ref on the current entry; the retired entry's registry ref is
// dropped, so it lives exactly as long as its remaining sessions.
func (r *Registry) Register(entry *ScenarioEntry) (replaced bool) {
	r.mu.Lock()
	old := r.entries[entry.ID]
	if old != nil {
		entry.Generation = old.Generation + 1
	}
	entry.acquire() // the registry's ref
	r.entries[entry.ID] = entry
	r.mu.Unlock()

	r.registered.Add(1)
	if old != nil {
		r.retiredLive.Add(1)
		old.onZero = func() { r.retiredLive.Add(-1) }
		old.release() // drop the registry's ref; sessions may still pin it
		return true
	}
	return false
}

// Acquire returns the current entry for id with one ref taken, or false.
// The caller must release() the entry when done with it.
func (r *Registry) Acquire(id string) (*ScenarioEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, false
	}
	e.acquire()
	return e, true
}

// Get returns the current entry for id without taking a ref — for
// read-only introspection within one request.
func (r *Registry) Get(id string) (*ScenarioEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	return e, ok
}

// Remove unregisters id, dropping the registry's ref. Sessions holding the
// entry keep working; it reports whether the id was registered.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	e, ok := r.entries[id]
	if ok {
		delete(r.entries, id)
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	r.retiredLive.Add(1)
	e.onZero = func() { r.retiredLive.Add(-1) }
	e.release()
	return true
}

// List returns the current entries sorted by ID.
func (r *Registry) List() []*ScenarioEntry {
	r.mu.Lock()
	out := make([]*ScenarioEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of currently registered scenarios.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Registered returns the total number of registrations ever made.
func (r *Registry) Registered() int64 { return r.registered.Load() }

// RetiredLive returns how many replaced/removed entries are still pinned
// by open sessions.
func (r *Registry) RetiredLive() int64 { return r.retiredLive.Load() }
