package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	fp "fuzzyprophet"
)

// ErrSessionLimit is returned by Open when the manager is at MaxSessions;
// the HTTP layer maps it to 429 Too Many Requests.
var ErrSessionLimit = errors.New("server: session limit reached")

// Session is one managed online session: the library Session plus the
// bookkeeping the service needs — idle tracking for TTL eviction, the
// scenario-entry pin, and per-session render single-flight state.
type Session struct {
	// ID addresses the session in the HTTP API.
	ID string
	// Entry is the pinned scenario entry (released when the session
	// closes or is evicted).
	Entry *ScenarioEntry
	// Sess is the underlying library session.
	Sess *fp.Session
	// CreatedAt is the open time; Worlds the configured world count.
	CreatedAt time.Time
	Worlds    int

	mu       sync.Mutex
	lastUsed time.Time
	closed   bool
	// params mirrors the slider positions for introspection (the library
	// session validates and owns the authoritative state).
	params map[string]any
	// paramVersion increments on every successful SetParams; renders are
	// keyed by it so a burst of render requests between two slider moves
	// coalesces into one simulation.
	paramVersion uint64
	inflight     *renderCall
	lastGraph    *fp.Graph
	lastVersion  uint64

	renders   atomic.Int64
	coalesced atomic.Int64
}

// renderCall is one in-flight render shared by coalesced followers.
type renderCall struct {
	version uint64
	done    chan struct{}
	graph   *fp.Graph
	err     error
}

// Touch marks the session used now (resets the idle clock).
func (s *Session) Touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// SetParams applies slider moves in sorted-name order and bumps the param
// version. A failed name/value leaves earlier moves applied (they were
// individually valid) and reports the error.
func (s *Session) SetParams(params map[string]any) error {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		val := canonicalNumber(params[name])
		if err := s.Sess.SetParam(name, val); err != nil {
			return err
		}
		if s.params == nil {
			s.params = map[string]any{}
		}
		s.params[name] = val
	}
	s.paramVersion++
	return nil
}

// Params returns a copy of the slider positions set through the API.
func (s *Session) Params() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]any, len(s.params))
	for k, v := range s.params {
		out[k] = v
	}
	return out
}

// Render renders the graph at the current slider positions with
// per-session single-flight: concurrent requests at the same param version
// share one simulation, and a request arriving after a completed render at
// an unchanged version is served the cached frame without simulating at
// all. The second return reports whether the result was coalesced/cached
// rather than freshly rendered by this call.
//
// The leader renders under its own request context. A follower waits with
// its own context still honored; if the leader's client disconnected
// mid-render, the surviving follower takes over as the new leader instead
// of inheriting the cancellation.
func (s *Session) Render(ctx context.Context) (*fp.Graph, bool, error) {
	for {
		s.mu.Lock()
		version := s.paramVersion
		if s.lastGraph != nil && s.lastVersion == version {
			g := s.lastGraph
			s.mu.Unlock()
			s.coalesced.Add(1)
			return g, true, nil
		}
		if c := s.inflight; c != nil && c.version == version {
			s.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if errors.Is(c.err, context.Canceled) && ctx.Err() == nil {
				continue // the leader's client went away, not ours: retry
			}
			s.coalesced.Add(1)
			return c.graph, true, c.err
		}
		call := &renderCall{version: version, done: make(chan struct{})}
		s.inflight = call
		s.mu.Unlock()

		g, err := s.Sess.Render(ctx)

		s.mu.Lock()
		call.graph, call.err = g, err
		close(call.done)
		if s.inflight == call {
			s.inflight = nil
		}
		// A slow leader must not clobber a newer version's cached frame, and
		// a degraded (deadline-cut) frame is never cached: the next request
		// at this version should re-render at full fidelity, not inherit the
		// partial frame forever.
		if err == nil && !g.Stats.Degraded && (s.lastGraph == nil || version >= s.lastVersion) {
			s.lastGraph = g
			s.lastVersion = version
		}
		s.mu.Unlock()
		if err != nil {
			return nil, false, err
		}
		s.renders.Add(1)
		return g, false, nil
	}
}

// Renders and Coalesced return the session's render counters.
func (s *Session) Renders() int64   { return s.renders.Load() }
func (s *Session) Coalesced() int64 { return s.coalesced.Load() }

// Manager owns the session table: bounded admission (MaxSessions →
// ErrSessionLimit), TTL-based idle eviction, and ID lookup.
type Manager struct {
	max int
	ttl time.Duration

	mu       sync.Mutex
	sessions map[string]*Session

	opened  atomic.Int64
	evicted atomic.Int64
	closed  atomic.Int64
}

// NewManager returns a manager admitting at most max sessions (<=0 means
// unbounded) and evicting sessions idle longer than ttl (<=0 disables
// eviction).
func NewManager(max int, ttl time.Duration) *Manager {
	return &Manager{max: max, ttl: ttl, sessions: make(map[string]*Session)}
}

// newSessionID returns a 128-bit random hex ID.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Open admits a new session over the given (already pinned) entry. On
// ErrSessionLimit the caller keeps responsibility for releasing the entry.
func (m *Manager) Open(entry *ScenarioEntry, sess *fp.Session, worlds int) (*Session, error) {
	s := &Session{
		ID:        newSessionID(),
		Entry:     entry,
		Sess:      sess,
		CreatedAt: time.Now(),
		Worlds:    worlds,
		lastUsed:  time.Now(),
	}
	m.mu.Lock()
	if m.max > 0 && len(m.sessions) >= m.max {
		m.mu.Unlock()
		return nil, ErrSessionLimit
	}
	m.sessions[s.ID] = s
	m.mu.Unlock()
	m.opened.Add(1)
	return s, nil
}

// Get returns the session and marks it used.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if ok {
		s.Touch()
	}
	return s, ok
}

// Close removes the session and releases its scenario pin.
func (m *Manager) Close(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	m.finish(s)
	m.closed.Add(1)
	return true
}

// Sweep evicts sessions idle longer than the TTL, returning how many.
func (m *Manager) Sweep(now time.Time) int {
	if m.ttl <= 0 {
		return 0
	}
	var victims []*Session
	m.mu.Lock()
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		busy := s.inflight != nil
		s.mu.Unlock()
		if idle > m.ttl && !busy {
			delete(m.sessions, id)
			victims = append(victims, s)
		}
	}
	m.mu.Unlock()
	for _, s := range victims {
		m.finish(s)
		m.evicted.Add(1)
	}
	return len(victims)
}

// CloseAll drains every session (server shutdown).
func (m *Manager) CloseAll() {
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	for _, s := range all {
		m.finish(s)
		m.closed.Add(1)
	}
}

// finish releases the session's scenario pin exactly once.
func (m *Manager) finish(s *Session) {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		s.Entry.release()
	}
}

// List returns the open sessions sorted by creation time.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.Before(out[j].CreatedAt) })
	return out
}

// Len returns the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Opened, Evicted and Closed return lifetime counters.
func (m *Manager) Opened() int64  { return m.opened.Load() }
func (m *Manager) Evicted() int64 { return m.evicted.Load() }
func (m *Manager) Closed() int64  { return m.closed.Load() }
