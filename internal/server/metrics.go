package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"fuzzyprophet/internal/buildinfo"
	"fuzzyprophet/internal/obs"
)

// renderBuckets are the render-latency histogram bounds in seconds.
var renderBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// stageBuckets bound the per-stage histograms: stages run one to three
// orders of magnitude faster than whole renders, so the grid extends down
// to 100µs.
var stageBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// histogram is a fixed-bucket latency histogram, lock-free: observe does
// one atomic increment into the NON-cumulative bucket the value falls in
// (binary search, no bucket loop) plus a CAS-loop float add for the sum.
// Cumulation happens once, at scrape time, where it belongs. The count is
// derived from the buckets in the same pass, so a concurrent scrape always
// sees bucket-monotone output with count == the +Inf bucket.
type histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last slot is the +Inf overflow
	sumBits atomic.Uint64  // float64 bits of the value sum
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(seconds float64) {
	// First bound >= seconds is the le bucket; misses land in overflow.
	h.counts[sort.SearchFloat64s(h.bounds, seconds)].Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// write emits the histogram in Prometheus text format (cumulative buckets).
func (h *histogram) write(w io.Writer, name, labels string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if labels != "" {
			fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, labels, b, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	sum := math.Float64frombits(h.sumBits.Load())
	if labels != "" {
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	} else {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	}
}

// metrics aggregates service-level counters for the /metrics endpoint.
type metrics struct {
	start time.Time

	requests         atomic.Int64
	rendersTotal     atomic.Int64
	rendersCoalesced atomic.Int64
	renderErrors     atomic.Int64
	evaluatesTotal   atomic.Int64
	pointsEvaluated  atomic.Int64

	// Shard fan-out (coordinator side) and shard renders (worker side).
	shardRendersServed  atomic.Int64
	shardFanouts        atomic.Int64
	shardRetries        atomic.Int64
	shardWorkerFailures atomic.Int64
	shardHedges         atomic.Int64
	shardHedgeWins      atomic.Int64

	// Resilience layer: panic isolation, deadline budgets, admission
	// control and degraded responses.
	panics            atomic.Int64
	deadlinesExceeded atomic.Int64
	clientDisconnects atomic.Int64
	rendersShed       atomic.Int64
	degradedRenders   atomic.Int64

	// Wire protocol v2: slim (fingerprint-only) vs full-payload requests,
	// cache-miss re-sends and version downgrades (coordinator side), plus
	// the worker-side miss count and sketch-only renders, and raw wire
	// bytes both ways.
	shardSlimRequests     atomic.Int64
	shardFullRequests     atomic.Int64
	shardCacheMissResends atomic.Int64
	shardProtoDowngrades  atomic.Int64
	shardCooldowns        atomic.Int64
	shardCacheMisses      atomic.Int64
	shardSketchOnlyServed atomic.Int64
	shardRequestBytes     atomic.Int64
	shardResponseBytes    atomic.Int64

	renderLatency *histogram
	// stageSeconds is one histogram per pipeline stage name, fed from the
	// span trees of every render. The stage set is fixed at construction,
	// bounding label cardinality no matter what spans a trace carries.
	stageSeconds map[string]*histogram
}

// stageNames is the known stage-span vocabulary exported as
// fpserver_stage_seconds{stage=...}. Operator-level spans (op:*) and
// per-point/shard grouping spans are deliberately excluded.
var stageNames = []string{
	"simulate", "worlds-materialize", "plan-execute",
	"shard-fanout", "sketch-merge", "spill-demote", "spill-promote",
}

func newMetrics() *metrics {
	m := &metrics{
		start:         time.Now(),
		renderLatency: newHistogram(renderBuckets),
		stageSeconds:  make(map[string]*histogram, len(stageNames)),
	}
	for _, name := range stageNames {
		m.stageSeconds[name] = newHistogram(stageBuckets)
	}
	return m
}

// observeStages walks a render's span tree and feeds each known stage
// span's duration into its histogram. The map is never written after
// construction, so concurrent renders observe without locking.
func (m *metrics) observeStages(tree *obs.Node) {
	tree.Visit(func(_ int, n *obs.Node) {
		if h, ok := m.stageSeconds[n.Name]; ok {
			h.observe(float64(n.DurUS) / 1e6)
		}
	})
}

// writeTo renders the Prometheus exposition for the current server state.
func (m *metrics) writeTo(w io.Writer, s *Server) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP fpserver_build_info Build identity (value is always 1; identity lives in the labels).\n# TYPE fpserver_build_info gauge\n")
	fmt.Fprintf(w, "fpserver_build_info{version=%q,go_version=%q} 1\n",
		buildinfo.Version, buildinfo.GoVersion())
	gauge("fpserver_uptime_seconds", "Seconds since the server started.",
		int64(time.Since(m.start).Seconds()))
	counter("fpserver_requests_total", "HTTP requests served.", m.requests.Load())

	// Scenario registry.
	gauge("fpserver_scenarios_registered", "Currently registered scenarios.", s.registry.Len())
	counter("fpserver_scenarios_registrations_total", "Scenario registrations ever made.", s.registry.Registered())
	gauge("fpserver_scenarios_retired_live", "Replaced scenario entries still pinned by sessions.", s.registry.RetiredLive())

	// Session manager.
	gauge("fpserver_sessions_open", "Currently open sessions.", s.sessions.Len())
	counter("fpserver_sessions_opened_total", "Sessions ever opened.", s.sessions.Opened())
	counter("fpserver_sessions_evicted_total", "Sessions evicted by the idle TTL.", s.sessions.Evicted())
	counter("fpserver_sessions_closed_total", "Sessions closed (explicitly or at shutdown).", s.sessions.Closed())

	// Renders and evaluation.
	counter("fpserver_renders_total", "Graph renders simulated.", m.rendersTotal.Load())
	counter("fpserver_renders_coalesced_total", "Render requests served by single-flight coalescing.", m.rendersCoalesced.Load())
	counter("fpserver_render_errors_total", "Renders that failed.", m.renderErrors.Load())
	counter("fpserver_evaluate_batches_total", "Batch evaluation requests.", m.evaluatesTotal.Load())
	counter("fpserver_evaluate_points_total", "Parameter points evaluated in batches.", m.pointsEvaluated.Load())

	// World sharding.
	counter("fpserver_shard_renders_total", "Shard-render requests served (worker role).", m.shardRendersServed.Load())
	counter("fpserver_shard_fanouts_total", "Shard evaluations fanned out to workers (coordinator role).", m.shardFanouts.Load())
	counter("fpserver_shard_retries_total", "Shard requests retried on another worker after a failure.", m.shardRetries.Load())
	counter("fpserver_shard_worker_failures_total", "Shards every worker failed (evaluated locally instead).", m.shardWorkerFailures.Load())
	counter("fpserver_shard_hedges_total", "Duplicate shard requests launched after the hedge delay.", m.shardHedges.Load())
	counter("fpserver_shard_hedge_wins_total", "Shards whose hedged duplicate finished first.", m.shardHedgeWins.Load())

	// Resilience layer.
	counter("fpserver_panics_total", "Panics recovered in handlers or evaluation goroutines.", m.panics.Load())
	counter("fpserver_deadline_exceeded_total", "Requests that exhausted their server-side deadline budget.", m.deadlinesExceeded.Load())
	counter("fpserver_client_disconnects_total", "Requests abandoned by the client before completion (499).", m.clientDisconnects.Load())
	counter("fpserver_renders_shed_total", "Renders shed by admission control (429).", m.rendersShed.Load())
	counter("fpserver_degraded_renders_total", "Responses served degraded (partial worlds) under the deadline budget.", m.degradedRenders.Load())
	inflight, queued := s.gate.stats()
	gauge("fpserver_renders_inflight", "Renders currently admitted and running.", inflight)
	gauge("fpserver_render_queue_depth", "Renders queued for an admission slot.", queued)
	if len(s.workerStates) > 0 {
		fmt.Fprintf(w, "# HELP fpserver_breaker_state Per-worker circuit breaker state (0 closed, 1 half-open, 2 open).\n# TYPE fpserver_breaker_state gauge\n")
		now := time.Now()
		for _, ws := range s.workerStates {
			fmt.Fprintf(w, "fpserver_breaker_state{worker=%q} %d\n", ws.url, ws.br.state(now))
		}
	}

	// Wire protocol v2.
	counter("fpserver_shard_slim_requests_total", "Fingerprint-only shard requests sent (steady state, no script payload).", m.shardSlimRequests.Load())
	counter("fpserver_shard_full_requests_total", "Full-payload shard requests sent (first contact, cache-miss re-send or v1 worker).", m.shardFullRequests.Load())
	counter("fpserver_shard_cache_miss_resends_total", "Full re-sends after a worker answered 409 scenario_not_cached.", m.shardCacheMissResends.Load())
	counter("fpserver_shard_proto_downgrades_total", "Workers downgraded to v1 full payloads after rejecting a fingerprint-only request.", m.shardProtoDowngrades.Load())
	counter("fpserver_shard_worker_cooldowns_total", "Worker circuit breakers opened (or re-opened) after a transport error or 5xx.", m.shardCooldowns.Load())
	counter("fpserver_shard_scenario_cache_misses_total", "Fingerprint-only requests answered 409 because the scenario was not cached (worker role).", m.shardCacheMisses.Load())
	counter("fpserver_shard_sketch_only_renders_total", "Shard renders answered with merged sketches instead of sample vectors (worker role).", m.shardSketchOnlyServed.Load())
	counter("fpserver_shard_request_bytes_total", "Bytes of shard request bodies sent to workers.", m.shardRequestBytes.Load())
	counter("fpserver_shard_response_bytes_total", "Bytes of shard response bodies received from workers.", m.shardResponseBytes.Load())
	fmt.Fprintf(w, "# HELP fpserver_render_seconds Render latency histogram.\n# TYPE fpserver_render_seconds histogram\n")
	m.renderLatency.write(w, "fpserver_render_seconds", "")

	// Per-stage timing from render span trees, one series per known stage.
	fmt.Fprintf(w, "# HELP fpserver_stage_seconds Render pipeline stage latency, from span traces.\n# TYPE fpserver_stage_seconds histogram\n")
	for _, name := range stageNames {
		m.stageSeconds[name].write(w, "fpserver_stage_seconds", fmt.Sprintf("stage=%q", name))
	}

	// Reuse cache, aggregated across registered scenarios and broken out
	// per scenario ID (low-cardinality: one series per registered ID).
	entries := s.registry.List()
	var hits, misses, evicted, inserted, bytes int64
	var demoted, promoted, spillErrors, spillBytes, quarantined int64
	var entriesTotal, spillEntries int
	outcomes := map[string]int{}
	for _, e := range entries {
		st := e.Cache.StoreStats()
		hits += st.Hits
		misses += st.Misses
		evicted += st.Evicted
		inserted += st.Inserted
		bytes += st.UsedBytes
		entriesTotal += st.Entries
		demoted += st.Demoted
		promoted += st.Promoted
		spillErrors += st.SpillErrors
		spillBytes += st.SpillBytes
		spillEntries += st.SpillEntries
		quarantined += st.Quarantined
		for k, v := range e.Cache.Counts() {
			outcomes[k] += v
		}
	}
	// Gauges, not counters: these sum over the currently registered
	// caches, so deleting or re-registering a scenario can shrink them — a
	// counter-typed series would trip Prometheus's reset detection.
	gauge("fpserver_reuse_store_hits", "Exact basis-store hits across registered caches.", hits)
	gauge("fpserver_reuse_store_misses", "Basis-store misses across registered caches.", misses)
	gauge("fpserver_reuse_store_evictions", "Basis entries evicted by the LRU budget.", evicted)
	gauge("fpserver_reuse_store_insertions", "Basis entries inserted.", inserted)
	gauge("fpserver_reuse_store_bytes", "Bytes held by basis stores.", bytes)
	gauge("fpserver_reuse_store_entries", "Entries held by basis stores.", entriesTotal)
	hitRate := 0.0
	if total := hits + misses; total > 0 {
		hitRate = float64(hits) / float64(total)
	}
	gauge("fpserver_reuse_hit_rate", "Exact-hit fraction of basis-store lookups.", fmt.Sprintf("%.6f", hitRate))

	// Out-of-core spill tier (all zero without -spill-dir).
	gauge("fpserver_spill_demotions", "Bases demoted to spill-tier column files on eviction.", demoted)
	gauge("fpserver_spill_promotions", "Bases faulted back from the spill tier as mapped views.", promoted)
	gauge("fpserver_spill_errors", "Demotions that failed to write (degraded to plain evictions).", spillErrors)
	gauge("fpserver_spill_bytes", "Bytes held by spill tiers on disk.", spillBytes)
	gauge("fpserver_spill_entries", "Bases resident in spill tiers.", spillEntries)
	gauge("fpserver_spill_quarantined", "Spill files quarantined after failing CRC or size checks.", quarantined)
	if s.shardInputs != nil {
		st := s.shardInputs.Stats()
		gauge("fpserver_shard_input_cache_hits", "Shard-input vectors served from the cache.", st.Hits)
		gauge("fpserver_shard_input_cache_misses", "Shard-input vectors simulated on cache miss.", st.Misses)
		gauge("fpserver_shard_input_cache_bytes", "Bytes held in RAM by the shard-input cache.", st.UsedBytes)
		gauge("fpserver_shard_input_cache_spill_bytes", "Bytes spilled out-of-core by the shard-input cache.", st.SpillBytes)
	}
	fmt.Fprintf(w, "# HELP fpserver_reuse_outcomes Point evaluations by reuse outcome, across registered caches.\n# TYPE fpserver_reuse_outcomes gauge\n")
	kinds := make([]string, 0, len(outcomes))
	for k := range outcomes {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "fpserver_reuse_outcomes{kind=%q} %d\n", k, outcomes[k])
	}

	// Snapshot persistence.
	if s.snapshots != nil {
		counter("fpserver_snapshot_saves_total", "Reuse snapshots written.", s.snapshots.Saves())
		counter("fpserver_snapshot_loads_total", "Reuse snapshots restored at registration.", s.snapshots.Loads())
		counter("fpserver_snapshot_errors_total", "Snapshot save/load failures.", s.snapshots.Errors())
		if last := s.snapshots.LastSave(); !last.IsZero() {
			gauge("fpserver_snapshot_last_save_timestamp_seconds", "Unix time of the last successful snapshot.", last.Unix())
		}
	}
}
