package server

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/server/protocoltest"
	"fuzzyprophet/internal/sqlparser"
)

// ---- chaos matrix ----

// chaosConfig tunes a coordinator for fast fault recovery in tests: short
// per-attempt timeouts bound hung shards, a small fixed hedge delay races
// a duplicate early, and retries back off only briefly.
func chaosConfig(c *Config) {
	c.ShardTimeout = 300 * time.Millisecond
	c.HedgeDelay = 25 * time.Millisecond
	c.RetryBackoff = time.Millisecond
	c.WorkerCooldown = 50 * time.Millisecond
}

// TestChaosMatrixBitIdentical runs every bundled example scenario through
// a two-worker fan-out where BOTH workers sit behind seeded chaos proxies
// randomly killing, hanging and slowing shard exchanges, and asserts each
// batch result is bit-identical to the single-node evaluation and never
// degraded: deadlines, hedges, breakers, retries and local fallback
// protect correctness, not just availability.
func TestChaosMatrixBitIdentical(t *testing.T) {
	seed := uint64(20260808)
	for name, sql := range sqlparser.ExampleScenarios() {
		t.Run(name, func(t *testing.T) {
			_, local := newTestServer(t, func(c *Config) { c.System = newExampleSystem(t) })
			scnLocal := registerExample(t, local.URL, name, sql)
			points := examplePoints(scnLocal)
			want := evaluatePoints(t, local.URL, scnLocal.ID, evaluateRequest{Points: points, Worlds: 48})

			var proxies []*protocoltest.Proxy
			var urls []string
			for i := 0; i < 2; i++ {
				_, worker := newTestServer(t, func(c *Config) {
					c.System = newExampleSystem(t)
					c.WorkerMode = true
				})
				proxy := protocoltest.New(worker.URL)
				t.Cleanup(proxy.Close)
				proxy.SetDelay(10 * time.Millisecond)
				proxy.SetChaos(seed+uint64(i), 0.15, 0.10, 0.15)
				proxies = append(proxies, proxy)
				urls = append(urls, proxy.URL())
			}
			coordSrv, coord := newTestServer(t, func(c *Config) {
				c.System = newExampleSystem(t)
				c.Workers = urls
				chaosConfig(c)
			})

			scn := registerExample(t, coord.URL, name, sql)
			got := evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: points, Worlds: 48})

			if got.Degraded {
				t.Fatal("chaos run reported degraded without allow_degraded")
			}
			if len(got.Points) != len(want.Points) {
				t.Fatalf("%d points, want %d", len(got.Points), len(want.Points))
			}
			for i := range want.Points {
				if got.Points[i].Degraded {
					t.Errorf("point %d flagged degraded without allow_degraded", i)
				}
				if !reflect.DeepEqual(want.Points[i].Summaries, got.Points[i].Summaries) {
					t.Errorf("point %d diverged under chaos:\nlocal:  %+v\nfanned: %+v",
						i, want.Points[i].Summaries, got.Points[i].Summaries)
				}
			}
			if n := coordSrv.metrics.renderErrors.Load(); n != 0 {
				t.Errorf("%d render errors under chaos", n)
			}
			exchanges := 0
			for _, p := range proxies {
				exchanges += len(p.ShardExchanges())
			}
			if exchanges == 0 {
				t.Error("chaos proxies saw no shard exchanges")
			}
		})
	}
}

// ---- hedged shards ----

// TestHedgeRescuesHungShard: with one worker hung, the hedge timer fires a
// duplicate on the healthy worker and the render completes bit-identically
// — without waiting out the shard timeout and without degrading.
func TestHedgeRescuesHungShard(t *testing.T) {
	_, local := newTestServer(t, nil)
	scnLocal := registerScenario(t, local.URL)
	one := []map[string]any{testPoints[0]}
	want := evaluatePoints(t, local.URL, scnLocal.ID, evaluateRequest{Points: one, Worlds: 64})

	_, good := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	_, hung := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(hung.URL)
	t.Cleanup(proxy.Close)
	proxy.SetFault(protocoltest.Hang)

	coordSrv, coord := newTestServer(t, func(c *Config) {
		c.Workers = []string{good.URL, proxy.URL()}
		c.HedgeDelay = 10 * time.Millisecond
	})
	scn := registerScenario(t, coord.URL)
	got := evaluatePoints(t, coord.URL, scn.ID, evaluateRequest{Points: one, Worlds: 64})

	if !reflect.DeepEqual(want.Points[0].Summaries, got.Points[0].Summaries) {
		t.Errorf("hedged result diverged:\nlocal:  %+v\nhedged: %+v",
			want.Points[0].Summaries, got.Points[0].Summaries)
	}
	if got.Degraded {
		t.Error("hedged render reported degraded")
	}
	if n := coordSrv.metrics.shardHedges.Load(); n < 1 {
		t.Errorf("hedge counter = %d, want >= 1", n)
	}
	if n := coordSrv.metrics.shardHedgeWins.Load(); n < 1 {
		t.Errorf("hedge win counter = %d, want >= 1", n)
	}
}

// ---- degraded renders ----

// TestDegradedEvaluate: with hedging off and one worker hung, an
// allow_degraded batch under a short ?timeout= budget returns the shards
// that completed — flagged degraded, with a partial world count and a
// per-column confidence note — instead of a 504.
func TestDegradedEvaluate(t *testing.T) {
	_, good := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	_, hung := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(hung.URL)
	t.Cleanup(proxy.Close)
	proxy.SetFault(protocoltest.Hang)

	_, coord := newTestServer(t, func(c *Config) {
		c.Workers = []string{good.URL, proxy.URL()}
		c.HedgeDelay = -1 // a hedge would rescue the shard; force the cut
	})
	scn := registerScenario(t, coord.URL)

	const worlds = 64
	var res fp.BatchResult
	code := call(t, "POST", coord.URL+"/scenarios/"+scn.ID+"/evaluate?timeout=600ms",
		evaluateRequest{Points: testPoints, Worlds: worlds, AllowDegraded: true}, &res)
	if code != http.StatusOK {
		t.Fatalf("degraded evaluate = %d, want 200", code)
	}
	if !res.Degraded {
		t.Fatal("batch not flagged degraded")
	}
	if len(res.Points) == 0 {
		t.Fatal("degraded batch carried no points")
	}
	pt := res.Points[0]
	if !pt.Degraded {
		t.Error("point not flagged degraded")
	}
	if pt.WorldsCompleted <= 0 || pt.WorldsCompleted >= worlds {
		t.Errorf("worlds_completed = %d, want in (0, %d)", pt.WorldsCompleted, worlds)
	}
	if len(pt.Summaries) == 0 {
		t.Fatal("degraded point carried no summaries")
	}
	for col, s := range pt.Summaries {
		if !strings.Contains(s.Note, "degraded") {
			t.Errorf("column %s: note = %q, want a degraded confidence note", col, s.Note)
		}
		if s.N != int64(pt.WorldsCompleted) {
			t.Errorf("column %s: N = %d, want the %d completed worlds", col, s.N, pt.WorldsCompleted)
		}
	}
}

// TestDegradedRenderNotCached: a session opted into allow_degraded serves
// a partial frame under a short budget — and the single-flight cache does
// NOT retain it: the next render at the same params re-renders at full
// fidelity.
func TestDegradedRenderNotCached(t *testing.T) {
	_, good := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	_, hung := newTestServer(t, func(c *Config) { c.WorkerMode = true })
	proxy := protocoltest.New(hung.URL)
	t.Cleanup(proxy.Close)
	proxy.SetFaultWindow(protocoltest.Hang, 1)

	_, coord := newTestServer(t, func(c *Config) {
		c.Workers = []string{good.URL, proxy.URL()}
		c.HedgeDelay = -1
	})
	scn := registerScenario(t, coord.URL)
	sess := openSession(t, coord.URL, scn.ID, openSessionRequest{AllowDegraded: true})

	var degraded renderResponse
	if code := call(t, "GET", coord.URL+"/sessions/"+sess.ID+"/render?timeout=600ms", nil, &degraded); code != http.StatusOK {
		t.Fatalf("degraded render = %d, want 200", code)
	}
	if !degraded.Degraded || !degraded.Graph.Stats.Degraded {
		t.Fatalf("render not flagged degraded: %+v", degraded.Graph.Stats)
	}
	if degraded.WorldsCompleted <= 0 {
		t.Errorf("worlds_completed = %d, want > 0", degraded.WorldsCompleted)
	}
	if len(degraded.Graph.X) == 0 {
		t.Error("degraded frame carried no points")
	}

	// The hang was consumed; a fresh render must be full-fidelity — the
	// degraded frame must not have been cached by single-flight.
	var full renderResponse
	if code := call(t, "GET", coord.URL+"/sessions/"+sess.ID+"/render", nil, &full); code != http.StatusOK {
		t.Fatalf("follow-up render = %d, want 200", code)
	}
	if full.Degraded || full.Graph.Stats.Degraded {
		t.Error("follow-up render inherited the degraded frame; partial frames must not be cached")
	}
	if full.Coalesced {
		t.Error("follow-up render was served from cache; degraded frames must not be cached")
	}
	if len(full.Graph.X) <= len(degraded.Graph.X) {
		t.Errorf("full frame has %d points, degraded had %d; want more", len(full.Graph.X), len(degraded.Graph.X))
	}
}

// ---- deadline budgets ----

// TestBudgetOverride: ?timeout= must be a positive duration (400
// otherwise), and an impossible budget yields a structured 504 carrying
// the budget that was in force.
func TestBudgetOverride(t *testing.T) {
	_, ts := newTestServer(t, nil)
	scn := registerScenario(t, ts.URL)

	var body map[string]any
	if code := call(t, "POST", ts.URL+"/scenarios/"+scn.ID+"/evaluate?timeout=banana",
		evaluateRequest{Points: testPoints[:1]}, &body); code != http.StatusBadRequest {
		t.Errorf("bad timeout = %d, want 400", code)
	}

	body = nil
	code := call(t, "POST", ts.URL+"/scenarios/"+scn.ID+"/evaluate?timeout=1ns",
		evaluateRequest{Points: testPoints[:1]}, &body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("1ns budget = %d, want 504", code)
	}
	if body["code"] != "deadline_exceeded" {
		t.Errorf("code = %v, want deadline_exceeded", body["code"])
	}
	if body["budget"] != "1ns" {
		t.Errorf("budget = %v, want 1ns", body["budget"])
	}
}

// ---- blocking VG harness (admission + draining tests) ----

// blockSystem registers BlockModel: a VG whose first invocation signals
// started and then blocks — with every later invocation — until release is
// closed, letting tests hold a render mid-flight deterministically.
func blockSystem(t *testing.T) (sys *fp.System, started chan struct{}, release chan struct{}) {
	t.Helper()
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		t.Fatal(err)
	}
	started = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	err = sys.RegisterVG("BlockModel", 1, func(seed uint64, args []float64) (float64, error) {
		once.Do(func() { close(started) })
		<-release
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, started, release
}

const blockScenario = `
DECLARE PARAMETER @x AS SET (1, 2);
SELECT BlockModel(@x) AS y INTO results;
GRAPH OVER @x EXPECT y WITH bold red;
`

// TestGracefulShutdownDraining: Close() lets an in-flight render finish
// (200) while new requests are refused with 503 + Retry-After, and
// health/metrics stay reachable for orchestrators throughout.
func TestGracefulShutdownDraining(t *testing.T) {
	sys, started, release := blockSystem(t)
	srv, ts := newTestServer(t, func(c *Config) { c.System = sys })

	var scn scenarioJSON
	if code := call(t, "POST", ts.URL+"/scenarios", registerRequest{SQL: blockScenario}, &scn); code != http.StatusCreated {
		t.Fatalf("register = %d", code)
	}
	sess := openSession(t, ts.URL, scn.ID, openSessionRequest{Worlds: 8})

	renderCode := make(chan int, 1)
	go func() {
		var resp renderResponse
		renderCode <- call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/render", nil, &resp)
	}()
	<-started // the render is inside the simulation now

	closeDone := make(chan struct{})
	go func() {
		srv.Close()
		close(closeDone)
	}()
	waitFor(t, time.Second, srv.gate.isDraining)

	// New work is refused while draining...
	resp, err := http.Get(ts.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carried no Retry-After")
	}
	// ...but liveness stays up.
	if hr, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Errorf("healthz while draining = %d, want 200", hr.StatusCode)
		}
	}

	select {
	case <-closeDone:
		t.Fatal("Close returned while a render was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if code := <-renderCode; code != http.StatusOK {
		t.Errorf("in-flight render = %d, want 200 (drain must let it finish)", code)
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight render finished")
	}
}

// TestAdmissionShed: with MaxConcurrentRenders=1 and the slot held by a
// blocked render, a second budgeted request queues, times out and is shed
// with 429 + Retry-After.
func TestAdmissionShed(t *testing.T) {
	sys, started, release := blockSystem(t)
	srv, ts := newTestServer(t, func(c *Config) {
		c.System = sys
		c.MaxConcurrentRenders = 1
	})

	var scn scenarioJSON
	if code := call(t, "POST", ts.URL+"/scenarios", registerRequest{SQL: blockScenario}, &scn); code != http.StatusCreated {
		t.Fatalf("register = %d", code)
	}
	sess := openSession(t, ts.URL, scn.ID, openSessionRequest{Worlds: 8})

	renderCode := make(chan int, 1)
	go func() {
		var resp renderResponse
		renderCode <- call(t, "GET", ts.URL+"/sessions/"+sess.ID+"/render", nil, &resp)
	}()
	<-started

	resp, err := http.Post(ts.URL+"/scenarios/"+scn.ID+"/evaluate?timeout=50ms", "application/json",
		strings.NewReader(`{"points":[{"x":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("request over capacity = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After")
	}
	if n := srv.metrics.rendersShed.Load(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}

	close(release)
	if code := <-renderCode; code != http.StatusOK {
		t.Errorf("slot-holding render = %d, want 200", code)
	}
}

// ---- panic isolation ----

const panicScenario = `
DECLARE PARAMETER @x AS SET (1, 2);
SELECT PanicModel(@x) AS boom INTO results;
GRAPH OVER @x EXPECT boom WITH bold red;
`

// TestEvaluationPanicIsolated: a panicking VG-Function fails its own
// request with a structured 500 while a concurrent render on the same
// server completes untouched — and never flags degraded, even with
// allow_degraded set.
func TestEvaluationPanicIsolated(t *testing.T) {
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		t.Fatal(err)
	}
	err = sys.RegisterVG("PanicModel", 1, func(seed uint64, args []float64) (float64, error) {
		panic("injected VG panic")
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, func(c *Config) { c.System = sys })

	var boom scenarioJSON
	if code := call(t, "POST", ts.URL+"/scenarios", registerRequest{SQL: panicScenario}, &boom); code != http.StatusCreated {
		t.Fatalf("register = %d", code)
	}
	healthy := registerScenario(t, ts.URL)

	done := make(chan fp.BatchResult, 1)
	go func() {
		var res fp.BatchResult
		call(t, "POST", ts.URL+"/scenarios/"+healthy.ID+"/evaluate",
			evaluateRequest{Points: testPoints, Worlds: 64}, &res)
		done <- res
	}()

	var body map[string]any
	code := call(t, "POST", ts.URL+"/scenarios/"+boom.ID+"/evaluate",
		evaluateRequest{Points: []map[string]any{{"x": 1}}, Worlds: 16, AllowDegraded: true}, &body)
	if code != http.StatusInternalServerError {
		t.Errorf("panicking evaluation = %d, want 500", code)
	}
	if body["code"] != "panic" {
		t.Errorf("code = %v, want panic", body["code"])
	}
	if n := srv.metrics.panics.Load(); n < 1 {
		t.Errorf("panic counter = %d, want >= 1", n)
	}

	res := <-done
	if len(res.Points) != len(testPoints) {
		t.Errorf("concurrent evaluation returned %d points, want %d — a VG panic must not leak across requests",
			len(res.Points), len(testPoints))
	}
}

// TestHandlerPanicRecovered: the ServeHTTP middleware converts a panicking
// handler into a structured 500 and the server keeps serving.
func TestHandlerPanicRecovered(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	srv.mux.HandleFunc("GET /test/boom", func(http.ResponseWriter, *http.Request) {
		panic("injected handler panic")
	})

	resp, err := http.Get(ts.URL + "/test/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panicking handler = %d, want 500", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("500 body not JSON: %v", err)
	}
	if body["code"] != "panic" {
		t.Errorf("code = %v, want panic", body["code"])
	}
	if n := srv.metrics.panics.Load(); n != 1 {
		t.Errorf("panic counter = %d, want 1", n)
	}

	// The server survived: a real request still works.
	scn := registerScenario(t, ts.URL)
	evaluatePoints(t, ts.URL, scn.ID, evaluateRequest{Points: testPoints[:1], Worlds: 16})
}

// ---- breaker unit behavior ----

// TestBreakerHalfOpenBackoff exercises the state machine directly: open on
// threshold, half-open after the window, re-open with a doubled window on
// a failed probe, and full reset on success.
func TestBreakerHalfOpenBackoff(t *testing.T) {
	b := newBreaker(2, time.Hour)
	now := time.Now()
	if b.state(now) != breakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.onFailure(now)
	if b.state(now) != breakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	if !b.onFailure(now) {
		t.Fatal("threshold failure did not open")
	}
	if b.state(now) != breakerOpen || b.allow(now) {
		t.Fatal("breaker not open after threshold failures")
	}
	// Past the window: half-open, attempts allowed.
	later := now.Add(2 * time.Hour)
	if b.state(later) != breakerHalfOpen || !b.allow(later) {
		t.Fatal("breaker not half-open after the window")
	}
	// Failed probe: re-opens with a doubled span.
	if !b.onFailure(later) {
		t.Fatal("failed half-open probe did not re-open")
	}
	if b.openSpan != 2*time.Hour {
		t.Errorf("open span after failed probe = %v, want doubled to 2h", b.openSpan)
	}
	b.onSuccess()
	if b.state(later) != breakerClosed || b.openSpan != 0 {
		t.Error("success did not fully reset the breaker")
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
