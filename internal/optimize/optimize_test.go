package optimize

import (
	"context"
	"testing"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/storage"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

// reducedFigure2 is the paper's scenario on a coarser purchase grid so the
// full offline sweep stays fast in tests; the threshold is the prose's 5%.
const reducedFigure2 = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 12;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 12;
DECLARE PARAMETER @feature AS SET (12,36);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.05
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`

func testRegistry(t *testing.T) *vg.Registry {
	t.Helper()
	r := vg.NewRegistry()
	if err := vg.RegisterBuiltins(r); err != nil {
		t.Fatal(err)
	}
	if err := models.RegisterDefaults(r); err != nil {
		t.Fatal(err)
	}
	return r
}

func compileReduced(t *testing.T) *scenario.Scenario {
	t.Helper()
	scn, err := scenario.Compile(reducedFigure2, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func intOf(t *testing.T, p guide.Point, name string) int64 {
	t.Helper()
	n, err := p[name].AsInt()
	if err != nil {
		t.Fatalf("param %s: %v", name, err)
	}
	return n
}

func TestRunReducedFigure2(t *testing.T) {
	scn := compileReduced(t)
	reuse, err := mc.NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progressCalls := 0
	res, err := Run(context.Background(), scn, Options{
		MC: mc.Options{Worlds: 300, Reuse: reuse},
		Progress: func(done, total int, pt guide.Point, pr *mc.PointResult) {
			progressCalls++
			if done < 1 || done > total {
				t.Errorf("progress done=%d total=%d", done, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantGroups := 2 * 5 * 5
	if len(res.Rows) != wantGroups {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantGroups)
	}
	if res.PointsEvaluated != wantGroups*53 {
		t.Errorf("points = %d, want %d", res.PointsEvaluated, wantGroups*53)
	}
	if progressCalls != res.PointsEvaluated {
		t.Errorf("progress calls = %d", progressCalls)
	}
	if got := res.GroupParams; len(got) != 3 || got[0] != "feature" {
		t.Errorf("group params = %v", got)
	}
	if got := res.FreeParams; len(got) != 1 || got[0] != "current" {
		t.Errorf("free params = %v", got)
	}

	nFeasible := res.FeasibleCount()
	if nFeasible == 0 {
		t.Fatal("no feasible groups; calibration broken")
	}
	if nFeasible == len(res.Rows) {
		t.Fatal("every group feasible; constraint not binding")
	}

	// Known-structure anchors: the earliest schedule is feasible, the
	// latest is not.
	find := func(f, p1, p2 int64) GroupRow {
		for _, row := range res.Rows {
			if intOf(t, row.Group, "feature") == f &&
				intOf(t, row.Group, "purchase1") == p1 &&
				intOf(t, row.Group, "purchase2") == p2 {
				return row
			}
		}
		t.Fatalf("group (%d,%d,%d) missing", f, p1, p2)
		return GroupRow{}
	}
	if !find(12, 0, 12).Feasible {
		t.Error("early schedule (0,12) with feature 12 should be feasible")
	}
	if find(12, 48, 48).Feasible {
		t.Error("latest schedule (48,48) should be infeasible")
	}
	for _, row := range res.Rows {
		if _, ok := row.Metrics["MAX(EXPECT(overload))"]; !ok {
			t.Fatalf("metrics missing constraint term: %v", row.Metrics)
		}
	}

	// Lexicographic optimum: every feasible row is dominated.
	if len(res.Best) == 0 {
		t.Fatal("no best rows despite feasible groups")
	}
	bp1 := intOf(t, res.Best[0].Group, "purchase1")
	bp2 := intOf(t, res.Best[0].Group, "purchase2")
	for _, row := range res.Rows {
		if !row.Feasible {
			continue
		}
		p1 := intOf(t, row.Group, "purchase1")
		p2 := intOf(t, row.Group, "purchase2")
		if p1 > bp1 || (p1 == bp1 && p2 > bp2) {
			t.Errorf("feasible row (%d,%d) lexicographically beats best (%d,%d)", p1, p2, bp1, bp2)
		}
	}
	for _, b := range res.Best {
		if !b.Feasible {
			t.Error("best row not feasible")
		}
		if intOf(t, b.Group, "purchase1") != bp1 || intOf(t, b.Group, "purchase2") != bp2 {
			t.Error("best rows must tie on all goal values")
		}
	}
	// The purchase dates should be interior: a timely-but-not-immediate
	// schedule (the scenario's whole point).
	if bp1 == 0 && bp2 == 0 {
		t.Error("optimum at the earliest dates; cost/risk trade-off missing")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunRequiresOptimize(t *testing.T) {
	reg := testRegistry(t)
	scn, err := scenario.Compile("DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1; SELECT Gaussian(@p, 1) AS g;", reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), scn, Options{MC: mc.Options{Worlds: 10}}); err == nil {
		t.Error("scenario without OPTIMIZE should be rejected")
	}
}

// Fingerprint reuse must cut VG invocations substantially relative to a
// naive sweep of the identical space (the offline demo's headline).
func TestReuseSavesInvocationsOverSweep(t *testing.T) {
	const tiny = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 24;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 24;
DECLARE PARAMETER @feature AS SET (12);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.05
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`
	runWith := func(withReuse bool) (int64, *Result) {
		reg := testRegistry(t)
		scn, err := scenario.Compile(tiny, reg)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{MC: mc.Options{Worlds: 100}}
		if withReuse {
			reuse, err := mc.NewReuse(core.DefaultConfig(), storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opts.MC.Reuse = reuse
		}
		res, err := Run(context.Background(), scn, opts)
		if err != nil {
			t.Fatal(err)
		}
		return reg.TotalInvocations(), res
	}
	naiveInv, naiveRes := runWith(false)
	reuseInv, reuseRes := runWith(true)
	if reuseInv*2 >= naiveInv {
		t.Errorf("reuse spent %d invocations vs naive %d; want <50%%", reuseInv, naiveInv)
	}
	// Same optimum either way (reuse must not change the answer).
	if len(naiveRes.Best) == 0 || len(reuseRes.Best) == 0 {
		t.Fatal("missing best rows")
	}
	np1 := intOf(t, naiveRes.Best[0].Group, "purchase1")
	rp1 := intOf(t, reuseRes.Best[0].Group, "purchase1")
	np2 := intOf(t, naiveRes.Best[0].Group, "purchase2")
	rp2 := intOf(t, reuseRes.Best[0].Group, "purchase2")
	if np1 != rp1 || np2 != rp2 {
		t.Errorf("optimum changed under reuse: naive (%d,%d) vs reuse (%d,%d)", np1, np2, rp1, rp2)
	}
}

func TestExtractTermsValidation(t *testing.T) {
	mustExpr := func(src string) sqlparser.Expr {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if _, err := extractTerms(mustExpr("MAX(EXPECT overload) < 0.01"), 1); err != nil {
		t.Errorf("canonical constraint rejected: %v", err)
	}
	terms, err := extractTerms(mustExpr("MAX(EXPECT overload) < 0.01 AND MIN(EXPECT capacity) > 100"), 1)
	if err != nil || len(terms) != 2 {
		t.Errorf("two terms: %v, %v", terms, err)
	}
	if _, err := extractTerms(mustExpr("EXPECT(overload) < 0.01"), 1); err == nil {
		t.Error("bare inner aggregate with free params should error")
	}
	if _, err := extractTerms(mustExpr("EXPECT(overload) < 0.01"), 0); err != nil {
		t.Errorf("bare inner aggregate with no free params should work: %v", err)
	}
	if _, err := extractTerms(mustExpr("MAX(overload) < 0.01"), 1); err == nil {
		t.Error("outer aggregate without inner should error")
	}
	if _, err := extractTerms(mustExpr("MAX(EXPECT(1 + 2)) < 0.01"), 1); err == nil {
		t.Error("inner aggregate of non-column should error")
	}
	if _, err := extractTerms(mustExpr("1 < 2"), 1); err == nil {
		t.Error("constraint without aggregates should error")
	}
}

func TestEvalConstraintWithGroupParams(t *testing.T) {
	e, err := sqlparser.ParseExpr("MAX(EXPECT overload) < 0.01 AND @purchase1 > 4")
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]float64{"MAX(EXPECT(overload))": 0.001}
	group := guide.Point{"purchase1": value.Int(8)}
	ok, err := evalConstraint(e, metrics, group)
	if err != nil || !ok {
		t.Errorf("constraint = %v, %v", ok, err)
	}
	group["purchase1"] = value.Int(0)
	ok, err = evalConstraint(e, metrics, group)
	if err != nil || ok {
		t.Errorf("constraint should fail on @purchase1=0: %v, %v", ok, err)
	}
	// Bare column names referencing group params also resolve (the paper
	// writes GROUP BY feature, purchase1 without @).
	e2, _ := sqlparser.ParseExpr("MAX(EXPECT overload) < 0.01 AND purchase1 = 0")
	ok, err = evalConstraint(e2, metrics, group)
	if err != nil || !ok {
		t.Errorf("bare column constraint = %v, %v", ok, err)
	}
}

func TestSelectBestTiesAndErrors(t *testing.T) {
	rows := []GroupRow{
		{Group: guide.Point{"a": value.Int(1), "b": value.Int(9)}, Feasible: true},
		{Group: guide.Point{"a": value.Int(2), "b": value.Int(5)}, Feasible: true},
		{Group: guide.Point{"a": value.Int(2), "b": value.Int(7)}, Feasible: true},
		{Group: guide.Point{"a": value.Int(3), "b": value.Int(1)}, Feasible: false},
	}
	goals := []sqlparser.Goal{{Maximize: true, Param: "a"}, {Maximize: true, Param: "b"}}
	best, err := selectBest(rows, goals)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 1 {
		t.Fatalf("best = %v", best)
	}
	if n, _ := best[0].Group["b"].AsInt(); n != 7 {
		t.Errorf("best b = %d, want 7", n)
	}
	// MIN goal flips the order.
	minGoals := []sqlparser.Goal{{Maximize: false, Param: "a"}}
	best, err = selectBest(rows, minGoals)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := best[0].Group["a"].AsInt(); n != 1 {
		t.Errorf("min best a = %d", n)
	}
	// Ties on all goals are all returned.
	tieGoals := []sqlparser.Goal{{Maximize: true, Param: "a"}}
	best, err = selectBest(rows, tieGoals)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 2 {
		t.Errorf("tie best = %v", best)
	}
	// Goal on a non-grouped parameter errors.
	if _, err := selectBest(rows, []sqlparser.Goal{{Maximize: true, Param: "zzz"}}); err == nil {
		t.Error("goal on missing param should error")
	}
	// No feasible rows: nil, no error.
	none, err := selectBest([]GroupRow{{Feasible: false}}, goals)
	if err != nil || none != nil {
		t.Errorf("no-feasible best = %v, %v", none, err)
	}
}

func TestBudgetedExploration(t *testing.T) {
	scn := compileReduced(t)
	reuse, err := mc.NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), scn, Options{
		MC:          mc.Options{Worlds: 80, Reuse: reuse},
		GroupBudget: 10,
		BudgetSeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupsExplored != 10 || res.GroupsTotal != 50 {
		t.Errorf("explored %d/%d", res.GroupsExplored, res.GroupsTotal)
	}
	if res.Exhaustive() {
		t.Error("budgeted run must not claim exhaustiveness")
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.PointsEvaluated != 10*53 {
		t.Errorf("points = %d", res.PointsEvaluated)
	}
	// Deterministic in the seed.
	res2, err := Run(context.Background(), scn, Options{
		MC:          mc.Options{Worlds: 80},
		GroupBudget: 10,
		BudgetSeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		for _, p := range res.GroupParams {
			if !res.Rows[i].Group[p].Equal(res2.Rows[i].Group[p]) {
				t.Fatal("budgeted sampling not deterministic")
			}
		}
	}
	// A budget covering the space degrades to exhaustive.
	res3, err := Run(context.Background(), scn, Options{MC: mc.Options{Worlds: 20}, GroupBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Exhaustive() {
		t.Error("budget >= space should be exhaustive")
	}
}

func TestGroupByMismatchRejected(t *testing.T) {
	// GROUP BY repeats a parameter: compile passes (names are declared)
	// but Run rejects the degenerate partition.
	src := `
DECLARE PARAMETER @current AS RANGE 0 TO 4 STEP BY 1;
DECLARE PARAMETER @p AS RANGE 0 TO 4 STEP BY 2;
SELECT Gaussian(@current, 1) AS g, Gaussian(@p, 1) AS h INTO results;
OPTIMIZE SELECT @p FROM results WHERE MAX(EXPECT g) < 100 GROUP BY p, p FOR MAX @p;
`
	scn, err := scenario.Compile(src, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), scn, Options{MC: mc.Options{Worlds: 10}}); err == nil {
		t.Error("duplicate GROUP BY parameter should error")
	}
}
