// Package optimize implements Fuzzy Prophet's offline mode (paper §3.3):
// automated parameter optimization over the entire parameter space,
// expedited by fingerprint reuse.
//
// The OPTIMIZE statement of Figure 2 defines the semantics implemented
// here:
//
//	OPTIMIZE SELECT @feature, @purchase1, @purchase2
//	FROM results
//	WHERE MAX(EXPECT overload) < 0.01
//	GROUP BY feature, purchase1, purchase2
//	FOR MAX @purchase1, MAX @purchase2
//
// GROUP BY partitions the parameter space by the named parameters; the
// remaining ("free") parameters — @current here — sweep within each group.
// Inner probabilistic aggregates (EXPECT/EXPECT_STDDEV/PROB column) are
// estimated per free point over the Monte Carlo worlds; the enclosing
// aggregate (MAX/MIN/AVG/SUM) folds them across the free sweep. A group is
// feasible when the WHERE expression evaluates true. Among feasible groups
// the FOR goals select the lexicographic optimum — for Figure 2, "the
// latest purchase dates that keep the expected chance of overload below"
// the threshold.
package optimize

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/stats"
	"fuzzyprophet/internal/value"
)

// Options configures an optimization run.
type Options struct {
	// MC configures the per-point Monte Carlo evaluation (including the
	// reuse engine).
	MC mc.Options
	// Progress, when non-nil, is called after every evaluated point with
	// running counts — the live view of §3.3's demo.
	Progress func(done, total int, pt guide.Point, res *mc.PointResult)
	// GroupBudget, when positive, explores only that many groups, sampled
	// uniformly without replacement (deterministically from BudgetSeed).
	// The result is then approximate: the true optimum may lie in an
	// unexplored group. Zero means exhaustive.
	GroupBudget int
	// BudgetSeed seeds the budgeted sampling order (default 1).
	BudgetSeed uint64
}

// GroupRow is the outcome for one grouped-parameter assignment.
type GroupRow struct {
	// Group assigns the GROUP BY parameters.
	Group guide.Point
	// Feasible reports whether the WHERE constraint held.
	Feasible bool
	// Metrics holds each aggregate term of the constraint, keyed by its
	// SQL rendering (e.g. "MAX(EXPECT(overload))").
	Metrics map[string]float64
}

// Result is the outcome of an offline run.
type Result struct {
	// GroupParams and FreeParams name the partition of the space.
	GroupParams []string
	FreeParams  []string
	// Rows holds every group in exploration order.
	Rows []GroupRow
	// Best holds the lexicographic optimum among feasible rows; ties on
	// all goal values are all listed.
	Best []GroupRow
	// PointsEvaluated counts EvaluatePoint calls.
	PointsEvaluated int
	// GroupsTotal is the size of the grouped space; when GroupsExplored is
	// smaller (budgeted run), the result is approximate.
	GroupsTotal    int
	GroupsExplored int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Exhaustive reports whether every group was explored.
func (r *Result) Exhaustive() bool { return r.GroupsExplored == r.GroupsTotal }

// FeasibleCount returns the number of feasible groups.
func (r *Result) FeasibleCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.Feasible {
			n++
		}
	}
	return n
}

// aggTerm is one "outer(inner(column))" term of the constraint.
type aggTerm struct {
	sql    string // canonical rendering, used as the metrics key
	outer  string // MAX, MIN, AVG or SUM ("" when the inner agg is bare)
	inner  string // EXPECT, EXPECT_STDDEV or PROB
	column string
}

// extractTerms finds the aggregate terms in the constraint expression.
func extractTerms(where sqlparser.Expr, freeCount int) ([]aggTerm, error) {
	var terms []aggTerm
	seen := map[string]bool{}
	var bad error
	sqlparser.WalkExpr(where, func(e sqlparser.Expr) {
		if bad != nil {
			return
		}
		call, ok := e.(sqlparser.FuncCall)
		if !ok {
			return
		}
		switch call.Name {
		case "MAX", "MIN", "AVG", "SUM":
			if len(call.Args) != 1 {
				bad = fmt.Errorf("optimize: %s needs exactly one argument", call.Name)
				return
			}
			inner, ok := call.Args[0].(sqlparser.FuncCall)
			if !ok {
				bad = fmt.Errorf("optimize: %s must wrap EXPECT/EXPECT_STDDEV/PROB", call.Name)
				return
			}
			col, err := innerColumn(inner)
			if err != nil {
				bad = err
				return
			}
			key := call.SQL()
			if !seen[key] {
				seen[key] = true
				terms = append(terms, aggTerm{sql: key, outer: call.Name, inner: inner.Name, column: col})
			}
		case "EXPECT", "EXPECT_STDDEV", "PROB":
			// Bare inner aggregate: only meaningful when there is no free
			// sweep (every parameter grouped) — otherwise it is ambiguous.
			// Nested occurrences under an outer aggregate are handled
			// above; we must not double-report them, so check via seen on
			// the enclosing walk below.
			key := call.SQL()
			if enclosed(where, call) {
				return
			}
			if freeCount > 0 {
				bad = fmt.Errorf("optimize: bare %s over a free parameter sweep is ambiguous; wrap it in MAX/MIN/AVG/SUM", call.Name)
				return
			}
			col, err := innerColumn(call)
			if err != nil {
				bad = err
				return
			}
			if !seen[key] {
				seen[key] = true
				terms = append(terms, aggTerm{sql: key, inner: call.Name, column: col})
			}
		}
	})
	if bad != nil {
		return nil, bad
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("optimize: constraint has no aggregate terms")
	}
	return terms, nil
}

func innerColumn(call sqlparser.FuncCall) (string, error) {
	if len(call.Args) != 1 {
		return "", fmt.Errorf("optimize: %s needs exactly one column argument", call.Name)
	}
	col, ok := call.Args[0].(sqlparser.ColumnRef)
	if !ok {
		return "", fmt.Errorf("optimize: %s must name an output column directly", call.Name)
	}
	return col.Name, nil
}

// enclosed reports whether target appears inside an outer MAX/MIN/AVG/SUM
// call somewhere in root.
func enclosed(root sqlparser.Expr, target sqlparser.FuncCall) bool {
	targetSQL := target.SQL()
	found := false
	sqlparser.WalkExpr(root, func(e sqlparser.Expr) {
		call, ok := e.(sqlparser.FuncCall)
		if !ok || found {
			return
		}
		switch call.Name {
		case "MAX", "MIN", "AVG", "SUM":
			if len(call.Args) == 1 && call.Args[0].SQL() == targetSQL {
				found = true
			}
		}
	})
	return found
}

// Run explores the full parameter space and returns the optimization
// outcome. The context is checked before every evaluated point (and per
// world-batch inside the Monte Carlo executor), so cancelling mid-sweep
// stops within milliseconds; the reuse engine keeps whatever the aborted
// sweep already computed, ready for a resumed run.
func Run(ctx context.Context, scn *scenario.Scenario, opts Options) (*Result, error) {
	if scn.Optimize == nil {
		return nil, fmt.Errorf("optimize: scenario has no OPTIMIZE statement")
	}
	opt := scn.Optimize
	start := time.Now()

	groupNames := opt.GroupBy
	if len(groupNames) == 0 {
		groupNames = opt.Select
	}
	isGroup := map[string]bool{}
	for _, g := range groupNames {
		isGroup[g] = true
	}
	var groupDefs, freeDefs []guide.ParamDef
	var freeNames []string
	for _, def := range scn.Space.Params {
		if isGroup[def.Name] {
			groupDefs = append(groupDefs, def)
		} else {
			freeDefs = append(freeDefs, def)
			freeNames = append(freeNames, def.Name)
		}
	}
	if len(groupDefs) != len(groupNames) {
		return nil, fmt.Errorf("optimize: GROUP BY names a parameter more than once or not at all")
	}
	groupSpace, err := guide.NewSpace(groupDefs)
	if err != nil {
		return nil, err
	}
	var freePoints []guide.Point
	if len(freeDefs) == 0 {
		freePoints = []guide.Point{{}}
	} else {
		freeSpace, err := guide.NewSpace(freeDefs)
		if err != nil {
			return nil, err
		}
		freePoints = guide.Collect(guide.NewExhaustive(freeSpace))
	}

	terms, err := extractTerms(opt.Where, len(freeDefs))
	if err != nil {
		return nil, err
	}

	ev := mc.NewEvaluator(scn, opts.MC)
	res := &Result{GroupParams: groupNames, FreeParams: freeNames, GroupsTotal: groupSpace.Size()}

	var groups []guide.Point
	if opts.GroupBudget > 0 && opts.GroupBudget < groupSpace.Size() {
		seed := opts.BudgetSeed
		if seed == 0 {
			seed = 1
		}
		groups = guide.Collect(guide.NewRandom(groupSpace, opts.GroupBudget, seed))
	} else {
		groups = guide.Collect(guide.NewExhaustive(groupSpace))
	}
	res.GroupsExplored = len(groups)
	total := len(groups) * len(freePoints)
	for _, group := range groups {
		// Per-term vector across the free sweep.
		vectors := make(map[string][]float64, len(terms))
		for _, free := range freePoints {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pt := make(guide.Point, len(group)+len(free))
			for k, v := range group {
				pt[k] = v
			}
			for k, v := range free {
				pt[k] = v
			}
			pr, err := ev.EvaluatePoint(ctx, pt)
			if err != nil {
				return nil, err
			}
			res.PointsEvaluated++
			if opts.Progress != nil {
				opts.Progress(res.PointsEvaluated, total, pt, pr)
			}
			for _, term := range terms {
				samples, ok := pr.Columns[term.column]
				if !ok {
					return nil, fmt.Errorf("optimize: constraint references column %q the query did not produce", term.column)
				}
				var m stats.Moments
				for _, x := range samples {
					m.Add(x)
				}
				var v float64
				switch term.inner {
				case "EXPECT", "PROB":
					v = m.Mean()
				case "EXPECT_STDDEV":
					v = m.StdDev()
				default:
					return nil, fmt.Errorf("optimize: unsupported inner aggregate %s", term.inner)
				}
				vectors[term.sql] = append(vectors[term.sql], v)
			}
		}

		row := GroupRow{Group: group, Metrics: make(map[string]float64, len(terms))}
		for _, term := range terms {
			vec := vectors[term.sql]
			var folded float64
			switch term.outer {
			case "MAX":
				folded = vec[0]
				for _, x := range vec[1:] {
					if x > folded {
						folded = x
					}
				}
			case "MIN":
				folded = vec[0]
				for _, x := range vec[1:] {
					if x < folded {
						folded = x
					}
				}
			case "AVG":
				for _, x := range vec {
					folded += x
				}
				folded /= float64(len(vec))
			case "SUM":
				for _, x := range vec {
					folded += x
				}
			case "":
				folded = vec[0]
			}
			row.Metrics[term.sql] = folded
		}

		feasible, err := evalConstraint(opt.Where, row.Metrics, group)
		if err != nil {
			return nil, err
		}
		row.Feasible = feasible
		res.Rows = append(res.Rows, row)
	}

	res.Best, err = selectBest(res.Rows, opt.Goals)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// evalConstraint substitutes the folded aggregate terms (and the group's
// own parameter values, so constraints may mention @params or bare group
// columns) into the WHERE expression and evaluates it.
func evalConstraint(where sqlparser.Expr, metrics map[string]float64, group guide.Point) (bool, error) {
	substituted, err := sqlparser.RewriteExpr(where, func(e sqlparser.Expr) (sqlparser.Expr, error) {
		switch n := e.(type) {
		case sqlparser.FuncCall:
			if v, ok := metrics[n.SQL()]; ok {
				return sqlparser.Literal{Val: value.Float(v)}, nil
			}
		case sqlparser.ColumnRef:
			if n.Table == "" {
				if v, ok := group[n.Name]; ok {
					return sqlparser.Literal{Val: v}, nil
				}
			}
		case sqlparser.ParamRef:
			if v, ok := group[n.Name]; ok {
				return sqlparser.Literal{Val: v}, nil
			}
		}
		return e, nil
	})
	if err != nil {
		return false, err
	}
	v, err := sqlengine.EvalConst(substituted, nil, nil)
	if err != nil {
		return false, fmt.Errorf("optimize: evaluating constraint: %w", err)
	}
	return v.Truthy(), nil
}

// selectBest returns the lexicographic optimum among feasible rows under
// the FOR goals; ties across all goals are all returned.
func selectBest(rows []GroupRow, goals []sqlparser.Goal) ([]GroupRow, error) {
	var feasible []GroupRow
	for _, r := range rows {
		if r.Feasible {
			feasible = append(feasible, r)
		}
	}
	if len(feasible) == 0 {
		return nil, nil
	}
	key := func(r GroupRow) ([]float64, error) {
		out := make([]float64, len(goals))
		for i, g := range goals {
			v, ok := r.Group[g.Param]
			if !ok {
				return nil, fmt.Errorf("optimize: goal @%s is not a grouped parameter", g.Param)
			}
			f, err := v.AsFloat()
			if err != nil {
				return nil, fmt.Errorf("optimize: goal @%s is not numeric: %w", g.Param, err)
			}
			if g.Maximize {
				out[i] = -f // sort ascending on negated value
			} else {
				out[i] = f
			}
		}
		return out, nil
	}
	keys := make([][]float64, len(feasible))
	for i, r := range feasible {
		k, err := key(r)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	order := make([]int, len(feasible))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
	bestKey := keys[order[0]]
	var best []GroupRow
	for _, idx := range order {
		equal := true
		for i := range bestKey {
			if keys[idx][i] != bestKey[i] {
				equal = false
				break
			}
		}
		if !equal {
			break
		}
		best = append(best, feasible[idx])
	}
	return best, nil
}
