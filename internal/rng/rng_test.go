package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds matched %d/100 outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different streams matched %d/100 outputs", same)
	}
}

func TestDeriveDeterministicAndDistinct(t *testing.T) {
	a := Derive(42, "world", 3)
	b := Derive(42, "world", 3)
	c := Derive(42, "world", 4)
	d := Derive(42, "other", 3)
	for i := 0; i < 100; i++ {
		av := a.Uint64()
		if av != b.Uint64() {
			t.Fatal("same derivation must match")
		}
		if av == c.Uint64() || av == d.Uint64() {
			t.Fatal("distinct derivations should not match")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(10)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d count %d, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := s.Normal(10, 3)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %g, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("normal stddev = %g, want ~3", math.Sqrt(variance))
	}
}

func TestNormalPanicsOnNegativeStddev(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative stddev should panic")
		}
	}()
	New(1).Normal(0, -1)
}

func TestExponentialMean(t *testing.T) {
	s := New(14)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exp(rate=2) mean = %g, want ~0.5", mean)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(15)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Poisson(3.5))
	}
	mean := sum / n
	if math.Abs(mean-3.5) > 0.05 {
		t.Errorf("poisson(3.5) mean = %g", mean)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	s := New(16)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := float64(s.Poisson(100))
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-100) > 0.5 {
		t.Errorf("poisson(100) mean = %g", mean)
	}
	if math.Abs(variance-100) > 3 {
		t.Errorf("poisson(100) variance = %g", variance)
	}
}

func TestPoissonZeroAndPanic(t *testing.T) {
	if New(1).Poisson(0) != 0 {
		t.Error("poisson(0) must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative mean should panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestGammaMoments(t *testing.T) {
	s := New(17)
	const n = 100000
	shape, scale := 2.5, 1.5
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gamma(shape, scale)
	}
	mean := sum / n
	if math.Abs(mean-shape*scale) > 0.05 {
		t.Errorf("gamma mean = %g, want %g", mean, shape*scale)
	}
}

func TestGammaSmallShape(t *testing.T) {
	s := New(18)
	const n = 100000
	shape, scale := 0.5, 2.0
	var sum float64
	for i := 0; i < n; i++ {
		x := s.Gamma(shape, scale)
		if x < 0 {
			t.Fatalf("gamma variate negative: %g", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-shape*scale) > 0.05 {
		t.Errorf("gamma(0.5,2) mean = %g, want 1", mean)
	}
}

func TestWeibullMean(t *testing.T) {
	s := New(19)
	const n = 100000
	// shape=1 reduces to exponential with mean = scale.
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Weibull(1, 2)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Errorf("weibull(1,2) mean = %g, want 2", mean)
	}
}

func TestBinomialSmallAndLarge(t *testing.T) {
	s := New(20)
	const n = 50000
	var sumSmall, sumLarge float64
	for i := 0; i < n; i++ {
		sumSmall += float64(s.Binomial(10, 0.3))
		sumLarge += float64(s.Binomial(1000, 0.01))
	}
	if m := sumSmall / n; math.Abs(m-3) > 0.05 {
		t.Errorf("binomial(10,0.3) mean = %g, want 3", m)
	}
	if m := sumLarge / n; math.Abs(m-10) > 0.15 {
		t.Errorf("binomial(1000,0.01) mean = %g, want 10", m)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	s := New(21)
	if s.Binomial(0, 0.5) != 0 {
		t.Error("binomial(0,·) must be 0")
	}
	if s.Binomial(5, 0) != 0 {
		t.Error("binomial(·,0) must be 0")
	}
	if s.Binomial(5, 1) != 5 {
		t.Error("binomial(5,1) must be 5")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(22)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) must be false")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.25) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) rate = %g", p)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(23)
	for i := 0; i < 10000; i++ {
		x := s.Uniform(-2, 5)
		if x < -2 || x >= 5 {
			t.Fatalf("Uniform(-2,5) = %g", x)
		}
	}
}

func TestPickWeighted(t *testing.T) {
	s := New(24)
	counts := make([]int, 3)
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Pick([]float64{1, 2, 3})]++
	}
	for i, want := range []float64{n / 6.0, n / 3.0, n / 2.0} {
		if math.Abs(float64(counts[i])-want) > 0.05*n {
			t.Errorf("Pick bucket %d count %d, want ~%g", i, counts[i], want)
		}
	}
}

func TestPickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Pick should panic")
		}
	}()
	New(1).Pick(nil)
}

func TestSeedSequenceStable(t *testing.T) {
	a := NewSeedSequence(99, "fingerprint")
	b := NewSeedSequence(99, "fingerprint")
	for i := 0; i < 64; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("seed sequence not stable at %d", i)
		}
	}
	c := NewSeedSequence(99, "worlds")
	diff := false
	for i := 0; i < 16; i++ {
		if a.At(i) != c.At(i) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("labelled sequences should differ")
	}
	first := a.First(8)
	if len(first) != 8 {
		t.Fatalf("First(8) len = %d", len(first))
	}
	for i := range first {
		if first[i] != a.At(i) {
			t.Fatalf("First mismatch at %d", i)
		}
	}
}

// Property: Derive is a pure function of its inputs.
func TestQuickDerivePure(t *testing.T) {
	f := func(seed, idx uint64, label string) bool {
		if len(label) > 32 {
			label = label[:32]
		}
		a := Derive(seed, label, idx)
		b := Derive(seed, label, idx)
		return a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SeedSequence.At is pure.
func TestQuickSeedSequencePure(t *testing.T) {
	f := func(base uint64, i uint16) bool {
		q := NewSeedSequence(base, "x")
		return q.At(int(i)) == q.At(int(i))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Golden stream values: these pin the exact generator output forever. If
// this test ever fails, fingerprint reuse across versions is broken, which
// is a reuse-contract violation — do not update the constants casually.
func TestGoldenStream(t *testing.T) {
	s := New(20110612) // SIGMOD'11 demo week
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	want := []uint64{10468283027615151658, 3249371686644954416, 16195355249611632053}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("golden stream mismatch at %d: got %d, want %d", i, got[i], want[i])
		}
	}
	q := NewSeedSequence(0x66757a7a79, "fingerprint")
	if q.At(0) != 12947133982488511479 || q.At(1) != 17936968149242823031 {
		t.Fatalf("golden fingerprint seeds changed: %d, %d", q.At(0), q.At(1))
	}
	d := Derive(1, "world.CapacityModel#0", 0)
	if got := d.Uint64(); got != 10662317824455351390 {
		t.Fatalf("golden derived stream changed: %d", got)
	}
	// Distribution of bits sanity: popcount average near 32.
	s = New(7)
	var bits int
	for i := 0; i < 1000; i++ {
		bits += popcount(s.Uint64())
	}
	avg := float64(bits) / 1000
	if avg < 31 || avg > 33 {
		t.Errorf("average popcount %g, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}

func BenchmarkPoisson100(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Poisson(100)
	}
}
