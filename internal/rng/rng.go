// Package rng provides the deterministic pseudorandom substrate that Fuzzy
// Prophet's fingerprinting technique depends on.
//
// The paper's fingerprint of a parameterized stochastic function is "a
// sequence of its outputs under a fixed sequence of random inputs (i.e.,
// seed of its pseudorandom number generator)". That requires VG-Functions to
// be strictly deterministic in (seed, parameters), across runs and across
// machines. The standard library's math/rand does not promise a stable
// stream across Go releases, so this package implements its own generator: a
// PCG-XSH-RR 64/32 core with SplitMix64 seeding, plus the distribution
// samplers the demo models need.
//
// Streams and substreams: Derive produces an independent stream from a
// parent seed and a label, so that "world i, VG call j" gets its own
// reproducible stream without coordination.
package rng

import (
	"fmt"
	"math"
)

// Source is a deterministic PRNG stream (PCG-XSH-RR 64/32).
//
// A Source must not be shared between goroutines without external locking;
// Monte Carlo workers each derive their own.
type Source struct {
	state uint64
	inc   uint64 // stream selector, always odd
}

const pcgMultiplier = 6364136223846793005

// splitmix64 scrambles a seed into a well-distributed 64-bit value. It is
// the standard SplitMix64 finalizer, used for seeding and stream derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New returns a Source seeded from seed on the default stream.
func New(seed uint64) *Source { return NewStream(seed, 0) }

// NewStream returns a Source seeded from seed on the given stream. Distinct
// streams with the same seed produce statistically independent sequences.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: (splitmix64(stream) << 1) | 1}
	s.state = 0
	s.next() // advance per PCG reference seeding
	s.state += splitmix64(seed)
	s.next()
	return s
}

// Derive returns a new independent Source determined by the parent seed, a
// string label and an index. It is the substream mechanism used to give each
// (world, VG invocation) pair its own reproducible stream.
func Derive(seed uint64, label string, index uint64) *Source {
	h := splitmix64(seed)
	for i := 0; i < len(label); i++ {
		h = splitmix64(h ^ uint64(label[i])*0x100000001b3)
	}
	return NewStream(h, splitmix64(h^index*0x9e3779b97f4a7c15))
}

// next advances the state and returns a 32-bit output (PCG-XSH-RR).
func (s *Source) next() uint32 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	return uint64(s.next())<<32 | uint64(s.next())
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return s.next() }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn argument must be positive, got %d", n))
	}
	// Lemire's nearly-divisionless bounded sampling on 64 bits.
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	m := t & mask32
	c = t >> 32
	t = aLo*bHi + m
	lo |= (t & mask32) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Norm returns a standard normal variate (ratio-of-uniforms is avoided;
// we use the polar Box-Muller with caching for determinism and speed).
func (s *Source) Norm() float64 {
	// Polar Box–Muller without caching the spare: caching would make the
	// stream position depend on call history in a way that complicates
	// substream reasoning, so we deliberately discard the second variate.
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation. It panics if stddev is negative.
func (s *Source) Normal(mean, stddev float64) float64 {
	if stddev < 0 {
		panic(fmt.Sprintf("rng: negative stddev %g", stddev))
	}
	return mean + stddev*s.Norm()
}

// LogNormal returns exp(N(mu, sigma)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns an exponential variate with the given rate (lambda).
// It panics if rate <= 0.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: non-positive exponential rate %g", rate))
	}
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's product method; for large means the PTRS transformed
// rejection method of Hörmann (1993), which is exact and fast.
func (s *Source) Poisson(mean float64) int64 {
	if mean < 0 {
		panic(fmt.Sprintf("rng: negative Poisson mean %g", mean))
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := int64(0)
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// PTRS (Hörmann): valid for mean >= 10; we use it above 30.
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invalpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := s.Float64() - 0.5
		v := s.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invalpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-logGamma(k+1) {
			return int64(k)
		}
	}
}

// logGamma is ln(Γ(x)) via the Lanczos approximation, sufficient for the
// Poisson sampler's acceptance test.
func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// Gamma returns a gamma variate with the given shape and scale using the
// Marsaglia–Tsang method. It panics if shape or scale is non-positive.
func (s *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("rng: non-positive gamma shape %g or scale %g", shape, scale))
	}
	if shape < 1 {
		// Boost via Johnk-style transform: G(a) = G(a+1) * U^{1/a}.
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a Weibull variate with the given shape and scale.
func (s *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("rng: non-positive weibull shape %g or scale %g", shape, scale))
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Binomial returns the number of successes in n Bernoulli(p) trials. It uses
// direct simulation for small n and a normal approximation never — exactness
// matters for fingerprint determinism, so large n falls back to a
// waiting-time method that is still exact.
func (s *Source) Binomial(n int, p float64) int64 {
	if n < 0 {
		panic(fmt.Sprintf("rng: negative binomial n %d", n))
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return int64(n)
	}
	if n <= 64 {
		var k int64
		for i := 0; i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	}
	// Waiting-time (geometric gaps) method: exact, O(np) expected.
	logq := math.Log1p(-p)
	var k int64
	var sum float64
	for {
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		sum += math.Log(u) / logq
		if sum > float64(n) {
			return k
		}
		k++
		if k >= int64(n) {
			return int64(n)
		}
	}
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Pick returns a uniformly chosen index weighted by weights. It panics if
// weights is empty or sums to a non-positive value.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("rng: negative weight %g", w))
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Pick needs positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// SeedSequence produces the canonical fixed sequence of seeds used for
// fingerprinting and world generation: seeds are derived from a base seed
// and are stable forever (they are part of the reuse contract).
type SeedSequence struct {
	base  uint64
	label string
}

// NewSeedSequence returns a sequence identified by base and label. The same
// (base, label) always yields the same seeds.
func NewSeedSequence(base uint64, label string) *SeedSequence {
	return &SeedSequence{base: base, label: label}
}

// At returns the i-th seed in the sequence.
func (q *SeedSequence) At(i int) uint64 {
	h := splitmix64(q.base ^ 0xfeedfacecafebeef)
	for j := 0; j < len(q.label); j++ {
		h = splitmix64(h ^ uint64(q.label[j])*0x100000001b3)
	}
	return splitmix64(h + uint64(i)*0x9e3779b97f4a7c15)
}

// First returns the first n seeds.
func (q *SeedSequence) First(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = q.At(i)
	}
	return out
}
