package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Merged is a span-tree summary: identically-named siblings are folded
// into one node with an occurrence count, summed duration, and summed
// numeric attributes. Render loops produce one "point" span per graph
// point; merging turns 53 siblings into one line with count 53.
type Merged struct {
	Name     string
	Count    int
	Dur      time.Duration
	Attrs    map[string]float64 // summed numeric attributes
	Children []*Merged
}

// MergeTree folds a Node tree into a Merged tree. Sibling order follows
// first appearance. Returns nil for a nil node.
func MergeTree(n *Node) *Merged {
	if n == nil {
		return nil
	}
	m := &Merged{Name: n.Name}
	mergeInto(m, n)
	return m
}

func mergeInto(m *Merged, n *Node) {
	m.Count++
	m.Dur += time.Duration(n.DurUS) * time.Microsecond
	for k, v := range n.Attrs {
		var f float64
		switch x := v.(type) {
		case int64:
			f = float64(x)
		case float64:
			f = x
		default:
			continue
		}
		if m.Attrs == nil {
			m.Attrs = make(map[string]float64)
		}
		m.Attrs[k] += f
	}
	for _, c := range n.Children {
		var slot *Merged
		for _, mc := range m.Children {
			if mc.Name == c.Name {
				slot = mc
				break
			}
		}
		if slot == nil {
			slot = &Merged{Name: c.Name}
			m.Children = append(m.Children, slot)
		}
		mergeInto(slot, c)
	}
}

// FormatTree renders a Node tree as an aligned text table: merged span
// tree on the left, occurrence count, total duration, and percentage of
// the root's duration on the right, followed by summed numeric attributes.
func FormatTree(n *Node) string {
	m := MergeTree(n)
	if m == nil {
		return ""
	}
	type row struct {
		label string
		m     *Merged
	}
	var rows []row
	var walk func(m *Merged, prefix string, last bool, root bool)
	walk = func(m *Merged, prefix string, last, root bool) {
		label := m.Name
		childPrefix := prefix
		if !root {
			branch := "├─ "
			cont := "│  "
			if last {
				branch = "└─ "
				cont = "   "
			}
			label = prefix + branch + m.Name
			childPrefix = prefix + cont
		}
		rows = append(rows, row{label: label, m: m})
		for i, c := range m.Children {
			walk(c, childPrefix, i == len(m.Children)-1, false)
		}
	}
	walk(m, "", true, true)

	width := 0
	for _, r := range rows {
		if len(r.label) > width {
			width = len(r.label)
		}
	}
	rootDur := m.Dur
	var b strings.Builder
	for _, r := range rows {
		pct := 0.0
		if rootDur > 0 {
			pct = 100 * float64(r.m.Dur) / float64(rootDur)
		}
		fmt.Fprintf(&b, "%-*s  %5d×  %10s  %5.1f%%", width, r.label, r.m.Count,
			formatDur(r.m.Dur), pct)
		if len(r.m.Attrs) > 0 {
			keys := make([]string, 0, len(r.m.Attrs))
			for k := range r.m.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%s", k, formatNum(r.m.Attrs[k]))
			}
			fmt.Fprintf(&b, "  [%s]", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func formatNum(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.3g", f)
}
