package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTree(t *testing.T) {
	tr := New("render", "abc123")
	if tr.ID() != "abc123" {
		t.Fatalf("ID = %q", tr.ID())
	}
	root := tr.Root()
	sim := root.Child("simulate")
	sim.SetInt("worlds", 1000)
	sim.SetStr("site", "demand")
	sim.SetFloat("rate", 0.5)
	sim.End()
	plan := root.Child("plan-execute")
	plan.End()
	root.Note("spill-demote", 3*time.Millisecond)
	tr.End()

	n := tr.Tree()
	if n.Name != "render" {
		t.Fatalf("root name %q", n.Name)
	}
	if len(n.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(n.Children))
	}
	if n.DurUS <= 0 {
		t.Fatalf("root DurUS = %d, want > 0", n.DurUS)
	}
	got := n.Children[0]
	if got.Name != "simulate" {
		t.Fatalf("child 0 = %q", got.Name)
	}
	if got.Attrs["worlds"] != int64(1000) || got.Attrs["site"] != "demand" || got.Attrs["rate"] != 0.5 {
		t.Fatalf("attrs = %v", got.Attrs)
	}
	if note := n.Children[2]; note.Name != "spill-demote" || note.DurUS < 2900 {
		t.Fatalf("note = %+v", note)
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	tr := New("render", "")
	c := tr.Root().Child("stage")
	c.SetInt("rows", 7)
	c.End()
	tr.End()
	data, err := json.Marshal(tr.Tree())
	if err != nil {
		t.Fatal(err)
	}
	var back Node
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "render" || len(back.Children) != 1 || back.Children[0].Name != "stage" {
		t.Fatalf("round trip = %+v", back)
	}
	// JSON numbers decode as float64; MergeTree must still sum them.
	m := MergeTree(&back)
	if m.Children[0].Attrs["rows"] != 7 {
		t.Fatalf("merged attrs = %v", m.Children[0].Attrs)
	}
}

func TestGraft(t *testing.T) {
	remote := &Node{Name: "worker-shard", DurUS: 42, Children: []*Node{{Name: "plan-execute", DurUS: 40}}}
	tr := New("render", "")
	sh := tr.Root().Child("shard")
	sh.Graft(remote)
	sh.End()
	tr.End()
	n := tr.Tree()
	if len(n.Children) != 1 || len(n.Children[0].Children) != 1 {
		t.Fatalf("tree = %+v", n)
	}
	if g := n.Children[0].Children[0]; g.Name != "worker-shard" || g.DurUS != 42 {
		t.Fatalf("graft = %+v", g)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := New("render", "")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Child("shard")
			sp.SetInt("lo", 0)
			sp.End()
		}()
	}
	wg.Wait()
	tr.End()
	if n := tr.Tree(); len(n.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(n.Children))
	}
}

// TestNilDisabledPath asserts that the disabled tracer (nil spans, no span
// in context) performs zero allocations — the guarantee the instrumented
// render hot path relies on.
func TestNilDisabledPath(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFrom(ctx)
		c := sp.Child("simulate")
		c.SetInt("worlds", 100)
		c.SetStr("site", "x")
		c.SetFloat("f", 1.5)
		c.Note("spill", time.Millisecond)
		c.Graft(nil)
		c.End()
		ctx2 := With(ctx, nil)
		if ctx2 != ctx {
			t.Fatal("With(nil) must return ctx unchanged")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op, want 0", allocs)
	}
	var tr *Trace
	if tr.Root() != nil || tr.ID() != "" || tr.Tree() != nil || tr.Duration() != 0 {
		t.Fatal("nil trace methods must be inert")
	}
	tr.End()
}

func TestContextPropagation(t *testing.T) {
	tr := New("render", "")
	ctx := With(context.Background(), tr.Root())
	if SpanFrom(ctx) != tr.Root() {
		t.Fatal("SpanFrom did not return the active span")
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("SpanFrom on empty ctx must be nil")
	}
}

func TestMergeAndFormat(t *testing.T) {
	tr := New("render", "")
	root := tr.Root()
	for i := 0; i < 3; i++ {
		p := root.Child("point")
		s := p.Child("simulate")
		s.SetInt("worlds", 100)
		s.End()
		p.End()
	}
	tr.End()
	m := MergeTree(tr.Tree())
	if len(m.Children) != 1 {
		t.Fatalf("merged children = %d, want 1", len(m.Children))
	}
	pt := m.Children[0]
	if pt.Count != 3 {
		t.Fatalf("point count = %d, want 3", pt.Count)
	}
	if pt.Children[0].Attrs["worlds"] != 300 {
		t.Fatalf("summed attr = %v", pt.Children[0].Attrs)
	}
	out := FormatTree(tr.Tree())
	if !strings.Contains(out, "render") || !strings.Contains(out, "3×") ||
		!strings.Contains(out, "worlds=300") || !strings.Contains(out, "%") {
		t.Fatalf("format output:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.Contains(line, "%") {
			t.Fatalf("line missing percentage: %q", line)
		}
	}
}

func TestVisit(t *testing.T) {
	n := &Node{Name: "a", Children: []*Node{{Name: "b"}, {Name: "c", Children: []*Node{{Name: "d"}}}}}
	var names []string
	var depths []int
	n.Visit(func(d int, nd *Node) { names = append(names, nd.Name); depths = append(depths, d) })
	if strings.Join(names, "") != "abcd" {
		t.Fatalf("order = %v", names)
	}
	if depths[3] != 2 {
		t.Fatalf("depths = %v", depths)
	}
	var nilNode *Node
	nilNode.Visit(func(int, *Node) { t.Fatal("visited nil") })
}
