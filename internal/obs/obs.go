// Package obs is a zero-dependency, allocation-light span tracer for the
// render pipeline. A Trace owns a tree of Spans; every method on a nil
// *Trace or nil *Span is a no-op, so instrumented code paths run with
// tracing disabled at zero allocations — callers never branch on "is
// tracing on", they just call through a possibly-nil span.
//
// Spans use the monotonic clock (time.Now's monotonic reading survives
// wall-clock steps), carry typed attributes, and snapshot to a JSON Node
// tree for wire transfer. Worker subtrees deserialized from remote
// processes are stitched in with Graft.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Trace is one render's span tree. All spans of a trace share its mutex,
// so concurrent shard goroutines may open children of the same parent.
type Trace struct {
	mu   sync.Mutex
	root *Span
	id   string
}

// NewID returns a random 64-bit hex identifier for correlating a render
// across processes and log lines.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed ID rather than panicking in a diagnostics path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// New starts a trace whose root span is named name. id may be empty; use
// NewID to mint one when the trace crosses process boundaries.
func New(name, id string) *Trace {
	t := &Trace{id: id}
	t.root = &Span{trace: t, name: name, start: time.Now()}
	return t
}

// ID returns the trace's render ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// End closes the root span if it is still open.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.root.End()
}

// Duration reports the root span's duration (elapsed time so far if the
// trace has not ended).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.dur > 0 {
		return t.root.dur
	}
	return time.Since(t.root.start)
}

// Tree snapshots the whole span tree as a Node tree. Start offsets are
// microseconds relative to the root span's start. Open spans report their
// elapsed time so far.
func (t *Trace) Tree() *Node {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.nodeLocked(t.root.start)
}

// Span is one timed region of a trace. The zero value is not usable;
// spans are created by Trace.Root and Span.Child. A nil *Span is the
// disabled tracer: every method returns immediately.
type Span struct {
	trace    *Trace
	name     string
	start    time.Time
	dur      time.Duration // 0 while open
	attrs    []Attr
	children []*Span
	grafts   []*Node // deserialized remote subtrees
}

// Attr is a typed key/value attribute attached to a span.
type Attr struct {
	Key  string
	Kind byte // 's' string, 'i' int64, 'f' float64
	Str  string
	Int  int64
	F    float64
}

// Child opens a sub-span. Safe to call from multiple goroutines on the
// same parent. Returns nil (and does nothing) on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, name: name, start: time.Now()}
	s.trace.mu.Lock()
	s.children = append(s.children, c)
	s.trace.mu.Unlock()
	return c
}

// End closes the span. Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if s.dur == 0 {
		s.dur = time.Since(s.start)
		if s.dur <= 0 {
			s.dur = 1 // clock granularity: never leave an ended span "open"
		}
	}
	s.trace.mu.Unlock()
}

// SetInt attaches an integer attribute. No-op on nil.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: 'i', Int: v})
	s.trace.mu.Unlock()
}

// SetStr attaches a string attribute. No-op on nil.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: 's', Str: v})
	s.trace.mu.Unlock()
}

// SetFloat attaches a float attribute. No-op on nil.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: 'f', F: v})
	s.trace.mu.Unlock()
}

// Note records an already-completed child span of duration d ending now.
// Used for work measured externally (e.g. spill-tier demotions timed by
// atomic counters) where open/close instrumentation would race.
func (s *Span) Note(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	if d <= 0 {
		d = 1
	}
	c := &Span{trace: s.trace, name: name, start: time.Now().Add(-d), dur: d}
	s.trace.mu.Lock()
	s.children = append(s.children, c)
	s.trace.mu.Unlock()
	return c
}

// TraceID returns the ID of the trace this span belongs to ("" on nil).
// The ID is immutable after New, so no locking is needed; shard fan-out
// uses it to stamp the X-FP-Render-ID propagation header.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace.id
}

// Graft attaches a deserialized remote subtree (e.g. a worker's span tree
// returned over HTTP) under this span. The subtree's start offsets remain
// relative to its own root — remote clocks are not reconciled. No-op on
// nil receiver or nil node.
func (s *Span) Graft(n *Node) {
	if s == nil || n == nil {
		return
	}
	s.trace.mu.Lock()
	s.grafts = append(s.grafts, n)
	s.trace.mu.Unlock()
}

// Node is the wire/JSON form of a span tree.
type Node struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"` // offset from the tree root's start
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*Node        `json:"children,omitempty"`
}

// nodeLocked converts the span subtree to Nodes. Caller holds trace.mu.
func (s *Span) nodeLocked(origin time.Time) *Node {
	n := &Node{
		Name:    s.name,
		StartUS: s.start.Sub(origin).Microseconds(),
	}
	if s.dur > 0 {
		n.DurUS = s.dur.Microseconds()
	} else {
		n.DurUS = time.Since(s.start).Microseconds()
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			switch a.Kind {
			case 'i':
				n.Attrs[a.Key] = a.Int
			case 'f':
				n.Attrs[a.Key] = a.F
			default:
				n.Attrs[a.Key] = a.Str
			}
		}
	}
	if len(s.children)+len(s.grafts) > 0 {
		n.Children = make([]*Node, 0, len(s.children)+len(s.grafts))
		for _, c := range s.children {
			n.Children = append(n.Children, c.nodeLocked(origin))
		}
		n.Children = append(n.Children, s.grafts...)
	}
	return n
}

// Visit walks the node tree depth-first, calling fn with each node and
// its depth. Nil-safe.
func (n *Node) Visit(fn func(depth int, n *Node)) {
	if n == nil {
		return
	}
	n.visit(0, fn)
}

func (n *Node) visit(depth int, fn func(int, *Node)) {
	fn(depth, n)
	for _, c := range n.Children {
		c.visit(depth+1, fn)
	}
}

type ctxKey struct{}

// With returns a context carrying sp as the active span. Passing a nil
// span returns ctx unchanged, keeping the disabled path allocation-free.
func With(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFrom returns the active span carried by ctx, or nil. The nil result
// is directly usable: all span methods no-op on nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Now is the observability clock: the one sanctioned wall/monotonic time
// source for the determinism-critical engine packages (sqlengine, mc, vg,
// aggregate, stats). Those packages must compute results as pure functions
// of (scenario, bindings, seed) — fplint's fpdeterminism analyzer forbids
// them direct time.Now/time.Since calls — but they still stamp spans and
// operator counters. Routing that timing through obs keeps the contract
// auditable: obs readings feed traces and metrics, never result columns.
func Now() time.Time { return time.Now() }

// Since returns the time elapsed since t on the observability clock; see
// Now for why engine packages use this instead of time.Since.
func Since(t time.Time) time.Duration { return time.Since(t) }
