package sqlparser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Robustness: the lexer and parser must never panic, whatever bytes they
// are fed — they either succeed or return a positioned error.

func TestQuickLexNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Lex(%q) panicked: %v", src, r)
			}
		}()
		toks, err := Lex(src)
		if err == nil && (len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF) {
			return false // successful lex must end with EOF
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Shuffled-token fuzz: recombine fragments of valid scenario syntax into
// mostly-invalid garbage; the parser must reject or accept without
// panicking, and accepted scripts must round-trip.
func TestShuffledFragmentFuzz(t *testing.T) {
	fragments := []string{
		"SELECT", "FROM", "WHERE", "GROUP BY", "ORDER BY", "DECLARE",
		"PARAMETER", "@p", "AS", "RANGE", "0", "TO", "52", "STEP BY",
		"SET", "(", ")", ",", ";", "GRAPH", "OVER", "EXPECT",
		"OPTIMIZE", "FOR", "MAX", "MIN", "CASE", "WHEN", "THEN", "ELSE",
		"END", "x", "y", "results", "1.5", "'str'", "+", "-", "*", "/",
		"<", ">", "=", "<>", "AND", "OR", "NOT", "BETWEEN", "IN",
		"IS", "NULL", "DISTINCT", "JOIN", "LEFT", "ON", "INTO", "LIMIT",
	}
	r := rand.New(rand.NewSource(2011))
	for i := 0; i < 3000; i++ {
		n := 1 + r.Intn(20)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fragments[r.Intn(len(fragments))]
		}
		src := strings.Join(parts, " ")
		script, err := Parse(src)
		if err != nil {
			continue
		}
		// Rare accidental valid scripts must round-trip.
		printed := Print(script)
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted script does not round-trip: %q → %q: %v", src, printed, err)
		}
		if Print(back) != printed {
			t.Fatalf("print not stable for %q", src)
		}
	}
}
