-- DEFINITION --
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature)
       AS demand,
       CapacityModel(@current, @purchase1, @purchase2)
       AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END
       AS overload
INTO results;

-- ONLINE MODE --
GRAPH OVER @current
      EXPECT overload WITH bold red,
      EXPECT capacity WITH blue y2,
      EXPECT_STDDEV demand WITH orange y2;

-- OFFLINE MODE --
-- The extra @purchase1 <= @purchase2 term keeps the two purchases ordered;
-- without it the lexicographic MAX @purchase1 goal would push the *first*
-- purchase late and cover early demand with the second.
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.05 AND @purchase1 <= @purchase2
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
