DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @feature AS SET (12, 36);

SELECT region,
       DemandModel(@current, @feature) * share AS regional_demand,
       local_capacity,
       CASE WHEN regional_demand > local_capacity THEN 1 ELSE 0 END AS strained
FROM regions;

GRAPH OVER @current
      EXPECT strained WITH bold red,
      EXPECT regional_demand WITH blue y2;
