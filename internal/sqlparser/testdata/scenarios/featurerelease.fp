DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @feature AS SET (8, 20, 32, 44);

SELECT DemandModel(@current, @feature) AS demand,
       62000                           AS capacity,
       CASE WHEN demand > capacity THEN 1 ELSE 0 END AS saturated
INTO results;

GRAPH OVER @current
      EXPECT demand WITH blue,
      EXPECT_STDDEV demand WITH orange y2;
