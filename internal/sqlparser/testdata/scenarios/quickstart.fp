DECLARE PARAMETER @week AS RANGE 0 TO 12 STEP BY 1;
DECLARE PARAMETER @budget AS SET (0, 50, 100, 200);

SELECT OrderVolume(@week, @budget) AS orders,
       2400                        AS capacity,
       CASE WHEN orders > capacity THEN 1 ELSE 0 END AS overflow;
