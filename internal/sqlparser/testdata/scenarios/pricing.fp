DECLARE PARAMETER @week AS RANGE 0 TO 25 STEP BY 1;
DECLARE PARAMETER @price AS SET (6, 7, 8, 9, 10, 11, 12, 13, 14);

SELECT UnitsModel(@week, @price)   AS units,
       RevenueModel(@week, @price) AS revenue
INTO results;

OPTIMIZE SELECT @price
FROM results
WHERE MIN(EXPECT units) > 80000
GROUP BY price
FOR MAX @price
