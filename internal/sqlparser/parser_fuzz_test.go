package sqlparser_test

// Fuzzing the scenario-language front end: neither the parser nor the full
// compiler may panic on arbitrary input — malformed scripts must come back
// as ordinary errors (with source positions). The corpus seeds valid
// scenario scripts plus truncated and malformed fragments of them.
//
// Run with: go test -fuzz=FuzzCompile ./internal/sqlparser

import (
	"os"
	"path/filepath"
	"testing"

	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/vg"
)

// corpusScenarios reads testdata/scenarios/*.fp — the five example
// programs' scenario scripts, kept as corpus seeds so a regression in the
// dialect surface (a keyword, the RANGE/SET grammar, comments, joins)
// breaks the seed round immediately rather than deep into fuzzing.
func corpusScenarios(tb testing.TB) map[string]string {
	tb.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.fp"))
	if err != nil {
		tb.Fatal(err)
	}
	if len(paths) < 5 {
		tb.Fatalf("expected the five example scenarios in testdata/scenarios, found %d", len(paths))
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			tb.Fatal(err)
		}
		out[filepath.Base(p)] = string(data)
	}
	return out
}

// TestCorpusScenariosParse pins the dialect: every example scenario must
// parse and hold the print∘parse fixpoint, fuzzing or not.
func TestCorpusScenariosParse(t *testing.T) {
	for name, src := range corpusScenarios(t) {
		script, err := sqlparser.Parse(src)
		if err != nil {
			t.Errorf("%s does not parse: %v", name, err)
			continue
		}
		canonical := sqlparser.Print(script)
		reparsed, err := sqlparser.Parse(canonical)
		if err != nil {
			t.Errorf("%s: canonical form does not re-parse: %v", name, err)
			continue
		}
		if got := sqlparser.Print(reparsed); got != canonical {
			t.Errorf("%s: print/parse fixpoint violated", name)
		}
	}
}

const fuzzFigure2 = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @feature AS SET (12,36,44);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase1) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current EXPECT overload WITH bold red, EXPECT capacity WITH blue y2;
OPTIMIZE SELECT @feature, @purchase1 FROM results
WHERE MAX(EXPECT overload) < 0.05 GROUP BY feature, purchase1
FOR MAX @purchase1;
`

func FuzzCompile(f *testing.F) {
	seeds := []string{
		// Valid scripts.
		fuzzFigure2,
		"DECLARE PARAMETER @x AS RANGE 0 TO 10 STEP BY 1;\nSELECT Gaussian(@x, 1) AS g;",
		"DECLARE PARAMETER @p AS SET (1, 2.5, 'a');\nSELECT Uniform(0, @p) AS u;",
		"SELECT 1 AS one, CASE WHEN 1 < 2 THEN 'y' ELSE 'n' END AS c;",
		// Truncated fragments.
		fuzzFigure2[:len(fuzzFigure2)/2],
		"DECLARE PARAMETER @x AS RANGE 0 TO",
		"SELECT Gaussian(@x, ",
		"GRAPH OVER",
		"OPTIMIZE SELECT @a FROM r WHERE MAX(",
		// Malformed fragments.
		"DECLARE PARAMETER @ AS SET ();",
		"SELECT 'unterminated;",
		"/* unterminated comment",
		"SELECT 1e999999 AS big;",
		"SELECT ((((((1))))));",
		"@;;@",
		"SELECT a FROM b JOIN JOIN c ON;",
		"DECLARE PARAMETER @x AS RANGE 10 TO 0 STEP BY -1;",
		"SELECT CASE WHEN THEN ELSE END;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// The five example scenarios, plus truncations exercising mid-token
	// and mid-statement recovery.
	for _, src := range corpusScenarios(f) {
		f.Add(src)
		f.Add(src[:len(src)/3])
		f.Add(src[len(src)/3:])
	}

	reg := vg.NewRegistry()
	if err := vg.RegisterBuiltins(reg); err != nil {
		f.Fatal(err)
	}
	if err := models.RegisterDefaults(reg); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, src string) {
		// Parse must never panic; errors are fine.
		script, err := sqlparser.Parse(src)
		if err == nil && script != nil {
			// The canonical printer must hold its print∘parse fixpoint on
			// everything the parser accepts.
			canonical := sqlparser.Print(script)
			reparsed, err := sqlparser.Parse(canonical)
			if err != nil {
				t.Fatalf("canonical form does not re-parse: %v\ninput: %q\ncanonical: %q", err, src, canonical)
			}
			if got := sqlparser.Print(reparsed); got != canonical {
				t.Fatalf("print/parse fixpoint violated\ninput: %q\nfirst: %q\nsecond: %q", src, canonical, got)
			}
		}
		// The full compiler must never panic either (errors are fine).
		_, _ = scenario.Compile(src, reg)
	})
}
