package sqlparser

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fuzzyprophet/internal/value"
)

func TestPrintParseFixpointFigure2(t *testing.T) {
	s1 := mustParse(t, Figure2)
	text1 := Print(s1)
	s2, err := Parse(text1)
	if err != nil {
		t.Fatalf("re-parse of printed form failed: %v\n%s", err, text1)
	}
	text2 := Print(s2)
	if text1 != text2 {
		t.Errorf("print not a fixpoint:\n--- first ---\n%s--- second ---\n%s", text1, text2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("AST changed across print→parse round trip")
	}
}

func TestPrintSelectAllClauses(t *testing.T) {
	src := `SELECT a AS x, COUNT(*) AS n INTO out FROM t AS u JOIN v ON (v.id = u.id) WHERE (a > 1) GROUP BY a HAVING (COUNT(*) > 0) ORDER BY a DESC LIMIT 5;`
	s := mustParse(t, src)
	printed := strings.TrimSpace(Print(s))
	if printed != src {
		t.Errorf("printed:\n%s\nwant:\n%s", printed, src)
	}
}

func TestPrintDistinctAndLeftJoin(t *testing.T) {
	src := `SELECT DISTINCT a FROM t LEFT JOIN u ON (t.id = u.id);`
	s := mustParse(t, src)
	printed := strings.TrimSpace(Print(s))
	if printed != src {
		t.Errorf("printed:\n%s\nwant:\n%s", printed, src)
	}
	sel := s.Statements[0].(Select)
	if !sel.Distinct {
		t.Error("DISTINCT lost")
	}
	if len(sel.From) != 2 || !sel.From[1].LeftJoin || sel.From[1].JoinCond == nil {
		t.Errorf("left join lost: %+v", sel.From)
	}
	// LEFT OUTER JOIN normalizes to LEFT JOIN.
	s2 := mustParse(t, "SELECT a FROM t LEFT OUTER JOIN u ON (t.id = u.id);")
	if !s2.Statements[0].(Select).From[1].LeftJoin {
		t.Error("LEFT OUTER JOIN lost")
	}
}

func TestPrintGraph(t *testing.T) {
	src := "GRAPH OVER @w EXPECT a WITH bold red, PROB b, EXPECT_STDDEV c WITH y2;"
	s := mustParse(t, src)
	printed := strings.TrimSpace(Print(s))
	if printed != src {
		t.Errorf("printed %q, want %q", printed, src)
	}
}

func TestPrintOptimize(t *testing.T) {
	src := "OPTIMIZE SELECT @a, @b FROM r WHERE (MAX(EXPECT(o)) < 0.01) GROUP BY a, b FOR MAX @a, MIN @b;"
	s := mustParse(t, src)
	printed := strings.TrimSpace(Print(s))
	if printed != src {
		t.Errorf("printed %q, want %q", printed, src)
	}
	// The paren-free prefix form normalizes to the same canonical text.
	alt := mustParse(t, "OPTIMIZE SELECT @a, @b FROM r WHERE MAX(EXPECT o) < 0.01 GROUP BY a, b FOR MAX @a, MIN @b;")
	if strings.TrimSpace(Print(alt)) != src {
		t.Errorf("prefix form printed %q, want %q", strings.TrimSpace(Print(alt)), src)
	}
}

func TestPrintDeclare(t *testing.T) {
	cases := []string{
		"DECLARE PARAMETER @p AS RANGE 0 TO 52 STEP BY 4;",
		"DECLARE PARAMETER @q AS SET (12, 36, 44);",
		"DECLARE PARAMETER @s AS SET ('a', 'it''s', NULL, TRUE);",
	}
	for _, src := range cases {
		s := mustParse(t, src)
		printed := strings.TrimSpace(Print(s))
		if printed != src {
			t.Errorf("printed %q, want %q", printed, src)
		}
	}
}

func TestPrintExpressions(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":                     "(1 + (2 * 3))",
		"NOT a":                         "(NOT a)",
		"-x":                            "-(x)",
		"a BETWEEN 1 AND 2":             "(a BETWEEN 1 AND 2)",
		"a NOT IN (1, 2)":               "(a NOT IN (1, 2))",
		"a IS NOT NULL":                 "(a IS NOT NULL)",
		"t.c":                           "t.c",
		"f()":                           "f()",
		"COUNT(*)":                      "COUNT(*)",
		"EXPECT overload":               "EXPECT(overload)",
		"CASE WHEN a THEN 1 ELSE 0 END": "CASE WHEN a THEN 1 ELSE 0 END",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if got := e.SQL(); got != want {
			t.Errorf("SQL(%q) = %q, want %q", src, got, want)
		}
	}
}

// randomExpr builds a random expression tree for the round-trip property.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Literal{Val: value.Int(int64(r.Intn(100)))}
		case 1:
			return Literal{Val: value.Float(float64(r.Intn(1000)) / 8)}
		case 2:
			return ColumnRef{Name: string(rune('a' + r.Intn(26)))}
		default:
			return ParamRef{Name: "p" + string(rune('0'+r.Intn(10)))}
		}
	}
	switch r.Intn(8) {
	case 0:
		ops := []string{"+", "-", "*", "/", "%"}
		return Binary{Op: ops[r.Intn(len(ops))], L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 1:
		ops := []string{"=", "<>", "<", "<=", ">", ">=", "AND", "OR"}
		return Binary{Op: ops[r.Intn(len(ops))], L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 2:
		if r.Intn(2) == 0 {
			return Unary{Op: "-", X: randomExpr(r, depth-1)}
		}
		return Unary{Op: "NOT", X: randomExpr(r, depth-1)}
	case 3:
		n := 1 + r.Intn(3)
		whens := make([]When, n)
		for i := range whens {
			whens[i] = When{Cond: randomExpr(r, depth-1), Then: randomExpr(r, depth-1)}
		}
		c := Case{Whens: whens}
		if r.Intn(2) == 0 {
			c.Else = randomExpr(r, depth-1)
		}
		return c
	case 4:
		return Between{X: randomExpr(r, depth-1), Lo: randomExpr(r, depth-1), Hi: randomExpr(r, depth-1), Not: r.Intn(2) == 0}
	case 5:
		n := 1 + r.Intn(3)
		items := make([]Expr, n)
		for i := range items {
			items[i] = randomExpr(r, depth-1)
		}
		return InList{X: randomExpr(r, depth-1), Items: items, Not: r.Intn(2) == 0}
	case 6:
		n := r.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = randomExpr(r, depth-1)
		}
		return FuncCall{Name: "fn" + string(rune('0'+r.Intn(10))), Args: args}
	default:
		return IsNull{X: randomExpr(r, depth-1), Not: r.Intn(2) == 0}
	}
}

// Property: every randomly generated expression survives SQL→parse→SQL
// unchanged (structurally and textually).
func TestPrintParseRoundTripRandomExprs(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		e := randomExpr(r, 3)
		text := e.SQL()
		back, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("iteration %d: re-parse of %q failed: %v", i, text, err)
		}
		if back.SQL() != text {
			t.Fatalf("iteration %d: round trip changed\n in: %s\nout: %s", i, text, back.SQL())
		}
		if !reflect.DeepEqual(normalize(e), normalize(back)) {
			t.Fatalf("iteration %d: AST changed for %s", i, text)
		}
	}
}

// normalize maps semantically identical literal spellings (e.g. Float(3)
// prints as "3" and re-parses as Int(3)) onto one canonical form so the
// structural comparison tests real round-trip fidelity, not lexical
// decoration.
func normalize(e Expr) Expr {
	switch n := e.(type) {
	case Literal:
		if n.Val.Kind() == value.KindFloat {
			if f, err := n.Val.AsFloat(); err == nil && f == float64(int64(f)) {
				return Literal{Val: value.Int(int64(f))}
			}
		}
		return n
	case Unary:
		return Unary{Op: n.Op, X: normalize(n.X)}
	case Binary:
		return Binary{Op: n.Op, L: normalize(n.L), R: normalize(n.R)}
	case FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = normalize(a)
		}
		if len(args) == 0 {
			args = nil
		}
		return FuncCall{Name: n.Name, Args: args, Star: n.Star}
	case Case:
		whens := make([]When, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = When{Cond: normalize(w.Cond), Then: normalize(w.Then)}
		}
		var els Expr
		if n.Else != nil {
			els = normalize(n.Else)
		}
		return Case{Whens: whens, Else: els}
	case Between:
		return Between{X: normalize(n.X), Lo: normalize(n.Lo), Hi: normalize(n.Hi), Not: n.Not}
	case InList:
		items := make([]Expr, len(n.Items))
		for i, it := range n.Items {
			items[i] = normalize(it)
		}
		return InList{X: normalize(n.X), Items: items, Not: n.Not}
	case IsNull:
		return IsNull{X: normalize(n.X), Not: n.Not}
	default:
		return e
	}
}

// Property: random full scripts round-trip through Print/Parse.
func TestPrintParseRoundTripRandomScripts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		script := &Script{}
		script.Statements = append(script.Statements, DeclareParameter{
			Name:  "p",
			Space: RangeSpace{From: int64(r.Intn(5)), To: int64(5 + r.Intn(50)), Step: int64(1 + r.Intn(4))},
		})
		sel := Select{Limit: -1, Into: "results"}
		for j := 0; j < 1+r.Intn(3); j++ {
			sel.Items = append(sel.Items, SelectItem{Expr: randomExpr(r, 2), Alias: "c" + string(rune('0'+j))})
		}
		if r.Intn(2) == 0 {
			sel.Where = randomExpr(r, 2)
		}
		script.Statements = append(script.Statements, sel)
		text := Print(script)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, text)
		}
		if Print(back) != text {
			t.Fatalf("iteration %d: print not stable\n%s\nvs\n%s", i, text, Print(back))
		}
	}
}
