package sqlparser

import (
	"embed"
	"io/fs"
	"path"
	"sort"
	"strings"
)

// The five example scenarios double as the parser's fuzz corpus, the
// engine's differential-test fixtures and the fpbench engine benchmark
// workload, so they are embedded and exported here rather than read from
// testdata by each consumer.
//
//go:embed testdata/scenarios/*.fp
var scenarioFS embed.FS

// ExampleScenarios returns the bundled example scenario scripts, keyed by
// name (file basename without the .fp extension): capacityplanning,
// featurerelease, pricing, quickstart, serverfleet.
func ExampleScenarios() map[string]string {
	out := map[string]string{}
	entries, err := fs.Glob(scenarioFS, "testdata/scenarios/*.fp")
	if err != nil {
		return out
	}
	for _, p := range entries {
		src, err := scenarioFS.ReadFile(p)
		if err != nil {
			continue
		}
		name := strings.TrimSuffix(path.Base(p), ".fp")
		out[name] = string(src)
	}
	return out
}

// ExampleScenarioNames returns the bundled scenario names, sorted.
func ExampleScenarioNames() []string {
	m := ExampleScenarios()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
