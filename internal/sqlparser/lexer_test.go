package sqlparser

import (
	"strings"
	"testing"
)

func lexKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexKinds(t, "SELECT a, b FROM t WHERE x >= 1.5;")
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "SELECT"},
		{TokIdent, "a"},
		{TokOp, ","},
		{TokIdent, "b"},
		{TokKeyword, "FROM"},
		{TokIdent, "t"},
		{TokKeyword, "WHERE"},
		{TokIdent, "x"},
		{TokOp, ">="},
		{TokNumber, "1.5"},
		{TokOp, ";"},
		{TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("tok[%d] = (%v,%q), want (%v,%q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks := lexKinds(t, "select Select SELECT")
	for _, tok := range toks[:3] {
		if tok.Kind != TokKeyword || tok.Text != "SELECT" {
			t.Errorf("got %v %q", tok.Kind, tok.Text)
		}
	}
}

func TestLexParams(t *testing.T) {
	toks := lexKinds(t, "@current @purchase1")
	if toks[0].Kind != TokParam || toks[0].Text != "current" {
		t.Errorf("tok0 = %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != TokParam || toks[1].Text != "purchase1" {
		t.Errorf("tok1 = %v %q", toks[1].Kind, toks[1].Text)
	}
	if _, err := Lex("@ x"); err == nil {
		t.Error("bare @ should be an error")
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexKinds(t, "'hello' 'it''s'")
	if toks[0].Kind != TokString || toks[0].Text != "hello" {
		t.Errorf("tok0 = %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Text != "it's" {
		t.Errorf("escaped quote: %q", toks[1].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.25":    "3.25",
		".5":      ".5",
		"1e9":     "1e9",
		"2.5E-3":  "2.5E-3",
		"1.5e+10": "1.5e+10",
	}
	for src, want := range cases {
		toks := lexKinds(t, src)
		if toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("Lex(%q) = %v %q", src, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, `-- DEFINITION --
SELECT /* inline
   block */ 1`)
	if toks[0].Kind != TokKeyword || toks[0].Text != "SELECT" {
		t.Errorf("comment not skipped: %v", toks[0])
	}
	if toks[1].Kind != TokNumber {
		t.Errorf("tok1 = %v", toks[1])
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated block comment should error")
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexKinds(t, "<= >= <> != < > = + - * / % ( ) . ,")
	wantTexts := []string{"<=", ">=", "<>", "!=", "<", ">", "=", "+", "-", "*", "/", "%", "(", ")", ".", ","}
	for i, w := range wantTexts {
		if toks[i].Kind != TokOp || toks[i].Text != w {
			t.Errorf("tok[%d] = %v %q, want op %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, "SELECT\n  x")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("SELECT at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("x at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexUnexpectedCharacter(t *testing.T) {
	_, err := Lex("SELECT #")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("error = %v", err)
	}
	var perr *Error
	if e, ok := err.(*Error); ok {
		perr = e
	} else {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 1 || perr.Col != 8 {
		t.Errorf("error position %d:%d", perr.Line, perr.Col)
	}
}

func TestTokenString(t *testing.T) {
	if got := (Token{Kind: TokEOF}).String(); got != "end of input" {
		t.Errorf("EOF string = %q", got)
	}
	if got := (Token{Kind: TokParam, Text: "p"}).String(); got != "@p" {
		t.Errorf("param string = %q", got)
	}
	if got := (Token{Kind: TokIdent, Text: "x"}).String(); got != "x" {
		t.Errorf("ident string = %q", got)
	}
}

func TestTokenKindString(t *testing.T) {
	names := map[TokenKind]string{
		TokEOF: "EOF", TokIdent: "identifier", TokKeyword: "keyword",
		TokParam: "parameter", TokNumber: "number", TokString: "string",
		TokOp: "operator", TokenKind(99): "TokenKind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
