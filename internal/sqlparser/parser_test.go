package sqlparser

import (
	"reflect"
	"strings"
	"testing"

	"fuzzyprophet/internal/value"
)

// Figure2 is the verbatim example business scenario from the paper (Figure
// 2), kept here as the canonical golden input for FIG2.
const Figure2 = `
-- DEFINITION --
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature)
       AS demand,
       CapacityModel(@current, @purchase1, @purchase2)
       AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END
       AS overload
INTO results;

-- ONLINE MODE --
GRAPH OVER @current
      EXPECT overload WITH bold red,
      EXPECT capacity WITH blue y2,
      EXPECT_STDDEV demand WITH orange y2;

-- OFFLINE MODE --
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
`

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseFigure2Verbatim(t *testing.T) {
	s := mustParse(t, Figure2)
	if len(s.Statements) != 7 {
		t.Fatalf("statement count = %d, want 7", len(s.Statements))
	}

	d0, ok := s.Statements[0].(DeclareParameter)
	if !ok {
		t.Fatalf("stmt0 type %T", s.Statements[0])
	}
	if d0.Name != "current" {
		t.Errorf("param name %q", d0.Name)
	}
	r, ok := d0.Space.(RangeSpace)
	if !ok || r.From != 0 || r.To != 52 || r.Step != 1 {
		t.Errorf("range = %+v", d0.Space)
	}
	if got := len(r.Values()); got != 53 {
		t.Errorf("@current values = %d, want 53", got)
	}

	d1 := s.Statements[1].(DeclareParameter)
	if got := len(d1.Space.Values()); got != 14 {
		t.Errorf("@purchase1 values = %d, want 14", got)
	}

	d3 := s.Statements[3].(DeclareParameter)
	set, ok := d3.Space.(SetSpace)
	if !ok {
		t.Fatalf("stmt3 space type %T", d3.Space)
	}
	want := []value.Value{value.Int(12), value.Int(36), value.Int(44)}
	if !reflect.DeepEqual(set.Members, want) {
		t.Errorf("set members = %v", set.Members)
	}

	sel, ok := s.Statements[4].(Select)
	if !ok {
		t.Fatalf("stmt4 type %T", s.Statements[4])
	}
	if sel.Into != "results" {
		t.Errorf("INTO = %q", sel.Into)
	}
	if len(sel.Items) != 3 {
		t.Fatalf("select items = %d", len(sel.Items))
	}
	if sel.Items[0].Alias != "demand" || sel.Items[1].Alias != "capacity" || sel.Items[2].Alias != "overload" {
		t.Errorf("aliases = %q %q %q", sel.Items[0].Alias, sel.Items[1].Alias, sel.Items[2].Alias)
	}
	dm, ok := sel.Items[0].Expr.(FuncCall)
	if !ok || dm.Name != "DemandModel" || len(dm.Args) != 2 {
		t.Errorf("demand expr = %#v", sel.Items[0].Expr)
	}
	cs, ok := sel.Items[2].Expr.(Case)
	if !ok || len(cs.Whens) != 1 || cs.Else == nil {
		t.Errorf("overload expr = %#v", sel.Items[2].Expr)
	}

	g, ok := s.Statements[5].(Graph)
	if !ok {
		t.Fatalf("stmt5 type %T", s.Statements[5])
	}
	if g.Over != "current" {
		t.Errorf("graph over %q", g.Over)
	}
	if len(g.Items) != 3 {
		t.Fatalf("graph items = %d", len(g.Items))
	}
	if g.Items[0].Agg != "EXPECT" || g.Items[0].Column != "overload" ||
		!reflect.DeepEqual(g.Items[0].Style, []string{"bold", "red"}) {
		t.Errorf("graph item0 = %+v", g.Items[0])
	}
	if g.Items[2].Agg != "EXPECT_STDDEV" || g.Items[2].Column != "demand" {
		t.Errorf("graph item2 = %+v", g.Items[2])
	}

	o, ok := s.Statements[6].(Optimize)
	if !ok {
		t.Fatalf("stmt6 type %T", s.Statements[6])
	}
	if !reflect.DeepEqual(o.Select, []string{"feature", "purchase1", "purchase2"}) {
		t.Errorf("optimize select = %v", o.Select)
	}
	if o.From != "results" {
		t.Errorf("optimize from = %q", o.From)
	}
	cmp, ok := o.Where.(Binary)
	if !ok || cmp.Op != "<" {
		t.Fatalf("optimize where = %#v", o.Where)
	}
	outer, ok := cmp.L.(FuncCall)
	if !ok || outer.Name != "MAX" {
		t.Fatalf("constraint lhs = %#v", cmp.L)
	}
	inner, ok := outer.Args[0].(FuncCall)
	if !ok || inner.Name != "EXPECT" {
		t.Fatalf("constraint inner = %#v", outer.Args[0])
	}
	if !reflect.DeepEqual(o.GroupBy, []string{"feature", "purchase1", "purchase2"}) {
		t.Errorf("group by = %v", o.GroupBy)
	}
	if len(o.Goals) != 2 || !o.Goals[0].Maximize || o.Goals[0].Param != "purchase1" ||
		!o.Goals[1].Maximize || o.Goals[1].Param != "purchase2" {
		t.Errorf("goals = %+v", o.Goals)
	}
}

func TestParseRangeValidation(t *testing.T) {
	if _, err := Parse("DECLARE PARAMETER @p AS RANGE 0 TO 10 STEP BY 0;"); err == nil {
		t.Error("zero step should error")
	}
	if _, err := Parse("DECLARE PARAMETER @p AS RANGE 10 TO 0 STEP BY 1;"); err == nil {
		t.Error("inverted range should error")
	}
	s := mustParse(t, "DECLARE PARAMETER @p AS RANGE -4 TO 4 STEP BY 2;")
	d := s.Statements[0].(DeclareParameter)
	vals := d.Space.Values()
	if len(vals) != 5 {
		t.Errorf("values = %v", vals)
	}
}

func TestParseSetLiterals(t *testing.T) {
	s := mustParse(t, "DECLARE PARAMETER @p AS SET (1, -2.5, 'abc', TRUE, NULL);")
	d := s.Statements[0].(DeclareParameter)
	vals := d.Space.Values()
	if len(vals) != 5 {
		t.Fatalf("values = %v", vals)
	}
	if !vals[0].Equal(value.Int(1)) || !vals[1].Equal(value.Float(-2.5)) ||
		!vals[2].Equal(value.Str("abc")) || !vals[3].Equal(value.Bool(true)) || !vals[4].IsNull() {
		t.Errorf("values = %v", vals)
	}
}

func TestParseSelectClauses(t *testing.T) {
	s := mustParse(t, `SELECT a, b AS bee, COUNT(*) AS n
		FROM t1, t2 AS u JOIN t3 ON t3.id = u.id
		WHERE a > 1 AND b <= 2
		GROUP BY a, b HAVING COUNT(*) > 0
		ORDER BY a DESC, b LIMIT 10;`)
	sel := s.Statements[0].(Select)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[2].Alias != "n" {
		t.Errorf("alias = %q", sel.Items[2].Alias)
	}
	fc := sel.Items[2].Expr.(FuncCall)
	if !fc.Star || fc.Name != "COUNT" {
		t.Errorf("count star = %+v", fc)
	}
	if len(sel.From) != 3 {
		t.Fatalf("from = %d", len(sel.From))
	}
	if sel.From[1].Alias != "u" {
		t.Errorf("alias = %q", sel.From[1].Alias)
	}
	if sel.From[2].JoinCond == nil {
		t.Error("join cond missing")
	}
	if sel.Where == nil || len(sel.GroupBy) != 2 || sel.Having == nil {
		t.Error("where/group/having missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseBareAlias(t *testing.T) {
	s := mustParse(t, "SELECT x foo FROM t;")
	sel := s.Statements[0].(Select)
	if sel.Items[0].Alias != "foo" {
		t.Errorf("bare alias = %q", sel.Items[0].Alias)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(Binary)
	if b.Op != "+" {
		t.Fatalf("top op = %s", b.Op)
	}
	if inner := b.R.(Binary); inner.Op != "*" {
		t.Errorf("inner op = %s", inner.Op)
	}

	e, _ = ParseExpr("a OR b AND c")
	b = e.(Binary)
	if b.Op != "OR" {
		t.Errorf("OR should bind loosest, got %s", b.Op)
	}

	e, _ = ParseExpr("NOT a = b")
	u, ok := e.(Unary)
	if !ok || u.Op != "NOT" {
		t.Fatalf("NOT parse = %#v", e)
	}
	if inner, ok := u.X.(Binary); !ok || inner.Op != "=" {
		t.Errorf("NOT should wrap the comparison, got %#v", u.X)
	}

	e, _ = ParseExpr("-2 * 3")
	if b := e.(Binary); b.Op != "*" {
		t.Errorf("unary minus binds tighter: %#v", e)
	}
}

func TestParseComparisonOperators(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		e, err := ParseExpr("a " + op + " b")
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		if b := e.(Binary); b.Op != op {
			t.Errorf("op = %s, want %s", b.Op, op)
		}
	}
	// != canonicalizes to <>.
	e, _ := ParseExpr("a != b")
	if b := e.(Binary); b.Op != "<>" {
		t.Errorf("!= should canonicalize to <>, got %s", b.Op)
	}
}

func TestParseBetweenInIsNull(t *testing.T) {
	e, err := ParseExpr("x BETWEEN 1 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	bt := e.(Between)
	if bt.Not {
		t.Error("unexpected NOT")
	}
	e, _ = ParseExpr("x NOT BETWEEN 1 AND 5")
	if !e.(Between).Not {
		t.Error("NOT BETWEEN lost")
	}
	e, _ = ParseExpr("x IN (1, 2, 3)")
	in := e.(InList)
	if len(in.Items) != 3 || in.Not {
		t.Errorf("in = %+v", in)
	}
	e, _ = ParseExpr("x NOT IN (1)")
	if !e.(InList).Not {
		t.Error("NOT IN lost")
	}
	e, _ = ParseExpr("x IS NULL")
	if e.(IsNull).Not {
		t.Error("IS NULL wrong")
	}
	e, _ = ParseExpr("x IS NOT NULL")
	if !e.(IsNull).Not {
		t.Error("IS NOT NULL wrong")
	}
}

func TestParseExpectPrefixForm(t *testing.T) {
	e, err := ParseExpr("MAX(EXPECT overload)")
	if err != nil {
		t.Fatal(err)
	}
	outer := e.(FuncCall)
	inner := outer.Args[0].(FuncCall)
	if inner.Name != "EXPECT" {
		t.Errorf("inner = %+v", inner)
	}
	col := inner.Args[0].(ColumnRef)
	if col.Name != "overload" {
		t.Errorf("column = %+v", col)
	}
	// Paren form also works.
	e2, err := ParseExpr("MAX(EXPECT(overload))")
	if err != nil {
		t.Fatal(err)
	}
	if e.SQL() != e2.SQL() {
		t.Errorf("forms differ: %s vs %s", e.SQL(), e2.SQL())
	}
}

func TestParseCase(t *testing.T) {
	e, err := ParseExpr("CASE WHEN a < b THEN 1 WHEN a = b THEN 0 ELSE -1 END")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(Case)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %+v", c)
	}
	if _, err := ParseExpr("CASE ELSE 1 END"); err == nil {
		t.Error("CASE without WHEN should error")
	}
	// ELSE-less CASE.
	e, err = ParseExpr("CASE WHEN a THEN 1 END")
	if err != nil {
		t.Fatal(err)
	}
	if e.(Case).Else != nil {
		t.Error("ELSE should be nil")
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	e, err := ParseExpr("t.col + u.col2")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(Binary)
	l := b.L.(ColumnRef)
	if l.Table != "t" || l.Name != "col" {
		t.Errorf("lhs = %+v", l)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",                                 // missing items
		"SELECT 1 FROM",                          // missing table
		"DECLARE PARAMETER x AS SET (1);",        // not a param token
		"DECLARE PARAMETER @p AS BLAH 1;",        // unknown space
		"GRAPH OVER x EXPECT y;",                 // over must be param
		"GRAPH OVER @x BOGUS y;",                 // bad agg
		"GRAPH OVER @x EXPECT y WITH;",           // empty style
		"OPTIMIZE SELECT @p FROM t FOR BLAH @p;", // bad goal
		"SELECT 1 2;",                            // trailing junk after bare alias? -> "2" unexpected
		"SELECT (1;",                             // unbalanced paren
		"SELECT CASE WHEN 1 THEN 2;",             // unterminated case
		"SELECT x NOT 5;",                        // NOT without BETWEEN/IN
		"SELECT a LIMIT -1;",                     // negative limit
		"FOO BAR;",                               // unknown statement
		"SELECT x IS 5;",                         // IS must be followed by NULL
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}

func TestParseExprTrailing(t *testing.T) {
	if _, err := ParseExpr("1 + 2 extra"); err == nil {
		t.Error("trailing input should error")
	}
}

func TestParseStraySemicolons(t *testing.T) {
	s := mustParse(t, ";;SELECT 1;;")
	if len(s.Statements) != 1 {
		t.Errorf("statements = %d", len(s.Statements))
	}
}

func TestParseMissingFinalSemicolonOK(t *testing.T) {
	s := mustParse(t, "SELECT 1")
	if len(s.Statements) != 1 {
		t.Errorf("statements = %d", len(s.Statements))
	}
}

func TestWalkExprAndParams(t *testing.T) {
	e, err := ParseExpr("CASE WHEN f(@a, x) BETWEEN @b AND 3 THEN @a ELSE (y IN (@c, 1)) END")
	if err != nil {
		t.Fatal(err)
	}
	params := Params(e)
	if !reflect.DeepEqual(params, []string{"a", "b", "c"}) {
		t.Errorf("params = %v", params)
	}
	count := 0
	WalkExpr(e, func(Expr) { count++ })
	if count < 10 {
		t.Errorf("walk visited only %d nodes", count)
	}
	// IsNull nodes are walked too.
	e2, _ := ParseExpr("@z IS NOT NULL")
	if got := Params(e2); !reflect.DeepEqual(got, []string{"z"}) {
		t.Errorf("IsNull params = %v", got)
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("SELECT\n  %%;")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 2") {
		t.Errorf("error lacks position: %s", msg)
	}
}
