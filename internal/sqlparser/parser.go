package sqlparser

import (
	"strconv"
	"strings"

	"fuzzyprophet/internal/value"
)

// Parse lexes and parses a full scenario script.
func Parse(src string) (*Script, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	script := &Script{}
	for !p.atEOF() {
		// Tolerate stray semicolons between statements.
		if p.isOp(";") {
			p.next()
			continue
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		script.Statements = append(script.Statements, st)
		if p.isOp(";") {
			p.next()
		} else if !p.atEOF() {
			return nil, p.errHere("expected ';' after statement, found %s", p.peek())
		}
	}
	return script, nil
}

// ParseExpr parses a single standalone expression (used in tests and by the
// optimizer's constraint evaluation).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errHere("unexpected trailing input after expression: %s", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *parser) isKeyword(words ...string) bool {
	t := p.peek()
	if t.Kind != TokKeyword {
		return false
	}
	for _, w := range words {
		if t.Text == w {
			return true
		}
	}
	return false
}

func (p *parser) isOp(ops ...string) bool {
	t := p.peek()
	if t.Kind != TokOp {
		return false
	}
	for _, o := range ops {
		if t.Text == o {
			return true
		}
	}
	return false
}

func (p *parser) expectKeyword(w string) (Token, error) {
	if !p.isKeyword(w) {
		return Token{}, p.errHere("expected %s, found %s", w, p.peek())
	}
	return p.next(), nil
}

func (p *parser) expectOp(o string) (Token, error) {
	if !p.isOp(o) {
		return Token{}, p.errHere("expected '%s', found %s", o, p.peek())
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return Token{}, p.errHere("expected identifier, found %s", t)
	}
	return p.next(), nil
}

func (p *parser) expectParam() (Token, error) {
	t := p.peek()
	if t.Kind != TokParam {
		return Token{}, p.errHere("expected @parameter, found %s", t)
	}
	return p.next(), nil
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.peek()
	return errAt(t.Line, t.Col, format, args...)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("DECLARE"):
		return p.parseDeclare()
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("GRAPH"):
		return p.parseGraph()
	case p.isKeyword("OPTIMIZE"):
		return p.parseOptimize()
	default:
		return nil, p.errHere("expected DECLARE, SELECT, GRAPH or OPTIMIZE, found %s", p.peek())
	}
}

// parseDeclare parses
//
//	DECLARE PARAMETER @p AS RANGE a TO b STEP BY s
//	DECLARE PARAMETER @p AS SET (v1, v2, …)
func (p *parser) parseDeclare() (Statement, error) {
	if _, err := p.expectKeyword("DECLARE"); err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("PARAMETER"); err != nil {
		return nil, err
	}
	name, err := p.expectParam()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	switch {
	case p.isKeyword("RANGE"):
		p.next()
		from, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		to, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKeyword("STEP"); err != nil {
			return nil, err
		}
		if _, err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		step, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if step <= 0 {
			return nil, p.errHere("RANGE step must be positive, got %d", step)
		}
		if to < from {
			return nil, p.errHere("RANGE upper bound %d below lower bound %d", to, from)
		}
		return DeclareParameter{Name: name.Text, Space: RangeSpace{From: from, To: to, Step: step}}, nil
	case p.isKeyword("SET"):
		p.next()
		if _, err := p.expectOp("("); err != nil {
			return nil, err
		}
		var members []value.Value
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			members = append(members, v)
			if p.isOp(",") {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return DeclareParameter{Name: name.Text, Space: SetSpace{Members: members}}, nil
	default:
		return nil, p.errHere("expected RANGE or SET after AS, found %s", p.peek())
	}
}

func (p *parser) parseSignedInt() (int64, error) {
	neg := false
	if p.isOp("-") {
		neg = true
		p.next()
	}
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, p.errHere("expected integer, found %s", t)
	}
	p.next()
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, errAt(t.Line, t.Col, "expected integer, found %q", t.Text)
	}
	if neg {
		n = -n
	}
	return n, nil
}

func (p *parser) parseLiteralValue() (value.Value, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return numberValue(t)
	case p.isOp("-"):
		p.next()
		inner, err := p.parseLiteralValue()
		if err != nil {
			return value.Null, err
		}
		return value.Neg(inner)
	case t.Kind == TokString:
		p.next()
		return value.Str(t.Text), nil
	case p.isKeyword("TRUE"):
		p.next()
		return value.Bool(true), nil
	case p.isKeyword("FALSE"):
		p.next()
		return value.Bool(false), nil
	case p.isKeyword("NULL"):
		p.next()
		return value.Null, nil
	default:
		return value.Null, p.errHere("expected literal, found %s", t)
	}
}

func numberValue(t Token) (value.Value, error) {
	if !strings.ContainsAny(t.Text, ".eE") {
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err == nil {
			return value.Int(n), nil
		}
	}
	f, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return value.Null, errAt(t.Line, t.Col, "invalid number %q", t.Text)
	}
	return value.Float(f), nil
}

func (p *parser) parseSelect() (Statement, error) {
	if _, err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := Select{Limit: -1}
	if p.isKeyword("DISTINCT") {
		p.next()
		sel.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.isOp(",") {
			p.next()
			continue
		}
		break
	}
	if p.isKeyword("INTO") {
		p.next()
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.Into = t.Text
	}
	if p.isKeyword("FROM") {
		p.next()
		refs, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		sel.From = refs
	}
	if p.isKeyword("WHERE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.isKeyword("GROUP") {
		p.next()
		if _, err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.isOp(",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.isKeyword("HAVING") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.isKeyword("ORDER") {
		p.next()
		if _, err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.isKeyword("DESC") {
				p.next()
				item.Desc = true
			} else if p.isKeyword("ASC") {
				p.next()
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.isOp(",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.isKeyword("LIMIT") {
		p.next()
		n, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, p.errHere("LIMIT must be non-negative, got %d", n)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.isKeyword("AS") {
		p.next()
		t, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.peek().Kind == TokIdent {
		// Bare alias: SELECT x y
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseFromList() ([]TableRef, error) {
	var refs []TableRef
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	refs = append(refs, first)
	for {
		switch {
		case p.isOp(","):
			p.next()
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.isKeyword("CROSS"):
			p.next()
			if _, err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.isKeyword("JOIN", "INNER", "LEFT"):
			left := false
			if p.isKeyword("LEFT") {
				p.next()
				left = true
				if p.isKeyword("OUTER") {
					p.next()
				}
			} else if p.isKeyword("INNER") {
				p.next()
			}
			if _, err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.JoinCond = cond
			r.LeftJoin = left
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: t.Text}
	if p.isKeyword("AS") {
		p.next()
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *parser) parseGraph() (Statement, error) {
	if _, err := p.expectKeyword("GRAPH"); err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("OVER"); err != nil {
		return nil, err
	}
	over, err := p.expectParam()
	if err != nil {
		return nil, err
	}
	g := Graph{Over: over.Text}
	for {
		item, err := p.parseGraphItem()
		if err != nil {
			return nil, err
		}
		g.Items = append(g.Items, item)
		if p.isOp(",") {
			p.next()
			continue
		}
		break
	}
	return g, nil
}

func (p *parser) parseGraphItem() (GraphItem, error) {
	var item GraphItem
	switch {
	case p.isKeyword("EXPECT"):
		item.Agg = "EXPECT"
	case p.isKeyword("EXPECT_STDDEV"):
		item.Agg = "EXPECT_STDDEV"
	case p.isKeyword("PROB"):
		item.Agg = "PROB"
	default:
		return item, p.errHere("expected EXPECT, EXPECT_STDDEV or PROB, found %s", p.peek())
	}
	p.next()
	col, err := p.expectIdent()
	if err != nil {
		return item, err
	}
	item.Column = col.Text
	if p.isKeyword("WITH") {
		p.next()
		// Style words: identifiers and numbers until , or ;.
		for p.peek().Kind == TokIdent || p.peek().Kind == TokNumber {
			item.Style = append(item.Style, p.next().Text)
		}
		if len(item.Style) == 0 {
			return item, p.errHere("expected style words after WITH")
		}
	}
	return item, nil
}

func (p *parser) parseOptimize() (Statement, error) {
	if _, err := p.expectKeyword("OPTIMIZE"); err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var opt Optimize
	for {
		t, err := p.expectParam()
		if err != nil {
			return nil, err
		}
		opt.Select = append(opt.Select, t.Text)
		if p.isOp(",") {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	opt.From = from.Text
	if p.isKeyword("WHERE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		opt.Where = e
	}
	if p.isKeyword("GROUP") {
		p.next()
		if _, err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			opt.GroupBy = append(opt.GroupBy, t.Text)
			if p.isOp(",") {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	for {
		var g Goal
		switch {
		case p.isKeyword("MAX"):
			g.Maximize = true
		case p.isKeyword("MIN"):
			g.Maximize = false
		default:
			return nil, p.errHere("expected MAX or MIN, found %s", p.peek())
		}
		p.next()
		t, err := p.expectParam()
		if err != nil {
			return nil, err
		}
		g.Param = t.Text
		opt.Goals = append(opt.Goals, g)
		if p.isOp(",") {
			p.next()
			continue
		}
		break
	}
	return opt, nil
}

// Expression grammar, lowest precedence first:
//
//	expr     := orExpr
//	orExpr   := andExpr { OR andExpr }
//	andExpr  := notExpr { AND notExpr }
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr [ (=|<>|!=|<|<=|>|>=) addExpr
//	                    | [NOT] BETWEEN addExpr AND addExpr
//	                    | [NOT] IN ( expr {, expr} )
//	                    | IS [NOT] NULL ]
//	addExpr  := mulExpr { (+|-) mulExpr }
//	mulExpr  := unary { (*|/|%) unary }
//	unary    := - unary | primary
//	primary  := literal | @param | CASE … END | aggregate | func(args)
//	          | ident[.ident] | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	not := false
	if p.isKeyword("NOT") {
		// Only BETWEEN/IN may follow here.
		save := p.pos
		p.next()
		if !p.isKeyword("BETWEEN") && !p.isKeyword("IN") {
			p.pos = save
			return l, nil
		}
		not = true
	}
	switch {
	case p.isOp("=", "<>", "!=", "<", "<=", ">", ">="):
		op := p.next().Text
		if op == "!=" {
			op = "<>"
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: l, R: r}, nil
	case p.isKeyword("BETWEEN"):
		p.next()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Between{X: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.isKeyword("IN"):
		p.next()
		if _, err := p.expectOp("("); err != nil {
			return nil, err
		}
		var items []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, e)
			if p.isOp(",") {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return InList{X: l, Items: items, Not: not}, nil
	case p.isKeyword("IS"):
		p.next()
		isNot := false
		if p.isKeyword("NOT") {
			p.next()
			isNot = true
		}
		if _, err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return IsNull{X: l, Not: isNot}, nil
	default:
		if not {
			return nil, p.errHere("expected BETWEEN or IN after NOT")
		}
		return l, nil
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isOp("+", "-") {
		op := p.next().Text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*", "/", "%") {
		op := p.next().Text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.isOp("-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

// aggregateKeywords are keyword-named functions callable with ( ).
var aggregateKeywords = map[string]bool{
	"SUM": true, "AVG": true, "COUNT": true, "MIN": true, "MAX": true,
	"STDDEV": true, "EXPECT": true, "EXPECT_STDDEV": true, "PROB": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		v, err := numberValue(t)
		if err != nil {
			return nil, err
		}
		return Literal{Val: v}, nil
	case t.Kind == TokString:
		p.next()
		return Literal{Val: value.Str(t.Text)}, nil
	case p.isKeyword("TRUE"):
		p.next()
		return Literal{Val: value.Bool(true)}, nil
	case p.isKeyword("FALSE"):
		p.next()
		return Literal{Val: value.Bool(false)}, nil
	case p.isKeyword("NULL"):
		p.next()
		return Literal{Val: value.Null}, nil
	case t.Kind == TokParam:
		p.next()
		return ParamRef{Name: t.Text}, nil
	case p.isKeyword("CASE"):
		return p.parseCase()
	case t.Kind == TokKeyword && aggregateKeywords[t.Text]:
		p.next()
		// The probabilistic aggregates also accept the paren-free prefix
		// form of the paper's Figure 2: `MAX(EXPECT overload)`.
		if (t.Text == "EXPECT" || t.Text == "EXPECT_STDDEV" || t.Text == "PROB") && !p.isOp("(") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return FuncCall{Name: t.Text, Args: []Expr{ColumnRef{Name: col.Text}}}, nil
		}
		if _, err := p.expectOp("("); err != nil {
			return nil, err
		}
		call := FuncCall{Name: t.Text}
		if p.isOp("*") {
			p.next()
			call.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = []Expr{arg}
		}
		if _, err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return call, nil
	case t.Kind == TokIdent:
		p.next()
		if p.isOp("(") {
			p.next()
			call := FuncCall{Name: t.Text}
			if !p.isOp(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.isOp(",") {
						p.next()
						continue
					}
					break
				}
			}
			if _, err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.isOp(".") {
			p.next()
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return ColumnRef{Table: t.Text, Name: col.Text}, nil
		}
		return ColumnRef{Name: t.Text}, nil
	case p.isOp("("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errHere("expected expression, found %s", t)
	}
}

func (p *parser) parseCase() (Expr, error) {
	if _, err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	var c Case
	for p.isKeyword("WHEN") {
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errHere("CASE requires at least one WHEN arm")
	}
	if p.isKeyword("ELSE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
