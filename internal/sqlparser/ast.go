package sqlparser

import (
	"fuzzyprophet/internal/value"
)

// Script is a parsed scenario: an ordered list of statements.
type Script struct {
	Statements []Statement
}

// Statement is any top-level scenario statement.
type Statement interface {
	stmt()
	// SQL renders the statement in canonical scenario syntax (with a
	// trailing semicolon).
	SQL() string
}

// DeclareParameter is `DECLARE PARAMETER @name AS RANGE a TO b STEP BY s;`
// or `DECLARE PARAMETER @name AS SET (v, ...);`.
type DeclareParameter struct {
	Name  string
	Space ParameterSpace
}

// ParameterSpace enumerates the discrete values a parameter may take.
type ParameterSpace interface {
	paramSpace()
	// Values expands the space into its ordered concrete values.
	Values() []value.Value
	// SQL renders the space in scenario syntax.
	SQL() string
}

// RangeSpace is `RANGE from TO to STEP BY step` (inclusive of to when the
// step lands on it exactly).
type RangeSpace struct {
	From, To, Step int64
}

func (RangeSpace) paramSpace() {}

// Values expands the range.
func (r RangeSpace) Values() []value.Value {
	if r.Step <= 0 || r.To < r.From {
		return nil
	}
	var out []value.Value
	for v := r.From; v <= r.To; v += r.Step {
		out = append(out, value.Int(v))
	}
	return out
}

// SetSpace is `SET (v1, v2, ...)`.
type SetSpace struct {
	Members []value.Value
}

func (SetSpace) paramSpace() {}

// Values returns the set members in declaration order.
func (s SetSpace) Values() []value.Value {
	return append([]value.Value(nil), s.Members...)
}

func (DeclareParameter) stmt() {}

// Select is the scenario's query statement. SelectItems may reference
// aliases bound by earlier items in the same list (a dialect extension the
// paper's Figure 2 depends on: `CASE WHEN capacity < demand …`).
type Select struct {
	Distinct bool
	Items    []SelectItem
	Into     string // optional INTO target table
	From     []TableRef
	Where    Expr // optional
	GroupBy  []Expr
	Having   Expr // optional
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

func (Select) stmt() {}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
}

// TableRef is one entry in the FROM list: a base table or a joined table.
type TableRef struct {
	Name  string
	Alias string // optional
	// JoinCond is non-nil when this table was introduced by `JOIN … ON`;
	// the first TableRef in a FROM list never has one.
	JoinCond Expr
	// LeftJoin marks a LEFT [OUTER] JOIN: unmatched rows of everything
	// accumulated so far survive with NULLs for this table's columns.
	LeftJoin bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Graph is the online-mode directive
// `GRAPH OVER @param item [, item …];` (paper Figure 2, ONLINE MODE).
type Graph struct {
	Over  string // parameter providing the X axis
	Items []GraphItem
}

func (Graph) stmt() {}

// GraphItem is one plotted series: an aggregate over a result column plus
// free-form style words (e.g. "bold red", "blue y2").
type GraphItem struct {
	Agg    string // EXPECT, EXPECT_STDDEV or PROB
	Column string
	Style  []string
}

// Optimize is the offline-mode directive of Figure 2:
//
//	OPTIMIZE SELECT @p…, … FROM results
//	WHERE MAX(EXPECT overload) < 0.01
//	GROUP BY …
//	FOR MAX @purchase1, MAX @purchase2
type Optimize struct {
	Select  []string // parameter names projected in the answer
	From    string   // result table name
	Where   Expr     // feasibility constraint over aggregate expressions
	GroupBy []string // column names (parameter echoes) defining groups
	Goals   []Goal
}

func (Optimize) stmt() {}

// Goal is one lexicographic objective: maximize or minimize a parameter.
type Goal struct {
	Maximize bool
	Param    string
}

// Expr is any expression node.
type Expr interface {
	expr()
	// SQL renders the expression in canonical scenario syntax.
	SQL() string
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

// ParamRef is `@name`.
type ParamRef struct {
	Name string
}

// ColumnRef is `col` or `table.col`.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// FuncCall is `name(arg, …)`; it covers scalar builtins, VG-Functions and
// aggregates (the engine decides which by name). Star marks `COUNT(*)`.
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

// Unary is `-x` or `NOT x`.
type Unary struct {
	Op string // "-" or "NOT"
	X  Expr
}

// Binary is a binary operation; Op is one of
// + - * / % = <> < <= > >= AND OR.
type Binary struct {
	Op   string
	L, R Expr
}

// Case is `CASE WHEN c THEN v [WHEN …] [ELSE v] END`.
type Case struct {
	Whens []When
	Else  Expr // optional
}

// When is one WHEN/THEN arm.
type When struct {
	Cond Expr
	Then Expr
}

// Between is `x [NOT] BETWEEN lo AND hi`.
type Between struct {
	X      Expr
	Lo, Hi Expr
	Not    bool
}

// InList is `x [NOT] IN (e1, …)`.
type InList struct {
	X     Expr
	Items []Expr
	Not   bool
}

// IsNull is `x IS [NOT] NULL`.
type IsNull struct {
	X   Expr
	Not bool
}

func (Literal) expr()   {}
func (ParamRef) expr()  {}
func (ColumnRef) expr() {}
func (FuncCall) expr()  {}
func (Unary) expr()     {}
func (Binary) expr()    {}
func (Case) expr()      {}
func (Between) expr()   {}
func (InList) expr()    {}
func (IsNull) expr()    {}

// WalkExpr calls fn for e and every sub-expression, pre-order. It is used by
// the scenario compiler for validation and dependency analysis.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case Unary:
		WalkExpr(n.X, fn)
	case Binary:
		WalkExpr(n.L, fn)
		WalkExpr(n.R, fn)
	case FuncCall:
		for _, a := range n.Args {
			WalkExpr(a, fn)
		}
	case Case:
		for _, w := range n.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(n.Else, fn)
	case Between:
		WalkExpr(n.X, fn)
		WalkExpr(n.Lo, fn)
		WalkExpr(n.Hi, fn)
	case InList:
		WalkExpr(n.X, fn)
		for _, it := range n.Items {
			WalkExpr(it, fn)
		}
	case IsNull:
		WalkExpr(n.X, fn)
	}
}

// RewriteExpr rebuilds e bottom-up, applying fn to every node after its
// children have been rewritten. fn returns the node's replacement (or the
// node unchanged). A nil error from every fn call yields the rewritten
// tree.
func RewriteExpr(e Expr, fn func(Expr) (Expr, error)) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	var err error
	switch n := e.(type) {
	case Unary:
		n.X, err = RewriteExpr(n.X, fn)
		if err != nil {
			return nil, err
		}
		e = n
	case Binary:
		n.L, err = RewriteExpr(n.L, fn)
		if err != nil {
			return nil, err
		}
		n.R, err = RewriteExpr(n.R, fn)
		if err != nil {
			return nil, err
		}
		e = n
	case FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i], err = RewriteExpr(a, fn)
			if err != nil {
				return nil, err
			}
		}
		if len(args) == 0 {
			args = nil
		}
		e = FuncCall{Name: n.Name, Args: args, Star: n.Star}
	case Case:
		whens := make([]When, len(n.Whens))
		for i, w := range n.Whens {
			whens[i].Cond, err = RewriteExpr(w.Cond, fn)
			if err != nil {
				return nil, err
			}
			whens[i].Then, err = RewriteExpr(w.Then, fn)
			if err != nil {
				return nil, err
			}
		}
		var els Expr
		if n.Else != nil {
			els, err = RewriteExpr(n.Else, fn)
			if err != nil {
				return nil, err
			}
		}
		e = Case{Whens: whens, Else: els}
	case Between:
		n.X, err = RewriteExpr(n.X, fn)
		if err != nil {
			return nil, err
		}
		n.Lo, err = RewriteExpr(n.Lo, fn)
		if err != nil {
			return nil, err
		}
		n.Hi, err = RewriteExpr(n.Hi, fn)
		if err != nil {
			return nil, err
		}
		e = n
	case InList:
		n.X, err = RewriteExpr(n.X, fn)
		if err != nil {
			return nil, err
		}
		items := make([]Expr, len(n.Items))
		for i, it := range n.Items {
			items[i], err = RewriteExpr(it, fn)
			if err != nil {
				return nil, err
			}
		}
		n.Items = items
		e = n
	case IsNull:
		n.X, err = RewriteExpr(n.X, fn)
		if err != nil {
			return nil, err
		}
		e = n
	}
	return fn(e)
}

// Params returns the distinct parameter names referenced anywhere in e, in
// first-appearance order.
func Params(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	WalkExpr(e, func(x Expr) {
		if p, ok := x.(ParamRef); ok && !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p.Name)
		}
	})
	return out
}
