// Package sqlparser implements the Fuzzy Prophet scenario language: a
// Transact-SQL subset extended with the probabilistic-database constructs of
// the paper's Figure 2 — DECLARE PARAMETER (RANGE/SET), EXPECT /
// EXPECT_STDDEV / PROB aggregates, GRAPH OVER (online-mode visualization
// directives) and OPTIMIZE … FOR MAX/MIN (offline-mode goal metadata).
//
// The package provides a lexer, an AST, a recursive-descent parser and a
// canonical printer. Print∘Parse is a fixpoint, which the engine relies on:
// the Query Generator emits scenario fragments as SQL text that is re-parsed
// before execution, mirroring the paper's "produces a pure TSQL query"
// architecture.
package sqlparser

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokParam  // @name
	TokNumber // integer or float literal
	TokString // 'quoted'
	TokOp     // operator or punctuation
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokParam:
		return "parameter"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	default:
		return fmt.Sprintf("TokenKind(%d)", uint8(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // canonical text: keywords uppercased, params without '@'
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	if t.Kind == TokParam {
		return "@" + t.Text
	}
	return t.Text
}

// keywords is the reserved-word set. Identifiers matching these (case-
// insensitively) lex as TokKeyword with uppercase text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"INTO": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"NULL": true, "TRUE": true, "FALSE": true, "JOIN": true, "ON": true,
	"IN": true, "BETWEEN": true, "IS": true, "LIKE": true,
	"DECLARE": true, "PARAMETER": true, "RANGE": true, "TO": true,
	"STEP": true, "SET": true, "GRAPH": true, "OVER": true, "WITH": true,
	"OPTIMIZE": true, "FOR": true, "MAX": true, "MIN": true,
	"EXPECT": true, "EXPECT_STDDEV": true, "PROB": true,
	"SUM": true, "AVG": true, "COUNT": true, "STDDEV": true,
	"DISTINCT": true, "INNER": true, "LEFT": true, "CROSS": true,
	"OUTER": true,
}

// Error is a scenario-language error carrying a source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sqlparser: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lex splits src into tokens, dropping comments (both "-- line" and block
// "/* ... */" forms). The returned slice always ends with a TokEOF token.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for j := 0; j < n; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			closed := false
			for i < len(src) {
				if src[i] == '*' && i+1 < len(src) && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, errAt(startLine, startCol, "unterminated block comment")
			}
		case c == '@':
			startLine, startCol := line, col
			advance(1)
			start := i
			for i < len(src) && isIdentChar(src[i]) {
				advance(1)
			}
			if i == start {
				return nil, errAt(startLine, startCol, "expected parameter name after '@'")
			}
			toks = append(toks, Token{Kind: TokParam, Text: src[start:i], Line: startLine, Col: startCol})
		case c == '\'':
			startLine, startCol := line, col
			advance(1)
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						advance(2)
						continue
					}
					advance(1)
					closed = true
					break
				}
				sb.WriteByte(src[i])
				advance(1)
			}
			if !closed {
				return nil, errAt(startLine, startCol, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Line: startLine, Col: startCol})
		case isDigit(c) || (c == '.' && i+1 < len(src) && isDigit(src[i+1])):
			startLine, startCol := line, col
			start := i
			seenDot := false
			seenExp := false
			for i < len(src) {
				ch := src[i]
				if isDigit(ch) {
					advance(1)
					continue
				}
				if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					advance(1)
					continue
				}
				if (ch == 'e' || ch == 'E') && !seenExp && i > start {
					seenExp = true
					advance(1)
					if i < len(src) && (src[i] == '+' || src[i] == '-') {
						advance(1)
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[start:i], Line: startLine, Col: startCol})
		case isIdentStart(c):
			startLine, startCol := line, col
			start := i
			for i < len(src) && isIdentChar(src[i]) {
				advance(1)
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Line: startLine, Col: startCol})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Line: startLine, Col: startCol})
			}
		default:
			startLine, startCol := line, col
			// Multi-character operators first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				advance(2)
				toks = append(toks, Token{Kind: TokOp, Text: two, Line: startLine, Col: startCol})
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', ',', ';', '.':
				advance(1)
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Line: startLine, Col: startCol})
			default:
				return nil, errAt(startLine, startCol, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }
