package sqlparser

import (
	"fmt"
	"strings"
)

// Print renders a script in canonical scenario syntax, one statement per
// line block. Parse(Print(s)) is structurally equal to s (tested as a
// property); the Query Generator depends on this fixpoint.
func Print(s *Script) string {
	var sb strings.Builder
	for i, st := range s.Statements {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(st.SQL())
		sb.WriteString("\n")
	}
	return sb.String()
}

// SQL renders the DECLARE PARAMETER statement.
func (d DeclareParameter) SQL() string {
	return fmt.Sprintf("DECLARE PARAMETER @%s AS %s;", d.Name, d.Space.SQL())
}

// SQL renders the RANGE space.
func (r RangeSpace) SQL() string {
	return fmt.Sprintf("RANGE %d TO %d STEP BY %d", r.From, r.To, r.Step)
}

// SQL renders the SET space.
func (s SetSpace) SQL() string {
	parts := make([]string, len(s.Members))
	for i, m := range s.Members {
		parts[i] = m.SQLLiteral()
	}
	return "SET (" + strings.Join(parts, ", ") + ")"
}

// SQL renders the SELECT statement.
func (s Select) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, item := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(item.Expr.SQL())
		if item.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(item.Alias)
		}
	}
	if s.Into != "" {
		sb.WriteString(" INTO ")
		sb.WriteString(s.Into)
	}
	for i, ref := range s.From {
		switch {
		case i == 0:
			sb.WriteString(" FROM ")
		case ref.JoinCond != nil && ref.LeftJoin:
			sb.WriteString(" LEFT JOIN ")
		case ref.JoinCond != nil:
			sb.WriteString(" JOIN ")
		default:
			sb.WriteString(", ")
		}
		sb.WriteString(ref.Name)
		if ref.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(ref.Alias)
		}
		if i > 0 && ref.JoinCond != nil {
			sb.WriteString(" ON ")
			sb.WriteString(ref.JoinCond.SQL())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.SQL())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	sb.WriteString(";")
	return sb.String()
}

// SQL renders the GRAPH statement.
func (g Graph) SQL() string {
	var sb strings.Builder
	sb.WriteString("GRAPH OVER @")
	sb.WriteString(g.Over)
	for i, item := range g.Items {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(" ")
		sb.WriteString(item.Agg)
		sb.WriteString(" ")
		sb.WriteString(item.Column)
		if len(item.Style) > 0 {
			sb.WriteString(" WITH ")
			sb.WriteString(strings.Join(item.Style, " "))
		}
	}
	sb.WriteString(";")
	return sb.String()
}

// SQL renders the OPTIMIZE statement.
func (o Optimize) SQL() string {
	var sb strings.Builder
	sb.WriteString("OPTIMIZE SELECT ")
	for i, p := range o.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("@")
		sb.WriteString(p)
	}
	sb.WriteString(" FROM ")
	sb.WriteString(o.From)
	if o.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(o.Where.SQL())
	}
	if len(o.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(o.GroupBy, ", "))
	}
	sb.WriteString(" FOR ")
	for i, g := range o.Goals {
		if i > 0 {
			sb.WriteString(", ")
		}
		if g.Maximize {
			sb.WriteString("MAX @")
		} else {
			sb.WriteString("MIN @")
		}
		sb.WriteString(g.Param)
	}
	sb.WriteString(";")
	return sb.String()
}

// SQL renders a literal.
func (l Literal) SQL() string { return l.Val.SQLLiteral() }

// SQL renders a parameter reference.
func (p ParamRef) SQL() string { return "@" + p.Name }

// SQL renders a column reference.
func (c ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// SQL renders a function call.
func (f FuncCall) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// SQL renders a unary expression. NOT is fully parenthesized because it
// binds loosely in the grammar (between AND and comparison) and could not
// otherwise appear as an operand of tighter operators.
func (u Unary) SQL() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.SQL() + ")"
	}
	return "-(" + u.X.SQL() + ")"
}

// SQL renders a binary expression with full parenthesization.
func (b Binary) SQL() string {
	return "(" + b.L.SQL() + " " + b.Op + " " + b.R.SQL() + ")"
}

// SQL renders a CASE expression.
func (c Case) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN ")
		sb.WriteString(w.Cond.SQL())
		sb.WriteString(" THEN ")
		sb.WriteString(w.Then.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE ")
		sb.WriteString(c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// SQL renders a BETWEEN expression.
func (b Between) SQL() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.X.SQL() + " " + not + "BETWEEN " + b.Lo.SQL() + " AND " + b.Hi.SQL() + ")"
}

// SQL renders an IN list.
func (in InList) SQL() string {
	parts := make([]string, len(in.Items))
	for i, e := range in.Items {
		parts[i] = e.SQL()
	}
	not := ""
	if in.Not {
		not = "NOT "
	}
	return "(" + in.X.SQL() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}

// SQL renders IS [NOT] NULL.
func (n IsNull) SQL() string {
	if n.Not {
		return "(" + n.X.SQL() + " IS NOT NULL)"
	}
	return "(" + n.X.SQL() + " IS NULL)"
}
