// Package buildinfo carries version identity injected at link time:
//
//	go build -ldflags "-X fuzzyprophet/internal/buildinfo.Version=v1.2.3" ./...
//
// All three binaries expose it via -version, and fpserver exports it as
// the fpserver_build_info metric.
package buildinfo

import (
	"fmt"
	"runtime"
)

// Version is the release identifier, overridden via -ldflags -X.
var Version = "dev"

// GoVersion reports the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// String returns the one-line form printed by -version flags.
func String(binary string) string {
	return fmt.Sprintf("%s %s (%s)", binary, Version, GoVersion())
}
