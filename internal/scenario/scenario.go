// Package scenario compiles Fuzzy Prophet scenario scripts into executable
// form: it validates the script, builds the discrete parameter space from
// the DECLARE PARAMETER statements, extracts the VG-Function call sites
// from the query, and prepares the rewritten query the Query Generator
// emits as pure TSQL (paper §2, architecture cycle step 2).
//
// The central transformation mirrors MCDB-style possible-world expansion:
// each VG call in the query becomes a column of a generated __worlds table
// holding one row per Monte Carlo world. The rewritten query — with VG
// calls replaced by column references and parameters replaced by literals —
// is *pure* TSQL over that table, exactly the paper's "The sequence of
// instances is batched and accepted by a Query Generator, which produces a
// pure TSQL query".
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

// WorldsTable is the name of the generated possible-worlds table.
const WorldsTable = "__worlds"

// WorldColumn is the name of the world-ordinal column in WorldsTable.
const WorldColumn = "__world"

// Site is one VG-Function call site in the scenario query.
type Site struct {
	// ID uniquely identifies the site within the scenario, e.g.
	// "CapacityModel#1".
	ID string
	// Name is the VG-Function name.
	Name string
	// Args are the argument expressions; they may reference only
	// parameters, literals and scalar builtins.
	Args []sqlparser.Expr
	// Column is the generated worlds-table column the call was rewritten
	// to, e.g. "__vg_1".
	Column string
}

// ArgValues resolves the site's argument expressions under a parameter
// point and returns the values together with their canonical key.
func (s *Site) ArgValues(point guide.Point) ([]value.Value, string, error) {
	vals := make([]value.Value, len(s.Args))
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		v, err := sqlengine.EvalConst(a, point, nil)
		if err != nil {
			return nil, "", fmt.Errorf("scenario: site %s argument %d: %w", s.ID, i, err)
		}
		vals[i] = v
		parts[i] = v.SQLLiteral()
	}
	return vals, "(" + strings.Join(parts, ",") + ")", nil
}

// Scenario is a compiled scenario script.
type Scenario struct {
	// Source is the original script text.
	Source string
	// Script is the parsed form.
	Script *sqlparser.Script
	// Space is the discrete parameter space.
	Space *guide.Space
	// Query is the scenario's SELECT statement as written.
	Query sqlparser.Select
	// Exec is the rewritten query: VG calls replaced by worlds-table
	// columns, FROM extended with the worlds table, INTO stripped.
	Exec sqlparser.Select
	// Sites are the extracted VG call sites, in query order.
	Sites []Site
	// Graph is the online-mode directive, if present.
	Graph *sqlparser.Graph
	// Optimize is the offline-mode directive, if present.
	Optimize *sqlparser.Optimize
	// Registry resolves the scenario's VG-Functions.
	Registry *vg.Registry
	// OutputCols are the query's output column names, in order.
	OutputCols []string
	// ResultsTable is the INTO target ("results" in Figure 2), or "".
	ResultsTable string
	// StaticTables are deterministic side tables the query's FROM clause
	// may reference (joined against the generated worlds table). They are
	// installed into every evaluator's catalog.
	StaticTables []*sqlengine.Table

	planOnce sync.Once
	plan     *sqlengine.Plan
}

// Fingerprint returns a stable hex identity for the scenario's script: the
// SHA-256 of its canonical printed form. Scenarios whose scripts differ
// only in whitespace or comments share a fingerprint; reuse snapshots and
// the compiled-plan cache key off it.
func (scn *Scenario) Fingerprint() string {
	sum := sha256.Sum256([]byte(sqlparser.Print(scn.Script)))
	return hex.EncodeToString(sum[:])
}

// planCache shares compiled plans between scenarios with identical
// content: when fpserver re-registers a scenario (same script, fresh
// *Scenario), the new registration picks up the already-warm plan, like
// the reuse cache does for basis vectors. Keyed by the script fingerprint
// PLUS the rewritten execution query — two registries could rewrite the
// same script differently (different VG-function sets), and plans are
// only interchangeable when the rewritten tree matches.
var planCache = struct {
	mu    sync.Mutex
	plans map[string]*sqlengine.Plan
	order []string
}{plans: map[string]*sqlengine.Plan{}}

// planCacheMax bounds the cache; beyond it the oldest entry is dropped
// (plans are cheap to recompile — the cache exists for warm buffer pools).
const planCacheMax = 512

// Plan returns the scenario's compiled execution plan: the rewritten query
// (VG calls already column references) compiled once into reusable
// kernels. The plan is safe for concurrent execution; every evaluator and
// session of the scenario shares it, so slider moves and concurrent
// renders reuse its warmed buffer pools. Parameters are bound at execution
// time, which is semantically identical to executing the Query Generator's
// literal-substituted TSQL.
func (scn *Scenario) Plan() *sqlengine.Plan {
	scn.planOnce.Do(func() {
		key := scn.Fingerprint() + "|" + scn.Exec.SQL()
		planCache.mu.Lock()
		defer planCache.mu.Unlock()
		if p, ok := planCache.plans[key]; ok {
			scn.plan = p
			return
		}
		p := sqlengine.CompileSelect(scn.Exec)
		if len(planCache.order) >= planCacheMax {
			oldest := planCache.order[0]
			planCache.order = planCache.order[1:]
			delete(planCache.plans, oldest)
		}
		planCache.plans[key] = p
		planCache.order = append(planCache.order, key)
		scn.plan = p
	})
	return scn.plan
}

// AddTable attaches a deterministic side table the scenario query may
// reference in its FROM clause. The name must not collide with the
// generated worlds table or a previously added table.
func (scn *Scenario) AddTable(t *sqlengine.Table) error {
	if t == nil {
		return fmt.Errorf("scenario: nil table")
	}
	if t.Name == WorldsTable {
		return fmt.Errorf("scenario: table name %q is reserved", WorldsTable)
	}
	for _, existing := range scn.StaticTables {
		if existing.Name == t.Name {
			return fmt.Errorf("scenario: table %q already added", t.Name)
		}
	}
	scn.StaticTables = append(scn.StaticTables, t)
	return nil
}

// Compile parses and validates src against the registry.
func Compile(src string, registry *vg.Registry) (*Scenario, error) {
	if registry == nil {
		return nil, fmt.Errorf("scenario: nil VG registry")
	}
	script, err := sqlparser.Parse(src)
	if err != nil {
		return nil, err
	}
	scn := &Scenario{Source: src, Script: script, Registry: registry}

	var defs []guide.ParamDef
	seenQuery := false
	for _, st := range script.Statements {
		switch n := st.(type) {
		case sqlparser.DeclareParameter:
			vals := n.Space.Values()
			if len(vals) == 0 {
				return nil, fmt.Errorf("scenario: parameter @%s has an empty space", n.Name)
			}
			defs = append(defs, guide.ParamDef{Name: n.Name, Values: vals})
		case sqlparser.Select:
			if seenQuery {
				return nil, fmt.Errorf("scenario: multiple SELECT statements; a scenario has exactly one query")
			}
			seenQuery = true
			scn.Query = n
			scn.ResultsTable = n.Into
		case sqlparser.Graph:
			if scn.Graph != nil {
				return nil, fmt.Errorf("scenario: multiple GRAPH statements")
			}
			g := n
			scn.Graph = &g
		case sqlparser.Optimize:
			if scn.Optimize != nil {
				return nil, fmt.Errorf("scenario: multiple OPTIMIZE statements")
			}
			o := n
			scn.Optimize = &o
		}
	}
	if !seenQuery {
		return nil, fmt.Errorf("scenario: no SELECT statement")
	}
	space, err := guide.NewSpace(defs)
	if err != nil {
		return nil, err
	}
	scn.Space = space

	if err := scn.extractSites(); err != nil {
		return nil, err
	}
	if err := scn.validate(); err != nil {
		return nil, err
	}
	return scn, nil
}

// extractSites rewrites the query, pulling VG calls out into sites.
func (scn *Scenario) extractSites() error {
	// Pre-pass: validate every VG call's arguments on the *original* tree,
	// before rewriting obscures nesting.
	preValidate := func(e sqlparser.Expr) error {
		var bad error
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) {
			if bad != nil {
				return
			}
			call, ok := x.(sqlparser.FuncCall)
			if !ok {
				return
			}
			fn, isVG := scn.Registry.Lookup(call.Name)
			if !isVG {
				if _, isTable := scn.Registry.LookupTable(call.Name); isTable {
					bad = fmt.Errorf("scenario: table VG-Function %s cannot be used in scalar position", call.Name)
				}
				return
			}
			if fn.Arity() >= 0 && len(call.Args) != fn.Arity() {
				bad = fmt.Errorf("scenario: %s expects %d arguments, got %d", call.Name, fn.Arity(), len(call.Args))
				return
			}
			for _, a := range call.Args {
				if err := validateSiteArg(a, scn.Registry); err != nil {
					bad = fmt.Errorf("scenario: %s argument: %w", call.Name, err)
					return
				}
			}
		})
		return bad
	}
	for _, item := range scn.Query.Items {
		if err := preValidate(item.Expr); err != nil {
			return err
		}
	}
	if scn.Query.Where != nil {
		if err := preValidate(scn.Query.Where); err != nil {
			return err
		}
	}
	for _, g := range scn.Query.GroupBy {
		if err := preValidate(g); err != nil {
			return err
		}
	}
	if scn.Query.Having != nil {
		if err := preValidate(scn.Query.Having); err != nil {
			return err
		}
	}

	bySQL := map[string]*Site{}
	counts := map[string]int{}
	rewrite := func(e sqlparser.Expr) (sqlparser.Expr, error) {
		call, ok := e.(sqlparser.FuncCall)
		if !ok {
			return e, nil
		}
		if _, isVG := scn.Registry.Lookup(call.Name); !isVG {
			return e, nil
		}
		key := call.SQL()
		if s, ok := bySQL[key]; ok {
			return sqlparser.ColumnRef{Name: s.Column}, nil
		}
		ord := counts[call.Name]
		counts[call.Name]++
		site := &Site{
			ID:     fmt.Sprintf("%s#%d", call.Name, ord),
			Name:   call.Name,
			Args:   call.Args,
			Column: fmt.Sprintf("__vg_%d", len(scn.Sites)),
		}
		bySQL[key] = site
		scn.Sites = append(scn.Sites, *site)
		return sqlparser.ColumnRef{Name: site.Column}, nil
	}

	ex := scn.Query
	ex.Into = ""
	items := make([]sqlparser.SelectItem, len(ex.Items))
	for i, item := range ex.Items {
		re, err := sqlparser.RewriteExpr(item.Expr, rewrite)
		if err != nil {
			return err
		}
		items[i] = sqlparser.SelectItem{Expr: re, Alias: item.Alias}
	}
	ex.Items = items
	if ex.Where != nil {
		re, err := sqlparser.RewriteExpr(ex.Where, rewrite)
		if err != nil {
			return err
		}
		ex.Where = re
	}
	groupBy := make([]sqlparser.Expr, len(ex.GroupBy))
	for i, g := range ex.GroupBy {
		re, err := sqlparser.RewriteExpr(g, rewrite)
		if err != nil {
			return err
		}
		groupBy[i] = re
	}
	if len(groupBy) == 0 {
		groupBy = nil
	}
	ex.GroupBy = groupBy
	if ex.Having != nil {
		re, err := sqlparser.RewriteExpr(ex.Having, rewrite)
		if err != nil {
			return err
		}
		ex.Having = re
	}
	// Prepend the worlds table to FROM.
	from := []sqlparser.TableRef{{Name: WorldsTable}}
	from = append(from, ex.From...)
	ex.From = from
	scn.Exec = ex

	for i, item := range scn.Query.Items {
		scn.OutputCols = append(scn.OutputCols, outputName(item, i))
	}
	return nil
}

func outputName(item sqlparser.SelectItem, idx int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(sqlparser.ColumnRef); ok {
		return c.Name
	}
	return fmt.Sprintf("col%d", idx+1)
}

// validateSiteArg enforces that VG arguments are deterministic given the
// parameter point: parameters, literals and scalar builtins only.
func validateSiteArg(e sqlparser.Expr, registry *vg.Registry) error {
	var bad error
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) {
		if bad != nil {
			return
		}
		switch n := x.(type) {
		case sqlparser.FuncCall:
			if _, isVG := registry.Lookup(n.Name); isVG {
				bad = fmt.Errorf("nested VG-Function call %s not allowed", n.Name)
			}
		case sqlparser.ColumnRef:
			bad = fmt.Errorf("column reference %s not allowed (arguments must depend only on parameters)", n.SQL())
		}
	})
	return bad
}

// validate checks the cross-statement references.
func (scn *Scenario) validate() error {
	declared := map[string]bool{}
	for _, p := range scn.Space.Params {
		declared[p.Name] = true
	}
	// Every parameter referenced in the query must be declared.
	var undeclared error
	checkParams := func(e sqlparser.Expr) {
		for _, name := range sqlparser.Params(e) {
			if !declared[name] && undeclared == nil {
				undeclared = fmt.Errorf("scenario: parameter @%s is not declared", name)
			}
		}
	}
	for _, item := range scn.Query.Items {
		checkParams(item.Expr)
	}
	if scn.Query.Where != nil {
		checkParams(scn.Query.Where)
	}
	for _, g := range scn.Query.GroupBy {
		checkParams(g)
	}
	if undeclared != nil {
		return undeclared
	}
	// The per-world query must be world-wise: aggregation happens in the
	// GRAPH/OPTIMIZE layer, not inside the scenario query.
	for _, item := range scn.Query.Items {
		if containsAggregate(item.Expr) {
			return fmt.Errorf("scenario: aggregate in scenario query item %q; aggregation belongs to GRAPH/OPTIMIZE", outputNameOf(item))
		}
	}

	outputs := map[string]bool{}
	for _, c := range scn.OutputCols {
		outputs[c] = true
	}
	if scn.Graph != nil {
		if !declared[scn.Graph.Over] {
			return fmt.Errorf("scenario: GRAPH OVER @%s references an undeclared parameter", scn.Graph.Over)
		}
		for _, item := range scn.Graph.Items {
			if !outputs[item.Column] {
				return fmt.Errorf("scenario: GRAPH item %s %s references a column the query does not produce", item.Agg, item.Column)
			}
		}
	}
	if scn.Optimize != nil {
		o := scn.Optimize
		if scn.ResultsTable != "" && o.From != scn.ResultsTable {
			return fmt.Errorf("scenario: OPTIMIZE reads from %q but the query materializes INTO %q", o.From, scn.ResultsTable)
		}
		for _, p := range o.Select {
			if !declared[p] {
				return fmt.Errorf("scenario: OPTIMIZE SELECT @%s references an undeclared parameter", p)
			}
		}
		for _, g := range o.GroupBy {
			if !declared[g] {
				return fmt.Errorf("scenario: OPTIMIZE GROUP BY %s must name a declared parameter", g)
			}
		}
		if len(o.Goals) == 0 {
			return fmt.Errorf("scenario: OPTIMIZE needs at least one FOR goal")
		}
		for _, g := range o.Goals {
			if !declared[g.Param] {
				return fmt.Errorf("scenario: OPTIMIZE goal @%s references an undeclared parameter", g.Param)
			}
		}
		if o.Where == nil {
			return fmt.Errorf("scenario: OPTIMIZE needs a WHERE feasibility constraint")
		}
		if err := validateConstraint(o.Where, outputs); err != nil {
			return err
		}
	}
	return nil
}

func outputNameOf(item sqlparser.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	return item.Expr.SQL()
}

func containsAggregate(e sqlparser.Expr) bool {
	found := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) {
		if f, ok := x.(sqlparser.FuncCall); ok {
			switch f.Name {
			case "SUM", "AVG", "COUNT", "MIN", "MAX", "STDDEV",
				"EXPECT", "EXPECT_STDDEV", "PROB":
				found = true
			}
		}
	})
	return found
}

// validateConstraint checks an OPTIMIZE WHERE expression: the probabilistic
// aggregates inside must reference produced output columns.
func validateConstraint(e sqlparser.Expr, outputs map[string]bool) error {
	var bad error
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) {
		if bad != nil {
			return
		}
		f, ok := x.(sqlparser.FuncCall)
		if !ok {
			return
		}
		switch f.Name {
		case "EXPECT", "EXPECT_STDDEV", "PROB":
			if len(f.Args) != 1 {
				bad = fmt.Errorf("scenario: %s in OPTIMIZE WHERE needs one column argument", f.Name)
				return
			}
			c, ok := f.Args[0].(sqlparser.ColumnRef)
			if !ok {
				bad = fmt.Errorf("scenario: %s in OPTIMIZE WHERE must name an output column directly", f.Name)
				return
			}
			if !outputs[c.Name] {
				bad = fmt.Errorf("scenario: OPTIMIZE WHERE references column %q the query does not produce", c.Name)
			}
		}
	})
	return bad
}

// GenerateSQL is the Query Generator: it renders the rewritten query for a
// concrete parameter point as pure TSQL — parameters substituted as
// literals, VG calls already column references. The result parses with
// sqlparser and executes on any engine holding the worlds table.
func (scn *Scenario) GenerateSQL(point guide.Point) (string, error) {
	substitute := func(e sqlparser.Expr) (sqlparser.Expr, error) {
		p, ok := e.(sqlparser.ParamRef)
		if !ok {
			return e, nil
		}
		v, ok := point[p.Name]
		if !ok {
			return nil, fmt.Errorf("scenario: point is missing parameter @%s", p.Name)
		}
		return sqlparser.Literal{Val: v}, nil
	}
	ex := scn.Exec
	items := make([]sqlparser.SelectItem, len(ex.Items))
	for i, item := range ex.Items {
		re, err := sqlparser.RewriteExpr(item.Expr, substitute)
		if err != nil {
			return "", err
		}
		items[i] = sqlparser.SelectItem{Expr: re, Alias: item.Alias}
	}
	ex.Items = items
	if ex.Where != nil {
		re, err := sqlparser.RewriteExpr(ex.Where, substitute)
		if err != nil {
			return "", err
		}
		ex.Where = re
	}
	if len(ex.GroupBy) > 0 {
		groupBy := make([]sqlparser.Expr, len(ex.GroupBy))
		for i, g := range ex.GroupBy {
			re, err := sqlparser.RewriteExpr(g, substitute)
			if err != nil {
				return "", err
			}
			groupBy[i] = re
		}
		ex.GroupBy = groupBy
	}
	if ex.Having != nil {
		re, err := sqlparser.RewriteExpr(ex.Having, substitute)
		if err != nil {
			return "", err
		}
		ex.Having = re
	}
	return ex.SQL(), nil
}

// DefaultPoint returns the parameter point using each parameter's first
// declared value (the online mode's initial slider positions).
func (scn *Scenario) DefaultPoint() guide.Point {
	p := make(guide.Point, len(scn.Space.Params))
	for _, def := range scn.Space.Params {
		p[def.Name] = def.Values[0]
	}
	return p
}
