package scenario

import (
	"strings"
	"testing"

	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

// figure2 is the paper's example scenario (Figure 2), verbatim modulo
// whitespace.
const figure2 = `
-- DEFINITION --
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;

-- ONLINE MODE --
GRAPH OVER @current
      EXPECT overload WITH bold red,
      EXPECT capacity WITH blue y2,
      EXPECT_STDDEV demand WITH orange y2;

-- OFFLINE MODE --
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
`

func testRegistry(t *testing.T) *vg.Registry {
	t.Helper()
	r := vg.NewRegistry()
	if err := vg.RegisterBuiltins(r); err != nil {
		t.Fatal(err)
	}
	if err := models.RegisterDefaults(r); err != nil {
		t.Fatal(err)
	}
	return r
}

func compileFigure2(t *testing.T) *Scenario {
	t.Helper()
	scn, err := Compile(figure2, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func TestCompileFigure2(t *testing.T) {
	scn := compileFigure2(t)
	if scn.Space.Size() != 53*14*14*3 {
		t.Errorf("space size = %d, want %d", scn.Space.Size(), 53*14*14*3)
	}
	if len(scn.Sites) != 2 {
		t.Fatalf("sites = %+v", scn.Sites)
	}
	if scn.Sites[0].ID != "DemandModel#0" || scn.Sites[1].ID != "CapacityModel#0" {
		t.Errorf("site IDs = %s, %s", scn.Sites[0].ID, scn.Sites[1].ID)
	}
	if scn.Sites[0].Column != "__vg_0" || scn.Sites[1].Column != "__vg_1" {
		t.Errorf("site columns = %s, %s", scn.Sites[0].Column, scn.Sites[1].Column)
	}
	if got := scn.OutputCols; len(got) != 3 || got[0] != "demand" || got[2] != "overload" {
		t.Errorf("outputs = %v", got)
	}
	if scn.ResultsTable != "results" {
		t.Errorf("results table = %q", scn.ResultsTable)
	}
	if scn.Graph == nil || scn.Graph.Over != "current" || len(scn.Graph.Items) != 3 {
		t.Errorf("graph = %+v", scn.Graph)
	}
	if scn.Optimize == nil || len(scn.Optimize.Goals) != 2 {
		t.Errorf("optimize = %+v", scn.Optimize)
	}
	// The rewritten query reads from the worlds table and has no VG calls.
	if scn.Exec.From[0].Name != WorldsTable {
		t.Errorf("exec FROM = %+v", scn.Exec.From)
	}
	sql := scn.Exec.SQL()
	if strings.Contains(sql, "DemandModel") || strings.Contains(sql, "CapacityModel") {
		t.Errorf("VG calls not rewritten: %s", sql)
	}
	if !strings.Contains(sql, "__vg_0") || !strings.Contains(sql, "__vg_1") {
		t.Errorf("site columns missing: %s", sql)
	}
	if scn.Exec.Into != "" {
		t.Error("INTO must be stripped from the exec query")
	}
}

func TestSiteArgValues(t *testing.T) {
	scn := compileFigure2(t)
	pt := guide.Point{
		"current":   value.Int(5),
		"purchase1": value.Int(8),
		"purchase2": value.Int(16),
		"feature":   value.Int(12),
	}
	vals, key, err := scn.Sites[1].ArgValues(pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || !vals[0].Equal(value.Int(5)) || !vals[2].Equal(value.Int(16)) {
		t.Errorf("vals = %v", vals)
	}
	if key != "(5,8,16)" {
		t.Errorf("key = %q", key)
	}
	// Missing parameter errors.
	if _, _, err := scn.Sites[1].ArgValues(guide.Point{"current": value.Int(5)}); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestGenerateSQLPure(t *testing.T) {
	scn := compileFigure2(t)
	pt := scn.DefaultPoint()
	sql, err := scn.GenerateSQL(pt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "@") {
		t.Errorf("generated SQL still has parameters: %s", sql)
	}
	// It must re-parse cleanly (pure TSQL contract).
	if _, err := sqlparser.Parse(sql); err != nil {
		t.Errorf("generated SQL does not parse: %v\n%s", err, sql)
	}
}

func TestGenerateSQLSubstitutesDirectParams(t *testing.T) {
	// A query that uses a parameter outside VG arguments: the generated
	// text must substitute it as a literal.
	src := `
DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;
SELECT Gaussian(@w, 1) AS g, @w * 2 AS scaled WHERE @w < 10;`
	scn, err := Compile(src, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	sql, err := scn.GenerateSQL(guide.Point{"w": value.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "@") {
		t.Errorf("parameters remain: %s", sql)
	}
	if !strings.Contains(sql, "(3 * 2)") {
		t.Errorf("literal substitution missing: %s", sql)
	}
	// Missing point parameter errors.
	if _, err := scn.GenerateSQL(guide.Point{}); err == nil {
		t.Error("incomplete point should error")
	}
}

func TestDefaultPoint(t *testing.T) {
	scn := compileFigure2(t)
	pt := scn.DefaultPoint()
	if !pt["current"].Equal(value.Int(0)) || !pt["feature"].Equal(value.Int(12)) {
		t.Errorf("default point = %v", pt)
	}
}

func TestSiteDeduplication(t *testing.T) {
	src := `
DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;
SELECT Gaussian(@w, 1) AS a, Gaussian(@w, 1) AS b, Gaussian(@w, 2) AS c;`
	scn, err := Compile(src, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	// Identical calls share a site; the different one gets its own.
	if len(scn.Sites) != 2 {
		t.Fatalf("sites = %+v", scn.Sites)
	}
	sql := scn.Exec.SQL()
	if !strings.Contains(sql, "__vg_0 AS a") || !strings.Contains(sql, "__vg_0 AS b") {
		t.Errorf("dedup not applied: %s", sql)
	}
}

func TestCompileErrors(t *testing.T) {
	reg := testRegistry(t)
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"no select", "DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;", "no SELECT"},
		{"two selects", "SELECT 1; SELECT 2;", "multiple SELECT"},
		{"undeclared param", "SELECT Gaussian(@x, 1) AS g;", "not declared"},
		{"undeclared graph param", "SELECT 1 AS a; GRAPH OVER @z EXPECT a;", "undeclared"},
		{"graph unknown column", "DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1; SELECT 1 AS a; GRAPH OVER @p EXPECT zz;", "does not produce"},
		{"two graphs", "DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1; SELECT 1 AS a; GRAPH OVER @p EXPECT a; GRAPH OVER @p EXPECT a;", "multiple GRAPH"},
		{"optimize from mismatch", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT 1 AS a INTO results;
			OPTIMIZE SELECT @p FROM elsewhere WHERE MAX(EXPECT a) < 1 FOR MAX @p;`, "materializes INTO"},
		{"optimize no constraint param", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT 1 AS a INTO results;
			OPTIMIZE SELECT @zz FROM results WHERE MAX(EXPECT a) < 1 FOR MAX @p;`, "undeclared"},
		{"optimize bad column", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT 1 AS a INTO results;
			OPTIMIZE SELECT @p FROM results WHERE MAX(EXPECT b) < 1 FOR MAX @p;`, "does not produce"},
		{"optimize goal undeclared", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT 1 AS a INTO results;
			OPTIMIZE SELECT @p FROM results WHERE MAX(EXPECT a) < 1 FOR MAX @qq;`, "undeclared"},
		{"optimize groupby undeclared", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT 1 AS a INTO results;
			OPTIMIZE SELECT @p FROM results WHERE MAX(EXPECT a) < 1 GROUP BY zz FOR MAX @p;`, "declared parameter"},
		{"aggregate in query", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT SUM(1) AS a;`, "aggregate in scenario query"},
		{"vg arity", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT Gaussian(@p) AS g;`, "expects 2 arguments"},
		{"vg column arg", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT Gaussian(somecol, 1) AS g;`, "column reference"},
		{"nested vg", `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
			SELECT Gaussian(Gaussian(@p, 1), 1) AS g;`, "nested VG"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, reg)
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestCompileNilRegistry(t *testing.T) {
	if _, err := Compile("SELECT 1;", nil); err == nil {
		t.Error("nil registry should error")
	}
}

func TestCompileParseErrorPropagates(t *testing.T) {
	if _, err := Compile("SELEC 1;", testRegistry(t)); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestAddTable(t *testing.T) {
	scn := compileFigure2(t)
	tbl, err := sqlengine.NewTable("regions", []string{"name", "share"}, [][]value.Value{
		{value.Str("east"), value.Float(0.6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := scn.AddTable(tbl); err == nil {
		t.Error("duplicate table should error")
	}
	if err := scn.AddTable(nil); err == nil {
		t.Error("nil table should error")
	}
	reserved, _ := sqlengine.NewTable(WorldsTable, []string{"a"}, nil)
	if err := scn.AddTable(reserved); err == nil {
		t.Error("reserved name should error")
	}
	if len(scn.StaticTables) != 1 {
		t.Errorf("static tables = %d", len(scn.StaticTables))
	}
}

func TestScalarBuiltinArgsAllowed(t *testing.T) {
	src := `
DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;
SELECT Gaussian(ABS(@w - 3), 1) AS g;`
	scn, err := Compile(src, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	pt := guide.Point{"w": value.Int(1)}
	vals, key, err := scn.Sites[0].ArgValues(pt)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := vals[0].AsFloat(); f != 2 {
		t.Errorf("ABS(@w-3) at w=1 = %v", vals[0])
	}
	if key != "(2,1)" {
		t.Errorf("key = %q", key)
	}
}

// TestPlanSharedAcrossRecompiles asserts the compiled-plan cache carries
// plans across re-compilations of identical content — the fpserver
// re-registration path: a planner re-deploying an unchanged scenario must
// pick up the already-warm execution plan, not compile a cold one.
func TestPlanSharedAcrossRecompiles(t *testing.T) {
	reg := testRegistry(t)
	a, err := Compile(figure2, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Whitespace-only differences share a fingerprint and must share a plan.
	b, err := Compile(figure2+"\n\n", reg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan() == nil {
		t.Fatal("nil plan")
	}
	if a.Plan() != b.Plan() {
		t.Error("re-compiled identical scenario did not share the cached plan")
	}
	if a.Plan() != a.Plan() {
		t.Error("Plan is not stable per scenario")
	}
	// A genuinely different script must not share.
	c, err := Compile(strings.Replace(figure2, "@feature AS SET (12,36,44)", "@feature AS SET (12,36)", 1), reg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan() == a.Plan() {
		t.Error("different scenarios share one plan")
	}
}

// TestPlanMatchesGeneratedSQL asserts executing the compiled plan with
// parameter bindings is exactly the generated-SQL render: same columns,
// same per-world values.
func TestPlanMatchesGeneratedSQL(t *testing.T) {
	scn, err := Compile(figure2, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	pt := scn.DefaultPoint()
	sql, err := scn.GenerateSQL(pt)
	if err != nil {
		t.Fatal(err)
	}
	script, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny deterministic worlds table: the engine does not care that the
	// samples came from a test vector.
	worlds := 16
	cols := []string{WorldColumn}
	ord := make([]int64, worlds)
	demand := make([]float64, worlds)
	capacity := make([]float64, worlds)
	for i := 0; i < worlds; i++ {
		ord[i] = int64(i)
		demand[i] = float64(40000 + 1000*i)
		capacity[i] = float64(52000 - 500*i)
	}
	columns := []*sqlengine.Column{sqlengine.IntColumn(ord)}
	cols = append(cols, scn.Sites[0].Column, scn.Sites[1].Column)
	columns = append(columns, sqlengine.FloatColumn(demand), sqlengine.FloatColumn(capacity))
	wt, err := sqlengine.NewColTable(WorldsTable, cols, columns)
	if err != nil {
		t.Fatal(err)
	}
	mkEngine := func() *sqlengine.Engine {
		cat := sqlengine.NewCatalog()
		cat.PutColumns(wt)
		return sqlengine.New(cat)
	}
	ref, err := mkEngine().ExecScript(script, nil)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := scn.Plan().Exec(mkEngine(), pt)
	if err != nil {
		t.Fatal(err)
	}
	got := pres.Result()
	pres.Release()
	if strings.Join(got.Cols, ",") != strings.Join(ref.Cols, ",") {
		t.Fatalf("cols %v vs %v", got.Cols, ref.Cols)
	}
	if len(got.Rows) != len(ref.Rows) {
		t.Fatalf("%d vs %d rows", len(got.Rows), len(ref.Rows))
	}
	for i := range got.Rows {
		for j := range got.Cols {
			a, b := got.Rows[i][j], ref.Rows[i][j]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
				t.Fatalf("world %d col %s: plan %v vs generated-SQL %v", i, got.Cols[j], a, b)
			}
		}
	}
}
