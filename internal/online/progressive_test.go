package online

import (
	"context"
	"strings"
	"testing"

	"fuzzyprophet/internal/value"
)

func TestRenderProgressiveRefines(t *testing.T) {
	s := newSession(t, 256)
	var worldsSeen []int
	g, err := s.RenderProgressive(context.Background(), 32, func(g *Graph, worlds int) bool {
		worldsSeen = append(worldsSeen, worlds)
		if len(g.X) != 53 {
			t.Errorf("frame at %d worlds has %d points", worlds, len(g.X))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{32, 64, 128, 256}
	if len(worldsSeen) != len(want) {
		t.Fatalf("frames = %v, want %v", worldsSeen, want)
	}
	for i := range want {
		if worldsSeen[i] != want[i] {
			t.Fatalf("frames = %v, want %v", worldsSeen, want)
		}
	}
	if g == nil || len(g.Series) != 3 {
		t.Fatal("final frame missing")
	}
}

func TestRenderProgressiveEarlyStop(t *testing.T) {
	s := newSession(t, 256)
	frames := 0
	_, err := s.RenderProgressive(context.Background(), 32, func(g *Graph, worlds int) bool {
		frames++
		return frames < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if frames != 2 {
		t.Errorf("frames = %d, want 2", frames)
	}
}

func TestRenderProgressiveValidation(t *testing.T) {
	s := newSession(t, 64)
	if _, err := s.RenderProgressive(context.Background(), 32, nil); err == nil {
		t.Error("nil callback should error")
	}
	// startWorlds above the cap clamps to a single frame.
	frames := 0
	if _, err := s.RenderProgressive(context.Background(), 9999, func(*Graph, int) bool {
		frames++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if frames != 1 {
		t.Errorf("frames = %d, want 1", frames)
	}
}

func TestExplorationMap(t *testing.T) {
	s := newSession(t, 30)
	// Nothing explored yet.
	grid, err := s.ExplorationMap("purchase1", "purchase2")
	if err != nil {
		t.Fatal(err)
	}
	counts := grid.Counts()
	if counts['.'] != 14*14 {
		t.Fatalf("fresh map counts = %v", counts)
	}

	// A render marks the current pins.
	if _, err := s.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A prefetch marks neighbors.
	if _, err := s.Prefetch(context.Background(), []string{"purchase1"}, 1); err != nil {
		t.Fatal(err)
	}
	grid, err = s.ExplorationMap("purchase1", "purchase2")
	if err != nil {
		t.Fatal(err)
	}
	counts = grid.Counts()
	if counts['#'] != 1 { // rendered cell
		t.Errorf("rendered cells = %d, want 1 (%v)", counts['#'], counts)
	}
	if counts['o'] != 1 { // prefetched neighbor (focus itself is rendered)
		t.Errorf("prefetched cells = %d, want 1 (%v)", counts['o'], counts)
	}
	out := grid.Render()
	if !strings.Contains(out, "@purchase1") || !strings.Contains(out, "@purchase2") {
		t.Errorf("map labels missing:\n%s", out)
	}
}

func TestExplorationMapValidation(t *testing.T) {
	s := newSession(t, 10)
	if _, err := s.ExplorationMap("current", "purchase1"); err == nil {
		t.Error("axis as dimension should error")
	}
	if _, err := s.ExplorationMap("purchase1", "purchase1"); err == nil {
		t.Error("duplicate dimension should error")
	}
	if _, err := s.ExplorationMap("purchase1", "nope"); err == nil {
		t.Error("unknown dimension should error")
	}
}

func TestExplorationMapTracksMoves(t *testing.T) {
	s := newSession(t, 20)
	if _, err := s.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.SetParam("purchase1", value.Int(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	grid, err := s.ExplorationMap("purchase1", "purchase2")
	if err != nil {
		t.Fatal(err)
	}
	if got := grid.Counts()['#']; got != 2 {
		t.Errorf("rendered cells = %d, want 2", got)
	}
}
