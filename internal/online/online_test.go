package online

import (
	"context"
	"math"
	"strings"
	"testing"

	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/storage"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

const figure2 = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current EXPECT overload WITH bold red, EXPECT capacity WITH blue y2, EXPECT_STDDEV demand WITH orange y2;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < 0.01 GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`

func newSession(t *testing.T, worlds int) *Session {
	t.Helper()
	reg := vg.NewRegistry()
	if err := vg.RegisterBuiltins(reg); err != nil {
		t.Fatal(err)
	}
	if err := models.RegisterDefaults(reg); err != nil {
		t.Fatal(err)
	}
	scn, err := scenario.Compile(figure2, reg)
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := mc.NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(scn, mc.Options{Worlds: worlds, Reuse: reuse})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionRequiresGraph(t *testing.T) {
	reg := vg.NewRegistry()
	if err := vg.RegisterBuiltins(reg); err != nil {
		t.Fatal(err)
	}
	scn, err := scenario.Compile("DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1; SELECT Gaussian(@p, 1) AS g;", reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(scn, mc.Options{Worlds: 10}); err == nil {
		t.Error("scenario without GRAPH should be rejected")
	}
}

func TestSetParamValidation(t *testing.T) {
	s := newSession(t, 20)
	if err := s.SetParam("current", value.Int(5)); err == nil {
		t.Error("axis parameter must not be settable")
	}
	if err := s.SetParam("nope", value.Int(5)); err == nil {
		t.Error("unknown parameter must error")
	}
	if err := s.SetParam("purchase1", value.Int(3)); err == nil {
		t.Error("off-grid value must error (step is 4)")
	}
	if err := s.SetParam("purchase1", value.Int(8)); err != nil {
		t.Error(err)
	}
	v, ok := s.Param("purchase1")
	if !ok || !v.Equal(value.Int(8)) {
		t.Errorf("param = %v, %v", v, ok)
	}
	if s.Axis() != "current" {
		t.Errorf("axis = %s", s.Axis())
	}
}

func TestFirstRenderShape(t *testing.T) {
	s := newSession(t, 150)
	if err := s.SetParam("purchase1", value.Int(12)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetParam("purchase2", value.Int(24)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetParam("feature", value.Int(36)); err != nil {
		t.Fatal(err)
	}
	g, err := s.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.X) != 53 {
		t.Fatalf("x points = %d", len(g.X))
	}
	if len(g.Series) != 3 {
		t.Fatalf("series = %d", len(g.Series))
	}
	if g.Series[0].Name != "EXPECT overload" {
		t.Errorf("series0 = %s", g.Series[0].Name)
	}
	if !g.Series[1].SecondAxis {
		t.Error("capacity series should be on y2")
	}
	// First render computes everything.
	if g.Stats.Recomputed != 53 || g.Stats.Unchanged != 0 {
		t.Errorf("first render stats = %+v", g.Stats)
	}
	// Shape: overload ~0 early.
	over := g.Series[0].Points
	if over[2].Y > 0.05 {
		t.Errorf("early overload = %g", over[2].Y)
	}
	// Capacity jumps after purchases: late capacity > early capacity.
	capSeries := g.Series[1].Points
	if capSeries[50].Y <= capSeries[2].Y {
		t.Errorf("capacity should grow with purchases: %g vs %g", capSeries[50].Y, capSeries[2].Y)
	}
}

func TestSecondRenderIsUnchanged(t *testing.T) {
	s := newSession(t, 60)
	if _, err := s.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	g, err := s.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.Unchanged != 53 || g.Stats.Recomputed != 0 {
		t.Errorf("identical re-render stats = %+v", g.Stats)
	}
}

// The paper's §3.2 claim: after an adjustment, only portions of the graph
// are re-rendered.
func TestAdjustmentRecomputesOnlyPortions(t *testing.T) {
	s := newSession(t, 60)
	if err := s.SetParam("purchase1", value.Int(16)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetParam("purchase2", value.Int(32)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Move purchase1 by one step.
	if err := s.SetParam("purchase1", value.Int(20)); err != nil {
		t.Fatal(err)
	}
	g, err := s.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	frac := g.Stats.RecomputedFraction()
	if frac >= 0.75 {
		t.Errorf("recomputed fraction = %g, want well under 1 (stats %+v)", frac, g.Stats)
	}
	if g.Stats.Recomputed == 0 {
		t.Error("moving a purchase inside the year must recompute some weeks")
	}
	if g.Stats.Remapped == 0 {
		t.Error("expected some weeks to be served by mappings")
	}
}

// Changing the feature date exploits demand-model mappings, the paper's
// "despite the slope of the usage graph changing" example.
func TestFeatureDateChangeReusesWeeks(t *testing.T) {
	s := newSession(t, 60)
	if err := s.SetParam("feature", value.Int(12)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.SetParam("feature", value.Int(36)); err != nil {
		t.Fatal(err)
	}
	g, err := s.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Weeks before 12 and weeks at/after 43 (both ramps complete) are
	// identity-mapped; only the middle needs simulation.
	if g.Stats.Recomputed >= 40 {
		t.Errorf("feature change recomputed %d weeks, want fewer", g.Stats.Recomputed)
	}
}

// Correctness under reuse: the rendered series with a warm cache matches a
// cold render at the same point.
func TestReusedRenderMatchesColdRender(t *testing.T) {
	warm := newSession(t, 60)
	if _, err := warm.Render(context.Background()); err != nil { // purchase1=0
		t.Fatal(err)
	}
	if err := warm.SetParam("purchase1", value.Int(4)); err != nil {
		t.Fatal(err)
	}
	gWarm, err := warm.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cold := newSession(t, 60)
	if err := cold.SetParam("purchase1", value.Int(4)); err != nil {
		t.Fatal(err)
	}
	gCold, err := cold.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for si := range gCold.Series {
		for pi := range gCold.Series[si].Points {
			a := gWarm.Series[si].Points[pi].Y
			b := gCold.Series[si].Points[pi].Y
			if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
				t.Fatalf("series %s week %d: warm %g vs cold %g",
					gCold.Series[si].Name, pi, a, b)
			}
		}
	}
}

func TestPrefetchWarmsNeighbors(t *testing.T) {
	s := newSession(t, 30)
	if _, err := s.Render(context.Background()); err != nil {
		t.Fatal(err)
	}
	n, err := s.Prefetch(context.Background(), []string{"purchase1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("prefetch evaluated nothing")
	}
	// Now moving to the prefetched neighbor renders without any fresh
	// simulation.
	if err := s.SetParam("purchase1", value.Int(4)); err != nil {
		t.Fatal(err)
	}
	g, err := s.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.Recomputed != 0 {
		t.Errorf("after prefetch, recomputed = %d, want 0 (%+v)", g.Stats.Recomputed, g.Stats)
	}
}

func TestTimeToFirstAccurateGuess(t *testing.T) {
	s := newSession(t, 400)
	elapsed, worlds, err := s.TimeToFirstAccurateGuess(context.Background(), 0.25, 50)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("elapsed must be positive")
	}
	if worlds < 50 || worlds > 400 {
		t.Errorf("worlds = %d", worlds)
	}
}

func TestChartRendering(t *testing.T) {
	s := newSession(t, 30)
	g, err := s.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Chart(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "EXPECT overload") {
		t.Errorf("chart missing series name:\n%s", out)
	}
	if !strings.Contains(out, "@current") {
		t.Errorf("chart missing axis label:\n%s", out)
	}
	if !strings.Contains(out, "recomputed") {
		t.Errorf("chart missing render stats:\n%s", out)
	}
}

func TestRenderStatsFraction(t *testing.T) {
	r := RenderStats{Points: 50, Recomputed: 10}
	if got := r.RecomputedFraction(); got != 0.2 {
		t.Errorf("fraction = %g", got)
	}
	if (RenderStats{}).RecomputedFraction() != 0 {
		t.Error("empty fraction should be 0")
	}
}
