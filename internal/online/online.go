// Package online implements Fuzzy Prophet's online mode (paper §3.2): an
// interactive session where the user adjusts parameter "sliders" and sees a
// live graph of the scenario's per-X-value statistics.
//
// The session keeps the fingerprint-reuse engine warm across adjustments,
// so after the first render "only portions of the graph changed by the
// adjustment are re-rendered (implying that only a small portion of the
// output statistics is recomputed)" — the RenderStats returned with each
// graph quantify exactly that claim. The session can also prefetch points
// around the current slider positions, the paper's "values [that] are
// proactively being explored anticipating their future usage".
//
// A Session is safe for concurrent use: slider state is mutex-guarded and
// every render works from a snapshot of the pins taken at its start, with
// its own evaluator over the shared (lock-protected) reuse engine. SetParam
// from one goroutine never races a Render in another; the render simply
// reflects whichever pins it snapshotted.
//
// Two scenario-level caches make repeat renders cheap: the fingerprint
// reuse engine skips re-simulating unchanged worlds, and the scenario's
// compiled execution plan (scenario.Plan) is shared by every render and
// prefetch — a slider move re-executes pre-bound kernels over pooled
// column buffers instead of re-walking the rewritten query's expression
// tree, so the per-point SQL cost is parse-free and allocation-free after
// the first frame.
package online

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fuzzyprophet/internal/aggregate"
	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/viz"
)

// Session is one interactive exploration of a scenario's graph.
type Session struct {
	scn  *scenario.Scenario
	opts mc.Options // effective (defaults applied); Reuse is shared
	axis string

	mu   sync.Mutex
	pins guide.Point
	// explored records pin combinations that have been rendered or
	// prefetched, keyed by core.PointKey of the pins; the value marks how
	// ('R' rendered, 'p' prefetched). It feeds the exploration map the
	// paper's GUI shows next to the chart.
	explored map[string]byte
	// stats accumulates per-session render/prefetch totals for monitoring.
	stats SessionStats
}

// SessionStats are cumulative per-session counters: how many renders the
// session served, the wall-clock simulation time they cost, and how many
// (point, week) evaluations prefetching performed. A metrics endpoint can
// derive mean render latency and prefetch pressure from them.
type SessionStats struct {
	// Renders counts completed Render/RenderProgressive passes.
	Renders int64
	// RenderElapsed is the summed wall-clock time of those passes.
	RenderElapsed time.Duration
	// PointsRendered is the total X positions evaluated across renders.
	PointsRendered int64
	// PrefetchedPoints is the total (point, week) evaluations done by
	// Prefetch calls.
	PrefetchedPoints int64
}

// Stats returns a snapshot of the session's cumulative counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// NewSession opens a session over a compiled scenario that declares a GRAPH
// statement. Slider positions start at each parameter's first declared
// value. Pass an mc.Options with a Reuse engine to enable fingerprint reuse
// (strongly recommended; it is the point of the system).
func NewSession(scn *scenario.Scenario, opts mc.Options) (*Session, error) {
	if scn.Graph == nil {
		return nil, fmt.Errorf("online: scenario has no GRAPH statement")
	}
	s := &Session{
		scn:      scn,
		opts:     opts.WithDefaults(),
		axis:     scn.Graph.Over,
		pins:     guide.Point{},
		explored: map[string]byte{},
	}
	for _, def := range scn.Space.Params {
		if def.Name != s.axis {
			s.pins[def.Name] = def.Values[0]
		}
	}
	return s, nil
}

// Axis returns the graph's X-axis parameter name.
func (s *Session) Axis() string { return s.axis }

// Param returns the current position of a slider.
func (s *Session) Param(name string) (value.Value, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.pins[name]
	return v, ok
}

// SetParam moves one slider. The axis parameter cannot be pinned, the value
// must belong to the parameter's declared space.
func (s *Session) SetParam(name string, v value.Value) error {
	if name == s.axis {
		return fmt.Errorf("online: @%s is the graph axis, not a slider", name)
	}
	if s.scn.Space.Index(name) < 0 {
		return fmt.Errorf("online: unknown parameter @%s", name)
	}
	if s.scn.Space.IndexOfValue(name, v) < 0 {
		return fmt.Errorf("online: value %s is outside @%s's declared space", v.SQLLiteral(), name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[name] = v
	return nil
}

// snapshotPins copies the current slider positions under the lock; renders
// work from the snapshot so concurrent SetParam calls never race them.
func (s *Session) snapshotPins() guide.Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return clonePoint(s.pins)
}

// markExplored records how a pin combination was visited. A prefetch never
// downgrades a rendered cell.
func (s *Session) markExplored(key string, how byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if how == 'p' && s.explored[key] == 'R' {
		return
	}
	s.explored[key] = how
}

// RenderStats quantifies one render: how much of the graph had to be
// recomputed versus served from the reuse machinery.
type RenderStats struct {
	// Points is the number of X-axis positions rendered.
	Points int
	// Recomputed counts positions where at least one VG site required
	// fresh Monte Carlo simulation.
	Recomputed int
	// Remapped counts positions fully served by fingerprint mappings
	// (identity or affine; no fresh simulation, only fingerprint probes).
	Remapped int
	// Unchanged counts positions where every site was an exact cache hit.
	Unchanged int
	// Elapsed is the wall-clock render time.
	Elapsed time.Duration
	// Degraded marks a frame cut short by the context deadline under
	// mc.Options.AllowDegraded: at least one point's summary covers fewer
	// worlds than requested, or the X sweep stopped before the last
	// position. Degraded frames are honest but lower-confidence; callers
	// should re-render rather than cache them.
	Degraded bool
	// WorldsCompleted is the smallest world count backing any rendered
	// point of a degraded frame (the requested world budget when only the
	// sweep, not the per-point budget, was cut). Zero when Degraded is
	// false.
	WorldsCompleted int
}

// RecomputedFraction is the fraction of the graph that needed fresh
// simulation — the paper's "set of weeks for which the query must be
// recomputed".
func (r RenderStats) RecomputedFraction() float64 {
	if r.Points == 0 {
		return 0
	}
	return float64(r.Recomputed) / float64(r.Points)
}

// SeriesPoint is one X position of one rendered series.
type SeriesPoint struct {
	X float64
	Y float64
	// CI95 is the 95% confidence half-width of Y.
	CI95 float64
}

// GraphSeries is one rendered series (one GRAPH item).
type GraphSeries struct {
	// Name is "AGG column", e.g. "EXPECT overload".
	Name string
	// Agg and Column identify the aggregate and source column.
	Agg    string
	Column string
	// Style carries the scenario's style words verbatim.
	Style []string
	// SecondAxis places the series on the right-hand (y2) scale, from the
	// "y2" style word in the scenario's GRAPH clause.
	SecondAxis bool
	// Points holds the series values in X order.
	Points []SeriesPoint
}

// styleHasY2 reports whether the style words place the series on y2.
func styleHasY2(style []string) bool {
	for _, w := range style {
		if w == "y2" {
			return true
		}
	}
	return false
}

// Graph is one rendered frame of the online interface.
type Graph struct {
	// Axis is the X-axis parameter name.
	Axis string
	// X holds the axis values in order.
	X []float64
	// Series holds one entry per GRAPH item, in scenario order.
	Series []GraphSeries
	// Stats quantifies the render.
	Stats RenderStats
	// Pins is a copy of the slider positions the frame was rendered at.
	Pins guide.Point
}

// Render evaluates the graph at the current slider positions. With a warm
// reuse engine, only X positions genuinely affected by prior adjustments
// cost fresh simulation. The context is checked before every X position;
// a cancelled context aborts the render within one world-batch.
func (s *Session) Render(ctx context.Context) (*Graph, error) {
	return s.renderWith(ctx, s.opts)
}

// renderWith renders one frame under the given options, from a snapshot of
// the current pins. Each render evaluates through its own mc.Evaluator (the
// possible-worlds table is evaluator-local state); only the lock-protected
// reuse engine is shared, so concurrent renders are safe.
func (s *Session) renderWith(ctx context.Context, opts mc.Options) (*Graph, error) {
	start := time.Now()
	pins := s.snapshotPins()
	points, err := s.scn.Space.Sweep(s.axis, pins)
	if err != nil {
		return nil, err
	}
	ev := mc.NewEvaluator(s.scn, opts)
	g := &Graph{Axis: s.axis, Pins: clonePoint(pins)}
	for _, item := range s.scn.Graph.Items {
		g.Series = append(g.Series, GraphSeries{
			Name:       item.Agg + " " + item.Column,
			Agg:        item.Agg,
			Column:     item.Column,
			Style:      item.Style,
			SecondAxis: styleHasY2(item.Style),
		})
	}
	minWorlds := opts.Worlds
	for _, pt := range points {
		if err := ctx.Err(); err != nil {
			// Deadline mid-sweep: with AllowDegraded, the positions already
			// rendered form a valid (shorter) frame — return it flagged
			// degraded instead of discarding the work.
			if opts.AllowDegraded && len(g.X) > 0 {
				g.Stats.Degraded = true
				break
			}
			return nil, err
		}
		x, err := pt[s.axis].AsFloat()
		if err != nil {
			return nil, fmt.Errorf("online: non-numeric axis value %s", pt[s.axis].SQLLiteral())
		}
		res, err := ev.EvaluatePoint(ctx, pt)
		if err != nil {
			if opts.AllowDegraded && ctx.Err() != nil && len(g.X) > 0 {
				g.Stats.Degraded = true
				break
			}
			return nil, err
		}
		if res.Degraded {
			g.Stats.Degraded = true
			if res.WorldsCompleted < minWorlds {
				minWorlds = res.WorldsCompleted
			}
		}
		g.X = append(g.X, x)
		classify(res, &g.Stats)
		lookup, err := columnStats(res)
		if err != nil {
			return nil, err
		}
		for i := range g.Series {
			col, ok := lookup(g.Series[i].Column)
			if !ok {
				return nil, fmt.Errorf("online: missing column %q", g.Series[i].Column)
			}
			y, err := col.Metric(g.Series[i].Agg)
			if err != nil {
				return nil, err
			}
			g.Series[i].Points = append(g.Series[i].Points, SeriesPoint{X: x, Y: y, CI95: col.CI95()})
		}
	}
	g.Stats.Points = len(g.X)
	if g.Stats.Degraded {
		g.Stats.WorldsCompleted = minWorlds
	}
	g.Stats.Elapsed = time.Since(start)
	s.markExplored(core.PointKey(pins), 'R')
	s.mu.Lock()
	s.stats.Renders++
	s.stats.RenderElapsed += g.Stats.Elapsed
	s.stats.PointsRendered += int64(len(g.X))
	s.mu.Unlock()
	return g, nil
}

// RenderProgressive delivers the paper's "live, progressively refined view":
// it renders the graph at increasing world counts (starting at startWorlds,
// doubling up to the session's configured world count), invoking frame
// after each pass with the refined graph and the world count used. Return
// false from frame to stop early. The final rendered frame is returned.
func (s *Session) RenderProgressive(ctx context.Context, startWorlds int, frame func(g *Graph, worlds int) bool) (*Graph, error) {
	if frame == nil {
		return nil, fmt.Errorf("online: RenderProgressive needs a frame callback")
	}
	maxWorlds := s.opts.Worlds
	worlds := startWorlds
	if worlds <= 0 {
		worlds = 64
	}
	if worlds > maxWorlds {
		worlds = maxWorlds
	}
	var last *Graph
	for {
		opts := s.opts
		opts.Worlds = worlds
		g, err := s.renderWith(ctx, opts)
		if err != nil {
			return nil, err
		}
		last = g
		if !frame(g, worlds) || worlds >= maxWorlds {
			return last, nil
		}
		worlds *= 2
		if worlds > maxWorlds {
			worlds = maxWorlds
		}
	}
}

// ExplorationCell classifies one cell of the exploration map.
type ExplorationCell byte

// Exploration map cell states.
const (
	// CellUnexplored: never evaluated.
	CellUnexplored ExplorationCell = '.'
	// CellRendered: the user rendered the graph at these pins.
	CellRendered ExplorationCell = 'R'
	// CellPrefetched: evaluated proactively, anticipating future use.
	CellPrefetched ExplorationCell = 'p'
)

// ExplorationMap renders the paper's parameter-space grid ("with which
// parameter values have already been explored and which values are
// proactively being explored"): a 2-D slice over two slider parameters,
// every other slider held at its current position.
func (s *Session) ExplorationMap(rowParam, colParam string) (*viz.MapGrid, error) {
	if rowParam == s.axis || colParam == s.axis {
		return nil, fmt.Errorf("online: the graph axis @%s cannot be a map dimension", s.axis)
	}
	ri := s.scn.Space.Index(rowParam)
	ci := s.scn.Space.Index(colParam)
	if ri < 0 || ci < 0 || rowParam == colParam {
		return nil, fmt.Errorf("online: exploration map needs two distinct slider parameters")
	}
	rowVals := s.scn.Space.Params[ri].Values
	colVals := s.scn.Space.Params[ci].Values
	rowLabels := make([]string, len(rowVals))
	colLabels := make([]string, len(colVals))
	for i, v := range rowVals {
		rowLabels[i] = v.SQLLiteral()
	}
	for j, v := range colVals {
		colLabels[j] = v.SQLLiteral()
	}
	grid := viz.NewMapGrid(
		fmt.Sprintf("explored parameter space (@%s × @%s)", rowParam, colParam),
		"@"+rowParam, "@"+colParam, rowLabels, colLabels)
	pins := s.snapshotPins()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, rv := range rowVals {
		for j, cv := range colVals {
			cell := clonePoint(pins)
			cell[rowParam] = rv
			cell[colParam] = cv
			switch s.explored[core.PointKey(cell)] {
			case 'R':
				grid.Set(i, j, viz.CellComputed)
			case 'p':
				grid.Set(i, j, viz.CellCached)
			default:
				grid.Set(i, j, viz.CellUnexplored)
			}
		}
	}
	return grid, nil
}

func classify(res *mc.PointResult, stats *RenderStats) {
	fresh, mapped := false, false
	for _, kind := range res.SiteOutcome {
		switch kind {
		case mc.Computed:
			fresh = true
		case mc.Identity, mc.Affine:
			mapped = true
		}
	}
	switch {
	case fresh:
		stats.Recomputed++
	case mapped:
		stats.Remapped++
	default:
		stats.Unchanged++
	}
}

// numericColumns lists the point result's aggregatable columns (categorical
// string columns are excluded by the executor).
func numericColumns(res *mc.PointResult) []string {
	out := make([]string, 0, len(res.Columns))
	for col := range res.Columns {
		out = append(out, col)
	}
	return out
}

// columnStats returns a per-column aggregate lookup for one point result:
// sample vectors are folded into fresh stats when present; on sketch-only
// renders (mc.Options.SketchOnly — wire protocol v2's compressed response
// mode) the merged sketches are read directly, so the graph's moments are
// exact and its quantile series carry the t-digest error bound.
func columnStats(res *mc.PointResult) (func(string) (*aggregate.ColumnStats, bool), error) {
	if len(res.Columns) == 0 && len(res.Sketches) > 0 {
		return func(col string) (*aggregate.ColumnStats, bool) {
			cs, ok := res.Sketches[col]
			return cs, ok
		}, nil
	}
	stats := aggregate.NewPointStats(numericColumns(res))
	for col, samples := range res.Columns {
		if err := stats.AddSamples(col, samples); err != nil {
			return nil, err
		}
	}
	return stats.Column, nil
}

func clonePoint(p guide.Point) guide.Point {
	out := make(guide.Point, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Prefetch proactively evaluates the graph at slider positions adjacent to
// the current ones (radius index steps along the given axes; nil means all
// sliders), warming the reuse store for the user's likely next adjustments.
// It returns the number of (point, week) evaluations performed. The context
// is checked before every evaluated point, so a cancelled prefetch stops
// promptly, keeping whatever it already warmed.
func (s *Session) Prefetch(ctx context.Context, axes []string, radius int) (int, error) {
	focus := s.snapshotPins()
	// Complete the focus with an arbitrary axis value; the axis itself is
	// excluded from the movable dimensions.
	focus[s.axis] = s.scn.Space.Params[s.scn.Space.Index(s.axis)].Values[0]
	movable := axes
	if movable == nil {
		for _, def := range s.scn.Space.Params {
			if def.Name != s.axis {
				movable = append(movable, def.Name)
			}
		}
	}
	strategy, err := guide.NewNeighborhood(s.scn.Space, focus, radius, movable)
	if err != nil {
		return 0, err
	}
	ev := mc.NewEvaluator(s.scn, s.opts)
	evaluated := 0
	for {
		neighbor, ok := strategy.Next()
		if !ok {
			break
		}
		pins := clonePoint(neighbor)
		delete(pins, s.axis)
		sweep, err := s.scn.Space.Sweep(s.axis, pins)
		if err != nil {
			return evaluated, err
		}
		for _, pt := range sweep {
			if err := ctx.Err(); err != nil {
				return evaluated, err
			}
			if _, err := ev.EvaluatePoint(ctx, pt); err != nil {
				return evaluated, err
			}
			evaluated++
		}
		s.markExplored(core.PointKey(pins), 'p')
	}
	s.mu.Lock()
	s.stats.PrefetchedPoints += int64(evaluated)
	s.mu.Unlock()
	return evaluated, nil
}

// TimeToFirstAccurateGuess runs progressively larger world counts at the
// current sliders until every series converges (CI95 within eps relative),
// returning the elapsed time and the world count used. It measures the
// paper's "a few dozen seconds to generate accurate statistics" claim
// (experiment E1).
func (s *Session) TimeToFirstAccurateGuess(ctx context.Context, eps float64, minWorlds int) (time.Duration, int, error) {
	start := time.Now()
	pins := s.snapshotPins()
	points, err := s.scn.Space.Sweep(s.axis, pins)
	if err != nil {
		return 0, 0, err
	}
	worlds := minWorlds
	if worlds <= 0 {
		worlds = 100
	}
	maxWorlds := s.opts.Worlds
	for {
		opts := s.opts
		opts.Worlds = worlds
		probe := mc.NewEvaluator(s.scn, opts)
		allConverged := true
		for _, pt := range points {
			if err := ctx.Err(); err != nil {
				return 0, 0, err
			}
			res, err := probe.EvaluatePoint(ctx, pt)
			if err != nil {
				return 0, 0, err
			}
			stats := aggregate.NewPointStats(numericColumns(res))
			for col, samples := range res.Columns {
				if err := stats.AddSamples(col, samples); err != nil {
					return 0, 0, err
				}
			}
			if !stats.Converged(eps, int64(worlds/2)) {
				allConverged = false
				break
			}
		}
		if allConverged || worlds >= maxWorlds {
			return time.Since(start), worlds, nil
		}
		worlds *= 2
		if worlds > maxWorlds {
			worlds = maxWorlds
		}
	}
}

// Chart renders a graph frame as an ASCII chart in the style of Figure 3,
// including each series' 95% confidence band (the ':' shading around a
// line) when the frame carries CI half-widths.
func Chart(g *Graph, height int) (string, error) {
	symbols := []byte{'*', 'c', 'd', '+', 'x', 'o'}
	chart := &viz.LineChart{
		Title: fmt.Sprintf("GRAPH OVER @%s   [recomputed %d/%d weeks, remapped %d, unchanged %d, %v]",
			g.Axis, g.Stats.Recomputed, g.Stats.Points, g.Stats.Remapped, g.Stats.Unchanged, g.Stats.Elapsed.Round(time.Millisecond)),
		XLabel: "@" + g.Axis,
		Height: height,
	}
	for i, series := range g.Series {
		ys := make([]float64, len(series.Points))
		cis := make([]float64, len(series.Points))
		anyCI := false
		for j, p := range series.Points {
			ys[j] = p.Y
			cis[j] = p.CI95
			if p.CI95 > 0 {
				anyCI = true
			}
		}
		if !anyCI {
			cis = nil
		}
		chart.Series = append(chart.Series, viz.Series{
			Name:       series.Name,
			Y:          ys,
			CIHalf:     cis,
			Symbol:     symbols[i%len(symbols)],
			SecondAxis: series.SecondAxis,
		})
	}
	return chart.Render()
}
