package viz

import "encoding/json"

// JSON encodings of the two visualizations, for clients that draw with
// real widgets instead of terminal characters — the fpserver HTTP layer
// serves these where the CLIs print the ASCII renderings.

// String names the cell kind for structured output.
func (k CellKind) String() string {
	switch k {
	case CellComputed:
		return "computed"
	case CellIdentity:
		return "identity"
	case CellAffine:
		return "affine"
	case CellCached:
		return "cached"
	default:
		return "unexplored"
	}
}

// MarshalJSON encodes the map grid with named cell kinds, so a client can
// color Figure 4 without knowing the ASCII legend.
func (g *MapGrid) MarshalJSON() ([]byte, error) {
	cells := make([][]string, len(g.Cells))
	for i, row := range g.Cells {
		cells[i] = make([]string, len(row))
		for j, k := range row {
			cells[i][j] = k.String()
		}
	}
	return json.Marshal(struct {
		Title     string     `json:"title"`
		RowLabel  string     `json:"row_label"`
		ColLabel  string     `json:"col_label"`
		RowValues []string   `json:"row_values"`
		ColValues []string   `json:"col_values"`
		Cells     [][]string `json:"cells"`
	}{g.Title, g.RowLabel, g.ColLabel, g.RowValues, g.ColValues, cells})
}

// MarshalJSON encodes the chart's series data (not its rendered text):
// per-series Y vectors, optional CI95 half-widths and axis placement.
func (c *LineChart) MarshalJSON() ([]byte, error) {
	type seriesJSON struct {
		Name       string    `json:"name"`
		Y          []float64 `json:"y"`
		CI95       []float64 `json:"ci95,omitempty"`
		SecondAxis bool      `json:"second_axis,omitempty"`
	}
	series := make([]seriesJSON, len(c.Series))
	for i, s := range c.Series {
		series[i] = seriesJSON{Name: s.Name, Y: s.Y, CI95: s.CIHalf, SecondAxis: s.SecondAxis}
	}
	return json.Marshal(struct {
		Title  string       `json:"title"`
		XLabel string       `json:"x_label"`
		Series []seriesJSON `json:"series"`
	}{c.Title, c.XLabel, series})
}
