package viz

import (
	"strings"
	"testing"
)

func TestLineChartBasic(t *testing.T) {
	c := &LineChart{
		Title:  "demo",
		XLabel: "week",
		Height: 8,
		Series: []Series{
			{Name: "EXPECT overload", Y: []float64{0, 0.2, 0.5, 0.9, 1}, Symbol: '*'},
			{Name: "EXPECT capacity", Y: []float64{50000, 50000, 58000, 58000, 66000}, Symbol: 'c', SecondAxis: true},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "EXPECT overload (y1)") || !strings.Contains(out, "EXPECT capacity (y2)") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "week: 0 .. 4") {
		t.Errorf("x label missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "c") {
		t.Error("series symbols missing")
	}
	// Monotone series: '*' in the last column must be on a higher row than
	// in the first column.
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, line := range lines {
		if idx := strings.IndexByte(line, '|'); idx >= 0 && strings.HasSuffix(line, "|") {
			body := line[idx+1 : len(line)-1]
			if len(body) == 5 {
				if body[0] == '*' {
					firstRow = i
				}
				if body[4] == '*' {
					lastRow = i
				}
			}
		}
	}
	// The y2 tick breaks HasSuffix on the first/last plot lines; just check
	// we found the low point below the high point when both were seen.
	if firstRow >= 0 && lastRow >= 0 && lastRow >= firstRow {
		t.Errorf("rising series should climb: first at line %d, last at line %d\n%s", firstRow, lastRow, out)
	}
}

func TestLineChartErrors(t *testing.T) {
	if _, err := (&LineChart{}).Render(); err == nil {
		t.Error("empty chart should error")
	}
	c := &LineChart{Series: []Series{{Name: "a", Y: []float64{1, 2}, Symbol: 'a'}, {Name: "b", Y: []float64{1}, Symbol: 'b'}}}
	if _, err := c.Render(); err == nil {
		t.Error("ragged series should error")
	}
	c = &LineChart{Series: []Series{{Name: "a", Y: nil, Symbol: 'a'}}}
	if _, err := c.Render(); err == nil {
		t.Error("no points should error")
	}
}

func TestLineChartFlatSeries(t *testing.T) {
	c := &LineChart{Series: []Series{{Name: "flat", Y: []float64{5, 5, 5}, Symbol: 'f'}}, Height: 5}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "flat (y1)") != 1 {
		t.Errorf("flat series legend:\n%s", out)
	}
	if !strings.Contains(out, "fff") {
		t.Errorf("flat series not drawn:\n%s", out)
	}
}

func TestMapGrid(t *testing.T) {
	g := NewMapGrid("Fig4", "p1", "p2", []string{"0", "4", "8"}, []string{"0", "4"})
	g.Set(0, 0, CellComputed)
	g.Set(0, 1, CellIdentity)
	g.Set(1, 0, CellAffine)
	g.Set(2, 1, CellCached)
	g.Set(99, 99, CellComputed) // ignored
	out := g.Render()
	if !strings.Contains(out, "Fig4") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "|#=|") {
		t.Errorf("row 0 wrong:\n%s", out)
	}
	if !strings.Contains(out, "|~.|") {
		t.Errorf("row 1 wrong:\n%s", out)
	}
	if !strings.Contains(out, "|.o|") {
		t.Errorf("row 2 wrong:\n%s", out)
	}
	counts := g.Counts()
	if counts[CellComputed] != 1 || counts[CellIdentity] != 1 ||
		counts[CellAffine] != 1 || counts[CellCached] != 1 || counts[CellUnexplored] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if !strings.Contains(out, "legend:") {
		t.Error("legend missing")
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("alpha", "1")
	tb.Add("b", "10000")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Errorf("separator wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "alpha") {
		t.Errorf("row wrong: %q", lines[2])
	}
}
