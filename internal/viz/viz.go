// Package viz renders Fuzzy Prophet's two visualizations as text: the
// online-mode graph of Figure 3 (per-week expectation series) and the
// offline-mode parameter-space map of Figure 4 (which points were computed
// versus served by fingerprint mappings). The paper's GUI draws these with
// widgets; the measurable content — the series values and the mapping
// classification — is identical here.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	// Name labels the series in the legend (e.g. "EXPECT overload").
	Name string
	// Y holds the values, parallel to the chart's X axis.
	Y []float64
	// CIHalf, when non-nil, holds the 95% confidence half-width around each
	// Y value; the chart shades the band with ':' in cells the lines leave
	// empty. Nil (or all-zero) draws no band.
	CIHalf []float64
	// Symbol is the single character used to draw the series.
	Symbol byte
	// SecondAxis places the series on the right-hand (y2) scale, like the
	// "y2" style word in Figure 2's GRAPH clause.
	SecondAxis bool
}

// LineChart renders one or more series over a shared integer X axis.
type LineChart struct {
	Title  string
	XLabel string
	Height int // plot rows (default 16)
	Series []Series
}

// Render draws the chart. Series on the primary axis share the left scale;
// y2 series share the right scale. X positions map 1:1 to columns.
func (c *LineChart) Render() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("viz: chart has no series")
	}
	width := 0
	for _, s := range c.Series {
		if len(s.Y) > width {
			width = len(s.Y)
		}
	}
	if width == 0 {
		return "", fmt.Errorf("viz: chart has no points")
	}
	for _, s := range c.Series {
		if len(s.Y) != width {
			return "", fmt.Errorf("viz: series %q has %d points, want %d", s.Name, len(s.Y), width)
		}
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}

	lo1, hi1 := rangeOf(c.Series, false)
	lo2, hi2 := rangeOf(c.Series, true)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowFor := func(y, lo, span float64) int {
		row := int(math.Round((y - lo) / span * float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	// Confidence bands first, so every series line overdraws the shading.
	for _, s := range c.Series {
		if len(s.CIHalf) == 0 {
			continue
		}
		lo, hi := lo1, hi1
		if s.SecondAxis {
			lo, hi = lo2, hi2
		}
		span := hi - lo
		if span == 0 {
			span = 1
		}
		for x, y := range s.Y {
			if math.IsNaN(y) || x >= len(s.CIHalf) || s.CIHalf[x] <= 0 {
				continue
			}
			for row := rowFor(y-s.CIHalf[x], lo, span); row <= rowFor(y+s.CIHalf[x], lo, span); row++ {
				if grid[height-1-row][x] == ' ' {
					grid[height-1-row][x] = ':'
				}
			}
		}
	}
	for _, s := range c.Series {
		lo, hi := lo1, hi1
		if s.SecondAxis {
			lo, hi = lo2, hi2
		}
		span := hi - lo
		if span == 0 {
			span = 1
		}
		for x, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			grid[height-1-rowFor(y, lo, span)][x] = s.Symbol
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	leftW := 10
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			sb.WriteString(padLeft(formatTick(hi1), leftW))
		case height - 1:
			sb.WriteString(padLeft(formatTick(lo1), leftW))
		default:
			sb.WriteString(strings.Repeat(" ", leftW))
		}
		sb.WriteString(" |")
		sb.Write(grid[r])
		sb.WriteString("|")
		if hasSecondAxis(c.Series) {
			switch r {
			case 0:
				sb.WriteString(" " + formatTick(hi2))
			case height - 1:
				sb.WriteString(" " + formatTick(lo2))
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", leftW))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteString("+\n")
	if c.XLabel != "" {
		sb.WriteString(strings.Repeat(" ", leftW+2))
		sb.WriteString(fmt.Sprintf("%s: 0 .. %d\n", c.XLabel, width-1))
	}
	for _, s := range c.Series {
		axis := "y1"
		if s.SecondAxis {
			axis = "y2"
		}
		sb.WriteString(fmt.Sprintf("  %c  %s (%s)\n", s.Symbol, s.Name, axis))
	}
	return sb.String(), nil
}

func hasSecondAxis(ss []Series) bool {
	for _, s := range ss {
		if s.SecondAxis {
			return true
		}
	}
	return false
}

func rangeOf(ss []Series, second bool) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	found := false
	for _, s := range ss {
		if s.SecondAxis != second {
			continue
		}
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			found = true
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if !found {
		return 0, 1
	}
	if lo == hi {
		// Flat series: widen so the line draws mid-chart.
		lo, hi = lo-1, hi+1
	}
	return lo, hi
}

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 10000:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// CellKind classifies one parameter-space point in the Figure 4 map.
type CellKind byte

// Map cell classifications, with their rendered characters.
const (
	CellUnexplored CellKind = '.'
	CellComputed   CellKind = '#'
	CellIdentity   CellKind = '='
	CellAffine     CellKind = '~'
	CellCached     CellKind = 'o'
)

// MapGrid is a 2-D slice of the parameter space (Figure 4): rows and
// columns are the two chosen parameters' value indices; each cell records
// how the point was resolved.
type MapGrid struct {
	Title     string
	RowLabel  string
	ColLabel  string
	RowValues []string
	ColValues []string
	Cells     [][]CellKind // [row][col]
}

// NewMapGrid returns a grid initialized to CellUnexplored.
func NewMapGrid(title, rowLabel, colLabel string, rowValues, colValues []string) *MapGrid {
	cells := make([][]CellKind, len(rowValues))
	for i := range cells {
		cells[i] = make([]CellKind, len(colValues))
		for j := range cells[i] {
			cells[i][j] = CellUnexplored
		}
	}
	return &MapGrid{
		Title: title, RowLabel: rowLabel, ColLabel: colLabel,
		RowValues: rowValues, ColValues: colValues, Cells: cells,
	}
}

// Set classifies cell (row, col); out-of-range indices are ignored.
func (g *MapGrid) Set(row, col int, kind CellKind) {
	if row < 0 || row >= len(g.Cells) || col < 0 || col >= len(g.Cells[row]) {
		return
	}
	g.Cells[row][col] = kind
}

// Counts tallies the cell classifications.
func (g *MapGrid) Counts() map[CellKind]int {
	out := map[CellKind]int{}
	for _, row := range g.Cells {
		for _, c := range row {
			out[c]++
		}
	}
	return out
}

// Render draws the grid with labels and a legend.
func (g *MapGrid) Render() string {
	var sb strings.Builder
	if g.Title != "" {
		sb.WriteString(g.Title)
		sb.WriteByte('\n')
	}
	labelW := 0
	for _, rv := range g.RowValues {
		if len(rv) > labelW {
			labelW = len(rv)
		}
	}
	if len(g.RowLabel) > labelW {
		labelW = len(g.RowLabel)
	}
	sb.WriteString(padLeft(g.RowLabel+`\`+g.ColLabel, labelW+2))
	sb.WriteByte('\n')
	for i, row := range g.Cells {
		sb.WriteString(padLeft(g.RowValues[i], labelW))
		sb.WriteString(" |")
		for _, c := range row {
			sb.WriteByte(byte(c))
		}
		sb.WriteString("|\n")
	}
	counts := g.Counts()
	sb.WriteString(fmt.Sprintf("legend: #=computed(%d) ==identity-mapped(%d) ~=affine-mapped(%d) o=cached(%d) .=unexplored(%d)\n",
		counts[CellComputed], counts[CellIdentity], counts[CellAffine], counts[CellCached], counts[CellUnexplored]))
	return sb.String()
}

// Table renders rows of columns with simple left alignment.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render draws the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(padRight(c, widths[min(i, len(widths)-1)]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

func padLeft(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func padRight(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
