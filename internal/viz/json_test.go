package viz

import (
	"encoding/json"
	"testing"
)

func TestMapGridJSON(t *testing.T) {
	g := NewMapGrid("slice", "@a", "@b", []string{"1", "2"}, []string{"3"})
	g.Set(0, 0, CellComputed)
	g.Set(1, 0, CellCached)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title     string     `json:"title"`
		RowValues []string   `json:"row_values"`
		Cells     [][]string `json:"cells"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "slice" || len(decoded.Cells) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Cells[0][0] != "computed" || decoded.Cells[1][0] != "cached" {
		t.Errorf("cells = %v", decoded.Cells)
	}
}

func TestLineChartJSON(t *testing.T) {
	c := &LineChart{
		Title:  "t",
		XLabel: "@x",
		Series: []Series{
			{Name: "EXPECT y", Y: []float64{1, 2}, CIHalf: []float64{0.1, 0.2}},
			{Name: "EXPECT z", Y: []float64{3, 4}, SecondAxis: true},
		},
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Series []struct {
			Name       string    `json:"name"`
			CI95       []float64 `json:"ci95"`
			SecondAxis bool      `json:"second_axis"`
		} `json:"series"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Series) != 2 || len(decoded.Series[0].CI95) != 2 || !decoded.Series[1].SecondAxis {
		t.Errorf("decoded = %+v", decoded)
	}
}
