package sqlengine_test

import (
	"strings"
	"testing"

	"fuzzyprophet/internal/sqlengine"
)

// TestPlanAllocationFree asserts the compiled render path performs (near)
// zero allocations per execution after warm-up. The bound is deliberately
// loose (sync.Pool may be drained by a concurrent GC); the benchmark
// numbers in BENCH_engine.json track the exact counts.
func TestPlanAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	for _, f := range buildScenarioFixtures(t, 1000) {
		plan := sqlengine.CompileScript(f.script)
		e := f.engine(false)
		run := func() {
			res, err := plan.Exec(e, nil)
			if err != nil {
				t.Fatal(err)
			}
			res.Release()
		}
		run() // warm up buffers and pools
		allocs := testing.AllocsPerRun(50, run)
		if allocs > 8 {
			t.Errorf("%s: %v allocs per compiled execution, want (near) zero", f.name, allocs)
		}
	}
}

// TestPlanBufferReuse asserts consecutive executions reuse the same
// backing buffers (the allocation-free mechanism) and still produce
// correct, stable results.
func TestPlanBufferReuse(t *testing.T) {
	for _, f := range buildScenarioFixtures(t, 100) {
		plan := sqlengine.CompileScript(f.script)
		e := f.engine(false)
		ref, err := plan.Exec(e, nil)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		want := ref.Result()
		ref.Release()
		for pass := 0; pass < 3; pass++ {
			res, err := plan.Exec(e, nil)
			if err != nil {
				t.Fatalf("%s pass %d: %v", f.name, pass, err)
			}
			got := res.Result()
			res.Release()
			if strings.Join(got.Cols, ",") != strings.Join(want.Cols, ",") {
				t.Fatalf("%s pass %d: cols %v vs %v", f.name, pass, got.Cols, want.Cols)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("%s pass %d: %d vs %d rows", f.name, pass, len(got.Rows), len(want.Rows))
			}
			for i := range got.Rows {
				for j := range got.Cols {
					a, b := got.Rows[i][j], want.Rows[i][j]
					if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
						t.Fatalf("%s pass %d row %d col %s: %v vs %v", f.name, pass, i, got.Cols[j], a, b)
					}
				}
			}
		}
	}
}
