package sqlengine_test

import (
	"path/filepath"
	"testing"

	"fuzzyprophet/internal/colstore"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
)

// TestPlanOverMappedColumn: a float column backed by a memory-mapped
// spill-tier view (colstore.Mapped.Float64s — a read-only PROT_READ
// mapping on unix) executes through a compiled plan identically to the
// same data in a heap slice. This is the contract the storage spill tier
// relies on when it feeds promoted bases straight into the worlds table:
// plan kernels only READ input columns, so zero-copy views are safe.
func TestPlanOverMappedColumn(t *testing.T) {
	const rows = 512
	heap := make([]float64, rows)
	ord := make([]int64, rows)
	for i := range heap {
		heap[i] = float64(i)*0.25 - 30
		ord[i] = int64(i)
	}
	path := filepath.Join(t.TempDir(), "load.col")
	if err := colstore.WriteFile(path, &colstore.Column{Kind: colstore.KindFloat64, Floats: heap}); err != nil {
		t.Fatal(err)
	}
	m, err := colstore.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mapped, err := m.Float64s()
	if err != nil {
		t.Fatal(err)
	}

	script, err := sqlparser.Parse("SELECT fact.w, fact.load * 2.0 + 1.0 AS scaled FROM fact WHERE fact.load > 0.0;")
	if err != nil {
		t.Fatal(err)
	}
	plan := sqlengine.CompileScript(script)

	exec := func(vals []float64) [][]float64 {
		t.Helper()
		fact, err := sqlengine.NewColTable("fact", []string{"w", "load"}, []*sqlengine.Column{
			sqlengine.IntColumn(ord), sqlengine.FloatColumn(vals),
		})
		if err != nil {
			t.Fatal(err)
		}
		cat := sqlengine.NewCatalog()
		cat.PutColumns(fact)
		res, err := plan.Exec(sqlengine.New(cat), nil)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Release()
		var out [][]float64
		for _, col := range []string{"w", "scaled"} {
			c, err := res.Column(col)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := c.Float64s()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, append([]float64(nil), fs...))
		}
		return out
	}

	want := exec(heap)
	got := exec(mapped)
	if len(want[0]) == 0 {
		t.Fatal("query produced no rows")
	}
	for c := range want {
		if len(got[c]) != len(want[c]) {
			t.Fatalf("column %d: %d rows over mapped input, want %d", c, len(got[c]), len(want[c]))
		}
		for i := range want[c] {
			if got[c][i] != want[c][i] {
				t.Fatalf("column %d row %d = %v over mapped input, want %v", c, i, got[c][i], want[c][i])
			}
		}
	}
	// The mapped slice itself must be untouched (kernels never write input
	// columns — a write to a PROT_READ mapping would have faulted anyway).
	for i := range heap {
		if mapped[i] != heap[i] {
			t.Fatalf("mapped input mutated at %d", i)
		}
	}
}
