package sqlengine_test

import (
	"testing"

	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// equiJoinFixture builds a worlds-like fact table joined to a small
// dimension on an equality key — the shape whose build table the compiled
// plan pools.
func equiJoinFixture(t *testing.T, rows int) (*sqlengine.Engine, *sqlparser.Script) {
	t.Helper()
	ord := make([]int64, rows)
	key := make([]string, rows)
	val := make([]float64, rows)
	regions := []string{"us-east", "us-west", "europe", "asia"}
	for i := range ord {
		ord[i] = int64(i)
		key[i] = regions[i%len(regions)]
		val[i] = float64(i) * 1.5
	}
	fact, err := sqlengine.NewColTable("fact", []string{"w", "region", "load"}, []*sqlengine.Column{
		sqlengine.IntColumn(ord), sqlengine.StringColumn(key), sqlengine.FloatColumn(val),
	})
	if err != nil {
		t.Fatal(err)
	}
	dim, err := sqlengine.NewTable("dim", []string{"region", "cap"}, [][]value.Value{
		{value.Str("us-east"), value.Float(100)},
		{value.Str("us-west"), value.Float(80)},
		{value.Str("europe"), value.Float(60)},
		{value.Str("asia"), value.Float(40)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := sqlengine.NewCatalog()
	cat.PutColumns(fact)
	cat.Put(dim)
	script, err := sqlparser.Parse("SELECT fact.w, fact.load, dim.cap FROM fact JOIN dim ON fact.region = dim.region;")
	if err != nil {
		t.Fatal(err)
	}
	return sqlengine.New(cat), script
}

// TestEquiJoinPlanPooledBuild: repeated executions of a compiled equi-join
// plan reuse the pooled build table — the per-build-row key-string
// allocations are gone, leaving only the per-distinct-key map inserts.
func TestEquiJoinPlanPooledBuild(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	e, script := equiJoinFixture(t, 512)
	plan := sqlengine.CompileScript(script)
	run := func() {
		res, err := plan.Exec(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	run() // warm up
	allocs := testing.AllocsPerRun(50, run)
	// 4 distinct keys re-inserted per execution plus small fixed slack; the
	// old per-build-row encoding allocated >512.
	if allocs > 16 {
		t.Errorf("equi-join plan: %v allocs per execution, want <= 16 (pooled build table)", allocs)
	}
}

// TestEquiJoinPlanStableAcrossExecutions: the pooled build state must not
// leak rows between executions — three consecutive runs produce identical
// results.
func TestEquiJoinPlanStableAcrossExecutions(t *testing.T) {
	e, script := equiJoinFixture(t, 64)
	plan := sqlengine.CompileScript(script)
	ref, err := plan.Exec(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Result()
	ref.Release()
	if len(want.Rows) != 64 {
		t.Fatalf("join produced %d rows, want 64", len(want.Rows))
	}
	for pass := 0; pass < 3; pass++ {
		res, err := plan.Exec(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Result()
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("pass %d: %d rows, want %d", pass, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			for j := range got.Cols {
				if !got.Rows[i][j].Equal(want.Rows[i][j]) {
					t.Fatalf("pass %d row %d col %d: %v != %v", pass, i, j, got.Rows[i][j], want.Rows[i][j])
				}
			}
		}
		res.Release()
	}
}
