package sqlengine

import (
	"fmt"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// This file is the vectorized expression evaluator: expressions evaluate to
// whole Columns over a selection (frame) instead of one boxed value per
// row. Laziness-sensitive constructs — AND/OR short-circuiting, CASE arms,
// IN item lists — narrow the selection before evaluating their conditional
// sub-expressions, so an error (say, a division by zero in an untaken CASE
// arm) surfaces exactly when the row engine would surface it and never
// otherwise. Operations on typed numeric columns run in tight unboxed
// loops; columns holding strings, bools in arithmetic positions, or mixed
// kinds degrade gracefully to per-row boxed evaluation with semantics
// identical to the row engine by construction.

// vRel is an intermediate columnar relation: a qualified schema over
// column vectors.
type vRel struct {
	schema []colBinding
	cols   []*Column
	n      int
}

// frame is the selection context of one vectorized evaluation: rows maps
// frame positions to base-relation row indices, pos maps frame positions to
// positions of the alias (extras) columns captured when projection started.
// nil means the identity mapping; n is the frame length.
type frame struct {
	rows []int
	pos  []int
	n    int
}

func fullFrame(n int) frame { return frame{n: n} }

func (fr frame) row(k int) int {
	if fr.rows == nil {
		return k
	}
	return fr.rows[k]
}

func (fr frame) epos(k int) int {
	if fr.pos == nil {
		return k
	}
	return fr.pos[k]
}

// narrow restricts the frame to the given frame positions.
func (fr frame) narrow(keep []int) frame {
	rows := make([]int, len(keep))
	pos := make([]int, len(keep))
	for j, k := range keep {
		rows[j] = fr.row(k)
		pos[j] = fr.epos(k)
	}
	return frame{rows: rows, pos: pos, n: len(keep)}
}

// vctx is the vectorized evaluation environment: parameter bindings, the
// base relation, alias columns from earlier select items, and the function
// resolver chain.
type vctx struct {
	params   map[string]value.Value
	rel      *vRel
	extras   map[string]*Column
	resolver FuncResolver
}

// gatherIdent gathers col by idx, passing the column through untouched for
// the identity selection (columns are immutable, so sharing is safe).
func gatherIdent(col *Column, idx []int) *Column {
	if idx == nil {
		return col
	}
	return col.gather(idx)
}

// splatValue broadcasts one boxed value to a column of length n.
func splatValue(v value.Value, n int) *Column {
	switch v.Kind() {
	case value.KindNull:
		return nullColumn(n)
	case value.KindInt:
		iv, _ := v.AsInt()
		out := make([]int64, n)
		for i := range out {
			out[i] = iv
		}
		return IntColumn(out)
	case value.KindFloat:
		fv, _ := v.AsFloat()
		out := make([]float64, n)
		for i := range out {
			out[i] = fv
		}
		return FloatColumn(out)
	case value.KindString:
		sv := v.AsString()
		out := make([]string, n)
		for i := range out {
			out[i] = sv
		}
		return StringColumn(out)
	case value.KindBool:
		bv, _ := v.AsBool()
		out := make([]bool, n)
		for i := range out {
			out[i] = bv
		}
		return BoolColumn(out)
	default:
		return nullColumn(n)
	}
}

// eval evaluates a non-aggregate expression over the frame, returning a
// column of fr.n rows. Aggregate calls reaching this path are an error; the
// grouped executor substitutes them earlier.
func (vc *vctx) eval(x sqlparser.Expr, fr frame) (*Column, error) {
	switch n := x.(type) {
	case sqlparser.Literal:
		return splatValue(n.Val, fr.n), nil
	case sqlparser.ParamRef:
		if vc.params != nil {
			if v, ok := vc.params[n.Name]; ok {
				return splatValue(v, fr.n), nil
			}
		}
		return nil, fmt.Errorf("sqlengine: unbound parameter @%s", n.Name)
	case sqlparser.ColumnRef:
		return vc.evalColumnRef(n, fr)
	case sqlparser.Unary:
		return vc.evalUnary(n, fr)
	case sqlparser.Binary:
		return vc.evalBinary(n, fr)
	case sqlparser.Case:
		return vc.evalCase(n, fr)
	case sqlparser.Between:
		return vc.evalBetween(n, fr)
	case sqlparser.InList:
		return vc.evalInList(n, fr)
	case sqlparser.IsNull:
		x, err := vc.eval(n.X, fr)
		if err != nil {
			return nil, err
		}
		out := make([]bool, fr.n)
		for i := range out {
			out[i] = x.IsNull(i) != n.Not
		}
		return BoolColumn(out), nil
	case sqlparser.FuncCall:
		return vc.evalFunc(n, fr)
	default:
		return nil, fmt.Errorf("sqlengine: unsupported expression %T", x)
	}
}

func (vc *vctx) evalColumnRef(n sqlparser.ColumnRef, fr frame) (*Column, error) {
	if n.Table == "" && vc.extras != nil {
		if col, ok := vc.extras[n.Name]; ok {
			return gatherIdent(col, fr.pos), nil
		}
	}
	if vc.rel == nil {
		return nil, fmt.Errorf("sqlengine: column %q referenced outside a row context", n.Name)
	}
	idx, err := lookupBinding(vc.rel.schema, n.Table, n.Name)
	if err != nil {
		return nil, err
	}
	return gatherIdent(vc.rel.cols[idx], fr.rows), nil
}

func (vc *vctx) evalUnary(n sqlparser.Unary, fr frame) (*Column, error) {
	x, err := vc.eval(n.X, fr)
	if err != nil {
		return nil, err
	}
	if n.Op == "NOT" {
		t, err := triBoolColumn(x)
		if err != nil {
			return nil, err
		}
		out := make([]bool, fr.n)
		nulls := bitmap(nil)
		for i, v := range t {
			switch v {
			case triNull:
				if nulls == nil {
					nulls = newBitmap(fr.n)
				}
				nulls.set(i)
			case triTrue:
				out[i] = false
			default:
				out[i] = true
			}
		}
		return &Column{kind: ColBool, n: fr.n, b: out, nulls: nulls}, nil
	}
	// Arithmetic negation.
	switch x.kind {
	case ColNull:
		return nullColumn(fr.n), nil
	case ColInt:
		out := make([]int64, fr.n)
		for i, v := range x.i {
			out[i] = -v
		}
		return &Column{kind: ColInt, n: fr.n, i: out, nulls: x.nulls}, nil
	case ColFloat:
		out := make([]float64, fr.n)
		for i, v := range x.f {
			out[i] = -v
		}
		return &Column{kind: ColFloat, n: fr.n, f: out, nulls: x.nulls}, nil
	default:
		// Strings/bools error per row exactly as value.Neg does.
		out := make([]value.Value, fr.n)
		for i := 0; i < fr.n; i++ {
			v, err := value.Neg(x.Value(i))
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return ValuesColumn(out), nil
	}
}

// Tri-state boolean values used for three-valued logic masks.
const (
	triFalse uint8 = iota
	triTrue
	triNull
)

// triBoolColumn converts a column to a three-valued boolean mask, with the
// row engine's conversion errors (a non-NULL string is not a boolean).
func triBoolColumn(c *Column) ([]uint8, error) {
	out := make([]uint8, c.n)
	switch c.kind {
	case ColNull:
		for i := range out {
			out[i] = triNull
		}
		return out, nil
	case ColBool:
		for i, v := range c.b {
			if c.nulls != nil && c.nulls.get(i) {
				out[i] = triNull
			} else if v {
				out[i] = triTrue
			}
		}
		return out, nil
	case ColInt:
		for i, v := range c.i {
			if c.nulls != nil && c.nulls.get(i) {
				out[i] = triNull
			} else if v != 0 {
				out[i] = triTrue
			}
		}
		return out, nil
	case ColFloat:
		for i, v := range c.f {
			if c.nulls != nil && c.nulls.get(i) {
				out[i] = triNull
			} else if v != 0 {
				out[i] = triTrue
			}
		}
		return out, nil
	default:
		for i := 0; i < c.n; i++ {
			v := c.Value(i)
			if v.IsNull() {
				out[i] = triNull
				continue
			}
			b, err := v.AsBool()
			if err != nil {
				return nil, err
			}
			if b {
				out[i] = triTrue
			}
		}
		return out, nil
	}
}

// truthyKeep returns the frame positions where the column is truthy (SQL
// WHERE semantics: NULL and non-boolean values count as false).
func truthyKeep(c *Column) []int {
	keep := make([]int, 0, c.n)
	switch c.kind {
	case ColNull:
		return keep
	case ColBool:
		for i, v := range c.b {
			if v && !(c.nulls != nil && c.nulls.get(i)) {
				keep = append(keep, i)
			}
		}
	case ColInt:
		for i, v := range c.i {
			if v != 0 && !(c.nulls != nil && c.nulls.get(i)) {
				keep = append(keep, i)
			}
		}
	case ColFloat:
		for i, v := range c.f {
			if v != 0 && !(c.nulls != nil && c.nulls.get(i)) {
				keep = append(keep, i)
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if c.Value(i).Truthy() {
				keep = append(keep, i)
			}
		}
	}
	return keep
}

func (vc *vctx) evalBinary(n sqlparser.Binary, fr frame) (*Column, error) {
	if n.Op == "AND" || n.Op == "OR" {
		return vc.evalLogical(n, fr)
	}
	l, err := vc.eval(n.L, fr)
	if err != nil {
		return nil, err
	}
	r, err := vc.eval(n.R, fr)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "+", "-", "*", "/", "%":
		return arithColumns(n.Op[0], l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		return compareColumns(n.Op, l, r)
	default:
		return nil, fmt.Errorf("sqlengine: unknown operator %q", n.Op)
	}
}

// evalLogical implements AND/OR with SQL three-valued logic. The right
// operand is evaluated only over the rows the left side does not determine,
// mirroring the row engine's short-circuit (and its error behavior).
func (vc *vctx) evalLogical(n sqlparser.Binary, fr frame) (*Column, error) {
	l, err := vc.eval(n.L, fr)
	if err != nil {
		return nil, err
	}
	lt, err := triBoolColumn(l)
	if err != nil {
		return nil, err
	}
	and := n.Op == "AND"
	// Rows whose result the left side does not already determine.
	undecided := make([]int, 0, fr.n)
	for i, v := range lt {
		if and && v != triFalse || !and && v != triTrue {
			undecided = append(undecided, i)
		}
	}
	var rt []uint8
	if len(undecided) > 0 {
		r, err := vc.eval(n.R, fr.narrow(undecided))
		if err != nil {
			return nil, err
		}
		switch r.kind {
		case ColString, ColBoxed:
			// The row engine converts the right operand leniently when the
			// left side is NULL (an unconvertible value counts as false)
			// and strictly otherwise — replicate that per row.
			rt = make([]uint8, r.n)
			for j := 0; j < r.n; j++ {
				if r.IsNull(j) {
					rt[j] = triNull
					continue
				}
				b, err := r.Value(j).AsBool()
				if err != nil {
					if lt[undecided[j]] == triNull {
						continue // lenient: treated as false
					}
					return nil, err
				}
				if b {
					rt[j] = triTrue
				}
			}
		default:
			rt, err = triBoolColumn(r)
			if err != nil {
				return nil, err
			}
		}
	}
	out := make([]bool, fr.n)
	var nulls bitmap
	setNull := func(i int) {
		if nulls == nil {
			nulls = newBitmap(fr.n)
		}
		nulls.set(i)
	}
	if and {
		// Everything defaults to false; decided-true and null rows below.
		j := 0
		for i, v := range lt {
			if v == triFalse {
				continue
			}
			rv := rt[j]
			j++
			switch {
			case rv == triFalse:
				// false ∧ anything = false (even NULL left).
			case v == triNull || rv == triNull:
				setNull(i)
			default:
				out[i] = true
			}
		}
	} else {
		j := 0
		for i, v := range lt {
			if v == triTrue {
				out[i] = true
				continue
			}
			rv := rt[j]
			j++
			switch {
			case rv == triTrue:
				out[i] = true
			case v == triNull || rv == triNull:
				setNull(i)
			default:
				// false ∨ false = false.
			}
		}
	}
	return &Column{kind: ColBool, n: fr.n, b: out, nulls: nulls}, nil
}

// arithColumns applies an arithmetic operator element-wise with SQL NULL
// propagation and the value system's type rules: INT op INT stays integral
// except division, anything involving FLOAT widens, non-numeric operands
// degrade to the boxed path (which reports the row engine's errors). The
// typed folds run through the shared cores in kernels.go: a no-nulls
// unrolled fast path, and a bitmap-masked path only where NULL rows must be
// skipped (division/modulo zero checks).
func arithColumns(op byte, l, r *Column) (*Column, error) {
	n := l.n
	if l.kind == ColNull || r.kind == ColNull {
		return nullColumn(n), nil
	}
	if !l.isTypedNumeric() || !r.isTypedNumeric() {
		return boxedArith(op, l, r)
	}
	nulls := mergedNulls(n, l.nulls, r.nulls)
	if l.kind == ColInt && r.kind == ColInt && op != '/' {
		out := make([]int64, n)
		switch op {
		case '+':
			addIntsInto(out, l.i, r.i)
		case '-':
			subIntsInto(out, l.i, r.i)
		case '*':
			mulIntsInto(out, l.i, r.i)
		case '%':
			if err := modIntsInto(out, l.i, r.i, nulls); err != nil {
				return nil, err
			}
		}
		return &Column{kind: ColInt, n: n, i: out, nulls: nulls}, nil
	}
	lf, rf := l.floats(), r.floats()
	out := make([]float64, n)
	switch op {
	case '+':
		addFloatsInto(out, lf, rf)
	case '-':
		subFloatsInto(out, lf, rf)
	case '*':
		mulFloatsInto(out, lf, rf)
	case '/':
		if err := divFloatsInto(out, lf, rf, nulls); err != nil {
			return nil, err
		}
	case '%':
		if err := modFloatsInto(out, lf, rf, nulls); err != nil {
			return nil, err
		}
	}
	return &Column{kind: ColFloat, n: n, f: out, nulls: nulls}, nil
}

// boxedArith is the per-row fallback delegating to the value package, which
// defines the semantics both engines share.
func boxedArith(op byte, l, r *Column) (*Column, error) {
	apply := value.Add
	switch op {
	case '-':
		apply = value.Sub
	case '*':
		apply = value.Mul
	case '/':
		apply = value.Div
	case '%':
		apply = value.Mod
	}
	out := make([]value.Value, l.n)
	for i := 0; i < l.n; i++ {
		v, err := apply(l.Value(i), r.Value(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return ValuesColumn(out), nil
}

// compareColumns applies a comparison operator element-wise: NULL operands
// yield NULL, typed same-family columns compare in unboxed loops, anything
// else degrades to per-row value.Compare (including its kind errors).
func compareColumns(op string, l, r *Column) (*Column, error) {
	n := l.n
	if l.kind == ColNull || r.kind == ColNull {
		return nullColumn(n), nil
	}
	out := make([]bool, n)
	switch {
	case l.isTypedNumeric() && r.isTypedNumeric():
		// NULL rows compare to garbage, but the merged bitmap overrides the
		// stored bool, so the compare loop runs branch-free over every row.
		nulls := mergedNulls(n, l.nulls, r.nulls)
		if l.kind == ColInt && r.kind == ColInt {
			cmpIntsInto(op, out, l.i, r.i)
		} else {
			cmpFloatsInto(op, out, l.floats(), r.floats())
		}
		return &Column{kind: ColBool, n: n, b: out, nulls: nulls}, nil
	case l.kind == ColString && r.kind == ColString:
		nulls := mergedNulls(n, l.nulls, r.nulls)
		cmpStringsInto(op, out, l.s, r.s)
		return &Column{kind: ColBool, n: n, b: out, nulls: nulls}, nil
	case l.kind == ColBool && r.kind == ColBool:
		nulls := mergedNulls(n, l.nulls, r.nulls)
		cmpBoolsInto(op, out, l.b, r.b)
		return &Column{kind: ColBool, n: n, b: out, nulls: nulls}, nil
	}
	decide := func(c int) bool {
		switch op {
		case "=":
			return c == 0
		case "<>":
			return c != 0
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		default:
			return c >= 0
		}
	}
	var nulls bitmap
	for i := 0; i < n; i++ {
		a, b := l.Value(i), r.Value(i)
		if a.IsNull() || b.IsNull() {
			if nulls == nil {
				nulls = newBitmap(n)
			}
			nulls.set(i)
			continue
		}
		c, err := value.Compare(a, b)
		if err != nil {
			return nil, err
		}
		out[i] = decide(c)
	}
	return &Column{kind: ColBool, n: n, b: out, nulls: nulls}, nil
}

// scatterPart is one conditional branch's contribution to a merged column.
type scatterPart struct {
	idx []int // output positions (within the merge target)
	col *Column
}

// mergeScatter combines branch results into one column of length n;
// positions no part covers are NULL. Branches of one typed kind merge
// unboxed; mixed kinds merge boxed so every value survives exactly.
func mergeScatter(n int, parts []scatterPart) *Column {
	kind := ColNull
	for _, p := range parts {
		k := p.col.kind
		if k == ColNull {
			continue
		}
		if kind == ColNull {
			kind = k
		} else if kind != k {
			kind = ColBoxed
			break
		}
	}
	if kind == ColNull {
		return nullColumn(n)
	}
	if kind == ColBoxed {
		out := make([]value.Value, n)
		for _, p := range parts {
			for j, i := range p.idx {
				out[i] = p.col.Value(j)
			}
		}
		return ValuesColumn(out)
	}
	out := &Column{kind: kind, n: n, nulls: newBitmap(n)}
	out.nulls.setAll(n)
	switch kind {
	case ColFloat:
		out.f = make([]float64, n)
	case ColInt:
		out.i = make([]int64, n)
	case ColString:
		out.s = make([]string, n)
	case ColBool:
		out.b = make([]bool, n)
	}
	for _, p := range parts {
		for j, i := range p.idx {
			if p.col.IsNull(j) {
				continue
			}
			out.nulls.clear(i)
			switch kind {
			case ColFloat:
				out.f[i] = p.col.f[j]
			case ColInt:
				out.i[i] = p.col.i[j]
			case ColString:
				out.s[i] = p.col.s[j]
			case ColBool:
				out.b[i] = p.col.b[j]
			}
		}
	}
	if !out.nulls.any() {
		out.nulls = nil
	}
	return out
}

// pickIdx composes an output-position mapping with a keep list.
func pickIdx(outIdx []int, keep []int) []int {
	picked := make([]int, len(keep))
	for j, k := range keep {
		if outIdx == nil {
			picked[j] = k
		} else {
			picked[j] = outIdx[k]
		}
	}
	return picked
}

// evalCase evaluates CASE by partitioning the selection: each arm's THEN
// (and the ELSE) runs only over the rows its condition selects, so
// conditionally-guarded errors behave exactly as in row-at-a-time order.
func (vc *vctx) evalCase(n sqlparser.Case, fr frame) (*Column, error) {
	var parts []scatterPart
	remaining := fr
	var remOut []int // nil = identity
	for _, w := range n.Whens {
		if remaining.n == 0 {
			break
		}
		cond, err := vc.eval(w.Cond, remaining)
		if err != nil {
			return nil, err
		}
		taken := truthyKeep(cond)
		if len(taken) > 0 {
			notTaken := complementKeep(remaining.n, taken)
			thenCol, err := vc.eval(w.Then, remaining.narrow(taken))
			if err != nil {
				return nil, err
			}
			parts = append(parts, scatterPart{idx: pickIdx(remOut, taken), col: thenCol})
			remOut = pickIdx(remOut, notTaken)
			remaining = remaining.narrow(notTaken)
		}
	}
	if n.Else != nil && remaining.n > 0 {
		elseCol, err := vc.eval(n.Else, remaining)
		if err != nil {
			return nil, err
		}
		idx := remOut
		if idx == nil {
			idx = identityIdx(remaining.n)
		}
		parts = append(parts, scatterPart{idx: idx, col: elseCol})
	}
	return mergeScatter(fr.n, parts), nil
}

func identityIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// complementKeep returns the positions of [0,n) not present in keep (which
// must be sorted ascending, as produced by truthyKeep).
func complementKeep(n int, keep []int) []int {
	out := make([]int, 0, n-len(keep))
	j := 0
	for i := 0; i < n; i++ {
		if j < len(keep) && keep[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}

// evalBetween evaluates x BETWEEN lo AND hi; all three operands evaluate
// unconditionally (as in the row engine), comparisons run per row.
func (vc *vctx) evalBetween(n sqlparser.Between, fr frame) (*Column, error) {
	x, err := vc.eval(n.X, fr)
	if err != nil {
		return nil, err
	}
	lo, err := vc.eval(n.Lo, fr)
	if err != nil {
		return nil, err
	}
	hi, err := vc.eval(n.Hi, fr)
	if err != nil {
		return nil, err
	}
	out := make([]bool, fr.n)
	var nulls bitmap
	for i := 0; i < fr.n; i++ {
		xv, lv, hv := x.Value(i), lo.Value(i), hi.Value(i)
		if xv.IsNull() || lv.IsNull() || hv.IsNull() {
			if nulls == nil {
				nulls = newBitmap(fr.n)
			}
			nulls.set(i)
			continue
		}
		cl, err := value.Compare(xv, lv)
		if err != nil {
			return nil, err
		}
		ch, err := value.Compare(xv, hv)
		if err != nil {
			return nil, err
		}
		in := cl >= 0 && ch <= 0
		if n.Not {
			in = !in
		}
		out[i] = in
	}
	return &Column{kind: ColBool, n: fr.n, b: out, nulls: nulls}, nil
}

// evalInList evaluates x IN (items…). Items evaluate left to right, each
// only over the rows not yet matched — the row engine's per-row
// break-on-match behavior, vectorized.
func (vc *vctx) evalInList(n sqlparser.InList, fr frame) (*Column, error) {
	x, err := vc.eval(n.X, fr)
	if err != nil {
		return nil, err
	}
	found := make([]bool, fr.n)
	var nulls bitmap
	candidates := make([]int, 0, fr.n)
	for i := 0; i < fr.n; i++ {
		if x.IsNull(i) {
			if nulls == nil {
				nulls = newBitmap(fr.n)
			}
			nulls.set(i)
			continue
		}
		candidates = append(candidates, i)
	}
	remaining := fr.narrow(candidates)
	remOut := candidates
	for _, item := range n.Items {
		if remaining.n == 0 {
			break
		}
		icol, err := vc.eval(item, remaining)
		if err != nil {
			return nil, err
		}
		still := make([]int, 0, remaining.n)
		for j := 0; j < remaining.n; j++ {
			iv := icol.Value(j)
			if !iv.IsNull() && x.Value(remOut[j]).Equal(iv) {
				found[remOut[j]] = true
				continue
			}
			still = append(still, j)
		}
		if len(still) < remaining.n {
			remOut = pickIdx(remOut, still)
			remaining = remaining.narrow(still)
		}
	}
	if n.Not {
		for i := range found {
			if !(nulls != nil && nulls.get(i)) {
				found[i] = !found[i]
			}
		}
	}
	return &Column{kind: ColBool, n: fr.n, b: found, nulls: nulls}, nil
}

// evalFunc evaluates a scalar function call: argument columns are computed
// vectorized, then the call dispatches per row through the resolver chain
// and the scalar builtins (the hot render path contains no scalar calls —
// VG calls were rewritten to column references by the Query Generator).
func (vc *vctx) evalFunc(n sqlparser.FuncCall, fr frame) (*Column, error) {
	if isAggregateName(n.Name) {
		return nil, fmt.Errorf("sqlengine: aggregate %s used outside an aggregation context", n.Name)
	}
	argCols := make([]*Column, len(n.Args))
	for i, a := range n.Args {
		c, err := vc.eval(a, fr)
		if err != nil {
			return nil, err
		}
		argCols[i] = c
	}
	out := make([]value.Value, fr.n)
	args := make([]value.Value, len(argCols))
	for i := 0; i < fr.n; i++ {
		for j, c := range argCols {
			args[j] = c.Value(i)
		}
		if vc.resolver != nil {
			v, handled, err := vc.resolver.Call(n.Name, args)
			if err != nil {
				return nil, err
			}
			if handled {
				out[i] = v
				continue
			}
		}
		v, err := callBuiltin(n.Name, args)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return ValuesColumn(out), nil
}
