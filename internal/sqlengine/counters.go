package sqlengine

// ExecCounters collects per-operator statistics from a single plan
// execution: relation cardinalities through each kernel, the join
// strategy bindFrom actually took, and per-phase wall time. Pass one to
// Plan.ExecCounted; a nil *ExecCounters (Plan.Exec) records nothing and
// the execution path performs no time measurements at all, so the
// untraced hot path is unchanged.
//
// Counters are owned by one execution — they are written without
// synchronization.
type ExecCounters struct {
	// Relation flow.
	RowsIn   int64 // rows in the materialized FROM relation
	WhereIn  int64 // rows entering the WHERE kernel (0 when no WHERE)
	WhereOut int64 // rows surviving WHERE
	RowsOut  int64 // result rows handed back

	// Join strategy chosen by bindFrom for two-table FROMs:
	// "" (none/single table), "cross", "hash", "interpreted".
	JoinKind  string
	BuildRows int64 // hash join: build-side (right table) rows
	ProbeRows int64 // hash join: probe-side (left table) rows

	// Interpreted fallback.
	Fallback       bool
	FallbackReason string // compile-time reason, or "row-mode-engine"
	Grouped        bool

	// Phase wall time in nanoseconds. Measured only on counted runs.
	BindNS  int64 // FROM bind + relation materialization (includes joins)
	WhereNS int64 // WHERE kernel + selection build
	EvalNS  int64 // item kernels / grouped executor / fallback execution
}
