//go:build !race

package sqlengine_test

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count assertions are skipped
// under -race.
const raceEnabled = false
