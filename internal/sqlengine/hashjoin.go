package sqlengine

import (
	"math"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// Hash equi-join: for JOIN … ON <left-expr> = <right-expr> the engine
// hashes the right (usually small dimension) side on its pre-computed key
// column and probes it with the left side, instead of materializing the
// full nl×nr cross product and filtering it — the serverfleet shape
// (worlds × dimension) never needs the quadratic intermediate.
//
// The hash path must be observationally identical to the quadratic filter,
// which compares keys through compareColumns/value.Compare. That forces
// three guard rails:
//
//   - key columns must be of one comparison family (numeric×numeric,
//     string×string, bool×bool); anything boxed or cross-family falls back
//     to the quadratic path so per-row comparison errors surface exactly
//     as the row oracle reports them;
//   - NULL keys never match (they are skipped on build and probe, matching
//     NULL = x ⇒ NULL ⇒ not truthy);
//   - float keys encode -0 as +0 (compareColumns treats them equal) and
//     any NaN key aborts the hash path entirely — the engines' two-way
//     comparison makes NaN compare equal to everything, which no hash key
//     can express.

// equiJoinKeys inspects an ON condition and, when it is a single equality
// whose two sides each reference columns of exactly one input, returns the
// key expressions ordered (leftKey over acc, rightKey over next).
func equiJoinKeys(cond sqlparser.Expr, acc, next *vRel) (leftKey, rightKey sqlparser.Expr, ok bool) {
	bin, isBin := cond.(sqlparser.Binary)
	if !isBin || bin.Op != "=" {
		return nil, nil, false
	}
	combined := append(append([]colBinding(nil), acc.schema...), next.schema...)
	side := func(x sqlparser.Expr) int {
		// 0: no columns, 1: acc only, 2: next only, 3: mixed/unresolvable.
		s := 0
		var bad bool
		sqlparser.WalkExpr(x, func(e sqlparser.Expr) {
			cr, isCol := e.(sqlparser.ColumnRef)
			if !isCol || bad {
				return
			}
			idx, err := lookupBinding(combined, cr.Table, cr.Name)
			if err != nil {
				// Ambiguous or unknown: let the quadratic path surface the
				// same error.
				bad = true
				return
			}
			var this int
			if idx < len(acc.schema) {
				this = 1
			} else {
				this = 2
			}
			if s == 0 {
				s = this
			} else if s != this {
				s = 3
			}
		})
		if bad {
			return 3
		}
		return s
	}
	ls, rs := side(bin.L), side(bin.R)
	switch {
	case ls <= 1 && rs == 2:
		return bin.L, bin.R, true
	case ls == 2 && rs <= 1:
		return bin.R, bin.L, true
	default:
		return nil, nil, false
	}
}

// hashableJoinKinds reports whether two key columns belong to one
// comparison family the hash encoding can represent faithfully.
func hashableJoinKinds(l, r *Column) bool {
	family := func(c *Column) int {
		switch c.kind {
		case ColInt, ColFloat:
			return 1
		case ColString:
			return 2
		case ColBool:
			return 3
		default:
			return 0 // ColNull handled by callers; ColBoxed never hashable
		}
	}
	lf, rf := family(l), family(r)
	if l.kind == ColNull || r.kind == ColNull {
		// All-NULL key side: no row can match; the probe loop handles it.
		return true
	}
	return lf != 0 && rf != 0 && lf == rf
}

// appendJoinKey appends row i's hash-join key to dst, reporting ok=false
// for a NaN float key (unhashable: NaN compares equal to everything under
// the engines' two-way comparison).
func appendJoinKey(c *Column, i int, dst []byte) ([]byte, bool) {
	switch c.kind {
	case ColFloat:
		f := c.f[i]
		if math.IsNaN(f) {
			return dst, false
		}
		if f == 0 {
			f = 0 // normalize -0: compareColumns treats -0 = +0
		}
		return value.AppendFloatKey(dst, f), true
	case ColInt:
		return value.AppendFloatKey(dst, float64(c.i[i])), true
	case ColString:
		return value.AppendStringKey(dst, c.s[i]), true
	case ColBool:
		return value.AppendBoolKey(dst, c.b[i]), true
	default:
		return dst, false
	}
}

// hashEquiJoin evaluates the key expressions over their sides and builds
// the (outL, outR) gather lists of the inner or left join, appending to the
// provided buffers (pass nil to allocate). ok=false means the keys turned
// out unhashable (kind family mismatch, boxed keys, or a NaN key) and the
// caller must run the quadratic path; err means key evaluation failed,
// which the quadratic path would also report.
func (e *Engine) hashEquiJoin(acc, next *vRel, leftKeyX, rightKeyX sqlparser.Expr, leftJoin bool, params map[string]value.Value, outL, outR []int) (gl, gr []int, ok bool, err error) {
	// Evaluate left before right: the quadratic path's evalBinary does the
	// same, so when both sides error the same one wins.
	lvc := &vctx{params: params, rel: acc, resolver: e.Resolver}
	lkey, err := lvc.eval(leftKeyX, fullFrame(acc.n))
	if err != nil {
		return nil, nil, false, err
	}
	rvc := &vctx{params: params, rel: next, resolver: e.Resolver}
	rkey, err := rvc.eval(rightKeyX, fullFrame(next.n))
	if err != nil {
		return nil, nil, false, err
	}
	if !hashableJoinKinds(lkey, rkey) {
		return nil, nil, false, nil
	}
	outL, outR = outL[:0], outR[:0]

	// All-NULL on either side: nothing matches; LEFT JOIN pads everything.
	if lkey.kind == ColNull || rkey.kind == ColNull {
		if leftJoin {
			for l := 0; l < acc.n; l++ {
				outL = append(outL, l)
				outR = append(outR, -1)
			}
		}
		return outL, outR, true, nil
	}

	// Build on the right side, preserving right-row order per key so the
	// probe emits matches in exactly the quadratic path's order.
	var keyBuf []byte
	build := make(map[string][]int32, rkey.n)
	for r := 0; r < rkey.n; r++ {
		if rkey.IsNull(r) {
			continue
		}
		var kok bool
		keyBuf, kok = appendJoinKey(rkey, r, keyBuf[:0])
		if !kok {
			return nil, nil, false, nil
		}
		build[string(keyBuf)] = append(build[string(keyBuf)], int32(r))
	}
	for l := 0; l < lkey.n; l++ {
		if lkey.IsNull(l) {
			if leftJoin {
				outL = append(outL, l)
				outR = append(outR, -1)
			}
			continue
		}
		var kok bool
		keyBuf, kok = appendJoinKey(lkey, l, keyBuf[:0])
		if !kok {
			return nil, nil, false, nil
		}
		matches := build[string(keyBuf)]
		if len(matches) == 0 {
			if leftJoin {
				outL = append(outL, l)
				outR = append(outR, -1)
			}
			continue
		}
		for _, r := range matches {
			outL = append(outL, l)
			outR = append(outR, int(r))
		}
	}
	return outL, outR, true, nil
}
