package sqlengine

import (
	"math"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// Hash equi-join: for JOIN … ON <left-expr> = <right-expr> the engine
// hashes the right (usually small dimension) side on its pre-computed key
// column and probes it with the left side, instead of materializing the
// full nl×nr cross product and filtering it — the serverfleet shape
// (worlds × dimension) never needs the quadratic intermediate.
//
// The hash path must be observationally identical to the quadratic filter,
// which compares keys through compareColumns/value.Compare. That forces
// three guard rails:
//
//   - key columns must be of one comparison family (numeric×numeric,
//     string×string, bool×bool); anything boxed or cross-family falls back
//     to the quadratic path so per-row comparison errors surface exactly
//     as the row oracle reports them;
//   - NULL keys never match (they are skipped on build and probe, matching
//     NULL = x ⇒ NULL ⇒ not truthy);
//   - float keys encode -0 as +0 (compareColumns treats them equal) and
//     any NaN key aborts the hash path entirely — the engines' two-way
//     comparison makes NaN compare equal to everything, which no hash key
//     can express.

// splitEquality inspects an ON condition's STRUCTURE: when it is a single
// top-level equality it returns the two operand expressions. This is the
// compile-time half of equi-join detection — a Plan decides it once in
// CompileSelect instead of re-walking the condition every execution.
func splitEquality(cond sqlparser.Expr) (l, r sqlparser.Expr, ok bool) {
	bin, isBin := cond.(sqlparser.Binary)
	if !isBin || bin.Op != "=" {
		return nil, nil, false
	}
	return bin.L, bin.R, true
}

// equiJoinSides is the bind-time half: given an equality's two operands and
// the ALREADY-BUILT combined schema (the first nAcc bindings belong to the
// left input), it decides whether each operand references columns of
// exactly one input and returns the key expressions ordered (leftKey over
// the left input, rightKey over the right). The schema is borrowed, never
// copied.
func equiJoinSides(exprL, exprR sqlparser.Expr, combined []colBinding, nAcc int) (leftKey, rightKey sqlparser.Expr, ok bool) {
	side := func(x sqlparser.Expr) int {
		// 0: no columns, 1: left only, 2: right only, 3: mixed/unresolvable.
		s := 0
		var bad bool
		sqlparser.WalkExpr(x, func(e sqlparser.Expr) {
			cr, isCol := e.(sqlparser.ColumnRef)
			if !isCol || bad {
				return
			}
			idx, err := lookupBinding(combined, cr.Table, cr.Name)
			if err != nil {
				// Ambiguous or unknown: let the quadratic path surface the
				// same error.
				bad = true
				return
			}
			var this int
			if idx < nAcc {
				this = 1
			} else {
				this = 2
			}
			if s == 0 {
				s = this
			} else if s != this {
				s = 3
			}
		})
		if bad {
			return 3
		}
		return s
	}
	ls, rs := side(exprL), side(exprR)
	switch {
	case ls <= 1 && rs == 2:
		return exprL, exprR, true
	case ls == 2 && rs <= 1:
		return exprR, exprL, true
	default:
		return nil, nil, false
	}
}

// equiJoinKeys is the one-shot form used by the interpreted path: structure
// split plus side resolution against a combined schema built by the caller.
func equiJoinKeys(cond sqlparser.Expr, combined []colBinding, nAcc int) (leftKey, rightKey sqlparser.Expr, ok bool) {
	l, r, ok := splitEquality(cond)
	if !ok {
		return nil, nil, false
	}
	return equiJoinSides(l, r, combined, nAcc)
}

// buildTable is reusable hash-join build-side state: a key → chain-head
// map plus head/tail/next chain slices keeping each key's build rows in
// ascending order (so the probe emits matches in exactly the quadratic
// path's order). Chains live in flat slices, so across executions only
// first-seen map keys allocate — one string per DISTINCT key instead of
// one per build-side row — and the compiled path pools the whole structure
// in its planState like every other buffer.
type buildTable struct {
	idx    map[string]int32 // key → head build row of its chain
	next   []int32          // next[r]: following build row with r's key; -1 ends
	tail   []int32          // tail[h]: last row of the chain headed by h
	keyBuf []byte           // key-encoding scratch
}

// reset prepares the table for a build side of n rows.
func (bt *buildTable) reset(n int) {
	if bt.idx == nil {
		bt.idx = make(map[string]int32, n)
	} else {
		clear(bt.idx)
	}
	if cap(bt.next) < n {
		bt.next = make([]int32, n)
		bt.tail = make([]int32, n)
	}
	bt.next = bt.next[:n]
	bt.tail = bt.tail[:n]
}

// insert appends build row r (ascending) to its key's chain. The key is
// read from bt.keyBuf; the map lookup is allocation-free, only a new
// distinct key allocates its map entry.
func (bt *buildTable) insert(r int) {
	if h, ok := bt.idx[string(bt.keyBuf)]; ok {
		t := bt.tail[h]
		bt.next[t] = int32(r)
		bt.next[r] = -1
		bt.tail[h] = int32(r)
		return
	}
	bt.idx[string(bt.keyBuf)] = int32(r)
	bt.next[r] = -1
	bt.tail[r] = int32(r)
}

// lookup returns the head build row for the key in bt.keyBuf, or -1.
func (bt *buildTable) lookup() int32 {
	if h, ok := bt.idx[string(bt.keyBuf)]; ok {
		return h
	}
	return -1
}

// hashableJoinKinds reports whether two key columns belong to one
// comparison family the hash encoding can represent faithfully.
func hashableJoinKinds(l, r *Column) bool {
	family := func(c *Column) int {
		switch c.kind {
		case ColInt, ColFloat:
			return 1
		case ColString:
			return 2
		case ColBool:
			return 3
		default:
			return 0 // ColNull handled by callers; ColBoxed never hashable
		}
	}
	lf, rf := family(l), family(r)
	if l.kind == ColNull || r.kind == ColNull {
		// All-NULL key side: no row can match; the probe loop handles it.
		return true
	}
	return lf != 0 && rf != 0 && lf == rf
}

// appendJoinKey appends row i's hash-join key to dst, reporting ok=false
// for a NaN float key (unhashable: NaN compares equal to everything under
// the engines' two-way comparison).
func appendJoinKey(c *Column, i int, dst []byte) ([]byte, bool) {
	switch c.kind {
	case ColFloat:
		f := c.f[i]
		if math.IsNaN(f) {
			return dst, false
		}
		if f == 0 {
			f = 0 // normalize -0: compareColumns treats -0 = +0
		}
		return value.AppendFloatKey(dst, f), true
	case ColInt:
		return value.AppendFloatKey(dst, float64(c.i[i])), true
	case ColString:
		return value.AppendStringKey(dst, c.s[i]), true
	case ColBool:
		return value.AppendBoolKey(dst, c.b[i]), true
	default:
		return dst, false
	}
}

// hashEquiJoin evaluates the key expressions over their sides and builds
// the (outL, outR) gather lists of the inner or left join, appending to the
// provided buffers (pass nil to allocate). bt, when non-nil, is reused
// build-side state (the compiled path pools one in its planState; pass nil
// for a temporary). ok=false means the keys turned out unhashable (kind
// family mismatch, boxed keys, or a NaN key) and the caller must run the
// quadratic path; err means key evaluation failed, which the quadratic
// path would also report.
func (e *Engine) hashEquiJoin(acc, next *vRel, leftKeyX, rightKeyX sqlparser.Expr, leftJoin bool, params map[string]value.Value, outL, outR []int, bt *buildTable) (gl, gr []int, ok bool, err error) {
	// Evaluate left before right: the quadratic path's evalBinary does the
	// same, so when both sides error the same one wins.
	lvc := &vctx{params: params, rel: acc, resolver: e.Resolver}
	lkey, err := lvc.eval(leftKeyX, fullFrame(acc.n))
	if err != nil {
		return nil, nil, false, err
	}
	rvc := &vctx{params: params, rel: next, resolver: e.Resolver}
	rkey, err := rvc.eval(rightKeyX, fullFrame(next.n))
	if err != nil {
		return nil, nil, false, err
	}
	if !hashableJoinKinds(lkey, rkey) {
		return nil, nil, false, nil
	}
	outL, outR = outL[:0], outR[:0]

	// All-NULL on either side: nothing matches; LEFT JOIN pads everything.
	if lkey.kind == ColNull || rkey.kind == ColNull {
		if leftJoin {
			for l := 0; l < acc.n; l++ {
				outL = append(outL, l)
				outR = append(outR, -1)
			}
		}
		return outL, outR, true, nil
	}

	// Build on the right side, preserving right-row order per key so the
	// probe emits matches in exactly the quadratic path's order.
	if bt == nil {
		bt = &buildTable{}
	}
	bt.reset(rkey.n)
	for r := 0; r < rkey.n; r++ {
		if rkey.IsNull(r) {
			continue
		}
		var kok bool
		bt.keyBuf, kok = appendJoinKey(rkey, r, bt.keyBuf[:0])
		if !kok {
			return nil, nil, false, nil
		}
		bt.insert(r)
	}
	for l := 0; l < lkey.n; l++ {
		if lkey.IsNull(l) {
			if leftJoin {
				outL = append(outL, l)
				outR = append(outR, -1)
			}
			continue
		}
		var kok bool
		bt.keyBuf, kok = appendJoinKey(lkey, l, bt.keyBuf[:0])
		if !kok {
			return nil, nil, false, nil
		}
		h := bt.lookup()
		if h < 0 {
			if leftJoin {
				outL = append(outL, l)
				outR = append(outR, -1)
			}
			continue
		}
		for r := h; r >= 0; r = bt.next[r] {
			outL = append(outL, l)
			outR = append(outR, int(r))
		}
	}
	return outL, outR, true, nil
}
