package sqlengine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// Differential suite: every query runs through both the vectorized default
// path and the legacy row engine over identical catalogs; the two must
// agree exactly — same error-ness, same row count, same values (NULLs
// included). The fixtures deliberately lean on NULL-handling edge cases:
// NULLs in filters, group keys, aggregate inputs, join keys, ORDER BY keys
// and IN lists.

// diffData builds one catalog instance; each engine gets its own so INTO
// materializations cannot leak across paths.
func diffData(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()
	null := value.Null
	cat.Put(mustTable(t, "t", []string{"a", "b", "g", "s", "flag", "mixed"}, [][]value.Value{
		{value.Int(1), value.Float(1.5), value.Str("x"), value.Str("one"), value.Bool(true), value.Int(10)},
		{value.Int(2), null, value.Str("y"), value.Str("two"), value.Bool(false), value.Float(2.5)},
		{null, value.Float(-3.25), value.Str("x"), null, value.Bool(true), value.Int(7)},
		{value.Int(4), value.Float(0), null, value.Str("four"), null, value.Float(-1)},
		{value.Int(2), value.Float(8), value.Str("y"), value.Str("two"), value.Bool(false), null},
		{null, null, null, null, null, null},
		{value.Int(-7), value.Float(1.5), value.Str("z"), value.Str("seven"), value.Bool(true), value.Int(10)},
	}))
	cat.Put(mustTable(t, "dim", []string{"g", "label", "weight"}, [][]value.Value{
		{value.Str("x"), value.Str("ex"), value.Float(0.5)},
		{value.Str("y"), value.Str("why"), value.Float(2)},
		// "z" intentionally missing; NULL key never joins.
		{null, value.Str("none"), value.Float(9)},
	}))
	cat.Put(mustTable(t, "empty", []string{"a", "b"}, nil))
	// Integers beyond 2^53: value.Compare widens to float64 and treats
	// adjacent huge ints as equal; the columnar engine must order and pick
	// MIN/MAX representatives identically.
	cat.Put(mustTable(t, "bigint", []string{"v", "tag"}, [][]value.Value{
		{value.Int(9007199254740993), value.Str("b")},
		{value.Int(9007199254740992), value.Str("a")},
		{value.Int(-9007199254740993), value.Str("c")},
		{null, value.Str("n")},
	}))
	cat.Put(mustTable(t, "allnull", []string{"v"}, [][]value.Value{{null}, {null}}))
	return cat
}

// runBothEngines executes src on the compiled-plan path, the interpreted
// vectorized path and the row engine over fresh identical catalogs and
// asserts all three outcomes match. It returns the vectorized result for
// any additional assertions.
func runBothEngines(t *testing.T, src string, params map[string]value.Value) *Result {
	t.Helper()
	vec := New(diffData(t))
	row := New(diffData(t))
	row.RowMode = true
	script, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	vres, verr := vec.ExecScript(script, params)
	rres, rerr := row.ExecScript(script, params)
	compareOutcomes(t, src, vres, verr, rres, rerr)

	// Compiled-plan leg: compile once, execute twice on one engine — the
	// second pass reuses the plan's buffers, so any cross-execution buffer
	// contamination shows up as a mismatch here.
	plan := CompileScript(script)
	comp := New(diffData(t))
	for pass := 0; pass < 2; pass++ {
		pres, perr := plan.Exec(comp, params)
		var cres *Result
		if perr == nil && pres != nil {
			cres = pres.Result()
			pres.Release()
		}
		compareOutcomes(t, src+" [compiled]", cres, perr, rres, rerr)
		if perr != nil {
			break
		}
	}
	return vres
}

// compareOutcomes asserts both paths agreed: same error-ness, and on
// success identical column names and cell values (NULL matches only NULL,
// numerics compare with INT→FLOAT widening).
func compareOutcomes(t *testing.T, src string, vres *Result, verr error, rres *Result, rerr error) {
	t.Helper()
	if (verr == nil) != (rerr == nil) {
		t.Fatalf("%s:\nvectorized err = %v\nrow err        = %v", src, verr, rerr)
	}
	if verr != nil {
		return
	}
	if strings.Join(vres.Cols, ",") != strings.Join(rres.Cols, ",") {
		t.Fatalf("%s: cols %v vs %v", src, vres.Cols, rres.Cols)
	}
	if len(vres.Rows) != len(rres.Rows) {
		t.Fatalf("%s: %d rows (vectorized) vs %d rows (row)", src, len(vres.Rows), len(rres.Rows))
	}
	for i := range vres.Rows {
		for j := range vres.Cols {
			a, b := vres.Rows[i][j], rres.Rows[i][j]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
				t.Fatalf("%s: row %d col %s: vectorized %v vs row %v", src, i, vres.Cols[j], a, b)
			}
		}
	}
}

// TestDifferentialFixedQueries covers every dialect feature once, with the
// NULL-heavy fixtures.
func TestDifferentialFixedQueries(t *testing.T) {
	queries := []string{
		// Projection, alias visibility, scalar expressions over NULLs.
		"SELECT a, b, a + b AS apb, a * 2 AS a2, a2 + 1 AS a3 FROM t;",
		"SELECT a - b AS d, -a AS neg, b / 2 AS half FROM t;",
		"SELECT a % 2 AS m FROM t WHERE a IS NOT NULL;",
		"SELECT CASE WHEN a > 1 THEN 'big' WHEN a = 1 THEN 'one' ELSE 'small' END AS c FROM t;",
		"SELECT CASE WHEN a > 1 THEN b END AS c FROM t;",
		"SELECT COALESCE(a, b, -1) AS c, ABS(b) AS ab FROM t;",
		"SELECT UPPER(s) AS u, LEN(s) AS l, CONCAT(s, '-', g) AS cat FROM t;",
		// WHERE with three-valued logic, IS NULL, BETWEEN, IN.
		"SELECT a FROM t WHERE b > 0;",
		"SELECT a FROM t WHERE b > 0 OR flag;",
		"SELECT a FROM t WHERE NOT (b > 0) AND a IS NOT NULL;",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 3;",
		"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 3;",
		"SELECT a FROM t WHERE a IN (1, 2, NULL);",
		"SELECT a FROM t WHERE a NOT IN (1, 2);",
		"SELECT a FROM t WHERE g IS NULL;",
		"SELECT a FROM t WHERE s IS NOT NULL AND flag;",
		// NULL on one side of AND/OR makes the row engine convert the other
		// side leniently (a non-boolean string counts as false, not error).
		"SELECT NULL AND 'x' AS a, NULL OR 'x' AS b;",
		"SELECT NULL AND s AS x, NULL OR s AS y FROM t;",
		"SELECT b FROM t WHERE g AND b > 0;",
		"SELECT a, mixed FROM t WHERE mixed > 0;",
		// Aggregates over NULL-containing, empty and all-NULL inputs.
		"SELECT COUNT(*) AS n, COUNT(a) AS na, COUNT(b) AS nb FROM t;",
		"SELECT SUM(a) AS sa, SUM(b) AS sb, SUM(mixed) AS sm FROM t;",
		"SELECT AVG(b) AS avgb, STDDEV(b) AS sdb, MIN(a) AS mina, MAX(a) AS maxa FROM t;",
		"SELECT EXPECT(b) AS e, EXPECT_STDDEV(b) AS es, PROB(flag) AS p FROM t WHERE flag IS NOT NULL;",
		"SELECT MIN(s) AS mins, MAX(s) AS maxs FROM t;",
		"SELECT COUNT(*) AS n, SUM(a) AS s, AVG(a) AS av, MIN(a) AS mn FROM empty;",
		"SELECT COUNT(v) AS n, SUM(v) AS s, AVG(v) AS av FROM allnull;",
		"SELECT SUM(a + b) AS sab, COUNT(a + b) AS nab FROM t;",
		"SELECT SUM(CASE WHEN b > 0 THEN 1 ELSE 0 END) AS pos FROM t;",
		// GROUP BY on NULL-containing keys, HAVING, aggregate arithmetic.
		"SELECT g, COUNT(*) AS n FROM t GROUP BY g;",
		"SELECT g, COUNT(*) AS n, SUM(a) AS sa, AVG(b) AS ab FROM t GROUP BY g ORDER BY g;",
		"SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 1;",
		"SELECT g, SUM(a) * 1.0 / COUNT(a) AS manual_avg FROM t GROUP BY g HAVING COUNT(a) > 0;",
		"SELECT g, s, COUNT(*) AS n FROM t GROUP BY g, s ORDER BY g, s;",
		"SELECT a % 2 AS parity, COUNT(*) AS n FROM t WHERE a IS NOT NULL GROUP BY a % 2 ORDER BY parity;",
		// Huge integers: float64-widened comparison semantics must match.
		"SELECT v, tag FROM bigint ORDER BY v, tag;",
		"SELECT MIN(v) AS mn, MAX(v) AS mx FROM bigint;",
		"SELECT DISTINCT v FROM bigint;",
		// DISTINCT including NULL rows and INT/FLOAT key collapsing.
		"SELECT DISTINCT g FROM t ORDER BY g;",
		"SELECT DISTINCT g, s FROM t;",
		"SELECT DISTINCT b FROM t ORDER BY b DESC;",
		// ORDER BY with NULLs first, multiple keys, DESC, LIMIT.
		"SELECT a, b FROM t ORDER BY a, b DESC;",
		"SELECT a, b FROM t ORDER BY b DESC, a LIMIT 3;",
		"SELECT a, a * a AS sq FROM t WHERE a IS NOT NULL ORDER BY sq DESC LIMIT 2;",
		"SELECT g, COUNT(*) AS n FROM t GROUP BY g ORDER BY n DESC, g LIMIT 2;",
		// Joins: cross, inner, left (NULL keys never match), alias use.
		"SELECT COUNT(*) AS n FROM t, dim;",
		"SELECT t.a, dim.label FROM t JOIN dim ON t.g = dim.g ORDER BY t.a;",
		"SELECT t.a, dim.label FROM t LEFT JOIN dim ON t.g = dim.g ORDER BY t.a;",
		"SELECT t.a FROM t LEFT JOIN dim ON t.g = dim.g WHERE dim.label IS NULL ORDER BY t.a;",
		"SELECT x.a, y.weight FROM t x JOIN dim y ON x.g = y.g WHERE y.weight > 1 ORDER BY x.a;",
		"SELECT COUNT(*) AS n FROM t JOIN dim ON t.b > dim.weight;",
		// Equality joins with swapped/expression keys (the hash path) and
		// all-NULL key sides.
		"SELECT t.a, dim.label FROM t JOIN dim ON dim.g = t.g ORDER BY t.a;",
		"SELECT t.a FROM t JOIN dim ON t.b = dim.weight * 4 ORDER BY t.a;",
		"SELECT COUNT(*) AS n FROM allnull JOIN dim ON allnull.v = dim.weight;",
		"SELECT dim.label FROM dim LEFT JOIN allnull ON dim.weight = allnull.v ORDER BY dim.label;",
		// GROUP BY over a hash equi-join with NULL keys on both sides: the
		// NULL t.g rows and dim's NULL-g row must never match (row-engine
		// semantics), and the grouped aggregates must see exactly the
		// joined multiplicities.
		"SELECT dim.label, COUNT(*) AS n, SUM(t.a) AS s FROM t JOIN dim ON t.g = dim.g GROUP BY dim.label ORDER BY dim.label;",
		"SELECT dim.label, COUNT(t.a) AS n, AVG(t.b) AS avgb FROM t LEFT JOIN dim ON t.g = dim.g GROUP BY dim.label ORDER BY dim.label;",
		"SELECT t.g, COUNT(*) AS n FROM t JOIN dim ON t.g = dim.g GROUP BY t.g HAVING COUNT(*) > 1 ORDER BY t.g;",
		// INTO materialization and re-query.
		"SELECT g, COUNT(*) AS n INTO agg FROM t GROUP BY g; SELECT g, n FROM agg ORDER BY n DESC, g;",
		"SELECT a, b INTO copy FROM t WHERE a IS NOT NULL; SELECT SUM(a) AS s FROM copy;",
		// Scalar SELECT with no FROM.
		"SELECT 1 + 2 AS three, NULL AS nothing, 'x' AS letter;",
		// Parameters.
		"SELECT a FROM t WHERE a > @lo ORDER BY a;",
	}
	params := map[string]value.Value{"lo": value.Int(1)}
	for _, q := range queries {
		runBothEngines(t, q, params)
	}
}

// TestDifferentialErrors checks that queries that must fail fail on both
// paths (compareOutcomes inside runBothEngines asserts error parity).
func TestDifferentialErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT a / 0 FROM t;",
		"SELECT 1 % 0;",
		"SELECT unknown_col FROM t;",
		"SELECT g FROM t, dim;", // ambiguous
		"SELECT a FROM missing;",
		"SELECT SUM(a) FROM t WHERE SUM(a) > 0;",
		"SELECT SUM(SUM(a)) FROM t;",
		"SELECT MAX(*) FROM t;",
		"SELECT NOSUCHFUNC(a) FROM t;",
		"SELECT s + 1 FROM t;",
		"SELECT a FROM t WHERE s AND flag;",
		"SELECT a FROM t ORDER BY SUM(a);",
		"SELECT @missing FROM t;",
	} {
		runBothEngines(t, q, nil)
	}
}

// randomColumnExpr generates numeric expressions over t's columns (which
// include NULLs and a mixed-kind column), reusing the literal generators of
// the oracle test.
func randomColumnExpr(r *rand.Rand, depth int) sqlparser.Expr {
	if depth <= 0 {
		switch r.Intn(8) {
		case 0:
			return sqlparser.ColumnRef{Name: "a"}
		case 1:
			return sqlparser.ColumnRef{Name: "b"}
		case 2:
			return sqlparser.ColumnRef{Name: "mixed"}
		case 3:
			return sqlparser.Literal{Val: value.Null}
		case 4, 5:
			return sqlparser.Literal{Val: value.Int(int64(r.Intn(9) - 4))}
		default:
			return sqlparser.Literal{Val: value.Float(float64(r.Intn(64)-32) / 4)}
		}
	}
	switch r.Intn(4) {
	case 0:
		ops := []string{"+", "-", "*", "/"}
		return sqlparser.Binary{Op: ops[r.Intn(len(ops))],
			L: randomColumnExpr(r, depth-1), R: randomColumnExpr(r, depth-1)}
	case 1:
		return sqlparser.Unary{Op: "-", X: randomColumnExpr(r, depth-1)}
	case 2:
		n := 1 + r.Intn(2)
		whens := make([]sqlparser.When, n)
		for i := range whens {
			whens[i] = sqlparser.When{Cond: randomColumnBool(r, depth-1), Then: randomColumnExpr(r, depth-1)}
		}
		c := sqlparser.Case{Whens: whens}
		if r.Intn(2) == 0 {
			c.Else = randomColumnExpr(r, depth-1)
		}
		return c
	default:
		return sqlparser.Case{Whens: []sqlparser.When{{
			Cond: sqlparser.IsNull{X: randomColumnExpr(r, depth-1)},
			Then: randomColumnExpr(r, depth-1),
		}}, Else: randomColumnExpr(r, depth-1)}
	}
}

func randomColumnBool(r *rand.Rand, depth int) sqlparser.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return sqlparser.Binary{Op: ops[r.Intn(len(ops))],
			L: randomColumnExpr(r, 0), R: randomColumnExpr(r, 0)}
	}
	switch r.Intn(5) {
	case 0:
		return sqlparser.Binary{Op: "AND", L: randomColumnBool(r, depth-1), R: randomColumnBool(r, depth-1)}
	case 1:
		return sqlparser.Binary{Op: "OR", L: randomColumnBool(r, depth-1), R: randomColumnBool(r, depth-1)}
	case 2:
		return sqlparser.IsNull{X: randomColumnExpr(r, depth-1), Not: r.Intn(2) == 0}
	case 3:
		return sqlparser.Between{X: randomColumnExpr(r, depth-1),
			Lo: randomColumnExpr(r, 0), Hi: randomColumnExpr(r, 0), Not: r.Intn(2) == 0}
	default:
		items := make([]sqlparser.Expr, 1+r.Intn(3))
		for i := range items {
			items[i] = randomColumnExpr(r, 0)
		}
		return sqlparser.InList{X: randomColumnExpr(r, depth-1), Items: items, Not: r.Intn(2) == 0}
	}
}

// TestDifferentialRandomQueries fuzzes whole SELECTs — projections,
// filters, grouping with aggregates, ordering — through both paths.
func TestDifferentialRandomQueries(t *testing.T) {
	r := rand.New(rand.NewSource(20110612))
	aggs := []string{"SUM", "AVG", "COUNT", "MIN", "MAX", "STDDEV", "EXPECT", "PROB"}
	for i := 0; i < 400; i++ {
		var sb strings.Builder
		grouped := i%3 == 0
		if grouped {
			agg1 := aggs[r.Intn(len(aggs))]
			agg2 := aggs[r.Intn(len(aggs))]
			fmt.Fprintf(&sb, "SELECT g, %s(%s) AS m1, %s(%s) AS m2 FROM t",
				agg1, randomColumnExpr(r, 2).SQL(), agg2, randomColumnExpr(r, 1).SQL())
		} else {
			fmt.Fprintf(&sb, "SELECT %s AS x, %s AS y FROM t",
				randomColumnExpr(r, 3).SQL(), randomColumnExpr(r, 2).SQL())
		}
		if r.Intn(2) == 0 {
			fmt.Fprintf(&sb, " WHERE %s", randomColumnBool(r, 2).SQL())
		}
		if grouped {
			sb.WriteString(" GROUP BY g")
			if r.Intn(3) == 0 {
				fmt.Fprintf(&sb, " HAVING COUNT(*) >= %d", r.Intn(3))
			}
			if r.Intn(2) == 0 {
				sb.WriteString(" ORDER BY m1 DESC, g")
			}
		} else {
			switch r.Intn(3) {
			case 0:
				sb.WriteString(" ORDER BY x")
			case 1:
				sb.WriteString(" ORDER BY y DESC, x")
			}
			if r.Intn(4) == 0 {
				fmt.Fprintf(&sb, " LIMIT %d", r.Intn(5))
			}
		}
		sb.WriteString(";")
		runBothEngines(t, sb.String(), nil)
	}
}
