// Package sqlengine is the relational substrate standing in for the paper's
// Microsoft SQL Server install: an in-memory engine that evaluates the pure
// TSQL batches Fuzzy Prophet's Query Generator produces.
//
// The engine supports the dialect subset of package sqlparser: SELECT with
// projection (including the dialect's left-to-right alias visibility),
// FROM over catalog tables with cross and inner joins, WHERE, GROUP BY with
// the standard aggregates plus the probabilistic aggregates EXPECT,
// EXPECT_STDDEV and PROB, HAVING, ORDER BY, LIMIT and INTO materialization.
//
// The probabilistic aggregates are defined over a *worlds* axis: the Query
// Generator lays Monte Carlo worlds out as rows, so within the engine
// EXPECT(x) ≡ AVG(x), EXPECT_STDDEV(x) ≡ STDDEV(x) and PROB(x) ≡ AVG(x) of
// a 0/1 indicator — the engine implements them under their own names so
// queries stay faithful to the paper's surface syntax.
package sqlengine

import (
	"fmt"
	"sort"
	"sync"

	"fuzzyprophet/internal/value"
)

// Table is a named in-memory relation.
type Table struct {
	Name string
	Cols []string
	Rows [][]value.Value
}

// NewTable constructs a table, validating that all rows match the column
// count.
func NewTable(name string, cols []string, rows [][]value.Value) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("sqlengine: table needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqlengine: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c] {
			return nil, fmt.Errorf("sqlengine: table %q has duplicate column %q", name, c)
		}
		seen[c] = true
	}
	for i, r := range rows {
		if len(r) != len(cols) {
			return nil, fmt.Errorf("sqlengine: table %q row %d has %d values, want %d", name, i, len(r), len(cols))
		}
	}
	return &Table{Name: name, Cols: cols, Rows: rows}, nil
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Append adds a row, validating its width.
func (t *Table) Append(row []value.Value) error {
	if len(row) != len(t.Cols) {
		return fmt.Errorf("sqlengine: table %q append: %d values, want %d", t.Name, len(row), len(t.Cols))
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// Catalog is a thread-safe name → table map.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Put stores or replaces a table.
func (c *Catalog) Put(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Drop removes the named table; it is a no-op when absent.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, name)
}

// Names returns the table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// colBinding names one column of an intermediate relation, qualified by the
// table alias it came from ("" for computed columns).
type colBinding struct {
	table string
	name  string
}

// relation is an intermediate result: a schema plus rows.
type relation struct {
	schema []colBinding
	rows   [][]value.Value
}

// lookup resolves a (table, name) reference against the schema. Unqualified
// names must be unambiguous.
func (r *relation) lookup(table, name string) (int, error) {
	found := -1
	for i, b := range r.schema {
		if b.name != name {
			continue
		}
		if table != "" && b.table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqlengine: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return -1, fmt.Errorf("sqlengine: unknown column %s.%s", table, name)
		}
		return -1, fmt.Errorf("sqlengine: unknown column %q", name)
	}
	return found, nil
}
