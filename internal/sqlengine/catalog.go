// Package sqlengine is the relational substrate standing in for the paper's
// Microsoft SQL Server install: an in-memory engine that evaluates the pure
// TSQL batches Fuzzy Prophet's Query Generator produces.
//
// The engine supports the dialect subset of package sqlparser: SELECT with
// projection (including the dialect's left-to-right alias visibility),
// FROM over catalog tables with cross and inner joins, WHERE, GROUP BY with
// the standard aggregates plus the probabilistic aggregates EXPECT,
// EXPECT_STDDEV and PROB, HAVING, ORDER BY, LIMIT and INTO materialization.
//
// The probabilistic aggregates are defined over a *worlds* axis: the Query
// Generator lays Monte Carlo worlds out as rows, so within the engine
// EXPECT(x) ≡ AVG(x), EXPECT_STDDEV(x) ≡ STDDEV(x) and PROB(x) ≡ AVG(x) of
// a 0/1 indicator — the engine implements them under their own names so
// queries stay faithful to the paper's surface syntax.
//
// Execution is columnar and vectorized: tables store typed column vectors
// (Column) with null bitmaps, filters produce selection vectors instead of
// copied rows, and expressions and aggregates run over whole vectors in
// tight loops (see vexec.go / veval.go). The original row-at-a-time
// executor is retained behind Engine.RowMode as a semantic oracle for
// differential testing and as the before-measurement of the engine
// benchmarks; the Table rows API remains as a thin compatibility shim over
// the columnar storage.
package sqlengine

import (
	"fmt"
	"sort"
	"sync"

	"fuzzyprophet/internal/value"
)

// Table is a named in-memory relation in the legacy row layout. It remains
// the convenience construction API (tests, static side tables); the catalog
// converts it to columnar form on demand and caches both layouts.
type Table struct {
	Name string
	Cols []string
	Rows [][]value.Value
}

// NewTable constructs a table, validating that all rows match the column
// count.
func NewTable(name string, cols []string, rows [][]value.Value) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("sqlengine: table needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqlengine: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c] {
			return nil, fmt.Errorf("sqlengine: table %q has duplicate column %q", name, c)
		}
		seen[c] = true
	}
	for i, r := range rows {
		if len(r) != len(cols) {
			return nil, fmt.Errorf("sqlengine: table %q row %d has %d values, want %d", name, i, len(r), len(cols))
		}
	}
	return &Table{Name: name, Cols: cols, Rows: rows}, nil
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Append adds a row, validating its width. Appending after the table has
// been installed in a catalog is not supported (the catalog caches a
// columnar conversion).
func (t *Table) Append(row []value.Value) error {
	if len(row) != len(t.Cols) {
		return fmt.Errorf("sqlengine: table %q append: %d values, want %d", t.Name, len(row), len(t.Cols))
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// catEntry holds a catalog table in up to two layouts; whichever was not
// supplied at Put time is materialized lazily and cached.
type catEntry struct {
	rows *Table
	cols *ColTable
}

// Catalog is a thread-safe name → table map over columnar storage.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*catEntry
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*catEntry)}
}

// Put stores or replaces a table given in row form. The table must not be
// mutated afterwards.
func (c *Catalog) Put(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = &catEntry{rows: t}
}

// PutColumns stores or replaces a table given in columnar form — the
// zero-transpose path the Monte Carlo executor uses for the possible-worlds
// table. The columns must not be mutated afterwards.
func (c *Catalog) PutColumns(ct *ColTable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[ct.Name] = &catEntry{cols: ct}
}

// Get returns the named table in row form, converting from columnar
// storage on first access.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	e, ok := c.tables[name]
	if ok && e.rows != nil {
		c.mu.RUnlock()
		return e.rows, true
	}
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok = c.tables[name]
	if !ok {
		return nil, false
	}
	if e.rows == nil {
		e.rows = rowsFromColumns(e.cols)
	}
	return e.rows, true
}

// GetColumns returns the named table in columnar form, converting from row
// storage on first access.
func (c *Catalog) GetColumns(name string) (*ColTable, bool) {
	c.mu.RLock()
	e, ok := c.tables[name]
	if ok && e.cols != nil {
		c.mu.RUnlock()
		return e.cols, true
	}
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok = c.tables[name]
	if !ok {
		return nil, false
	}
	if e.cols == nil {
		e.cols = columnsFromRows(e.rows)
	}
	return e.cols, true
}

// Drop removes the named table; it is a no-op when absent.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, name)
}

// Names returns the table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// colBinding names one column of an intermediate relation, qualified by the
// table alias it came from ("" for computed columns).
type colBinding struct {
	table string
	name  string
}

// lookupBinding resolves a (table, name) reference against a schema.
// Unqualified names must be unambiguous. Both the row and the columnar
// executors resolve through it, so name-resolution errors are identical.
func lookupBinding(schema []colBinding, table, name string) (int, error) {
	found := -1
	for i, b := range schema {
		if b.name != name {
			continue
		}
		if table != "" && b.table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqlengine: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return -1, fmt.Errorf("sqlengine: unknown column %s.%s", table, name)
		}
		return -1, fmt.Errorf("sqlengine: unknown column %q", name)
	}
	return found, nil
}

// findBinding is lookupBinding without error construction: it returns -1
// for unknown or ambiguous references. Hot callers that only need to know
// whether a reference resolves (the compiled plans' bind pass) use it to
// stay allocation-free; lookupBinding still produces the user-facing error.
func findBinding(schema []colBinding, table, name string) int {
	found := -1
	for i, b := range schema {
		if b.name != name {
			continue
		}
		if table != "" && b.table != table {
			continue
		}
		if found >= 0 {
			return -1 // ambiguous
		}
		found = i
	}
	return found
}

// relation is an intermediate result of the row executor: a schema plus
// boxed rows.
type relation struct {
	schema []colBinding
	rows   [][]value.Value
}

// lookup resolves a (table, name) reference against the schema.
func (r *relation) lookup(table, name string) (int, error) {
	return lookupBinding(r.schema, table, name)
}
