package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// FuncResolver resolves scalar function calls during expression evaluation.
// The scenario layer supplies one that dispatches VG-Functions with the
// current world's seed; the engine falls back to its scalar builtins for
// names the resolver declines (second return false).
type FuncResolver interface {
	Call(name string, args []value.Value) (callResult value.Value, handled bool, err error)
}

// FuncResolverFunc adapts a closure to FuncResolver.
type FuncResolverFunc func(name string, args []value.Value) (value.Value, bool, error)

// Call implements FuncResolver.
func (f FuncResolverFunc) Call(name string, args []value.Value) (value.Value, bool, error) {
	return f(name, args)
}

// EvalConst evaluates an expression outside any row context: it may
// reference parameters, literals and scalar functions (resolver first, then
// builtins) but not columns or aggregates. The scenario compiler uses it to
// resolve VG call-site arguments for a parameter point.
func EvalConst(x sqlparser.Expr, params map[string]value.Value, resolver FuncResolver) (value.Value, error) {
	ev := &env{params: params, resolver: resolver}
	return ev.eval(x)
}

// env is the evaluation environment for one expression: parameter bindings,
// an optional row (with schema), extra computed bindings (select-item
// aliases) and the function resolver chain.
type env struct {
	params   map[string]value.Value
	rel      *relation
	row      []value.Value
	extra    map[string]value.Value // alias → value, visible unqualified
	resolver FuncResolver
}

func (e *env) lookupColumn(table, name string) (value.Value, error) {
	if table == "" && e.extra != nil {
		if v, ok := e.extra[name]; ok {
			return v, nil
		}
	}
	if e.rel == nil || e.row == nil {
		return value.Null, fmt.Errorf("sqlengine: column %q referenced outside a row context", name)
	}
	idx, err := e.rel.lookup(table, name)
	if err != nil {
		return value.Null, err
	}
	return e.row[idx], nil
}

// eval evaluates a non-aggregate expression. Aggregate calls reaching this
// path are an error; the grouped executor intercepts them earlier.
func (e *env) eval(x sqlparser.Expr) (value.Value, error) {
	switch n := x.(type) {
	case sqlparser.Literal:
		return n.Val, nil
	case sqlparser.ParamRef:
		if e.params != nil {
			if v, ok := e.params[n.Name]; ok {
				return v, nil
			}
		}
		return value.Null, fmt.Errorf("sqlengine: unbound parameter @%s", n.Name)
	case sqlparser.ColumnRef:
		return e.lookupColumn(n.Table, n.Name)
	case sqlparser.Unary:
		v, err := e.eval(n.X)
		if err != nil {
			return value.Null, err
		}
		if n.Op == "NOT" {
			if v.IsNull() {
				return value.Null, nil
			}
			b, err := v.AsBool()
			if err != nil {
				return value.Null, err
			}
			return value.Bool(!b), nil
		}
		return value.Neg(v)
	case sqlparser.Binary:
		return e.evalBinary(n)
	case sqlparser.Case:
		for _, w := range n.Whens {
			c, err := e.eval(w.Cond)
			if err != nil {
				return value.Null, err
			}
			if c.Truthy() {
				return e.eval(w.Then)
			}
		}
		if n.Else != nil {
			return e.eval(n.Else)
		}
		return value.Null, nil
	case sqlparser.Between:
		v, err := e.eval(n.X)
		if err != nil {
			return value.Null, err
		}
		lo, err := e.eval(n.Lo)
		if err != nil {
			return value.Null, err
		}
		hi, err := e.eval(n.Hi)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return value.Null, nil
		}
		cl, err := value.Compare(v, lo)
		if err != nil {
			return value.Null, err
		}
		ch, err := value.Compare(v, hi)
		if err != nil {
			return value.Null, err
		}
		in := cl >= 0 && ch <= 0
		if n.Not {
			in = !in
		}
		return value.Bool(in), nil
	case sqlparser.InList:
		v, err := e.eval(n.X)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			return value.Null, nil
		}
		found := false
		for _, item := range n.Items {
			iv, err := e.eval(item)
			if err != nil {
				return value.Null, err
			}
			if !iv.IsNull() && v.Equal(iv) {
				found = true
				break
			}
		}
		if n.Not {
			found = !found
		}
		return value.Bool(found), nil
	case sqlparser.IsNull:
		v, err := e.eval(n.X)
		if err != nil {
			return value.Null, err
		}
		if n.Not {
			return value.Bool(!v.IsNull()), nil
		}
		return value.Bool(v.IsNull()), nil
	case sqlparser.FuncCall:
		if isAggregateName(n.Name) {
			return value.Null, fmt.Errorf("sqlengine: aggregate %s used outside an aggregation context", n.Name)
		}
		args := make([]value.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := e.eval(a)
			if err != nil {
				return value.Null, err
			}
			args[i] = v
		}
		if e.resolver != nil {
			v, handled, err := e.resolver.Call(n.Name, args)
			if err != nil {
				return value.Null, err
			}
			if handled {
				return v, nil
			}
		}
		return callBuiltin(n.Name, args)
	default:
		return value.Null, fmt.Errorf("sqlengine: unsupported expression %T", x)
	}
}

func (e *env) evalBinary(n sqlparser.Binary) (value.Value, error) {
	// AND/OR use SQL three-valued logic with short-circuiting on the
	// determined side.
	if n.Op == "AND" || n.Op == "OR" {
		l, err := e.eval(n.L)
		if err != nil {
			return value.Null, err
		}
		if n.Op == "AND" && !l.IsNull() {
			if b, err := l.AsBool(); err != nil {
				return value.Null, err
			} else if !b {
				return value.Bool(false), nil
			}
		}
		if n.Op == "OR" && !l.IsNull() {
			if b, err := l.AsBool(); err != nil {
				return value.Null, err
			} else if b {
				return value.Bool(true), nil
			}
		}
		r, err := e.eval(n.R)
		if err != nil {
			return value.Null, err
		}
		if l.IsNull() || r.IsNull() {
			// AND: false∧NULL handled above; true∧NULL = NULL.
			// OR: true∨NULL handled above; false∨NULL = NULL.
			if n.Op == "AND" {
				if !r.IsNull() {
					if b, _ := r.AsBool(); !b {
						return value.Bool(false), nil
					}
				}
			} else if !r.IsNull() {
				if b, _ := r.AsBool(); b {
					return value.Bool(true), nil
				}
			}
			return value.Null, nil
		}
		rb, err := r.AsBool()
		if err != nil {
			return value.Null, err
		}
		return value.Bool(rb), nil
	}

	l, err := e.eval(n.L)
	if err != nil {
		return value.Null, err
	}
	r, err := e.eval(n.R)
	if err != nil {
		return value.Null, err
	}
	switch n.Op {
	case "+":
		return value.Add(l, r)
	case "-":
		return value.Sub(l, r)
	case "*":
		return value.Mul(l, r)
	case "/":
		return value.Div(l, r)
	case "%":
		return value.Mod(l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return value.Null, nil
		}
		c, err := value.Compare(l, r)
		if err != nil {
			return value.Null, err
		}
		switch n.Op {
		case "=":
			return value.Bool(c == 0), nil
		case "<>":
			return value.Bool(c != 0), nil
		case "<":
			return value.Bool(c < 0), nil
		case "<=":
			return value.Bool(c <= 0), nil
		case ">":
			return value.Bool(c > 0), nil
		default:
			return value.Bool(c >= 0), nil
		}
	default:
		return value.Null, fmt.Errorf("sqlengine: unknown operator %q", n.Op)
	}
}

// callBuiltin implements the engine's scalar builtin functions.
func callBuiltin(name string, args []value.Value) (value.Value, error) {
	oneFloat := func() (float64, bool, error) {
		if len(args) != 1 {
			return 0, false, fmt.Errorf("sqlengine: %s expects 1 argument, got %d", name, len(args))
		}
		if args[0].IsNull() {
			return 0, true, nil
		}
		f, err := args[0].AsFloat()
		return f, false, err
	}
	switch name {
	case "ABS":
		f, isNull, err := oneFloat()
		if err != nil || isNull {
			return value.Null, err
		}
		return value.Float(math.Abs(f)), nil
	case "SQRT":
		f, isNull, err := oneFloat()
		if err != nil || isNull {
			return value.Null, err
		}
		if f < 0 {
			return value.Null, fmt.Errorf("sqlengine: SQRT of negative value %g", f)
		}
		return value.Float(math.Sqrt(f)), nil
	case "EXP":
		f, isNull, err := oneFloat()
		if err != nil || isNull {
			return value.Null, err
		}
		return value.Float(math.Exp(f)), nil
	case "LN":
		f, isNull, err := oneFloat()
		if err != nil || isNull {
			return value.Null, err
		}
		if f <= 0 {
			return value.Null, fmt.Errorf("sqlengine: LN of non-positive value %g", f)
		}
		return value.Float(math.Log(f)), nil
	case "FLOOR":
		f, isNull, err := oneFloat()
		if err != nil || isNull {
			return value.Null, err
		}
		return value.Float(math.Floor(f)), nil
	case "CEILING":
		f, isNull, err := oneFloat()
		if err != nil || isNull {
			return value.Null, err
		}
		return value.Float(math.Ceil(f)), nil
	case "ROUND":
		f, isNull, err := oneFloat()
		if err != nil || isNull {
			return value.Null, err
		}
		return value.Float(math.Round(f)), nil
	case "SIGN":
		f, isNull, err := oneFloat()
		if err != nil || isNull {
			return value.Null, err
		}
		switch {
		case f > 0:
			return value.Int(1), nil
		case f < 0:
			return value.Int(-1), nil
		default:
			return value.Int(0), nil
		}
	case "POWER":
		if len(args) != 2 {
			return value.Null, fmt.Errorf("sqlengine: POWER expects 2 arguments, got %d", len(args))
		}
		if args[0].IsNull() || args[1].IsNull() {
			return value.Null, nil
		}
		a, err := args[0].AsFloat()
		if err != nil {
			return value.Null, err
		}
		b, err := args[1].AsFloat()
		if err != nil {
			return value.Null, err
		}
		return value.Float(math.Pow(a, b)), nil
	case "LEAST", "GREATEST":
		if len(args) == 0 {
			return value.Null, fmt.Errorf("sqlengine: %s expects at least 1 argument", name)
		}
		best := value.Null
		for _, a := range args {
			if a.IsNull() {
				continue
			}
			if best.IsNull() {
				best = a
				continue
			}
			c, err := value.Compare(a, best)
			if err != nil {
				return value.Null, err
			}
			if (name == "LEAST" && c < 0) || (name == "GREATEST" && c > 0) {
				best = a
			}
		}
		return best, nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null, nil
	case "UPPER", "LOWER", "LTRIM", "RTRIM", "TRIM":
		if len(args) != 1 {
			return value.Null, fmt.Errorf("sqlengine: %s expects 1 argument, got %d", name, len(args))
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		s := args[0].AsString()
		switch name {
		case "UPPER":
			return value.Str(strings.ToUpper(s)), nil
		case "LOWER":
			return value.Str(strings.ToLower(s)), nil
		case "LTRIM":
			return value.Str(strings.TrimLeft(s, " \t")), nil
		case "RTRIM":
			return value.Str(strings.TrimRight(s, " \t")), nil
		default:
			return value.Str(strings.TrimSpace(s)), nil
		}
	case "LEN":
		if len(args) != 1 {
			return value.Null, fmt.Errorf("sqlengine: LEN expects 1 argument, got %d", len(args))
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.Int(int64(len(args[0].AsString()))), nil
	case "SUBSTRING":
		// SUBSTRING(s, start, length) with 1-based start (T-SQL).
		if len(args) != 3 {
			return value.Null, fmt.Errorf("sqlengine: SUBSTRING expects 3 arguments, got %d", len(args))
		}
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return value.Null, nil
		}
		s := args[0].AsString()
		start, err := args[1].AsInt()
		if err != nil {
			return value.Null, err
		}
		length, err := args[2].AsInt()
		if err != nil {
			return value.Null, err
		}
		if length < 0 {
			return value.Null, fmt.Errorf("sqlengine: SUBSTRING length must be non-negative, got %d", length)
		}
		lo := start - 1
		if lo < 0 {
			lo = 0
		}
		if lo > int64(len(s)) {
			lo = int64(len(s))
		}
		hi := lo + length
		if hi > int64(len(s)) {
			hi = int64(len(s))
		}
		return value.Str(s[lo:hi]), nil
	case "CONCAT":
		// T-SQL CONCAT: NULL arguments become empty strings.
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				continue
			}
			sb.WriteString(a.AsString())
		}
		return value.Str(sb.String()), nil
	case "REPLACE":
		if len(args) != 3 {
			return value.Null, fmt.Errorf("sqlengine: REPLACE expects 3 arguments, got %d", len(args))
		}
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return value.Null, nil
		}
		return value.Str(strings.ReplaceAll(args[0].AsString(), args[1].AsString(), args[2].AsString())), nil
	default:
		return value.Null, fmt.Errorf("sqlengine: unknown function %q", name)
	}
}

// isAggregateName reports whether name is one of the engine's aggregates
// (standard or probabilistic).
func isAggregateName(name string) bool {
	switch name {
	case "SUM", "AVG", "COUNT", "MIN", "MAX", "STDDEV",
		"EXPECT", "EXPECT_STDDEV", "PROB":
		return true
	default:
		return false
	}
}

// hasAggregate reports whether the expression contains an aggregate call.
func hasAggregate(x sqlparser.Expr) bool {
	found := false
	sqlparser.WalkExpr(x, func(e sqlparser.Expr) {
		if f, ok := e.(sqlparser.FuncCall); ok && isAggregateName(f.Name) {
			found = true
		}
	})
	return found
}
