package sqlengine

import (
	"fmt"
	"math/bits"
	"sort"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/stats"
	"fuzzyprophet/internal/value"
)

// This file is the vectorized (columnar) executor: the default execution
// path of the engine. FROM builds a columnar relation (joins gather index
// vectors instead of copying boxed rows), WHERE produces a selection vector,
// projection evaluates whole columns, GROUP BY hashes pre-computed key
// columns, and aggregates fold typed vectors in tight loops. The grouped
// path computes aggregates vectorized and then evaluates the (tiny,
// per-group) scalar glue through the row expression evaluator, so grouped
// semantics are shared with the row engine by construction.

// ColResult is the columnar form of a query result. The Monte Carlo
// executor consumes it directly (Column.Float64s), avoiding the box/unbox
// round trip of the legacy row Result.
type ColResult struct {
	Cols    []string
	Columns []*Column
}

// NumRows returns the number of result rows.
func (r *ColResult) NumRows() int {
	if len(r.Columns) == 0 {
		return 0
	}
	return r.Columns[0].Len()
}

// ColIndex returns the index of the named output column, or -1.
func (r *ColResult) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Column returns the named output column.
func (r *ColResult) Column(name string) (*Column, error) {
	i := r.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("sqlengine: result has no column %q", name)
	}
	return r.Columns[i], nil
}

// Result boxes the columnar result into the legacy row layout.
func (r *ColResult) Result() *Result {
	n := r.NumRows()
	out := &Result{Cols: append([]string(nil), r.Cols...)}
	if n == 0 {
		return out
	}
	out.Rows = make([][]value.Value, n)
	for i := 0; i < n; i++ {
		row := make([]value.Value, len(r.Columns))
		for j, c := range r.Columns {
			row[j] = c.Value(i)
		}
		out.Rows[i] = row
	}
	return out
}

// colResultFromResult converts a boxed row result to columnar form.
func colResultFromResult(res *Result) *ColResult {
	out := &ColResult{Cols: append([]string(nil), res.Cols...)}
	out.Columns = make([]*Column, len(res.Cols))
	for j := range res.Cols {
		vals := make([]value.Value, len(res.Rows))
		for i, row := range res.Rows {
			vals[i] = row[j]
		}
		out.Columns[j] = ValuesColumn(vals)
	}
	return out
}

// ExecScriptColumnar is ExecScript returning the last result in columnar
// form without boxing — the Monte Carlo render path.
func (e *Engine) ExecScriptColumnar(script *sqlparser.Script, params map[string]value.Value) (*ColResult, error) {
	var last *ColResult
	for _, st := range script.Statements {
		sel, ok := st.(sqlparser.Select)
		if !ok {
			continue
		}
		res, err := e.ExecSelectColumnar(sel, params)
		if err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

// ExecSelectColumnar evaluates one SELECT on the vectorized path. When the
// statement has an INTO clause the result is materialized in the catalog in
// columnar form.
func (e *Engine) ExecSelectColumnar(sel sqlparser.Select, params map[string]value.Value) (*ColResult, error) {
	if e.RowMode {
		res, err := e.execSelectRow(sel, params)
		if err != nil {
			return nil, err
		}
		return colResultFromResult(res), nil
	}
	rel, err := e.buildFromVec(sel.From, params)
	if err != nil {
		return nil, err
	}
	fr := fullFrame(rel.n)
	if sel.Where != nil {
		vcw := &vctx{params: params, rel: rel, resolver: e.Resolver}
		cond, err := vcw.eval(sel.Where, fr)
		if err != nil {
			return nil, err
		}
		fr = fr.narrow(truthyKeep(cond))
	}

	grouped := len(sel.GroupBy) > 0
	if !grouped {
		for _, item := range sel.Items {
			if hasAggregate(item.Expr) {
				grouped = true
				break
			}
		}
	}
	if sel.Having != nil && !grouped {
		grouped = true
	}

	var cres *ColResult
	if grouped {
		res, orderEnvs, err := e.execGroupedVec(sel, rel, fr, params)
		if err != nil {
			return nil, err
		}
		if sel.Distinct {
			res, orderEnvs = dedupeRows(res, orderEnvs)
		}
		if len(sel.OrderBy) > 0 {
			if err := e.orderResult(res, orderEnvs, sel.OrderBy); err != nil {
				return nil, err
			}
		}
		if sel.Limit >= 0 && int64(len(res.Rows)) > sel.Limit {
			res.Rows = res.Rows[:sel.Limit]
		}
		cres = colResultFromResult(res)
	} else {
		cres, err = e.execSimpleVec(sel, rel, fr, params)
		if err != nil {
			return nil, err
		}
	}
	if sel.Into != "" {
		ct, err := NewColTable(sel.Into, cres.Cols, cres.Columns)
		if err != nil {
			return nil, err
		}
		e.Catalog.PutColumns(ct)
	}
	return cres, nil
}

// buildFromVec assembles the source relation columnar-side: cross products
// and join filters produce gather index vectors over the base tables
// instead of copied rows. An empty FROM yields one empty row (scalar
// SELECT).
func (e *Engine) buildFromVec(refs []sqlparser.TableRef, params map[string]value.Value) (*vRel, error) {
	if len(refs) == 0 {
		return &vRel{n: 1}, nil
	}
	var acc *vRel
	for i, ref := range refs {
		ct, ok := e.Catalog.GetColumns(ref.Name)
		if !ok {
			return nil, fmt.Errorf("sqlengine: unknown table %q", ref.Name)
		}
		binding := ref.Name
		if ref.Alias != "" {
			binding = ref.Alias
		}
		schema := make([]colBinding, len(ct.Cols))
		for j, c := range ct.Cols {
			schema[j] = colBinding{table: binding, name: c}
		}
		next := &vRel{schema: schema, cols: ct.Columns, n: ct.NumRows()}
		if i == 0 {
			acc = next
			continue
		}
		joined, err := e.joinVec(acc, next, ref, params)
		if err != nil {
			return nil, err
		}
		acc = joined
	}
	return acc, nil
}

// joinVec combines acc with next under the ref's join semantics (cross,
// inner ON, LEFT JOIN), producing gather lists first and gathering each
// column once. Equality ON conditions take the hash path (hashjoin.go)
// and never materialize the quadratic intermediate.
func (e *Engine) joinVec(acc, next *vRel, ref sqlparser.TableRef, params map[string]value.Value) (*vRel, error) {
	nl, nr := acc.n, next.n
	total := nl * nr
	schema := append(append([]colBinding(nil), acc.schema...), next.schema...)

	// Hash equi-join fast path. Empty inputs skip it: the quadratic loop
	// never evaluates the condition then, so neither may the key pass.
	if ref.JoinCond != nil && nl > 0 && nr > 0 {
		if lx, rx, ok := equiJoinKeys(ref.JoinCond, schema, len(acc.schema)); ok {
			outL, outR, hashed, err := e.hashEquiJoin(acc, next, lx, rx, ref.LeftJoin, params, nil, nil, nil)
			if err != nil {
				return nil, err
			}
			if hashed {
				cols := make([]*Column, 0, len(acc.cols)+len(next.cols))
				for _, c := range acc.cols {
					cols = append(cols, c.gather(outL))
				}
				for _, c := range next.cols {
					cols = append(cols, c.gatherPad(outR))
				}
				return &vRel{schema: schema, cols: cols, n: len(outL)}, nil
			}
		}
	}

	var keepMask []bool // nil = cross join, everything kept
	if ref.JoinCond != nil {
		li := make([]int, total)
		ri := make([]int, total)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				li[l*nr+r] = l
				ri[l*nr+r] = r
			}
		}
		cols := make([]*Column, 0, len(acc.cols)+len(next.cols))
		for _, c := range acc.cols {
			cols = append(cols, c.gather(li))
		}
		for _, c := range next.cols {
			cols = append(cols, c.gather(ri))
		}
		combined := &vRel{schema: schema, cols: cols, n: total}
		vc := &vctx{params: params, rel: combined, resolver: e.Resolver}
		cond, err := vc.eval(ref.JoinCond, fullFrame(total))
		if err != nil {
			return nil, err
		}
		keepMask = make([]bool, total)
		for _, k := range truthyKeep(cond) {
			keepMask[k] = true
		}
	}

	outL := make([]int, 0, total)
	outR := make([]int, 0, total)
	for l := 0; l < nl; l++ {
		matched := false
		for r := 0; r < nr; r++ {
			if keepMask == nil || keepMask[l*nr+r] {
				matched = true
				outL = append(outL, l)
				outR = append(outR, r)
			}
		}
		if ref.LeftJoin && !matched {
			// LEFT JOIN: keep the unmatched left row, padding this table's
			// columns with NULLs.
			outL = append(outL, l)
			outR = append(outR, -1)
		}
	}
	cols := make([]*Column, 0, len(acc.cols)+len(next.cols))
	for _, c := range acc.cols {
		cols = append(cols, c.gather(outL))
	}
	for _, c := range next.cols {
		cols = append(cols, c.gatherPad(outR))
	}
	return &vRel{schema: schema, cols: cols, n: len(outL)}, nil
}

// execSimpleVec projects each item as a whole column; aliases of earlier
// items become extra columns visible to later items and to ORDER BY (the
// dialect extension Figure 2 relies on).
func (e *Engine) execSimpleVec(sel sqlparser.Select, rel *vRel, fr frame, params map[string]value.Value) (*ColResult, error) {
	vc := &vctx{
		params:   params,
		rel:      rel,
		extras:   make(map[string]*Column, len(sel.Items)),
		resolver: e.Resolver,
	}
	// The projection frame anchors the extras: positions are relative to
	// the filtered selection.
	pf := frame{rows: fr.rows, n: fr.n}
	res := &ColResult{}
	for i, item := range sel.Items {
		res.Cols = append(res.Cols, outputName(item, i))
		col, err := vc.eval(item.Expr, pf)
		if err != nil {
			return nil, err
		}
		res.Columns = append(res.Columns, col)
		if item.Alias != "" {
			vc.extras[item.Alias] = col
		}
	}
	ctxFr := pf
	if sel.Distinct {
		keep := distinctKeep(res.Columns, pf.n)
		if len(keep) < pf.n {
			for j := range res.Columns {
				res.Columns[j] = res.Columns[j].gather(keep)
			}
			ctxFr = pf.narrow(keep)
		}
	}
	if len(sel.OrderBy) > 0 {
		keyCols := make([]*Column, len(sel.OrderBy))
		for j, k := range sel.OrderBy {
			col, err := vc.eval(k.Expr, ctxFr)
			if err != nil {
				return nil, err
			}
			keyCols[j] = col
		}
		perm, err := sortPerm(keyCols, sel.OrderBy, ctxFr.n)
		if err != nil {
			return nil, err
		}
		for j := range res.Columns {
			res.Columns[j] = res.Columns[j].gather(perm)
		}
	}
	if sel.Limit >= 0 && int64(res.NumRows()) > sel.Limit {
		prefix := identityIdx(int(sel.Limit))
		for j := range res.Columns {
			res.Columns[j] = res.Columns[j].gather(prefix)
		}
	}
	return res, nil
}

// distinctKeep returns the first-occurrence positions of distinct value
// tuples, keyed by the engines' shared canonical encoding.
func distinctKeep(cols []*Column, n int) []int {
	seen := make(map[string]bool, n)
	keep := make([]int, 0, n)
	var buf []byte
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for _, c := range cols {
			buf = c.appendKey(buf, i)
		}
		k := string(buf)
		if seen[k] {
			continue
		}
		seen[k] = true
		keep = append(keep, i)
	}
	return keep
}

// sortPerm returns the stable ORDER BY permutation over the key columns.
func sortPerm(keyCols []*Column, keys []sqlparser.OrderItem, n int) ([]int, error) {
	perm := identityIdx(n)
	var sortErr error
	sort.SliceStable(perm, func(x, y int) bool {
		a, b := perm[x], perm[y]
		for j, k := range keys {
			c, err := cmpCell(keyCols[j], a, b)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	return perm, nil
}

// cmpCell orders two rows of one column with value.Compare semantics
// (NULL sorts before everything), unboxed for typed columns.
func cmpCell(c *Column, a, b int) (int, error) {
	an, bn := c.IsNull(a), c.IsNull(b)
	if an || bn {
		switch {
		case an && bn:
			return 0, nil
		case an:
			return -1, nil
		default:
			return 1, nil
		}
	}
	switch c.kind {
	case ColFloat:
		switch {
		case c.f[a] < c.f[b]:
			return -1, nil
		case c.f[a] > c.f[b]:
			return 1, nil
		}
		return 0, nil
	case ColInt:
		// Compare through float64 like value.Compare does, so huge ints
		// (|v| >= 2^53) order identically on both engines.
		af, bf := float64(c.i[a]), float64(c.i[b])
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	case ColString:
		switch {
		case c.s[a] < c.s[b]:
			return -1, nil
		case c.s[a] > c.s[b]:
			return 1, nil
		}
		return 0, nil
	case ColBool:
		switch {
		case !c.b[a] && c.b[b]:
			return -1, nil
		case c.b[a] && !c.b[b]:
			return 1, nil
		}
		return 0, nil
	default:
		return value.Compare(c.Value(a), c.Value(b))
	}
}

// execGroupedVec evaluates the aggregation path: GROUP BY keys are
// evaluated as whole columns and hashed unboxed, aggregates fold typed
// vectors per group, and the remaining per-group scalar glue (HAVING,
// projections with the aggregates substituted as literals) runs through the
// row expression evaluator over the group's first row — semantics shared
// with the row engine by construction.
func (e *Engine) execGroupedVec(sel sqlparser.Select, rel *vRel, fr frame, params map[string]value.Value) (*Result, []func(sqlparser.Expr) (value.Value, error), error) {
	vc := &vctx{params: params, rel: rel, resolver: e.Resolver}
	type vGroup struct {
		members []int // frame positions
	}
	var groups []*vGroup
	if len(sel.GroupBy) == 0 {
		groups = []*vGroup{{members: identityIdx(fr.n)}}
	} else {
		keyCols := make([]*Column, len(sel.GroupBy))
		for j, kx := range sel.GroupBy {
			col, err := vc.eval(kx, fr)
			if err != nil {
				return nil, nil, err
			}
			keyCols[j] = col
		}
		index := map[string]*vGroup{}
		var buf []byte
		for i := 0; i < fr.n; i++ {
			buf = buf[:0]
			for _, kc := range keyCols {
				buf = kc.appendKey(buf, i)
			}
			ks := string(buf)
			g, ok := index[ks]
			if !ok {
				g = &vGroup{}
				index[ks] = g
				groups = append(groups, g)
			}
			g.members = append(g.members, i)
		}
	}

	res := &Result{}
	for i, item := range sel.Items {
		res.Cols = append(res.Cols, outputName(item, i))
	}
	rowRel := &relation{schema: rel.schema}
	var orderEnvs []func(sqlparser.Expr) (value.Value, error)
	for _, g := range groups {
		gFr := fr.narrow(g.members)
		var row []value.Value
		if gFr.n > 0 {
			row = boxRow(rel, gFr.row(0))
		}
		evalInGroup := func(x sqlparser.Expr, extra map[string]value.Value) (value.Value, error) {
			rewritten, err := substituteAggregatesWith(x, func(fc sqlparser.FuncCall) (value.Value, error) {
				return vc.computeAggVec(fc, gFr)
			})
			if err != nil {
				return value.Null, err
			}
			ev := &env{params: params, rel: rowRel, row: row, extra: extra, resolver: e.Resolver}
			return ev.eval(rewritten)
		}
		if sel.Having != nil {
			hv, err := evalInGroup(sel.Having, nil)
			if err != nil {
				return nil, nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		extra := make(map[string]value.Value, len(sel.Items))
		out := make([]value.Value, len(sel.Items))
		for i, item := range sel.Items {
			v, err := evalInGroup(item.Expr, extra)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
			if item.Alias != "" {
				extra[item.Alias] = v
			}
		}
		res.Rows = append(res.Rows, out)
		extraCopy := extra
		orderEnvs = append(orderEnvs, func(x sqlparser.Expr) (value.Value, error) {
			return evalInGroup(x, extraCopy)
		})
	}
	return res, orderEnvs, nil
}

// boxRow boxes one base-relation row (the group representative the scalar
// glue evaluates against).
func boxRow(rel *vRel, base int) []value.Value {
	row := make([]value.Value, len(rel.cols))
	for j, c := range rel.cols {
		row[j] = c.Value(base)
	}
	return row
}

// computeAggVec evaluates one aggregate call over the group frame: the
// argument is evaluated as a whole column, then folded in a tight loop.
// NULL inputs are skipped (SQL semantics); COUNT(*) counts rows.
func (vc *vctx) computeAggVec(f sqlparser.FuncCall, gFr frame) (value.Value, error) {
	if f.Star {
		if f.Name != "COUNT" {
			return value.Null, fmt.Errorf("sqlengine: %s(*) is not supported; only COUNT(*)", f.Name)
		}
		return value.Int(int64(gFr.n)), nil
	}
	if len(f.Args) != 1 {
		return value.Null, fmt.Errorf("sqlengine: aggregate %s expects 1 argument, got %d", f.Name, len(f.Args))
	}
	arg := f.Args[0]
	if hasAggregate(arg) {
		return value.Null, fmt.Errorf("sqlengine: nested aggregate in %s", f.Name)
	}
	col, err := vc.eval(arg, gFr)
	if err != nil {
		return value.Null, err
	}
	switch f.Name {
	case "COUNT":
		switch {
		case col.kind == ColNull:
			return value.Int(0), nil
		case col.kind != ColBoxed && col.nulls == nil:
			return value.Int(int64(col.n)), nil
		case col.kind != ColBoxed:
			// Word-wise popcount of the null bitmap instead of a per-row
			// branch.
			nulls := 0
			for _, w := range col.nulls {
				nulls += bits.OnesCount64(w)
			}
			return value.Int(int64(col.n - nulls)), nil
		}
		n := 0
		for i := 0; i < col.n; i++ {
			if !col.IsNull(i) {
				n++
			}
		}
		return value.Int(int64(n)), nil
	case "SUM":
		switch col.kind {
		case ColInt:
			if col.nulls == nil {
				// No-nulls fast path: 8 partial accumulators, exact for
				// two's-complement addition.
				if col.n == 0 {
					return value.Null, nil
				}
				return value.Int(sumIntsNoNull(col.i)), nil
			}
			var acc int64
			seen := false
			for i, v := range col.i {
				if col.nulls.get(i) {
					continue
				}
				acc += v
				seen = true
			}
			if !seen {
				return value.Null, nil
			}
			return value.Int(acc), nil
		case ColFloat:
			// The float fold stays strictly sequential so the sum is
			// bit-identical to the row oracle's left-to-right value.Add
			// chain; the fast path only drops the per-element bitmap branch.
			if col.nulls == nil {
				if col.n == 0 {
					return value.Null, nil
				}
				var acc float64
				for _, v := range col.f {
					acc += v
				}
				return value.Float(acc), nil
			}
			var acc float64
			seen := false
			for i, v := range col.f {
				if col.nulls.get(i) {
					continue
				}
				acc += v
				seen = true
			}
			if !seen {
				return value.Null, nil
			}
			return value.Float(acc), nil
		default:
			// Boxed fallback shares the row engine's coercions and errors.
			acc := value.Null
			for i := 0; i < col.n; i++ {
				v := col.Value(i)
				if v.IsNull() {
					continue
				}
				if acc.IsNull() {
					acc = v
					continue
				}
				acc, err = value.Add(acc, v)
				if err != nil {
					return value.Null, err
				}
			}
			return acc, nil
		}
	case "AVG", "EXPECT", "PROB", "STDDEV", "EXPECT_STDDEV":
		// Welford accumulation is order-dependent, so both paths fold
		// sequentially (bit-parity with the row oracle); the no-nulls fast
		// path removes only the per-element bitmap branch.
		var m stats.Moments
		switch col.kind {
		case ColFloat:
			if col.nulls == nil {
				for _, v := range col.f {
					m.Add(v)
				}
				break
			}
			for i, v := range col.f {
				if col.nulls.get(i) {
					continue
				}
				m.Add(v)
			}
		case ColInt:
			if col.nulls == nil {
				for _, v := range col.i {
					m.Add(float64(v))
				}
				break
			}
			for i, v := range col.i {
				if col.nulls.get(i) {
					continue
				}
				m.Add(float64(v))
			}
		default:
			for i := 0; i < col.n; i++ {
				v := col.Value(i)
				if v.IsNull() {
					continue
				}
				fv, err := v.AsFloat()
				if err != nil {
					return value.Null, err
				}
				m.Add(fv)
			}
		}
		if m.Count() == 0 {
			return value.Null, nil
		}
		if f.Name == "STDDEV" || f.Name == "EXPECT_STDDEV" {
			return value.Float(m.StdDev()), nil
		}
		return value.Float(m.Mean()), nil
	case "MIN", "MAX":
		min := f.Name == "MIN"
		// No-nulls typed numeric fast path: strict-inequality scan, which
		// keeps the first of tied/incomparable (NaN) rows exactly like
		// value.Compare's two-way test does.
		if col.nulls == nil && col.n > 0 && (col.kind == ColFloat || col.kind == ColInt) {
			if col.kind == ColFloat {
				best := col.f[0]
				for _, v := range col.f[1:] {
					if (min && v < best) || (!min && v > best) {
						best = v
					}
				}
				return value.Float(best), nil
			}
			// INT orders through float64 widening (value.Compare semantics),
			// but the representative keeps its exact integer value.
			bestIdx := 0
			bestF := float64(col.i[0])
			for i, v := range col.i[1:] {
				vf := float64(v)
				if (min && vf < bestF) || (!min && vf > bestF) {
					bestF = vf
					bestIdx = i + 1
				}
			}
			return value.Int(col.i[bestIdx]), nil
		}
		best := -1
		for i := 0; i < col.n; i++ {
			if col.IsNull(i) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			c, err := cmpCell(col, i, best)
			if err != nil {
				// Mixed-kind boxed columns: report the comparison error the
				// row engine would hit.
				return value.Null, err
			}
			if (min && c < 0) || (!min && c > 0) {
				best = i
			}
		}
		if best < 0 {
			return value.Null, nil
		}
		return col.Value(best), nil
	default:
		return value.Null, fmt.Errorf("sqlengine: unknown aggregate %q", f.Name)
	}
}
