package sqlengine

import (
	"fmt"
	"math"
)

// This file holds the unboxed elementwise and fold cores shared by the
// interpreted vectorized evaluator (veval.go) and the compiled plan kernels
// (plan_kernels.go). Every core is split into a no-nulls plain-slice fast
// path and a bitmap-masked slow path; the fast paths for + - * are manually
// 8-lane unrolled (elementwise maps are lane-independent, so unrolling is
// bit-exact). Reductions that the row oracle computes sequentially (float
// SUM, Welford moments) deliberately keep their sequential order — the
// differential suite asserts bit-identical results across all three
// execution paths — and win only the removal of the per-element bitmap
// branch; integer SUM is exact under reassociation and does unroll.

// mergedNulls returns the word-wise OR of two null bitmaps sized for n
// rows, or nil when both are nil.
func mergedNulls(n int, l, r bitmap) bitmap {
	if l == nil && r == nil {
		return nil
	}
	out := newBitmap(n)
	if l != nil {
		copy(out, l)
	}
	if r != nil {
		for i := range out {
			out[i] |= r[i]
		}
	}
	return out
}

// mergeNullsInto is mergedNulls writing into a reusable buffer (returned
// possibly re-grown); it still returns nil when both inputs are nil.
func mergeNullsInto(buf bitmap, n int, l, r bitmap) (bitmap, bitmap) {
	if l == nil && r == nil {
		return nil, buf
	}
	words := (n + 63) / 64
	if cap(buf) < words {
		buf = make(bitmap, words)
	}
	buf = buf[:words]
	if l != nil {
		copy(buf, l)
		if r != nil {
			for i := range buf {
				buf[i] |= r[i]
			}
		}
	} else {
		copy(buf, r)
	}
	return buf, buf
}

// addFloatsInto computes dst[i] = a[i] + b[i], 8-lane unrolled.
func addFloatsInto(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i+0] = a[i+0] + b[i+0]
		dst[i+1] = a[i+1] + b[i+1]
		dst[i+2] = a[i+2] + b[i+2]
		dst[i+3] = a[i+3] + b[i+3]
		dst[i+4] = a[i+4] + b[i+4]
		dst[i+5] = a[i+5] + b[i+5]
		dst[i+6] = a[i+6] + b[i+6]
		dst[i+7] = a[i+7] + b[i+7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}

// subFloatsInto computes dst[i] = a[i] - b[i], 8-lane unrolled.
func subFloatsInto(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i+0] = a[i+0] - b[i+0]
		dst[i+1] = a[i+1] - b[i+1]
		dst[i+2] = a[i+2] - b[i+2]
		dst[i+3] = a[i+3] - b[i+3]
		dst[i+4] = a[i+4] - b[i+4]
		dst[i+5] = a[i+5] - b[i+5]
		dst[i+6] = a[i+6] - b[i+6]
		dst[i+7] = a[i+7] - b[i+7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] - b[i]
	}
}

// mulFloatsInto computes dst[i] = a[i] * b[i], 8-lane unrolled.
func mulFloatsInto(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i+0] = a[i+0] * b[i+0]
		dst[i+1] = a[i+1] * b[i+1]
		dst[i+2] = a[i+2] * b[i+2]
		dst[i+3] = a[i+3] * b[i+3]
		dst[i+4] = a[i+4] * b[i+4]
		dst[i+5] = a[i+5] * b[i+5]
		dst[i+6] = a[i+6] * b[i+6]
		dst[i+7] = a[i+7] * b[i+7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] * b[i]
	}
}

// divFloatsInto computes dst[i] = a[i] / b[i] with the engine's
// division-by-zero error; nulls marks rows to skip (NULL result rows must
// not trip the zero check). The no-nulls fast path carries no per-row
// bitmap branch.
func divFloatsInto(dst, a, b []float64, nulls bitmap) error {
	n := len(dst)
	a, b = a[:n], b[:n]
	if nulls == nil {
		for i := 0; i < n; i++ {
			if b[i] == 0 {
				return fmt.Errorf("value: division by zero")
			}
			dst[i] = a[i] / b[i]
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if nulls.get(i) {
			continue
		}
		if b[i] == 0 {
			return fmt.Errorf("value: division by zero")
		}
		dst[i] = a[i] / b[i]
	}
	return nil
}

// modFloatsInto computes dst[i] = mod(a[i], b[i]) with zero checks, like
// divFloatsInto.
func modFloatsInto(dst, a, b []float64, nulls bitmap) error {
	n := len(dst)
	a, b = a[:n], b[:n]
	if nulls == nil {
		for i := 0; i < n; i++ {
			if b[i] == 0 {
				return fmt.Errorf("value: modulo by zero")
			}
			dst[i] = math.Mod(a[i], b[i])
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if nulls.get(i) {
			continue
		}
		if b[i] == 0 {
			return fmt.Errorf("value: modulo by zero")
		}
		dst[i] = math.Mod(a[i], b[i])
	}
	return nil
}

// addIntsInto computes dst[i] = a[i] + b[i], 8-lane unrolled.
func addIntsInto(dst, a, b []int64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i+0] = a[i+0] + b[i+0]
		dst[i+1] = a[i+1] + b[i+1]
		dst[i+2] = a[i+2] + b[i+2]
		dst[i+3] = a[i+3] + b[i+3]
		dst[i+4] = a[i+4] + b[i+4]
		dst[i+5] = a[i+5] + b[i+5]
		dst[i+6] = a[i+6] + b[i+6]
		dst[i+7] = a[i+7] + b[i+7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}

// subIntsInto computes dst[i] = a[i] - b[i], 8-lane unrolled.
func subIntsInto(dst, a, b []int64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i+0] = a[i+0] - b[i+0]
		dst[i+1] = a[i+1] - b[i+1]
		dst[i+2] = a[i+2] - b[i+2]
		dst[i+3] = a[i+3] - b[i+3]
		dst[i+4] = a[i+4] - b[i+4]
		dst[i+5] = a[i+5] - b[i+5]
		dst[i+6] = a[i+6] - b[i+6]
		dst[i+7] = a[i+7] - b[i+7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] - b[i]
	}
}

// mulIntsInto computes dst[i] = a[i] * b[i], 8-lane unrolled.
func mulIntsInto(dst, a, b []int64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i+0] = a[i+0] * b[i+0]
		dst[i+1] = a[i+1] * b[i+1]
		dst[i+2] = a[i+2] * b[i+2]
		dst[i+3] = a[i+3] * b[i+3]
		dst[i+4] = a[i+4] * b[i+4]
		dst[i+5] = a[i+5] * b[i+5]
		dst[i+6] = a[i+6] * b[i+6]
		dst[i+7] = a[i+7] * b[i+7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] * b[i]
	}
}

// modIntsInto computes dst[i] = a[i] % b[i] with zero checks; NULL rows are
// skipped so a NULL divisor cell never trips the error.
func modIntsInto(dst, a, b []int64, nulls bitmap) error {
	n := len(dst)
	a, b = a[:n], b[:n]
	if nulls == nil {
		for i := 0; i < n; i++ {
			if b[i] == 0 {
				return fmt.Errorf("value: modulo by zero")
			}
			dst[i] = a[i] % b[i]
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if nulls.get(i) {
			continue
		}
		if b[i] == 0 {
			return fmt.Errorf("value: modulo by zero")
		}
		dst[i] = a[i] % b[i]
	}
	return nil
}

// intsToFloatsInto widens an int64 vector into dst, 8-lane unrolled.
func intsToFloatsInto(dst []float64, a []int64) {
	n := len(dst)
	a = a[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i+0] = float64(a[i+0])
		dst[i+1] = float64(a[i+1])
		dst[i+2] = float64(a[i+2])
		dst[i+3] = float64(a[i+3])
		dst[i+4] = float64(a[i+4])
		dst[i+5] = float64(a[i+5])
		dst[i+6] = float64(a[i+6])
		dst[i+7] = float64(a[i+7])
	}
	for ; i < n; i++ {
		dst[i] = float64(a[i])
	}
}

// cmpFloatsInto stores op(a[i], b[i]) into dst. Rows the caller marked NULL
// hold unspecified values (the null bitmap overrides them).
func cmpFloatsInto(op string, dst []bool, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	switch op {
	case "=":
		for i := 0; i < n; i++ {
			dst[i] = !(a[i] < b[i]) && !(a[i] > b[i])
		}
	case "<>":
		for i := 0; i < n; i++ {
			dst[i] = a[i] < b[i] || a[i] > b[i]
		}
	case "<":
		for i := 0; i < n; i++ {
			dst[i] = a[i] < b[i]
		}
	case "<=":
		for i := 0; i < n; i++ {
			dst[i] = !(a[i] > b[i])
		}
	case ">":
		for i := 0; i < n; i++ {
			dst[i] = a[i] > b[i]
		}
	default: // ">="
		for i := 0; i < n; i++ {
			dst[i] = !(a[i] < b[i])
		}
	}
}

// cmpIntsInto compares int vectors through float64 widening — the same
// equivalence value.Compare defines, so huge ints (|v| >= 2^53) decide
// identically on every path.
func cmpIntsInto(op string, dst []bool, a, b []int64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	switch op {
	case "=":
		for i := 0; i < n; i++ {
			dst[i] = float64(a[i]) == float64(b[i])
		}
	case "<>":
		for i := 0; i < n; i++ {
			dst[i] = float64(a[i]) != float64(b[i])
		}
	case "<":
		for i := 0; i < n; i++ {
			dst[i] = float64(a[i]) < float64(b[i])
		}
	case "<=":
		for i := 0; i < n; i++ {
			dst[i] = float64(a[i]) <= float64(b[i])
		}
	case ">":
		for i := 0; i < n; i++ {
			dst[i] = float64(a[i]) > float64(b[i])
		}
	default: // ">="
		for i := 0; i < n; i++ {
			dst[i] = float64(a[i]) >= float64(b[i])
		}
	}
}

// cmpStringsInto stores op(a[i], b[i]) into dst.
func cmpStringsInto(op string, dst []bool, a, b []string) {
	n := len(dst)
	a, b = a[:n], b[:n]
	switch op {
	case "=":
		for i := 0; i < n; i++ {
			dst[i] = a[i] == b[i]
		}
	case "<>":
		for i := 0; i < n; i++ {
			dst[i] = a[i] != b[i]
		}
	case "<":
		for i := 0; i < n; i++ {
			dst[i] = a[i] < b[i]
		}
	case "<=":
		for i := 0; i < n; i++ {
			dst[i] = a[i] <= b[i]
		}
	case ">":
		for i := 0; i < n; i++ {
			dst[i] = a[i] > b[i]
		}
	default: // ">="
		for i := 0; i < n; i++ {
			dst[i] = a[i] >= b[i]
		}
	}
}

// cmpBoolsInto stores op(a[i], b[i]) into dst with false < true ordering.
func cmpBoolsInto(op string, dst []bool, a, b []bool) {
	n := len(dst)
	a, b = a[:n], b[:n]
	rank := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case "=":
		for i := 0; i < n; i++ {
			dst[i] = a[i] == b[i]
		}
	case "<>":
		for i := 0; i < n; i++ {
			dst[i] = a[i] != b[i]
		}
	case "<":
		for i := 0; i < n; i++ {
			dst[i] = rank(a[i]) < rank(b[i])
		}
	case "<=":
		for i := 0; i < n; i++ {
			dst[i] = rank(a[i]) <= rank(b[i])
		}
	case ">":
		for i := 0; i < n; i++ {
			dst[i] = rank(a[i]) > rank(b[i])
		}
	default: // ">="
		for i := 0; i < n; i++ {
			dst[i] = rank(a[i]) >= rank(b[i])
		}
	}
}

// arithFloatsConstInto applies op between a vector and one scalar without
// materializing the scalar as a column (the compiled plans' col⊕const
// specialization). constLeft selects c ⊕ a[i] for the asymmetric ops.
func arithFloatsConstInto(op byte, dst, a []float64, c float64, constLeft bool, nulls bitmap) error {
	n := len(dst)
	a = a[:n]
	switch op {
	case '+':
		for i := 0; i < n; i++ {
			dst[i] = a[i] + c
		}
	case '-':
		if constLeft {
			for i := 0; i < n; i++ {
				dst[i] = c - a[i]
			}
		} else {
			for i := 0; i < n; i++ {
				dst[i] = a[i] - c
			}
		}
	case '*':
		for i := 0; i < n; i++ {
			dst[i] = a[i] * c
		}
	case '/':
		if constLeft {
			if nulls == nil {
				for i := 0; i < n; i++ {
					if a[i] == 0 {
						return fmt.Errorf("value: division by zero")
					}
					dst[i] = c / a[i]
				}
			} else {
				for i := 0; i < n; i++ {
					if nulls.get(i) {
						continue
					}
					if a[i] == 0 {
						return fmt.Errorf("value: division by zero")
					}
					dst[i] = c / a[i]
				}
			}
		} else {
			if c == 0 {
				// The row engine errors on the first non-NULL row; any such
				// row exists exactly when not every row is NULL.
				if !allNullRows(n, nulls) {
					return fmt.Errorf("value: division by zero")
				}
				return nil
			}
			for i := 0; i < n; i++ {
				dst[i] = a[i] / c
			}
		}
	case '%':
		if constLeft {
			if nulls == nil {
				for i := 0; i < n; i++ {
					if a[i] == 0 {
						return fmt.Errorf("value: modulo by zero")
					}
					dst[i] = math.Mod(c, a[i])
				}
			} else {
				for i := 0; i < n; i++ {
					if nulls.get(i) {
						continue
					}
					if a[i] == 0 {
						return fmt.Errorf("value: modulo by zero")
					}
					dst[i] = math.Mod(c, a[i])
				}
			}
		} else {
			if c == 0 {
				if !allNullRows(n, nulls) {
					return fmt.Errorf("value: modulo by zero")
				}
				return nil
			}
			for i := 0; i < n; i++ {
				dst[i] = math.Mod(a[i], c)
			}
		}
	}
	return nil
}

// arithIntsConstInto is arithFloatsConstInto for the INT⊕INT ops that stay
// integral (+ - * %; division always widens to float).
func arithIntsConstInto(op byte, dst, a []int64, c int64, constLeft bool, nulls bitmap) error {
	n := len(dst)
	a = a[:n]
	switch op {
	case '+':
		for i := 0; i < n; i++ {
			dst[i] = a[i] + c
		}
	case '-':
		if constLeft {
			for i := 0; i < n; i++ {
				dst[i] = c - a[i]
			}
		} else {
			for i := 0; i < n; i++ {
				dst[i] = a[i] - c
			}
		}
	case '*':
		for i := 0; i < n; i++ {
			dst[i] = a[i] * c
		}
	case '%':
		if constLeft {
			if nulls == nil {
				for i := 0; i < n; i++ {
					if a[i] == 0 {
						return fmt.Errorf("value: modulo by zero")
					}
					dst[i] = c % a[i]
				}
			} else {
				for i := 0; i < n; i++ {
					if nulls.get(i) {
						continue
					}
					if a[i] == 0 {
						return fmt.Errorf("value: modulo by zero")
					}
					dst[i] = c % a[i]
				}
			}
		} else {
			if c == 0 {
				if !allNullRows(n, nulls) {
					return fmt.Errorf("value: modulo by zero")
				}
				return nil
			}
			for i := 0; i < n; i++ {
				dst[i] = a[i] % c
			}
		}
	}
	return nil
}

// cmpFloatsConstInto stores op(a[i], c) — or op(c, a[i]) when constLeft —
// into dst.
func cmpFloatsConstInto(op string, dst []bool, a []float64, c float64, constLeft bool) {
	if constLeft {
		op = flipCmp(op)
	}
	n := len(dst)
	a = a[:n]
	switch op {
	case "=":
		for i := 0; i < n; i++ {
			dst[i] = !(a[i] < c) && !(a[i] > c)
		}
	case "<>":
		for i := 0; i < n; i++ {
			dst[i] = a[i] < c || a[i] > c
		}
	case "<":
		for i := 0; i < n; i++ {
			dst[i] = a[i] < c
		}
	case "<=":
		for i := 0; i < n; i++ {
			dst[i] = !(a[i] > c)
		}
	case ">":
		for i := 0; i < n; i++ {
			dst[i] = a[i] > c
		}
	default: // ">="
		for i := 0; i < n; i++ {
			dst[i] = !(a[i] < c)
		}
	}
}

// flipCmp mirrors a comparison operator (a op b ⇔ b flip(op) a).
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default: // = and <> are symmetric
		return op
	}
}

// allNullRows reports whether every one of n rows is marked NULL.
func allNullRows(n int, nulls bitmap) bool {
	if nulls == nil {
		return n == 0
	}
	for i := 0; i < n; i++ {
		if !nulls.get(i) {
			return false
		}
	}
	return true
}

// sumIntsNoNull folds an int64 vector with 8 partial accumulators (exact:
// two's-complement addition is associative).
func sumIntsNoNull(a []int64) int64 {
	var s0, s1, s2, s3, s4, s5, s6, s7 int64
	i := 0
	n := len(a)
	for ; i+8 <= n; i += 8 {
		s0 += a[i+0]
		s1 += a[i+1]
		s2 += a[i+2]
		s3 += a[i+3]
		s4 += a[i+4]
		s5 += a[i+5]
		s6 += a[i+6]
		s7 += a[i+7]
	}
	acc := s0 + s1 + s2 + s3 + s4 + s5 + s6 + s7
	for ; i < n; i++ {
		acc += a[i]
	}
	return acc
}
