package sqlengine

import (
	"fmt"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// The kernel compiler: lowers the hot subset of the expression language —
// column/alias references, literals and parameters as scalars, arithmetic,
// comparisons, and the compare→CASE shape every bundled scenario uses —
// into closures over pre-allocated buffer slots. Anything outside the
// subset compiles to a fallback kernel that runs the interpreted
// vectorized evaluator over the same relation and selection, so compiled
// and interpreted execution agree by construction.
//
// Fusion: a CASE whose conditions are plain comparisons of simple operands
// and whose results are simple operands (the scenarios'
// "CASE WHEN capacity < demand THEN 1 ELSE 0 END") executes as one
// mask-and-pick pass with no intermediate columns and no scatter lists.
// Comparisons and arithmetic against literals/parameters specialize to
// col⊕const loops that never materialize the scalar as a column.

type compiler struct {
	p       *Plan
	specIDs map[colRefSpec]int
}

// colRef interns a (table, name) reference, giving it a gather slot.
func (c *compiler) colRef(table, name string) int {
	key := colRefSpec{table: table, name: name}
	if id, ok := c.specIDs[key]; ok {
		return id
	}
	id := len(c.p.colRefs)
	c.specIDs[key] = id
	c.p.colRefs = append(c.p.colRefs, key)
	c.p.gatherSlot = append(c.p.gatherSlot, c.newSlot())
	return id
}

func (c *compiler) newSlot() int {
	id := c.p.slots
	c.p.slots++
	return id
}

// registerExprCols interns every column reference of a subtree so the
// relation materializes the columns a fallback kernel will resolve by
// name. Alias-shadowed names may intern a base column needlessly; that
// costs one extra gather, never correctness.
func (c *compiler) registerExprCols(x sqlparser.Expr) {
	sqlparser.WalkExpr(x, func(e sqlparser.Expr) {
		if cr, ok := e.(sqlparser.ColumnRef); ok {
			c.colRef(cr.Table, cr.Name)
		}
	})
}

// compileRoot compiles an expression, falling back to the interpreted
// evaluator for anything outside the kernel subset.
func (c *compiler) compileRoot(x sqlparser.Expr, aliases map[string]int) kernel {
	if k, ok := c.compile(x, aliases); ok {
		return k
	}
	c.registerExprCols(x)
	return fallbackKernel(x)
}

// fallbackKernel evaluates x through the interpreted vectorized evaluator
// over the current relation, selection and alias columns.
func fallbackKernel(x sqlparser.Expr) kernel {
	return func(st *planState) (*Column, error) {
		vc := &vctx{params: st.params, rel: &st.rel, extras: st.extras, resolver: st.e.Resolver}
		return vc.eval(x, frame{rows: st.sel, n: st.n})
	}
}

// scalarSrc is a compile-time scalar operand: a literal value or a
// parameter fetched at execution time.
type scalarSrc struct {
	isParam bool
	name    string
	val     value.Value
}

func (s *scalarSrc) resolve(st *planState) (value.Value, error) {
	if !s.isParam {
		return s.val, nil
	}
	if st.params != nil {
		if v, ok := st.params[s.name]; ok {
			return v, nil
		}
	}
	return value.Null, fmt.Errorf("sqlengine: unbound parameter @%s", s.name)
}

// operand is one side of a compiled binary operator: a scalar or a
// compiled sub-kernel.
type operand struct {
	scalar *scalarSrc
	k      kernel
}

func (c *compiler) compileOperand(x sqlparser.Expr, aliases map[string]int) (operand, bool) {
	switch n := x.(type) {
	case sqlparser.Literal:
		return operand{scalar: &scalarSrc{val: n.Val}}, true
	case sqlparser.ParamRef:
		return operand{scalar: &scalarSrc{isParam: true, name: n.Name}}, true
	}
	k, ok := c.compile(x, aliases)
	if !ok {
		return operand{}, false
	}
	return operand{k: k}, true
}

// compile lowers x to a kernel; ok=false means the subtree is outside the
// compiled subset.
func (c *compiler) compile(x sqlparser.Expr, aliases map[string]int) (kernel, bool) {
	switch n := x.(type) {
	case sqlparser.ColumnRef:
		if n.Table == "" && aliases != nil {
			if idx, ok := aliases[n.Name]; ok {
				return aliasKernel(idx), true
			}
		}
		spec := c.colRef(n.Table, n.Name)
		return func(st *planState) (*Column, error) { return st.colRefCol(spec) }, true
	case sqlparser.Literal:
		slot := c.newSlot()
		v := n.Val
		return func(st *planState) (*Column, error) {
			return splatInto(st.slot(slot), v, st.n), nil
		}, true
	case sqlparser.ParamRef:
		slot := c.newSlot()
		src := &scalarSrc{isParam: true, name: n.Name}
		return func(st *planState) (*Column, error) {
			v, err := src.resolve(st)
			if err != nil {
				return nil, err
			}
			return splatInto(st.slot(slot), v, st.n), nil
		}, true
	case sqlparser.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%":
			return c.compileArith(n, aliases)
		case "=", "<>", "<", "<=", ">", ">=":
			return c.compileCompare(n, aliases)
		}
		return nil, false
	case sqlparser.Case:
		return c.compileFusedCase(n, aliases)
	default:
		return nil, false
	}
}

func aliasKernel(idx int) kernel {
	return func(st *planState) (*Column, error) { return st.itemCols[idx], nil }
}

// resolveOperandCol evaluates a kernel operand (nil column for scalars).
func resolveOperandCol(st *planState, o operand) (*Column, value.Value, error) {
	if o.scalar != nil {
		v, err := o.scalar.resolve(st)
		return nil, v, err
	}
	col, err := o.k(st)
	return col, value.Null, err
}

// compileArith lowers an arithmetic node. Typed numeric operands run
// through the shared no-null/masked cores into plan buffers; anything else
// degrades to arithColumns (identical semantics, interpreted speed).
func (c *compiler) compileArith(n sqlparser.Binary, aliases map[string]int) (kernel, bool) {
	l, lok := c.compileOperand(n.L, aliases)
	r, rok := c.compileOperand(n.R, aliases)
	if !lok || !rok || (l.scalar != nil && r.scalar != nil) {
		return nil, false
	}
	op := n.Op[0]
	out := c.newSlot()
	scratchL := c.newSlot()
	scratchR := c.newSlot()
	return func(st *planState) (*Column, error) {
		lcol, lval, err := resolveOperandCol(st, l)
		if err != nil {
			return nil, err
		}
		rcol, rval, err := resolveOperandCol(st, r)
		if err != nil {
			return nil, err
		}
		sl := st.slot(out)
		n := st.n
		// Scalar-side handling: a NULL scalar or NULL column nullifies the
		// whole result (arithColumns semantics).
		if (lcol == nil && lval.IsNull()) || (rcol == nil && rval.IsNull()) ||
			(lcol != nil && lcol.kind == ColNull) || (rcol != nil && rcol.kind == ColNull) {
			return sl.nullCol(n), nil
		}
		if lcol != nil && rcol != nil {
			if !lcol.isTypedNumeric() || !rcol.isTypedNumeric() {
				return arithColumns(op, lcol, rcol)
			}
			nulls, nbuf := mergeNullsInto(sl.nulls, n, lcol.nulls, rcol.nulls)
			sl.nulls = nbuf
			if lcol.kind == ColInt && rcol.kind == ColInt && op != '/' {
				_, dst := sl.intCol(n)
				var err error
				switch op {
				case '+':
					addIntsInto(dst, lcol.i, rcol.i)
				case '-':
					subIntsInto(dst, lcol.i, rcol.i)
				case '*':
					mulIntsInto(dst, lcol.i, rcol.i)
				case '%':
					err = modIntsInto(dst, lcol.i, rcol.i, nulls)
				}
				if err != nil {
					return nil, err
				}
				sl.col.nulls = nulls
				return &sl.col, nil
			}
			lf := st.slot(scratchL).floatsInto(lcol)
			rf := st.slot(scratchR).floatsInto(rcol)
			_, dst := sl.floatCol(n)
			var ferr error
			switch op {
			case '+':
				addFloatsInto(dst, lf, rf)
			case '-':
				subFloatsInto(dst, lf, rf)
			case '*':
				mulFloatsInto(dst, lf, rf)
			case '/':
				ferr = divFloatsInto(dst, lf, rf, nulls)
			case '%':
				ferr = modFloatsInto(dst, lf, rf, nulls)
			}
			if ferr != nil {
				return nil, ferr
			}
			sl.col.nulls = nulls
			return &sl.col, nil
		}
		// col ⊕ scalar / scalar ⊕ col.
		col, sv := lcol, rval
		constLeft := false
		if col == nil {
			col, sv = rcol, lval
			constLeft = true
		}
		svKind := sv.Kind()
		if !col.isTypedNumeric() || (svKind != value.KindInt && svKind != value.KindFloat) {
			// Degrade: splat the scalar and use the interpreted operator.
			splat := splatInto(st.slot(scratchL), sv, n)
			if constLeft {
				return arithColumns(op, splat, col)
			}
			return arithColumns(op, col, splat)
		}
		if col.kind == ColInt && svKind == value.KindInt && op != '/' {
			ci, _ := sv.AsInt()
			_, dst := sl.intCol(n)
			if err := arithIntsConstInto(op, dst, col.i, ci, constLeft, col.nulls); err != nil {
				return nil, err
			}
			sl.col.nulls = col.nulls
			return &sl.col, nil
		}
		cf, _ := sv.AsFloat()
		af := st.slot(scratchR).floatsInto(col)
		_, dst := sl.floatCol(n)
		if err := arithFloatsConstInto(op, dst, af, cf, constLeft, col.nulls); err != nil {
			return nil, err
		}
		sl.col.nulls = col.nulls
		return &sl.col, nil
	}, true
}

// compileCompare lowers a comparison node with the same degradation
// ladder as compileArith.
func (c *compiler) compileCompare(n sqlparser.Binary, aliases map[string]int) (kernel, bool) {
	l, lok := c.compileOperand(n.L, aliases)
	r, rok := c.compileOperand(n.R, aliases)
	if !lok || !rok || (l.scalar != nil && r.scalar != nil) {
		return nil, false
	}
	op := n.Op
	out := c.newSlot()
	scratchL := c.newSlot()
	scratchR := c.newSlot()
	return func(st *planState) (*Column, error) {
		lcol, lval, err := resolveOperandCol(st, l)
		if err != nil {
			return nil, err
		}
		rcol, rval, err := resolveOperandCol(st, r)
		if err != nil {
			return nil, err
		}
		sl := st.slot(out)
		n := st.n
		if (lcol == nil && lval.IsNull()) || (rcol == nil && rval.IsNull()) ||
			(lcol != nil && lcol.kind == ColNull) || (rcol != nil && rcol.kind == ColNull) {
			// compareColumns yields an all-NULL column for NULL operands.
			return sl.nullCol(n), nil
		}
		if lcol != nil && rcol != nil {
			if lcol.isTypedNumeric() && rcol.isTypedNumeric() {
				nulls, nbuf := mergeNullsInto(sl.nulls, n, lcol.nulls, rcol.nulls)
				sl.nulls = nbuf
				_, dst := sl.boolCol(n)
				if lcol.kind == ColInt && rcol.kind == ColInt {
					cmpIntsInto(op, dst, lcol.i, rcol.i)
				} else {
					lf := st.slot(scratchL).floatsInto(lcol)
					rf := st.slot(scratchR).floatsInto(rcol)
					cmpFloatsInto(op, dst, lf, rf)
				}
				sl.col.nulls = nulls
				return &sl.col, nil
			}
			return compareColumns(op, lcol, rcol)
		}
		col, sv := lcol, rval
		constLeft := false
		if col == nil {
			col, sv = rcol, lval
			constLeft = true
		}
		svKind := sv.Kind()
		if !col.isTypedNumeric() || (svKind != value.KindInt && svKind != value.KindFloat) {
			splat := splatInto(st.slot(scratchL), sv, n)
			if constLeft {
				return compareColumns(op, splat, col)
			}
			return compareColumns(op, col, splat)
		}
		cf, _ := sv.AsFloat()
		af := st.slot(scratchR).floatsInto(col)
		_, dst := sl.boolCol(n)
		cmpFloatsConstInto(op, dst, af, cf, constLeft)
		sl.col.nulls = col.nulls
		return &sl.col, nil
	}, true
}

// caseOperand is a simple operand of a fused CASE: a scalar, an alias
// column, or a base column reference.
type caseOperand struct {
	scalar   *scalarSrc
	aliasIdx int // >= 0: item column
	spec     int // >= 0: base column reference
}

func (c *compiler) compileCaseOperand(x sqlparser.Expr, aliases map[string]int) (caseOperand, bool) {
	switch n := x.(type) {
	case sqlparser.Literal:
		return caseOperand{scalar: &scalarSrc{val: n.Val}, aliasIdx: -1, spec: -1}, true
	case sqlparser.ParamRef:
		return caseOperand{scalar: &scalarSrc{isParam: true, name: n.Name}, aliasIdx: -1, spec: -1}, true
	case sqlparser.ColumnRef:
		if n.Table == "" && aliases != nil {
			if idx, ok := aliases[n.Name]; ok {
				return caseOperand{aliasIdx: idx, spec: -1}, true
			}
		}
		return caseOperand{aliasIdx: -1, spec: c.colRef(n.Table, n.Name)}, true
	default:
		return caseOperand{}, false
	}
}

// resolve returns the operand as either a column or a scalar value.
func (o *caseOperand) resolve(st *planState) (*Column, value.Value, error) {
	switch {
	case o.scalar != nil:
		v, err := o.scalar.resolve(st)
		return nil, v, err
	case o.aliasIdx >= 0:
		return st.itemCols[o.aliasIdx], value.Null, nil
	default:
		col, err := st.colRefCol(o.spec)
		return col, value.Null, err
	}
}

type fusedWhen struct {
	op   string
	l, r caseOperand
}

// compileFusedCase lowers CASE WHEN <cmp> THEN <simple> … [ELSE <simple>]
// into a mask-and-pick pass. Shapes or runtime operand kinds outside the
// fusable set bail to the interpreted CASE, which is always correct.
func (c *compiler) compileFusedCase(n sqlparser.Case, aliases map[string]int) (kernel, bool) {
	if len(n.Whens) == 0 {
		return nil, false
	}
	whens := make([]fusedWhen, len(n.Whens))
	outs := make([]caseOperand, len(n.Whens))
	for i, w := range n.Whens {
		cmp, ok := w.Cond.(sqlparser.Binary)
		if !ok {
			return nil, false
		}
		switch cmp.Op {
		case "=", "<>", "<", "<=", ">", ">=":
		default:
			return nil, false
		}
		l, lok := c.compileCaseOperand(cmp.L, aliases)
		r, rok := c.compileCaseOperand(cmp.R, aliases)
		if !lok || !rok {
			return nil, false
		}
		whens[i] = fusedWhen{op: cmp.Op, l: l, r: r}
		out, ok := c.compileCaseOperand(w.Then, aliases)
		if !ok {
			return nil, false
		}
		outs[i] = out
	}
	var elseOut *caseOperand
	if n.Else != nil {
		eo, ok := c.compileCaseOperand(n.Else, aliases)
		if !ok {
			return nil, false
		}
		elseOut = &eo
	}
	// The interpreted CASE, for when runtime kinds fall outside the fused
	// set; its column references are interned so the relation carries them.
	c.registerExprCols(n)
	bail := fallbackKernel(n)

	maskSlots := make([]int, len(whens))
	cmpScratchL := make([]int, len(whens))
	cmpScratchR := make([]int, len(whens))
	for i := range whens {
		maskSlots[i] = c.newSlot()
		cmpScratchL[i] = c.newSlot()
		cmpScratchR[i] = c.newSlot()
	}
	outSlot := c.newSlot()

	return func(st *planState) (*Column, error) {
		n := st.n
		cs := &st.cs
		cs.reset(len(whens))
		// Resolve every operand; any shape the fused pass cannot represent
		// exactly routes to the interpreted CASE.
		for i := range whens {
			lc, lv, err := whens[i].l.resolve(st)
			if err != nil {
				return bail(st)
			}
			rc, rv, err := whens[i].r.resolve(st)
			if err != nil {
				return bail(st)
			}
			if (lc != nil && !numericColKind(lc)) || (rc != nil && !numericColKind(rc)) ||
				(lc == nil && !numericValKind(lv)) || (rc == nil && !numericValKind(rv)) ||
				(lc == nil && rc == nil) {
				return bail(st)
			}
			cs.condLC[i], cs.condLV[i] = lc, lv
			cs.condRC[i], cs.condRV[i] = rc, rv
		}
		outKind := ColNull
		var elseC *Column
		var elseV value.Value
		for i := range outs {
			col, v, ok := resolveFusedOut(st, &outs[i], &outKind)
			if !ok {
				return bail(st)
			}
			cs.outC[i], cs.outV[i] = col, v
		}
		if elseOut != nil {
			col, v, ok := resolveFusedOut(st, elseOut, &outKind)
			if !ok {
				return bail(st)
			}
			elseC, elseV = col, v
		}

		// Pass 1: one bool mask per arm (cond true AND operands non-NULL).
		for w := range whens {
			_, mask := st.slot(maskSlots[w]).boolCol(n)
			lc, rc := cs.condLC[w], cs.condRC[w]
			switch {
			case lc != nil && rc != nil:
				if lc.kind == ColInt && rc.kind == ColInt {
					cmpIntsInto(whens[w].op, mask, lc.i, rc.i)
				} else {
					lf := st.slot(cmpScratchL[w]).floatsInto(lc)
					rf := st.slot(cmpScratchR[w]).floatsInto(rc)
					cmpFloatsInto(whens[w].op, mask, lf, rf)
				}
			case lc != nil:
				cf, _ := cs.condRV[w].AsFloat()
				lf := st.slot(cmpScratchL[w]).floatsInto(lc)
				cmpFloatsConstInto(whens[w].op, mask, lf, cf, false)
			default:
				cf, _ := cs.condLV[w].AsFloat()
				rf := st.slot(cmpScratchR[w]).floatsInto(rc)
				cmpFloatsConstInto(whens[w].op, mask, rf, cf, true)
			}
			// NULL condition operands are "not taken".
			if lc != nil && lc.nulls != nil {
				for i := 0; i < n; i++ {
					if lc.nulls.get(i) {
						mask[i] = false
					}
				}
			}
			if rc != nil && rc.nulls != nil {
				for i := 0; i < n; i++ {
					if rc.nulls.get(i) {
						mask[i] = false
					}
				}
			}
			cs.masks[w] = mask
		}

		// Pass 2: first-match pick into the output buffer.
		sl := st.slot(outSlot)
		needNulls := elseOut == nil
		for _, oc := range cs.outC {
			if oc != nil && oc.nulls != nil {
				needNulls = true
			}
		}
		if elseC != nil && elseC.nulls != nil {
			needNulls = true
		}
		var nulls bitmap
		if needNulls {
			nulls = sl.clearedBitmap(n)
		}
		anyNull := false
		var dstF []float64
		var dstI []int64
		switch outKind {
		case ColFloat:
			_, dstF = sl.floatCol(n)
		case ColInt:
			_, dstI = sl.intCol(n)
		default:
			// No arm contributed a kind (possible only when n == 0).
			return sl.nullCol(n), nil
		}
		// Precompute primitive output sources so the pick loops touch no
		// boxed values.
		for w := range cs.masks {
			cs.outColF[w], cs.outColI[w], cs.outNulls[w], cs.outConstF[w], cs.outConstI[w] = describeFusedOut(cs.outC[w], cs.outV[w])
		}
		var elseColF []float64
		var elseColI []int64
		var elseNulls bitmap
		var elseConstF float64
		var elseConstI int64
		if elseOut != nil {
			elseColF, elseColI, elseNulls, elseConstF, elseConstI = describeFusedOut(elseC, elseV)
		}
		hasElse := elseOut != nil
		// The dominant shape — one WHEN plus ELSE, no NULLs anywhere —
		// reduces to a branch-predictable two-way select.
		if len(cs.masks) == 1 && nulls == nil {
			m := cs.masks[0]
			if dstF != nil {
				af, ac := cs.outColF[0], cs.outConstF[0]
				bf, bc := elseColF, elseConstF
				switch {
				case af == nil && bf == nil:
					for i, t := range m {
						if t {
							dstF[i] = ac
						} else {
							dstF[i] = bc
						}
					}
				case af == nil:
					for i, t := range m {
						if t {
							dstF[i] = ac
						} else {
							dstF[i] = bf[i]
						}
					}
				case bf == nil:
					for i, t := range m {
						if t {
							dstF[i] = af[i]
						} else {
							dstF[i] = bc
						}
					}
				default:
					for i, t := range m {
						if t {
							dstF[i] = af[i]
						} else {
							dstF[i] = bf[i]
						}
					}
				}
			} else {
				ai, ac := cs.outColI[0], cs.outConstI[0]
				bi, bc := elseColI, elseConstI
				switch {
				case ai == nil && bi == nil:
					for i, t := range m {
						if t {
							dstI[i] = ac
						} else {
							dstI[i] = bc
						}
					}
				case ai == nil:
					for i, t := range m {
						if t {
							dstI[i] = ac
						} else {
							dstI[i] = bi[i]
						}
					}
				case bi == nil:
					for i, t := range m {
						if t {
							dstI[i] = ai[i]
						} else {
							dstI[i] = bc
						}
					}
				default:
					for i, t := range m {
						if t {
							dstI[i] = ai[i]
						} else {
							dstI[i] = bi[i]
						}
					}
				}
			}
			sl.col.nulls = nil
			return &sl.col, nil
		}
		if dstF != nil {
			for i := 0; i < n; i++ {
				cf, constF, onulls := elseColF, elseConstF, elseNulls
				matched := hasElse
				for w := range cs.masks {
					if cs.masks[w][i] {
						cf, constF, onulls = cs.outColF[w], cs.outConstF[w], cs.outNulls[w]
						matched = true
						break
					}
				}
				switch {
				case !matched || (onulls != nil && onulls.get(i)):
					nulls.set(i)
					anyNull = true
				case cf != nil:
					dstF[i] = cf[i]
				default:
					dstF[i] = constF
				}
			}
		} else {
			for i := 0; i < n; i++ {
				ci, constI, onulls := elseColI, elseConstI, elseNulls
				matched := hasElse
				for w := range cs.masks {
					if cs.masks[w][i] {
						ci, constI, onulls = cs.outColI[w], cs.outConstI[w], cs.outNulls[w]
						matched = true
						break
					}
				}
				switch {
				case !matched || (onulls != nil && onulls.get(i)):
					nulls.set(i)
					anyNull = true
				case ci != nil:
					dstI[i] = ci[i]
				default:
					dstI[i] = constI
				}
			}
		}
		if anyNull {
			sl.col.nulls = nulls
		} else {
			sl.col.nulls = nil
		}
		return &sl.col, nil
	}, true
}

// describeFusedOut lowers one fused-CASE output operand to primitive
// sources: a typed slice (+ null bitmap) for columns, a constant for
// scalars.
func describeFusedOut(oc *Column, ov value.Value) (cf []float64, ci []int64, onulls bitmap, constF float64, constI int64) {
	if oc != nil {
		return oc.f, oc.i, oc.nulls, 0, 0
	}
	f, _ := ov.AsFloat()
	iv, _ := ov.AsInt()
	return nil, nil, nil, f, iv
}

func numericColKind(col *Column) bool {
	return col != nil && (col.kind == ColFloat || col.kind == ColInt)
}

func numericValKind(v value.Value) bool {
	return v.Kind() == value.KindInt || v.Kind() == value.KindFloat
}

// resolveFusedOut resolves one THEN/ELSE operand, accumulating the fused
// output kind; ok=false means the fused pass cannot represent it (mixed
// INT/FLOAT arms must stay boxed-exact, so they run interpreted).
func resolveFusedOut(st *planState, o *caseOperand, outKind *ColKind) (*Column, value.Value, bool) {
	col, v, err := o.resolve(st)
	if err != nil {
		return nil, value.Null, false
	}
	note := func(k ColKind) bool {
		if *outKind == ColNull {
			*outKind = k
			return true
		}
		return *outKind == k
	}
	if col != nil {
		if !numericColKind(col) || !note(col.kind) {
			return nil, value.Null, false
		}
		return col, value.Null, true
	}
	switch v.Kind() {
	case value.KindInt:
		if !note(ColInt) {
			return nil, value.Null, false
		}
	case value.KindFloat:
		if !note(ColFloat) {
			return nil, value.Null, false
		}
	default:
		return nil, value.Null, false
	}
	return nil, v, true
}
