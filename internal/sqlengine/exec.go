package sqlengine

import (
	"fmt"
	"sort"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/stats"
	"fuzzyprophet/internal/value"
)

// Engine evaluates SELECT statements against a catalog. Execution is
// columnar and vectorized by default; RowMode selects the legacy
// row-at-a-time executor, kept as a semantic oracle for differential
// testing and benchmarking.
type Engine struct {
	Catalog  *Catalog
	Resolver FuncResolver // optional; consulted before scalar builtins
	// RowMode forces the legacy row-at-a-time execution path.
	RowMode bool
}

// New returns an engine over the given catalog.
func New(catalog *Catalog) *Engine { return &Engine{Catalog: catalog} }

// Result is the output of a query: named columns plus rows.
type Result struct {
	Cols []string
	Rows [][]value.Value
}

// ColIndex returns the index of the named output column, or -1.
func (r *Result) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Column returns all values of the named column.
func (r *Result) Column(name string) ([]value.Value, error) {
	i := r.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("sqlengine: result has no column %q", name)
	}
	out := make([]value.Value, len(r.Rows))
	for j, row := range r.Rows {
		out[j] = row[i]
	}
	return out, nil
}

// ExecScript runs every SELECT statement in the script in order, binding
// params, and returns the result of the last one. GRAPH and OPTIMIZE
// statements are metadata for the surrounding modes and are skipped;
// DECLARE PARAMETER statements are skipped (parameter binding is the
// caller's job).
func (e *Engine) ExecScript(script *sqlparser.Script, params map[string]value.Value) (*Result, error) {
	var last *Result
	for _, st := range script.Statements {
		sel, ok := st.(sqlparser.Select)
		if !ok {
			continue
		}
		res, err := e.ExecSelect(sel, params)
		if err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

// ExecSelect evaluates one SELECT with the given parameter bindings. When
// the statement has an INTO clause the result is also materialized in the
// catalog under that name. The vectorized path runs unless RowMode is set;
// both paths produce identical results (the differential suite asserts
// this), the row path just does it one boxed value at a time.
func (e *Engine) ExecSelect(sel sqlparser.Select, params map[string]value.Value) (*Result, error) {
	if e.RowMode {
		return e.execSelectRow(sel, params)
	}
	cres, err := e.ExecSelectColumnar(sel, params)
	if err != nil {
		return nil, err
	}
	return cres.Result(), nil
}

// execSelectRow is the legacy row-at-a-time SELECT path.
func (e *Engine) execSelectRow(sel sqlparser.Select, params map[string]value.Value) (*Result, error) {
	src, err := e.buildFrom(sel.From, params)
	if err != nil {
		return nil, err
	}

	// WHERE filter.
	if sel.Where != nil {
		kept := src.rows[:0:0]
		for _, row := range src.rows {
			ev := &env{params: params, rel: src, row: row, resolver: e.Resolver}
			v, err := ev.eval(sel.Where)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, row)
			}
		}
		src = &relation{schema: src.schema, rows: kept}
	}

	grouped := len(sel.GroupBy) > 0
	if !grouped {
		for _, item := range sel.Items {
			if hasAggregate(item.Expr) {
				grouped = true
				break
			}
		}
	}
	if sel.Having != nil && !grouped {
		grouped = true
	}

	var res *Result
	var orderEnvs []func(sqlparser.Expr) (value.Value, error)
	if grouped {
		res, orderEnvs, err = e.execGrouped(sel, src, params)
	} else {
		res, orderEnvs, err = e.execSimple(sel, src, params)
	}
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		res, orderEnvs = dedupeRows(res, orderEnvs)
	}
	if len(sel.OrderBy) > 0 {
		if err := e.orderResult(res, orderEnvs, sel.OrderBy); err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 && int64(len(res.Rows)) > sel.Limit {
		res.Rows = res.Rows[:sel.Limit]
	}
	if sel.Into != "" {
		t, err := NewTable(sel.Into, res.Cols, res.Rows)
		if err != nil {
			return nil, err
		}
		e.Catalog.Put(t)
	}
	return res, nil
}

// buildFrom assembles the source relation: cross products for comma/CROSS
// JOIN entries and filtered products for JOIN … ON entries. An empty FROM
// yields one empty row (scalar SELECT).
func (e *Engine) buildFrom(refs []sqlparser.TableRef, params map[string]value.Value) (*relation, error) {
	if len(refs) == 0 {
		return &relation{rows: [][]value.Value{{}}}, nil
	}
	var acc *relation
	for i, ref := range refs {
		t, ok := e.Catalog.Get(ref.Name)
		if !ok {
			return nil, fmt.Errorf("sqlengine: unknown table %q", ref.Name)
		}
		binding := ref.Name
		if ref.Alias != "" {
			binding = ref.Alias
		}
		next := &relation{}
		for _, c := range t.Cols {
			next.schema = append(next.schema, colBinding{table: binding, name: c})
		}
		next.rows = t.Rows
		if i == 0 {
			acc = &relation{schema: next.schema, rows: next.rows}
			continue
		}
		combined := &relation{schema: append(append([]colBinding(nil), acc.schema...), next.schema...)}
		for _, l := range acc.rows {
			matched := false
			for _, r := range next.rows {
				row := make([]value.Value, 0, len(l)+len(r))
				row = append(row, l...)
				row = append(row, r...)
				if ref.JoinCond != nil {
					ev := &env{params: params, rel: combined, row: row, resolver: e.Resolver}
					v, err := ev.eval(ref.JoinCond)
					if err != nil {
						return nil, err
					}
					if !v.Truthy() {
						continue
					}
				}
				matched = true
				combined.rows = append(combined.rows, row)
			}
			if ref.LeftJoin && !matched {
				// LEFT JOIN: keep the unmatched left row, padding this
				// table's columns with NULLs.
				row := make([]value.Value, len(l)+len(next.schema))
				copy(row, l)
				combined.rows = append(combined.rows, row)
			}
		}
		acc = combined
	}
	return acc, nil
}

// outputName picks the result column name for a select item.
func outputName(item sqlparser.SelectItem, idx int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(sqlparser.ColumnRef); ok {
		return c.Name
	}
	return fmt.Sprintf("col%d", idx+1)
}

// execSimple projects each row; aliases of earlier items are visible to
// later items (the dialect extension Figure 2 relies on).
func (e *Engine) execSimple(sel sqlparser.Select, src *relation, params map[string]value.Value) (*Result, []func(sqlparser.Expr) (value.Value, error), error) {
	res := &Result{}
	for i, item := range sel.Items {
		res.Cols = append(res.Cols, outputName(item, i))
	}
	var orderEnvs []func(sqlparser.Expr) (value.Value, error)
	for _, row := range src.rows {
		extra := make(map[string]value.Value, len(sel.Items))
		out := make([]value.Value, len(sel.Items))
		ev := &env{params: params, rel: src, row: row, extra: extra, resolver: e.Resolver}
		for i, item := range sel.Items {
			v, err := ev.eval(item.Expr)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
			if item.Alias != "" {
				extra[item.Alias] = v
			}
		}
		res.Rows = append(res.Rows, out)
		rowCopy := row
		extraCopy := extra
		orderEnvs = append(orderEnvs, func(x sqlparser.Expr) (value.Value, error) {
			oe := &env{params: params, rel: src, row: rowCopy, extra: extraCopy, resolver: e.Resolver}
			return oe.eval(x)
		})
	}
	return res, orderEnvs, nil
}

// execGrouped evaluates the aggregation path. With GROUP BY, rows are
// partitioned by the evaluated key expressions (first-seen order); without
// GROUP BY but with aggregates, all rows form one group (even when empty).
func (e *Engine) execGrouped(sel sqlparser.Select, src *relation, params map[string]value.Value) (*Result, []func(sqlparser.Expr) (value.Value, error), error) {
	type group struct {
		keyVals []value.Value
		rows    [][]value.Value
	}
	var groups []*group
	if len(sel.GroupBy) == 0 {
		groups = []*group{{rows: src.rows}}
	} else {
		index := map[string]*group{}
		for _, row := range src.rows {
			keyVals := make([]value.Value, len(sel.GroupBy))
			ev := &env{params: params, rel: src, row: row, resolver: e.Resolver}
			for i, kx := range sel.GroupBy {
				v, err := ev.eval(kx)
				if err != nil {
					return nil, nil, err
				}
				keyVals[i] = v
			}
			ks := value.KeyString(keyVals)
			g, ok := index[ks]
			if !ok {
				g = &group{keyVals: keyVals}
				index[ks] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, row)
		}
	}

	res := &Result{}
	for i, item := range sel.Items {
		res.Cols = append(res.Cols, outputName(item, i))
	}
	var orderEnvs []func(sqlparser.Expr) (value.Value, error)
	for _, g := range groups {
		evalInGroup := func(x sqlparser.Expr, extra map[string]value.Value) (value.Value, error) {
			rewritten, err := substituteAggregatesWith(x, func(fc sqlparser.FuncCall) (value.Value, error) {
				return e.computeAggregate(fc, src, g.rows, params)
			})
			if err != nil {
				return value.Null, err
			}
			var row []value.Value
			if len(g.rows) > 0 {
				row = g.rows[0]
			}
			ev := &env{params: params, rel: src, row: row, extra: extra, resolver: e.Resolver}
			return ev.eval(rewritten)
		}
		if sel.Having != nil {
			hv, err := evalInGroup(sel.Having, nil)
			if err != nil {
				return nil, nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		extra := make(map[string]value.Value, len(sel.Items))
		out := make([]value.Value, len(sel.Items))
		for i, item := range sel.Items {
			v, err := evalInGroup(item.Expr, extra)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
			if item.Alias != "" {
				extra[item.Alias] = v
			}
		}
		res.Rows = append(res.Rows, out)
		extraCopy := extra
		gRows := g.rows
		orderEnvs = append(orderEnvs, func(x sqlparser.Expr) (value.Value, error) {
			rewritten, err := substituteAggregatesWith(x, func(fc sqlparser.FuncCall) (value.Value, error) {
				return e.computeAggregate(fc, src, gRows, params)
			})
			if err != nil {
				return value.Null, err
			}
			var row []value.Value
			if len(gRows) > 0 {
				row = gRows[0]
			}
			ev := &env{params: params, rel: src, row: row, extra: extraCopy, resolver: e.Resolver}
			return ev.eval(rewritten)
		})
	}
	return res, orderEnvs, nil
}

// substituteAggregatesWith rewrites x, replacing every aggregate call with
// a literal holding the value compute returns for it. The rewritten
// expression then evaluates with the ordinary scalar evaluator. Both the
// row and the columnar grouped executors share this rewrite; they differ
// only in how compute folds the group.
func substituteAggregatesWith(x sqlparser.Expr, compute func(sqlparser.FuncCall) (value.Value, error)) (sqlparser.Expr, error) {
	switch n := x.(type) {
	case sqlparser.FuncCall:
		if isAggregateName(n.Name) {
			v, err := compute(n)
			if err != nil {
				return nil, err
			}
			return sqlparser.Literal{Val: v}, nil
		}
		args := make([]sqlparser.Expr, len(n.Args))
		for i, a := range n.Args {
			ra, err := substituteAggregatesWith(a, compute)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return sqlparser.FuncCall{Name: n.Name, Args: args, Star: n.Star}, nil
	case sqlparser.Unary:
		rx, err := substituteAggregatesWith(n.X, compute)
		if err != nil {
			return nil, err
		}
		return sqlparser.Unary{Op: n.Op, X: rx}, nil
	case sqlparser.Binary:
		l, err := substituteAggregatesWith(n.L, compute)
		if err != nil {
			return nil, err
		}
		r, err := substituteAggregatesWith(n.R, compute)
		if err != nil {
			return nil, err
		}
		return sqlparser.Binary{Op: n.Op, L: l, R: r}, nil
	case sqlparser.Case:
		whens := make([]sqlparser.When, len(n.Whens))
		for i, w := range n.Whens {
			c, err := substituteAggregatesWith(w.Cond, compute)
			if err != nil {
				return nil, err
			}
			th, err := substituteAggregatesWith(w.Then, compute)
			if err != nil {
				return nil, err
			}
			whens[i] = sqlparser.When{Cond: c, Then: th}
		}
		var els sqlparser.Expr
		if n.Else != nil {
			var err error
			els, err = substituteAggregatesWith(n.Else, compute)
			if err != nil {
				return nil, err
			}
		}
		return sqlparser.Case{Whens: whens, Else: els}, nil
	case sqlparser.Between:
		xx, err := substituteAggregatesWith(n.X, compute)
		if err != nil {
			return nil, err
		}
		lo, err := substituteAggregatesWith(n.Lo, compute)
		if err != nil {
			return nil, err
		}
		hi, err := substituteAggregatesWith(n.Hi, compute)
		if err != nil {
			return nil, err
		}
		return sqlparser.Between{X: xx, Lo: lo, Hi: hi, Not: n.Not}, nil
	case sqlparser.InList:
		xx, err := substituteAggregatesWith(n.X, compute)
		if err != nil {
			return nil, err
		}
		items := make([]sqlparser.Expr, len(n.Items))
		for i, it := range n.Items {
			ri, err := substituteAggregatesWith(it, compute)
			if err != nil {
				return nil, err
			}
			items[i] = ri
		}
		return sqlparser.InList{X: xx, Items: items, Not: n.Not}, nil
	case sqlparser.IsNull:
		xx, err := substituteAggregatesWith(n.X, compute)
		if err != nil {
			return nil, err
		}
		return sqlparser.IsNull{X: xx, Not: n.Not}, nil
	default:
		return x, nil
	}
}

// computeAggregate evaluates one aggregate call over the group rows.
// NULL inputs are skipped (SQL semantics); COUNT(*) counts rows.
func (e *Engine) computeAggregate(f sqlparser.FuncCall, rel *relation, group [][]value.Value, params map[string]value.Value) (value.Value, error) {
	if f.Star {
		if f.Name != "COUNT" {
			return value.Null, fmt.Errorf("sqlengine: %s(*) is not supported; only COUNT(*)", f.Name)
		}
		return value.Int(int64(len(group))), nil
	}
	if len(f.Args) != 1 {
		return value.Null, fmt.Errorf("sqlengine: aggregate %s expects 1 argument, got %d", f.Name, len(f.Args))
	}
	arg := f.Args[0]
	if hasAggregate(arg) {
		return value.Null, fmt.Errorf("sqlengine: nested aggregate in %s", f.Name)
	}
	var vals []value.Value
	for _, row := range group {
		ev := &env{params: params, rel: rel, row: row, resolver: e.Resolver}
		v, err := ev.eval(arg)
		if err != nil {
			return value.Null, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch f.Name {
	case "COUNT":
		return value.Int(int64(len(vals))), nil
	case "SUM":
		if len(vals) == 0 {
			return value.Null, nil
		}
		acc := vals[0]
		for _, v := range vals[1:] {
			var err error
			acc, err = value.Add(acc, v)
			if err != nil {
				return value.Null, err
			}
		}
		return acc, nil
	case "AVG", "EXPECT", "PROB":
		if len(vals) == 0 {
			return value.Null, nil
		}
		var m stats.Moments
		for _, v := range vals {
			fv, err := v.AsFloat()
			if err != nil {
				return value.Null, err
			}
			m.Add(fv)
		}
		return value.Float(m.Mean()), nil
	case "STDDEV", "EXPECT_STDDEV":
		if len(vals) == 0 {
			return value.Null, nil
		}
		var m stats.Moments
		for _, v := range vals {
			fv, err := v.AsFloat()
			if err != nil {
				return value.Null, err
			}
			m.Add(fv)
		}
		return value.Float(m.StdDev()), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return value.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := value.Compare(v, best)
			if err != nil {
				return value.Null, err
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return value.Null, fmt.Errorf("sqlengine: unknown aggregate %q", f.Name)
	}
}

// dedupeRows implements SELECT DISTINCT: output rows with identical value
// tuples collapse to their first occurrence (and keep that occurrence's
// ordering context).
func dedupeRows(res *Result, orderEnvs []func(sqlparser.Expr) (value.Value, error)) (*Result, []func(sqlparser.Expr) (value.Value, error)) {
	seen := map[string]bool{}
	outRows := res.Rows[:0:0]
	outEnvs := orderEnvs[:0:0]
	for i, row := range res.Rows {
		key := value.KeyString(row)
		if seen[key] {
			continue
		}
		seen[key] = true
		outRows = append(outRows, row)
		outEnvs = append(outEnvs, orderEnvs[i])
	}
	res.Rows = outRows
	return res, outEnvs
}

// orderResult sorts res.Rows by the ORDER BY keys using the per-row
// evaluation contexts captured during projection.
func (e *Engine) orderResult(res *Result, orderEnvs []func(sqlparser.Expr) (value.Value, error), keys []sqlparser.OrderItem) error {
	type sortable struct {
		row  []value.Value
		keys []value.Value
	}
	items := make([]sortable, len(res.Rows))
	for i, row := range res.Rows {
		ks := make([]value.Value, len(keys))
		for j, k := range keys {
			v, err := orderEnvs[i](k.Expr)
			if err != nil {
				return err
			}
			ks[j] = v
		}
		items[i] = sortable{row: row, keys: ks}
	}
	var sortErr error
	sort.SliceStable(items, func(a, b int) bool {
		for j, k := range keys {
			c, err := value.Compare(items[a].keys[j], items[b].keys[j])
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for i := range items {
		res.Rows[i] = items[i].row
	}
	return nil
}
